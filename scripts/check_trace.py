#!/usr/bin/env python3
"""ci-trace leg: run a small fused construction with every telemetry
output enabled and validate the three artefacts.

Usage: scripts/check_trace.py [--autotune] [--step3] [--serve] \
           <path/to/parahash_cli>

Checks:
  - trace.json, metrics.json, report.json all parse as JSON;
  - the trace carries a thread-name track for every Step-2 device the
    run report lists (plus the Step-2 input track);
  - the report's ledger timeline has samples and caught Step 2
    consuming (a sample with cns > 0);
  - the metrics snapshot counted upserts.

With --autotune the run adds the --autotune flag and the checks extend
to the tuner artefacts:
  - the report has a `tuner` section with a calibration that ran and a
    non-empty decision log (every decision carries knob/old/new/
    t_seconds);
  - the trace has at least one "tuner"-category instant event (the
    decisions' timeline markers).

With --step3 the run chains graph simplification + contig extraction
into the fused pipeline and the checks extend to the third stage:
  - step3:<device> trace tracks and a step3-category stitch span;
  - the report's step3/step3_stats sections with contigs extracted;
  - three-band ledger samples whose second boundary caught Step 3
    consuming while Step 2 was still publishing, plus
    step23_overlap_seconds > 0;
  - the contigs FASTA and GFA artefacts exist and are well-formed.

With --serve the script runs the serving-tier scenario INSTEAD of the
trace one (`ci.sh serve` leg):
  - `build --publish-frozen --save-config` publishes the snapshot,
    writes a report with `frozen` + embedded `config` sections;
  - `report --extract-config` recovers the config from the report;
  - the daemon starts in the background (`serve --ready-file --listen
    127.0.0.1:0 --cache-entries N --metrics-out`), answers FIND/MFIND/
    STATS over its AF_UNIX socket AND the same verbs over the TCP
    listener (`query --tcp`, port taken from the ready file);
  - repeated traversals hit the hot-result cache, a SWAP verb performs
    one hot-swap cycle (generation 2 keeps answering), and the metrics
    artefact written at shutdown carries the serve.swap.* and
    serve.cache.* instruments that prove both happened;
  - `query --graph` answers offline without the daemon;
  - a second build from the extracted config alone reproduces the
    first report's graph/table stats (the reproducibility guarantee).
"""
import json
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def write_fastq(path, genome_size=20000, read_len=90, coverage=6.0,
                seed=11):
    rng = random.Random(seed)
    genome = "".join(rng.choice("ACGT") for _ in range(genome_size))
    n_reads = int(genome_size * coverage / read_len)
    with open(path, "w") as f:
        for i in range(n_reads):
            pos = rng.randrange(genome_size - read_len)
            bases = genome[pos:pos + read_len]
            f.write(f"@r{i}\n{bases}\n+\n{'I' * read_len}\n")


def fail(msg):
    print(f"ci-trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_cli(cmd, what):
    proc = subprocess.run([str(c) for c in cmd], capture_output=True,
                          text=True)
    if proc.returncode != 0:
        fail(f"{what} failed ({proc.returncode}):\n{proc.stderr}")
    return proc.stdout


def check_serve(cli):
    """The ci-serve leg: snapshot publication, the daemon loop, offline
    queries, and config-driven run reproduction."""
    with tempfile.TemporaryDirectory(prefix="parahash_ci_serve.") as tmp:
        tmp = Path(tmp)
        fastq = tmp / "reads.fastq"
        write_fastq(fastq)
        graph = tmp / "graph.phdg"
        report = tmp / "report.json"
        saved_cfg = tmp / "run.json"
        run_cli([cli, "build", fastq, f"--graph={graph}",
                 f"--work-dir={tmp / 'work'}", "--partitions=16",
                 "--publish-frozen", f"--report-json={report}",
                 f"--save-config={saved_cfg}"], "build")

        report_doc = json.loads(report.read_text())
        frozen = report_doc.get("frozen")
        if not frozen or not frozen.get("published"):
            fail("report has no published frozen section")
        if frozen["vertices"] != report_doc["graph"]["vertices"]:
            fail("frozen snapshot vertex count != graph vertex count")
        embedded = report_doc.get("config")
        if not embedded or "build" not in embedded:
            fail("report does not embed the run config")
        if not saved_cfg.is_file():
            fail("--save-config wrote nothing")

        # The report is self-describing: extract the config back out.
        extracted = tmp / "extracted.json"
        run_cli([cli, "report", report, f"--extract-config={extracted}"],
                "report --extract-config")
        if json.loads(extracted.read_text())["build"] != embedded["build"]:
            fail("extracted config build section != embedded one")

        # A kmer every build must contain: the first k bases of the
        # first read (default k is taken from the saved config).
        k = embedded["build"]["k"]
        first_read = fastq.read_text().splitlines()[1]
        kmer = first_read[:k]

        # Daemon round trip: background serve on both transports with
        # the hot-result cache on, FIND/MFIND/STATS over the socket and
        # over TCP, one hot-swap cycle, clean SIGTERM shutdown.
        sock = tmp / "ci.sock"
        ready = tmp / "ready"
        serve_metrics = tmp / "serve_metrics.json"
        daemon = subprocess.Popen(
            [str(cli), "serve", f"--graph={graph}", f"--socket={sock}",
             "--listen=127.0.0.1:0", "--cache-entries=1024",
             f"--metrics-out={serve_metrics}",
             f"--ready-file={ready}", "--runtime-seconds=60"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.monotonic() + 20
            while not ready.is_file() and time.monotonic() < deadline:
                if daemon.poll() is not None:
                    fail("daemon exited before becoming ready:\n"
                         f"{daemon.stderr.read()}")
                time.sleep(0.05)
            if not ready.is_file():
                fail("daemon never wrote its ready file")

            out = run_cli([cli, "query", f"--socket={sock}", "FIND",
                           kmer], "socket FIND")
            if not out.startswith("1 "):
                fail(f"daemon FIND of a real kmer returned {out!r}")
            out = run_cli([cli, "query", f"--socket={sock}", "MFIND",
                           kmer, "A" * k], "socket MFIND")
            if out.split()[0] != "1":
                fail(f"daemon MFIND bit for a real kmer is {out!r}")
            stats = json.loads(run_cli(
                [cli, "query", f"--socket={sock}", "STATS"],
                "socket STATS"))
            if stats["vertices"] != report_doc["graph"]["vertices"]:
                fail("daemon STATS vertices != report graph vertices")
            if stats["queries_served"] < 2:
                fail("daemon STATS did not count the served queries")
            # A malformed kmer is an ERR, and the CLI reports it as a
            # non-zero exit, not a crash.
            bad = subprocess.run(
                [str(cli), "query", f"--socket={sock}", "FIND", "NOT!"],
                capture_output=True, text=True)
            if bad.returncode == 0:
                fail("malformed FIND did not exit non-zero")

            # The TCP listener speaks the identical protocol; the ready
            # file's second line carries the resolved ephemeral port.
            ready_lines = ready.read_text().splitlines()
            tcp_line = next(
                (l for l in ready_lines if l.startswith("tcp ")), None)
            if tcp_line is None:
                fail(f"ready file has no tcp line: {ready_lines}")
            tcp = f"127.0.0.1:{tcp_line.split()[1]}"
            out = run_cli([cli, "query", f"--tcp={tcp}", "FIND", kmer],
                          "tcp FIND")
            if not out.startswith("1 "):
                fail(f"tcp FIND of a real kmer returned {out!r}")
            out = run_cli([cli, "query", f"--tcp={tcp}", "MFIND", kmer,
                           "A" * k], "tcp MFIND")
            if out.split()[0] != "1":
                fail(f"tcp MFIND bit for a real kmer is {out!r}")

            # Repeated traversals populate then hit the result cache
            # (validated against the metrics artefact after shutdown).
            for _ in range(2):
                run_cli([cli, "query", f"--tcp={tcp}", "NEIGH", kmer],
                        "tcp NEIGH")

            # One hot-swap cycle: SWAP re-loads the graph file as
            # generation 2 and the daemon keeps answering.
            out = run_cli([cli, "query", f"--socket={sock}", "SWAP",
                           graph], "SWAP")
            if not out.startswith("generation 2 "):
                fail(f"SWAP did not report generation 2: {out!r}")
            stats = json.loads(run_cli(
                [cli, "query", f"--socket={sock}", "STATS"],
                "post-swap STATS"))
            if stats.get("generation") != 2:
                fail(f"post-swap STATS generation != 2: {stats}")
            out = run_cli([cli, "query", f"--socket={sock}", "FIND",
                           kmer], "post-swap FIND")
            if not out.startswith("1 "):
                fail(f"post-swap FIND returned {out!r}")
        finally:
            if daemon.poll() is None:
                daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=20)
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode}:\n"
                 f"{daemon.stderr.read()}")
        if sock.exists():
            fail("daemon left its socket file behind")

        # The shutdown metrics artefact proves the swap and the cache
        # actually happened (not just that the verbs returned OK).
        if not serve_metrics.is_file():
            fail("daemon wrote no --metrics-out artefact")
        serve_counters = json.loads(
            serve_metrics.read_text()).get("counters", {})
        if serve_counters.get("serve.swap.count", 0) < 1:
            fail("metrics counted no serve.swap.count")
        if serve_counters.get("serve.cache.hits", 0) < 1:
            fail("metrics counted no serve.cache.hits "
                 "(repeated NEIGH did not hit the cache)")
        if serve_counters.get("serve.cache.misses", 0) < 1:
            fail("metrics counted no serve.cache.misses")
        if serve_counters.get("serve.queries", 0) < 8:
            fail("metrics under-counted serve.queries")

        # Offline mode answers without a daemon.
        offline = json.loads(run_cli(
            [cli, "query", f"--graph={graph}", "STATS"], "offline STATS"))
        if offline["vertices"] != report_doc["graph"]["vertices"]:
            fail("offline STATS vertices != report graph vertices")

        # Reproduction: a second build from the extracted config alone
        # must match the first run's graph and table stats.
        graph2 = tmp / "graph2.phdg"
        report2 = tmp / "report2.json"
        run_cli([cli, "build", f"--config={extracted}",
                 f"--graph={graph2}", f"--work-dir={tmp / 'work2'}",
                 f"--report-json={report2}"], "build --config")
        report2_doc = json.loads(report2.read_text())
        if report2_doc["graph"] != report_doc["graph"]:
            fail("config-reproduced run has different graph stats:\n"
                 f"  first: {report_doc['graph']}\n"
                 f"  again: {report2_doc['graph']}")
        for key in ("adds", "inserts"):
            if (report2_doc["step2_table"][key]
                    != report_doc["step2_table"][key]):
                fail(f"config-reproduced run differs in "
                     f"step2_table.{key}")

        print(f"ci-serve: OK ({report_doc['graph']['vertices']} vertices "
              f"served, {stats['queries_served']} daemon queries over "
              f"unix+tcp, 1 hot-swap cycle, "
              f"{serve_counters['serve.cache.hits']} cache hits, "
              f"config round trip reproduced the build)")


def main():
    args = sys.argv[1:]
    autotune = "--autotune" in args
    step3 = "--step3" in args
    serve = "--serve" in args
    args = [a for a in args if a not in ("--autotune", "--step3",
                                         "--serve")]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    cli = Path(args[0]).resolve()
    if not cli.is_file():
        fail(f"no such binary: {cli}")
    if serve:
        check_serve(cli)
        return

    with tempfile.TemporaryDirectory(prefix="parahash_ci_trace.") as tmp:
        tmp = Path(tmp)
        fastq = tmp / "reads.fastq"
        write_fastq(fastq)
        trace = tmp / "trace.json"
        metrics = tmp / "metrics.json"
        report = tmp / "report.json"
        cmd = [
            str(cli), "build", str(fastq),
            f"--graph={tmp / 'graph.phdg'}",
            f"--work-dir={tmp / 'work'}",
            "--partitions=16",
            # Multi-pass Step 1: first-pass partitions seal early, so
            # Step 2 overlaps the later passes (a wide sampling window).
            "--max-open-files=4",
            "--fuse-steps",
            f"--trace-out={trace}",
            f"--metrics-out={metrics}",
            f"--report-json={report}",
        ]
        if autotune:
            cmd.append("--autotune")
        contigs = tmp / "contigs.fa"
        gfa = tmp / "assembly.gfa"
        if step3:
            cmd += [f"--contigs-out={contigs}", f"--gfa-out={gfa}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"build failed ({proc.returncode}):\n{proc.stderr}")

        for path in (trace, metrics, report):
            if not path.is_file():
                fail(f"missing artefact: {path.name}")

        trace_doc = json.loads(trace.read_text())
        metrics_doc = json.loads(metrics.read_text())
        report_doc = json.loads(report.read_text())

        # --- trace: one named track per Step-2 device worker ---------
        events = trace_doc.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("trace has no traceEvents")
        track_names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        devices = [d["name"] for d in report_doc["step2"]["devices"]]
        if not devices:
            fail("report lists no Step-2 devices")
        for dev in devices:
            want = f"step2:{dev}"
            if want not in track_names:
                fail(f"trace is missing track {want!r} "
                     f"(have {sorted(track_names)})")
        if "step2:input" not in track_names:
            fail("trace is missing the step2:input track")
        if not any(e.get("ph") == "X" and e.get("name") == "compute"
                   for e in events):
            fail("trace has no compute spans")

        # --- report: ledger timeline caught the overlap --------------
        samples = report_doc.get("ledger_samples")
        if not samples:
            fail("report has no ledger_samples (fused run expected)")
        if not any(s["cns"] > 0 for s in samples):
            fail("no ledger sample has cns > 0")
        for key in ("step1", "step2", "step2_table", "graph",
                    "total_elapsed_seconds", "peak_rss_bytes",
                    "step_overlap_seconds"):
            if key not in report_doc:
                fail(f"report is missing key {key!r}")
        if report_doc["step2_table"]["adds"] == 0:
            fail("report counted no upserts")

        # --- metrics: the registry saw the run ------------------------
        counters = metrics_doc.get("counters", {})
        if counters.get("table.upserts", 0) == 0:
            fail("metrics counted no table.upserts")
        if "histograms" not in metrics_doc or "gauges" not in metrics_doc:
            fail("metrics snapshot is missing a section")

        # --- step3: three-band chain + contig artefacts ---------------
        if step3:
            for key in ("step3", "step3_stats", "step23_overlap_seconds"):
                if key not in report_doc:
                    fail(f"report is missing key {key!r} (--step3 run)")
            s3 = report_doc["step3_stats"]
            if s3["contigs"] == 0:
                fail("step3 extracted no contigs")
            if report_doc["step23_overlap_seconds"] <= 0:
                fail("fused --step3 run shows no step2/3 overlap")
            for dev in (d["name"] for d in report_doc["step3"]["devices"]):
                want = f"step3:{dev}"
                if want not in track_names:
                    fail(f"trace is missing track {want!r} "
                         f"(have {sorted(track_names)})")
            if not any(e.get("ph") == "X" and e.get("name") == "stitch"
                       and e.get("cat") == "step3" for e in events):
                fail("trace has no step3 stitch span")
            band2 = [s for s in samples if "srv2" in s]
            if not band2:
                fail("no ledger sample carries the step2-step3 band")
            if not any(s["cns2"] > 0 and s["srv2"] < 16 for s in band2):
                fail("no sample caught Step 3 consuming while Step 2 "
                     "was still publishing")
            if counters.get("step3.contigs", 0) == 0:
                fail("metrics counted no step3.contigs")
            fasta_text = contigs.read_text() if contigs.is_file() else ""
            n_fasta = fasta_text.count(">contig_")
            if n_fasta != s3["contigs"]:
                fail(f"contigs FASTA has {n_fasta} records, report says "
                     f"{s3['contigs']}")
            gfa_text = gfa.read_text() if gfa.is_file() else ""
            n_segments = sum(1 for line in gfa_text.splitlines()
                             if line.startswith("S\t"))
            if n_segments != s3["gfa_segments"]:
                fail(f"GFA has {n_segments} segments, report says "
                     f"{s3['gfa_segments']}")

        # --- autotune: every decision documented -----------------------
        if autotune:
            tuner = report_doc.get("tuner")
            if not tuner:
                fail("report has no tuner section (--autotune run)")
            if not tuner.get("enabled"):
                fail("tuner section is not enabled")
            cal = tuner.get("calibration", {})
            if not cal.get("ran"):
                fail("tuner calibration did not run")
            if cal.get("sampled_bases", 0) == 0:
                fail("tuner calibration sampled no bases")
            decisions = tuner.get("decisions")
            if not decisions:
                fail("tuner made no decisions")
            for d in decisions:
                for key in ("knob", "old", "new", "t_seconds"):
                    if key not in d:
                        fail(f"tuner decision is missing {key!r}: {d}")
            tuner_instants = [
                e for e in events
                if e.get("ph") == "i" and e.get("cat") == "tuner"
            ]
            if not tuner_instants:
                fail("trace has no tuner-category instant events")

        extra = ""
        if autotune:
            extra = (f", {len(decisions)} tuner decisions, "
                     f"{len(tuner_instants)} tuner instants")
        if step3:
            extra += (f", {s3['contigs']} contigs "
                      f"({s3['cross_partition_contigs']} cross-partition)")
        print(f"ci-trace: OK ({len(events)} trace events, "
              f"{len(samples)} ledger samples, "
              f"{len(track_names)} named tracks{extra})")


if __name__ == "__main__":
    main()
