#!/usr/bin/env sh
# CI entry point: the three workflow presets back to back — a Release
# build running the full suite, a ThreadSanitizer build running the
# tsan-labelled concurrency tests (concurrent tables, group probing,
# SIMT kernel, subgraph builds, partition-lifecycle scheduler), and a
# scalar-fallback build (SIMD probe backends compiled out) re-running
# the full suite the way a non-x86 target would.
#
#   scripts/ci.sh            all three workflows
#   scripts/ci.sh default    Release + full suite only
#   scripts/ci.sh tsan       ThreadSanitizer subset only
#   scripts/ci.sh scalar     scalar-fallback build + full suite only
set -eu
cd "$(dirname "$0")/.."

run_default=1
run_tsan=1
run_scalar=1
case "${1:-all}" in
  all) ;;
  default) run_tsan=0; run_scalar=0 ;;
  tsan) run_default=0; run_scalar=0 ;;
  scalar) run_default=0; run_tsan=0 ;;
  *) echo "usage: $0 [all|default|tsan|scalar]" >&2; exit 2 ;;
esac

[ "$run_default" -eq 1 ] && cmake --workflow --preset ci-default
[ "$run_tsan" -eq 1 ] && cmake --workflow --preset ci-tsan
[ "$run_scalar" -eq 1 ] && cmake --workflow --preset ci-scalar
