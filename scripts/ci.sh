#!/usr/bin/env sh
# CI entry point: the workflow presets back to back — a Release build
# running the full suite, a ThreadSanitizer build running the
# tsan-labelled concurrency tests (concurrent tables, group probing,
# SIMT kernel, subgraph builds, partition-lifecycle scheduler,
# telemetry histograms), and a scalar-fallback build (SIMD probe
# backends compiled out) re-running the full suite the way a non-x86
# target would — plus a smalltable leg that re-runs the Release suite
# with PARAHASH_SMALLTABLE=0.4, scaling every Property-1 table estimate
# down so each partition build exercises the overflow/migration
# machinery instead of the happy path, and a trace leg that runs a
# small fused construction with --trace-out/--metrics-out/--report-json
# and validates the three artefacts.
#
#   scripts/ci.sh             all five legs
#   scripts/ci.sh default     Release + full suite only
#   scripts/ci.sh tsan        ThreadSanitizer subset only
#   scripts/ci.sh scalar      scalar-fallback build + full suite only
#   scripts/ci.sh smalltable  Release suite with undersized tables only
#   scripts/ci.sh trace       telemetry artefact validation only
set -eu
cd "$(dirname "$0")/.."

run_default=1
run_tsan=1
run_scalar=1
run_smalltable=1
run_trace=1
case "${1:-all}" in
  all) ;;
  default) run_tsan=0; run_scalar=0; run_smalltable=0; run_trace=0 ;;
  tsan) run_default=0; run_scalar=0; run_smalltable=0; run_trace=0 ;;
  scalar) run_default=0; run_tsan=0; run_smalltable=0; run_trace=0 ;;
  smalltable) run_default=0; run_tsan=0; run_scalar=0; run_trace=0 ;;
  trace) run_default=0; run_tsan=0; run_scalar=0; run_smalltable=0 ;;
  *) echo "usage: $0 [all|default|tsan|scalar|smalltable|trace]" >&2
     exit 2 ;;
esac

[ "$run_default" -eq 1 ] && cmake --workflow --preset ci-default
[ "$run_tsan" -eq 1 ] && cmake --workflow --preset ci-tsan
[ "$run_scalar" -eq 1 ] && cmake --workflow --preset ci-scalar
if [ "$run_smalltable" -eq 1 ]; then
  # Workflow presets cannot set environment variables, so this leg runs
  # the configure/build/test steps explicitly. It reuses the default
  # preset's build tree (same binaries — only the env knob differs).
  cmake --preset default
  cmake --build --preset default
  PARAHASH_SMALLTABLE=0.4 ctest --preset default
fi
if [ "$run_trace" -eq 1 ]; then
  # ci-trace: a small fused construction with every telemetry output
  # enabled, then validation that all three artefacts parse as JSON and
  # carry their load-bearing content: a trace track per device worker,
  # ledger samples that caught Step 2 consuming, and the table stats as
  # report keys.
  cmake --preset default
  cmake --build --preset default --target parahash_cli
  scripts/check_trace.py build/examples/parahash_cli
fi
