#!/usr/bin/env sh
# CI entry point: the two workflow presets back to back — a Release
# build running the full suite, then a ThreadSanitizer build running
# the tsan-labelled concurrency tests (concurrent tables, SIMT kernel,
# subgraph builds, partition-lifecycle scheduler).
#
#   scripts/ci.sh            both workflows
#   scripts/ci.sh default    Release + full suite only
#   scripts/ci.sh tsan       ThreadSanitizer subset only
set -eu
cd "$(dirname "$0")/.."

run_default=1
run_tsan=1
case "${1:-all}" in
  all) ;;
  default) run_tsan=0 ;;
  tsan) run_default=0 ;;
  *) echo "usage: $0 [all|default|tsan]" >&2; exit 2 ;;
esac

[ "$run_default" -eq 1 ] && cmake --workflow --preset ci-default
[ "$run_tsan" -eq 1 ] && cmake --workflow --preset ci-tsan
