#!/usr/bin/env sh
# CI entry point: the workflow presets back to back — a Release build
# running the full suite, a ThreadSanitizer build running the
# tsan-labelled concurrency tests (concurrent tables, group probing,
# SIMT kernel, subgraph builds, partition-lifecycle scheduler,
# telemetry histograms), and a scalar-fallback build (SIMD probe
# backends compiled out) re-running the full suite the way a non-x86
# target would — plus a smalltable leg that re-runs the Release suite
# with PARAHASH_SMALLTABLE=0.4, scaling every Property-1 table estimate
# down so each partition build exercises the overflow/migration
# machinery instead of the happy path, a trace leg that runs a
# small fused construction with --trace-out/--metrics-out/--report-json
# and validates the three artefacts, an autotune leg that re-runs
# the trace scenario under --autotune and validates the tuner's report
# section and decision instants, and a step3 leg that re-runs it with
# the third pipeline stage chained in (--contigs-out/--gfa-out) and
# validates the step3 tracks, the three-band ledger overlap, and the
# contig artefacts, and a serve leg that publishes a frozen snapshot,
# queries it through the background daemon and offline, and proves a
# run is reproducible from its extracted config alone.
#
# The `bench` leg (not part of `all` — it is a perf artefact refresh,
# not a gate) runs the model benches (fig13/fig14) and the micro
# benches at a small preset and copies their BENCH_<binary>.json
# reports to the repository root.
#
#   scripts/ci.sh             all eight gating legs
#   scripts/ci.sh default     Release + full suite only
#   scripts/ci.sh tsan        ThreadSanitizer subset only
#   scripts/ci.sh scalar      scalar-fallback build + full suite only
#   scripts/ci.sh smalltable  Release suite with undersized tables only
#   scripts/ci.sh trace       telemetry artefact validation only
#   scripts/ci.sh autotune    tuner artefact validation only
#   scripts/ci.sh step3       third-stage (contig) artefact validation only
#   scripts/ci.sh serve       serving-tier + config-reproduction validation only
#   scripts/ci.sh bench       refresh BENCH_*.json artefacts (standalone)
set -eu
cd "$(dirname "$0")/.."

run_default=1
run_tsan=1
run_scalar=1
run_smalltable=1
run_trace=1
run_autotune=1
run_step3=1
run_serve=1
run_bench=0
case "${1:-all}" in
  all) ;;
  default) run_tsan=0; run_scalar=0; run_smalltable=0; run_trace=0
           run_autotune=0; run_step3=0; run_serve=0 ;;
  tsan) run_default=0; run_scalar=0; run_smalltable=0; run_trace=0
        run_autotune=0; run_step3=0; run_serve=0 ;;
  scalar) run_default=0; run_tsan=0; run_smalltable=0; run_trace=0
          run_autotune=0; run_step3=0; run_serve=0 ;;
  smalltable) run_default=0; run_tsan=0; run_scalar=0; run_trace=0
              run_autotune=0; run_step3=0; run_serve=0 ;;
  trace) run_default=0; run_tsan=0; run_scalar=0; run_smalltable=0
         run_autotune=0; run_step3=0; run_serve=0 ;;
  autotune) run_default=0; run_tsan=0; run_scalar=0; run_smalltable=0
            run_trace=0; run_step3=0; run_serve=0 ;;
  step3) run_default=0; run_tsan=0; run_scalar=0; run_smalltable=0
         run_trace=0; run_autotune=0; run_serve=0 ;;
  serve) run_default=0; run_tsan=0; run_scalar=0; run_smalltable=0
         run_trace=0; run_autotune=0; run_step3=0 ;;
  bench) run_default=0; run_tsan=0; run_scalar=0; run_smalltable=0
         run_trace=0; run_autotune=0; run_step3=0; run_serve=0
         run_bench=1 ;;
  *) echo "usage: $0 [all|default|tsan|scalar|smalltable|trace|autotune|step3|serve|bench]" >&2
     exit 2 ;;
esac

[ "$run_default" -eq 1 ] && cmake --workflow --preset ci-default
[ "$run_tsan" -eq 1 ] && cmake --workflow --preset ci-tsan
[ "$run_scalar" -eq 1 ] && cmake --workflow --preset ci-scalar
if [ "$run_smalltable" -eq 1 ]; then
  # Workflow presets cannot set environment variables, so this leg runs
  # the configure/build/test steps explicitly. It reuses the default
  # preset's build tree (same binaries — only the env knob differs).
  cmake --preset default
  cmake --build --preset default
  PARAHASH_SMALLTABLE=0.4 ctest --preset default
fi
if [ "$run_trace" -eq 1 ]; then
  # ci-trace: a small fused construction with every telemetry output
  # enabled, then validation that all three artefacts parse as JSON and
  # carry their load-bearing content: a trace track per device worker,
  # ledger samples that caught Step 2 consuming, and the table stats as
  # report keys.
  cmake --preset default
  cmake --build --preset default --target parahash_cli
  scripts/check_trace.py build/examples/parahash_cli
fi
if [ "$run_autotune" -eq 1 ]; then
  # ci-autotune: the trace scenario again under --autotune; the checks
  # extend to the report's tuner section (calibration ran, decision log
  # non-empty and fully attributed) and the "tuner" trace instants.
  cmake --preset default
  cmake --build --preset default --target parahash_cli
  scripts/check_trace.py --autotune build/examples/parahash_cli
fi
if [ "$run_step3" -eq 1 ]; then
  # ci-step3: the trace scenario with graph simplification + contig
  # extraction chained in as the third fused stage; the checks extend
  # to the step3 trace tracks + stitch span, the report's step3/
  # step3_stats sections, the second ledger band catching Step 2 ∥
  # Step 3 overlap, and FASTA/GFA artefacts matching the report.
  cmake --preset default
  cmake --build --preset default --target parahash_cli
  scripts/check_trace.py --step3 build/examples/parahash_cli
fi
if [ "$run_serve" -eq 1 ]; then
  # ci-serve: build with --publish-frozen/--save-config, run the query
  # daemon in the background and drive FIND/MFIND/STATS through its
  # socket (and offline), then re-run the build from the extracted
  # config and require identical graph/table stats.
  cmake --preset default
  cmake --build --preset default --target parahash_bin
  scripts/check_trace.py --serve build/src/cli/parahash
fi
if [ "$run_bench" -eq 1 ]; then
  # ci-bench: the perf-model benches (Fig. 13/14, including the
  # autotuned-vs-sweep rows) and the micro benches at a small preset.
  # Each binary writes BENCH_<binary>.json into the repo root via
  # PARAHASH_BENCH_REPORT_DIR.
  cmake --preset default
  cmake --build --preset default --target bench_fig13_model_fast_io \
      bench_fig14_model_slow_io bench_ablation_divergence \
      bench_micro_concurrent
  PARAHASH_BENCH_SCALE="${PARAHASH_BENCH_SCALE:-0.2}"
  export PARAHASH_BENCH_SCALE
  PARAHASH_BENCH_REPORT_DIR="$PWD"
  export PARAHASH_BENCH_REPORT_DIR
  build/bench/bench_fig13_model_fast_io
  build/bench/bench_fig14_model_slow_io
  build/bench/bench_ablation_divergence
  build/bench/bench_micro_concurrent --benchmark_min_time=0.05
  ls -l BENCH_*.json
fi
