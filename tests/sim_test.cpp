// Tests for the dataset simulator: determinism, coverage, the Poisson
// error model (which Property 1's analysis assumes), and the presets.
#include <gtest/gtest.h>

#include <cmath>

#include "io/tmpdir.h"
#include "sim/read_sim.h"
#include "util/dna.h"

namespace parahash::sim {
namespace {

TEST(GenomeSim, DeterministicAndRightSize) {
  const auto g1 = simulate_genome(10'000, 7);
  const auto g2 = simulate_genome(10'000, 7);
  const auto g3 = simulate_genome(10'000, 8);
  EXPECT_EQ(g1.size(), 10'000u);
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g3);
}

TEST(GenomeSim, UsesAllFourBases) {
  const auto genome = simulate_genome(10'000, 11);
  std::array<int, 4> counts{};
  for (char c : genome) ++counts[encode_base(c)];
  for (int b = 0; b < 4; ++b) {
    // Uniform bases: each ~2500 of 10000.
    EXPECT_GT(counts[b], 2000) << "base " << decode_base(b);
    EXPECT_LT(counts[b], 3000) << "base " << decode_base(b);
  }
}

TEST(ReadSim, ProducesRequestedReads) {
  DatasetSpec spec;
  spec.genome_size = 5'000;
  spec.read_length = 100;
  spec.coverage = 10.0;
  const auto genome = simulate_genome(spec.genome_size, spec.seed);
  ReadSimulator simulator(genome, spec);
  const auto reads = simulator.all_reads();
  EXPECT_EQ(reads.size(), spec.num_reads());
  EXPECT_EQ(reads.size(), 500u);  // 10 * 5000 / 100
  for (const auto& r : reads) {
    EXPECT_EQ(r.bases.size(), 100u);
  }
}

TEST(ReadSim, ErrorFreeReadsComeFromGenome) {
  DatasetSpec spec;
  spec.genome_size = 2'000;
  spec.read_length = 50;
  spec.coverage = 5.0;
  spec.lambda = 0.0;
  spec.reverse_strand_fraction = 0.0;
  const auto genome = simulate_genome(spec.genome_size, spec.seed);
  ReadSimulator simulator(genome, spec);
  for (const auto& read : simulator.all_reads()) {
    EXPECT_NE(genome.find(read.bases), std::string::npos)
        << "read not a genome substring: " << read.bases;
  }
}

TEST(ReadSim, ReverseStrandReadsAreRcOfGenome) {
  DatasetSpec spec;
  spec.genome_size = 2'000;
  spec.read_length = 50;
  spec.coverage = 5.0;
  spec.lambda = 0.0;
  spec.reverse_strand_fraction = 1.0;
  const auto genome = simulate_genome(spec.genome_size, spec.seed);
  ReadSimulator simulator(genome, spec);
  for (const auto& read : simulator.all_reads()) {
    EXPECT_NE(genome.find(reverse_complement_str(read.bases)),
              std::string::npos);
  }
}

TEST(ReadSim, ErrorRateMatchesLambda) {
  DatasetSpec spec;
  spec.genome_size = 20'000;
  spec.read_length = 100;
  spec.coverage = 30.0;
  spec.lambda = 2.0;
  spec.reverse_strand_fraction = 0.0;  // compare against genome directly
  const auto genome = simulate_genome(spec.genome_size, spec.seed);
  ReadSimulator simulator(genome, spec);

  std::uint64_t mismatches = 0;
  std::uint64_t reads = 0;
  for (const auto& read : simulator.all_reads()) {
    ++reads;
    // Locate the error-free origin by scanning all genome offsets is too
    // slow; instead count the minimum mismatches over a window around
    // exact matching of the first error-free half... Simpler: with
    // lambda=2 over L=100, most positions are clean, so locate by the
    // best match among all genome substrings is unnecessary — instead
    // re-derive expected positions from determinism is overkill. We
    // check the aggregate: reads with zero errors occur with Poisson
    // probability e^-2 ~ 13.5%.
    if (genome.find(read.bases) != std::string::npos) continue;
    ++mismatches;
  }
  const double error_free_fraction =
      1.0 - static_cast<double>(mismatches) / static_cast<double>(reads);
  // Poisson(2): P(0 errors) = e^-2 ~ 0.135 (substitutions may rarely
  // reproduce the original base? no — simulator always flips to another
  // base, so 0-error reads are exactly the exact matches, up to repeats).
  EXPECT_NEAR(error_free_fraction, std::exp(-2.0), 0.03);
}

TEST(ReadSim, WriteFastqRoundTrip) {
  io::TempDir dir("sim_test");
  DatasetSpec spec;
  spec.genome_size = 1'000;
  spec.read_length = 80;
  spec.coverage = 4.0;
  const std::string path = dir.file("reads.fastq");
  const std::string genome = write_dataset(spec, path);
  EXPECT_EQ(genome.size(), spec.genome_size);
  const auto reads = io::read_fastx_file(path);
  EXPECT_EQ(reads.size(), spec.num_reads());
  EXPECT_EQ(reads.front().bases.size(), 80u);
}

TEST(ReadSim, PairedEndMatesComeFromOneFragment) {
  DatasetSpec spec;
  spec.genome_size = 10'000;
  spec.read_length = 80;
  spec.coverage = 10.0;
  spec.lambda = 0.0;
  spec.paired = true;
  spec.insert_mean = 250.0;
  spec.insert_sd = 20.0;
  spec.reverse_strand_fraction = 0.0;  // keep orientation predictable
  const auto genome = simulate_genome(spec.genome_size, spec.seed);
  ReadSimulator simulator(genome, spec);

  for (int trial = 0; trial < 100; ++trial) {
    const auto [r1, r2] = simulator.next_pair();
    EXPECT_EQ(r1.id.substr(r1.id.size() - 2), "/1");
    EXPECT_EQ(r2.id.substr(r2.id.size() - 2), "/2");
    // /1 is a forward genome substring, /2 an RC substring; their
    // positions are insert_mean +- a few sd apart.
    const auto p1 = genome.find(r1.bases);
    const auto p2 = genome.find(reverse_complement_str(r2.bases));
    ASSERT_NE(p1, std::string::npos);
    ASSERT_NE(p2, std::string::npos);
    const double fragment =
        static_cast<double>(p2 + r2.bases.size()) - static_cast<double>(p1);
    EXPECT_GT(fragment, 250.0 - 6 * 20.0);
    EXPECT_LT(fragment, 250.0 + 6 * 20.0);
  }
}

TEST(ReadSim, PairedFastqIsInterleaved) {
  io::TempDir dir("sim_test");
  DatasetSpec spec;
  spec.genome_size = 5'000;
  spec.read_length = 60;
  spec.coverage = 4.0;
  spec.paired = true;
  const std::string path = dir.file("paired.fastq");
  const std::string genome = write_dataset(spec, path);
  (void)genome;
  const auto reads = io::read_fastx_file(path);
  ASSERT_GE(reads.size(), 2u);
  EXPECT_EQ(reads.size() % 2, 0u);
  for (std::size_t i = 0; i + 1 < reads.size(); i += 2) {
    EXPECT_EQ(reads[i].id.substr(reads[i].id.size() - 2), "/1");
    EXPECT_EQ(reads[i + 1].id.substr(reads[i + 1].id.size() - 2), "/2");
    // Same pair id.
    EXPECT_EQ(reads[i].id.substr(0, reads[i].id.size() - 2),
              reads[i + 1].id.substr(0, reads[i + 1].id.size() - 2));
  }
}

TEST(Rng, NormalHasRightMoments) {
  Rng rng(271);
  const int n = 50'000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Presets, MatchPaperShapes) {
  const auto chr14 = human_chr14_like(1.0);
  EXPECT_EQ(chr14.read_length, 101);  // Table I
  const auto bee = bumblebee_like(1.0);
  EXPECT_EQ(bee.read_length, 124);  // Table I
  // Bumblebee's genome is ~2.8x chr14's and much deeper coverage, so its
  // graph is ~10x bigger (Table I's 4951M vs 452M distinct vertices).
  EXPECT_GT(bee.genome_size, 2 * chr14.genome_size);
  EXPECT_GT(bee.coverage, 2 * chr14.coverage);
  EXPECT_GT(bee.num_reads() * bee.read_length,
            5 * chr14.num_reads() * chr14.read_length);
}

TEST(Presets, ScaleParameterScalesGenome) {
  const auto small = human_chr14_like(0.1);
  const auto large = human_chr14_like(1.0);
  EXPECT_NEAR(static_cast<double>(large.genome_size) / small.genome_size,
              10.0, 0.01);
  EXPECT_EQ(small.read_length, large.read_length);
}

}  // namespace
}  // namespace parahash::sim
