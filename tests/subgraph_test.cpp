// Tests for Step 2 (hash-based subgraph construction) and the full
// MSP -> partitions -> subgraphs -> graph path against the naive
// reference oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "concurrent/thread_pool.h"
#include "core/graph.h"
#include "core/msp.h"
#include "core/reference.h"
#include "core/subgraph.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"
#include "util/rng.h"

namespace parahash::core {
namespace {

std::string random_bases(Rng& rng, int len) {
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(decode_base(rng.base()));
  return s;
}

/// Runs the real Step1 + Step2 path in-process: scan reads, write
/// partition files, build each subgraph, assemble the graph.
template <int W>
DeBruijnGraph<W> build_via_partitions(const std::vector<std::string>& reads,
                                      const MspConfig& config,
                                      const HashConfig& hash_config,
                                      concurrent::ThreadPool* pool,
                                      std::uint64_t* kmer_total = nullptr) {
  io::TempDir dir("subgraph_test");
  io::PartitionSet partitions(dir.file("parts"),
                              static_cast<std::uint32_t>(config.k),
                              static_cast<std::uint32_t>(config.p),
                              config.num_partitions, config.encoding);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  MspBatchOutput out(config.num_partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    const auto& part = out.parts[p];
    partitions.writer(p).append_raw(part.bytes.data(), part.bytes.size(),
                                    part.superkmers, part.kmers, part.bases);
  }
  const auto paths = partitions.close_all();
  if (kmer_total != nullptr) *kmer_total = partitions.total_kmers();

  DeBruijnGraph<W> graph(config.k, config.p, config.num_partitions);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    const auto blob = io::PartitionBlob::read_file(paths[p]);
    auto result = build_subgraph<W>(blob, hash_config, pool);
    graph.adopt_table(p, *result.table);
  }
  return graph;
}

std::vector<std::string> simulate_reads(std::uint64_t genome_size,
                                        int read_length, double coverage,
                                        double lambda, std::uint64_t seed) {
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = read_length;
  spec.coverage = coverage;
  spec.lambda = lambda;
  spec.seed = seed;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  std::vector<std::string> reads;
  for (auto& r : simulator.all_reads()) reads.push_back(std::move(r.bases));
  return reads;
}

TEST(Subgraph, SingleReadMatchesReference) {
  Rng rng(211);
  const std::string read = random_bases(rng, 80);

  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 4;
  HashConfig hash_config;

  const auto graph = build_via_partitions<1>({read}, config, hash_config,
                                             nullptr);
  ReferenceBuilder reference(config.k);
  reference.add_read(read);

  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

TEST(Subgraph, SimulatedDatasetMatchesReference) {
  const auto reads = simulate_reads(3000, 80, 8.0, 1.0, 2025);

  MspConfig config;
  config.k = 27;
  config.p = 9;
  config.num_partitions = 16;
  HashConfig hash_config;

  const auto graph = build_via_partitions<1>(reads, config, hash_config,
                                             nullptr);
  ReferenceBuilder reference(config.k);
  for (const auto& r : reads) reference.add_read(r);

  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
  EXPECT_EQ(graph.num_vertices(), reference.distinct_vertices());
}

TEST(Subgraph, MultiWordKmersMatchReference) {
  const auto reads = simulate_reads(1500, 90, 6.0, 1.0, 31337);

  MspConfig config;
  config.k = 41;  // two words
  config.p = 13;
  config.num_partitions = 8;
  HashConfig hash_config;

  const auto graph = build_via_partitions<2>(reads, config, hash_config,
                                             nullptr);
  ReferenceBuilder reference(config.k);
  for (const auto& r : reads) reference.add_read(r);

  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

TEST(Subgraph, ParallelBuildMatchesSerial) {
  const auto reads = simulate_reads(2000, 70, 10.0, 2.0, 555);

  MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 4;
  HashConfig hash_config;

  concurrent::ThreadPool pool(4);
  const auto serial = build_via_partitions<1>(reads, config, hash_config,
                                              nullptr);
  const auto parallel = build_via_partitions<1>(reads, config, hash_config,
                                                &pool);
  EXPECT_TRUE(serial == parallel);
}

TEST(Subgraph, BatchedPrefetchPathMatchesScalarOracle) {
  // Exactness invariant 4 for the group-prefetch front-end: the batched
  // path under 8-thread contention must produce a graph bit-identical
  // to the scalar add() oracle path built single-threaded.
  const auto reads = simulate_reads(3000, 80, 12.0, 2.0, 4242);

  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 4;

  HashConfig scalar_config;
  scalar_config.upsert_window =
      concurrent::UpsertWindow::fixed_window(1);  // scalar oracle
  HashConfig batched_config;
  batched_config.upsert_window = concurrent::UpsertWindow::fixed_window(16);

  concurrent::ThreadPool pool(8);
  const auto oracle = build_via_partitions<1>(reads, config, scalar_config,
                                              nullptr);
  const auto batched = build_via_partitions<1>(reads, config,
                                               batched_config, &pool);
  EXPECT_TRUE(oracle == batched);
}

TEST(Subgraph, UpsertStatsReportTagFiltering) {
  // The build result's table stats must carry the tag-reject /
  // full-compare split and satisfy the per-probe accounting identity.
  const auto reads = simulate_reads(2000, 80, 10.0, 2.0, 777);

  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 1;
  HashConfig hash_config;
  hash_config.alpha = 0.7;

  io::TempDir dir("subgraph_stats");
  io::PartitionSet partitions(dir.file("parts"),
                              static_cast<std::uint32_t>(config.k),
                              static_cast<std::uint32_t>(config.p), 1,
                              config.encoding);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  MspBatchOutput out(1);
  msp_process_range(batch, config, 0, batch.size(), out);
  partitions.writer(0).append_raw(out.parts[0].bytes.data(),
                                  out.parts[0].bytes.size(),
                                  out.parts[0].superkmers,
                                  out.parts[0].kmers, out.parts[0].bases);
  const auto paths = partitions.close_all();
  const auto blob = io::PartitionBlob::read_file(paths[0]);
  const auto result = build_subgraph<1>(blob, hash_config, nullptr);

  const auto& s = result.stats;
  EXPECT_EQ(s.adds, blob.header().kmer_count);
  EXPECT_EQ(s.inserts, result.table->size());
  EXPECT_EQ(s.probes, s.inserts + s.tag_rejects + s.key_compares);
  EXPECT_GE(s.tag_filter_rate(), 0.0);
  EXPECT_LE(s.tag_filter_rate(), 1.0);
}

TEST(Subgraph, ByteEncodedPartitionsGiveSameGraph) {
  const auto reads = simulate_reads(1000, 60, 6.0, 1.0, 808);

  MspConfig two_bit;
  two_bit.k = 21;
  two_bit.p = 9;
  two_bit.num_partitions = 4;
  MspConfig byte = two_bit;
  byte.encoding = io::Encoding::kByte;
  HashConfig hash_config;

  const auto a = build_via_partitions<1>(reads, two_bit, hash_config,
                                         nullptr);
  const auto b = build_via_partitions<1>(reads, byte, hash_config, nullptr);
  EXPECT_TRUE(a == b);
}

TEST(Subgraph, EdgeCounterGlobalInvariant) {
  // Every observed adjacency bumps exactly one counter at each endpoint:
  // sum(all 8 counters over all vertices) == 2 * observed adjacencies.
  const auto reads = simulate_reads(2000, 75, 8.0, 1.5, 919);

  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 8;
  HashConfig hash_config;

  const auto graph = build_via_partitions<1>(reads, config, hash_config,
                                             nullptr);
  ReferenceBuilder reference(config.k);
  for (const auto& r : reads) reference.add_read(r);

  const auto stats = graph.stats();
  EXPECT_EQ(stats.edge_counter_total, 2 * reference.observed_adjacencies());
  EXPECT_EQ(stats.total_coverage, reference.total_kmers());
}

TEST(Subgraph, EdgeWeightsSymmetricAcrossEndpoints) {
  // For every out-edge u --b--> v, v's corresponding in-counter holds
  // the same weight (both endpoints observed each occurrence once).
  const auto reads = simulate_reads(1200, 70, 6.0, 1.0, 333);

  MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 4;
  HashConfig hash_config;

  const auto graph = build_via_partitions<1>(reads, config, hash_config,
                                             nullptr);
  std::uint64_t checked = 0;
  graph.for_each_vertex([&](const concurrent::VertexEntry<1>& u) {
    for (int b = 0; b < 4; ++b) {
      const std::uint32_t weight = u.out_weight(b);
      if (weight == 0) continue;
      const auto next = u.kmer.successor(static_cast<std::uint8_t>(b));
      const auto* v = graph.find(next);
      ASSERT_NE(v, nullptr);
      const bool flipped = !next.is_canonical();
      const std::uint8_t incoming_base = u.kmer.base(0);
      const std::uint32_t counterpart =
          flipped ? v->out_weight(complement(incoming_base))
                  : v->in_weight(incoming_base);
      EXPECT_EQ(counterpart, weight);
      ++checked;
    }
  });
  EXPECT_GT(checked, 500u);
}

TEST(Subgraph, SizingRuleAvoidsResizes) {
  // With lambda=2 (the paper's setting) the Property-1 rule should size
  // tables large enough that no resize happens on error-bearing data.
  const auto reads = simulate_reads(2000, 80, 20.0, 2.0, 2026);

  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 8;

  io::TempDir dir("sizing_test");
  io::PartitionSet partitions(dir.file("parts"), config.k, config.p,
                              config.num_partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  MspBatchOutput out(config.num_partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    partitions.writer(p).append_raw(
        out.parts[p].bytes.data(), out.parts[p].bytes.size(),
        out.parts[p].superkmers, out.parts[p].kmers, out.parts[p].bases);
  }
  HashConfig hash_config;  // lambda = 2, alpha = 0.7, kOverflow growth
  for (const auto& path : partitions.close_all()) {
    const auto blob = io::PartitionBlob::read_file(path);
    auto result = build_subgraph<1>(blob, hash_config, nullptr);
    EXPECT_EQ(result.resizes, 0) << "partition " << path;
    // A right-sized table stays under the design load factor and never
    // needs the growth machinery (a PARAHASH_SMALLTABLE run undersizes
    // on purpose, so both checks are moot then).
    if (small_table_scale() >= 1.0) {
      EXPECT_LE(result.table->load_factor(), 0.85);
      EXPECT_EQ(result.stats.migrations, 0u) << "partition " << path;
    }
  }
}

TEST(Subgraph, ResizeFallbackRecoversFromUndersizedTable) {
  const auto reads = simulate_reads(1500, 70, 4.0, 1.0, 404);

  MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 1;

  io::TempDir dir("resize_test");
  io::PartitionSet partitions(dir.file("parts"), config.k, config.p, 1);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  MspBatchOutput out(1);
  msp_process_range(batch, config, 0, batch.size(), out);
  partitions.writer(0).append_raw(out.parts[0].bytes.data(),
                                  out.parts[0].bytes.size(),
                                  out.parts[0].superkmers,
                                  out.parts[0].kmers, out.parts[0].bases);
  const auto paths = partitions.close_all();
  const auto blob = io::PartitionBlob::read_file(paths[0]);

  HashConfig undersized;
  undersized.slots_override = 64;  // way too small
  undersized.growth_mode = GrowthMode::kRestart;  // the ablation mode
  undersized.max_resizes = 20;
  auto result = build_subgraph<1>(blob, undersized, nullptr);
  EXPECT_GT(result.resizes, 0);
  // The failed attempts' accounting is reported, not silently dropped.
  EXPECT_GT(result.discarded_stats.adds, 0u);
  EXPECT_EQ(result.stats.migrations, 0u);

  ReferenceBuilder reference(config.k);
  for (const auto& r : reads) reference.add_read(r);
  EXPECT_EQ(result.table->size(), reference.distinct_vertices());

  HashConfig no_resize = undersized;
  no_resize.growth_mode = GrowthMode::kFail;
  EXPECT_THROW(build_subgraph<1>(blob, no_resize, nullptr), TableFullError);

  // The default kOverflow mode absorbs the same undersizing in ONE pass:
  // no restarts, at least one in-place migration, identical contents.
  HashConfig overflow = undersized;
  overflow.growth_mode = GrowthMode::kOverflow;
  auto grown = build_subgraph<1>(blob, overflow, nullptr);
  EXPECT_EQ(grown.resizes, 0);
  EXPECT_GE(grown.stats.migrations, 1u);
  EXPECT_GT(grown.stats.overflow_hits, 0u);
  EXPECT_EQ(grown.table->size(), reference.distinct_vertices());
  EXPECT_EQ(grown.table->locked_slots(), 0u);
  grown.table->for_each([&](const concurrent::VertexEntry<1>& e) {
    const auto other = result.table->find(e.kmer);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->coverage, e.coverage);
    EXPECT_EQ(other->edges, e.edges);
  });
}

TEST(Subgraph, HalfSizedTableMigratesToIdenticalGraphOnEveryBackend) {
  // The PR's acceptance criterion: a table sized at 50% of the
  // Property-1 estimate must complete the partition build in one pass
  // (resizes == 0) with at least one incremental migration, producing a
  // table byte-identical to the right-sized build — on the scalar,
  // SSE2, and AVX2 probe backends alike (the displacement bound rounds
  // to each backend's group width, so the main/overflow split may
  // differ per backend, but the unified contents must not).
  // Error-bearing data (the regime the sizing rule targets): distinct
  // kmers land close to the alpha*slots design point, so a halved table
  // genuinely cannot hold them.
  const auto reads = simulate_reads(2000, 80, 20.0, 2.0, 7117);

  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 1;

  io::TempDir dir("halfsize_test");
  io::PartitionSet partitions(dir.file("parts"), config.k, config.p, 1);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  MspBatchOutput out(1);
  msp_process_range(batch, config, 0, batch.size(), out);
  partitions.writer(0).append_raw(out.parts[0].bytes.data(),
                                  out.parts[0].bytes.size(),
                                  out.parts[0].superkmers,
                                  out.parts[0].kmers, out.parts[0].bases);
  const auto blob = io::PartitionBlob::read_file(partitions.close_all()[0]);

  HashConfig right_sized;
  auto reference = build_subgraph<1>(blob, right_sized, nullptr);
  ASSERT_EQ(reference.resizes, 0);

  // The raw Property-1 figure (lambda/(4*alpha) * kmers), halved.
  // hash_table_slots and the table both round UP to powers of two, so
  // flooring the halved raw estimate keeps the table at (at most) 50%
  // of the estimate instead of letting the rounding restore full size.
  const std::uint64_t estimate = static_cast<std::uint64_t>(
      right_sized.lambda / (4.0 * right_sized.alpha) *
      static_cast<double>(blob.header().kmer_count));
  const std::uint64_t half =
      std::bit_floor(std::max<std::uint64_t>(estimate / 2, 16));
  // The halving must actually bite, or this test proves nothing.
  ASSERT_GT(reference.table->size(), half);
  const auto offsets = io::record_offsets(blob);

  // First through the driver (active backend): one pass, no restarts.
  HashConfig half_config;
  half_config.slots_override = half;
  auto driven = build_subgraph<1>(blob, half_config, nullptr);
  EXPECT_EQ(driven.resizes, 0);
  EXPECT_GE(driven.stats.migrations, 1u);
  EXPECT_EQ(driven.table->size(), reference.table->size());

  // Then on every backend this host can run, via an external table.
  for (const auto level :
       {simd::Level::kScalar, simd::Level::kSse2, simd::Level::kAvx2}) {
    if (level > simd::detect()) continue;
    concurrent::GrowthConfig growth;
    growth.enabled = true;
    concurrent::ConcurrentKmerTable<1> table(half, config.k, growth);
    table.set_simd_level(level);
    concurrent::TableStats stats;
    hash_process_records<1>(blob, offsets, 0, offsets.size(), table, stats);
    EXPECT_GE(table.migrations(), 1u) << simd::to_string(level);
    EXPECT_EQ(table.locked_slots(), 0u) << simd::to_string(level);
    EXPECT_EQ(table.size(), reference.table->size()) << simd::to_string(level);
    reference.table->for_each([&](const concurrent::VertexEntry<1>& e) {
      const auto found = table.find(e.kmer);
      ASSERT_TRUE(found.has_value())
          << simd::to_string(level) << " lost " << e.kmer.to_string();
      EXPECT_EQ(found->coverage, e.coverage);
      EXPECT_EQ(found->edges, e.edges);
    });
  }
}

// ------------------------------------------------------------- graph

TEST(Graph, FindCanonicalisesQueries) {
  const auto reads = simulate_reads(800, 60, 5.0, 0.0, 111);
  MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 4;
  HashConfig hash_config;
  const auto graph = build_via_partitions<1>(reads, config, hash_config,
                                             nullptr);

  std::uint64_t found = 0;
  graph.for_each_vertex([&](const concurrent::VertexEntry<1>& e) {
    // Query by the canonical kmer and by its reverse complement.
    EXPECT_NE(graph.find(e.kmer), nullptr);
    const auto* via_rc = graph.find(e.kmer.reverse_complement());
    ASSERT_NE(via_rc, nullptr);
    EXPECT_EQ(via_rc->kmer, e.kmer);
    ++found;
  });
  EXPECT_EQ(found, graph.num_vertices());
  EXPECT_EQ(graph.find(Kmer<1>::from_string("CCCCCCCCCCCCCCCCCCCCC")),
            nullptr);
}

TEST(Graph, FilterMinCoverageDropsErrors) {
  // Error kmers are mostly coverage-1; genome kmers at coverage ~10.
  const auto reads = simulate_reads(2000, 80, 12.0, 1.0, 777);
  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 8;
  HashConfig hash_config;
  auto graph = build_via_partitions<1>(reads, config, hash_config, nullptr);

  const auto before = graph.stats();
  const std::uint64_t removed = graph.filter_min_coverage(3);
  const auto after = graph.stats();
  EXPECT_EQ(after.vertices + removed, before.vertices);
  EXPECT_GT(removed, 0u);
  // The erroneous fraction is large (lambda=1 on L=80 reads); filtering
  // should remove a sizeable share but keep the genome's core.
  EXPECT_LT(after.vertices, before.vertices);
  EXPECT_GT(after.vertices, 1500u);
  graph.for_each_vertex([&](const concurrent::VertexEntry<1>& e) {
    EXPECT_GE(e.coverage, 3u);
  });
}

TEST(Graph, WriteLoadRoundTrip) {
  const auto reads = simulate_reads(1000, 70, 6.0, 1.0, 999);
  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 4;
  HashConfig hash_config;
  const auto graph = build_via_partitions<1>(reads, config, hash_config,
                                             nullptr);

  io::TempDir dir("graph_test");
  const std::string path = dir.file("graph.phdg");
  const auto bytes = graph.write(path);
  EXPECT_GT(bytes, 0u);

  const auto loaded = DeBruijnGraph<1>::load(path);
  EXPECT_TRUE(graph == loaded);
  EXPECT_EQ(loaded.k(), config.k);
  EXPECT_EQ(loaded.num_partitions(), config.num_partitions);
}

TEST(Graph, LoadRejectsWrongWidth) {
  const auto reads = simulate_reads(500, 60, 4.0, 0.0, 123);
  MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 2;
  HashConfig hash_config;
  const auto graph = build_via_partitions<1>(reads, config, hash_config,
                                             nullptr);
  io::TempDir dir("graph_test");
  const std::string path = dir.file("graph.phdg");
  graph.write(path);
  EXPECT_THROW(DeBruijnGraph<2>::load(path), Error);
}

TEST(Graph, StatsDuplicateVertices) {
  GraphStats stats;
  stats.vertices = 10;
  stats.total_coverage = 55;
  EXPECT_EQ(stats.duplicate_vertices(), 45u);
}

}  // namespace
}  // namespace parahash::core
