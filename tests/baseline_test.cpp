// Tests for the comparison baselines: the SOAP-style per-thread-table
// builder and the partition/sort/merge builder must produce exactly the
// graph the reference oracle (and ParaHash) produce.
#include <gtest/gtest.h>

#include <map>

#include "core/baseline_soap.h"
#include "core/baseline_sortmerge.h"
#include "core/msp.h"
#include "core/reference.h"
#include "core/subgraph.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"

namespace parahash::core {
namespace {

std::vector<io::Read> simulate(std::uint64_t genome_size, double coverage,
                               double lambda, std::uint64_t seed) {
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = 80;
  spec.coverage = coverage;
  spec.lambda = lambda;
  spec.seed = seed;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  return simulator.all_reads();
}

template <int W>
void expect_matches_reference(
    const std::vector<concurrent::VertexEntry<W>>& vertices,
    const ReferenceBuilder& reference) {
  ASSERT_EQ(vertices.size(), reference.distinct_vertices());
  for (const auto& v : vertices) {
    const auto it = reference.vertices().find(v.kmer.to_string());
    ASSERT_NE(it, reference.vertices().end()) << v.kmer.to_string();
    EXPECT_EQ(v.coverage, it->second.coverage);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(v.edges[i], it->second.edges[i]) << v.kmer.to_string();
    }
  }
}

TEST(SoapBaseline, MatchesReference) {
  const auto reads = simulate(2000, 8.0, 1.0, 42);
  ReferenceBuilder reference(27);
  for (const auto& r : reads) reference.add_read(r.bases);

  SoapConfig config;
  config.k = 27;
  config.threads = 4;
  SoapStyleBuilder<1> builder(config);
  const auto result = builder.build_reads(reads);

  EXPECT_EQ(result.distinct_vertices, reference.distinct_vertices());
  EXPECT_EQ(result.total_kmers, reference.total_kmers());
  expect_matches_reference<1>(result.vertices, reference);
  EXPECT_GT(result.kmer_array_bytes, 0u);
}

TEST(SoapBaseline, ThreadCountDoesNotChangeResult) {
  const auto reads = simulate(1000, 6.0, 1.5, 43);
  SoapConfig one;
  one.k = 21;
  one.threads = 1;
  SoapConfig eight = one;
  eight.threads = 8;

  auto a = SoapStyleBuilder<1>(one).build_reads(reads);
  auto b = SoapStyleBuilder<1>(eight).build_reads(reads);
  EXPECT_EQ(a.distinct_vertices, b.distinct_vertices);

  std::map<std::string, std::uint32_t> cov_a;
  for (const auto& v : a.vertices) cov_a[v.kmer.to_string()] = v.coverage;
  for (const auto& v : b.vertices) {
    EXPECT_EQ(cov_a.at(v.kmer.to_string()), v.coverage);
  }
}

TEST(SoapBaseline, MemoryBudgetTriggersNa) {
  // Table III: "SOAP cannot run" when the in-memory kmer array exceeds
  // the machine's memory. Reproduce with a small budget.
  const auto reads = simulate(2000, 8.0, 1.0, 44);
  SoapConfig config;
  config.k = 27;
  config.memory_budget_bytes = 4096;
  SoapStyleBuilder<1> builder(config);
  EXPECT_THROW(builder.build_reads(reads), MemoryBudgetError);
}

TEST(SoapBaseline, ReportsTimeBreakdown) {
  const auto reads = simulate(2000, 10.0, 1.0, 45);
  SoapConfig config;
  config.k = 27;
  config.threads = 4;
  const auto result = SoapStyleBuilder<1>(config).build_reads(reads);
  // Fig. 10's two components must both be observable.
  EXPECT_GT(result.read_seconds, 0.0);
  EXPECT_GT(result.insert_seconds, 0.0);
}

TEST(SortMergeBaseline, MatchesHashBuilderPerPartition) {
  const auto reads = simulate(2000, 8.0, 1.0, 46);
  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 8;

  io::TempDir dir("sortmerge_test");
  io::PartitionSet partitions(dir.file("parts"), config.k, config.p,
                              config.num_partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r.bases);
  MspBatchOutput out(config.num_partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    partitions.writer(p).append_raw(
        out.parts[p].bytes.data(), out.parts[p].bytes.size(),
        out.parts[p].superkmers, out.parts[p].kmers, out.parts[p].bases);
  }

  HashConfig hash_config;
  for (const auto& path : partitions.close_all()) {
    const auto blob = io::PartitionBlob::read_file(path);
    const auto sorted = SortMergeBuilder<1>::build_partition(blob);
    auto hashed = build_subgraph<1>(blob, hash_config, nullptr);

    EXPECT_EQ(sorted.vertices.size(), hashed.table->size());
    EXPECT_EQ(sorted.pairs, blob.header().kmer_count);
    for (const auto& v : sorted.vertices) {
      const auto found = hashed.table->find(v.kmer);
      ASSERT_TRUE(found.has_value()) << v.kmer.to_string();
      EXPECT_EQ(found->coverage, v.coverage);
      EXPECT_EQ(found->edges, v.edges);
    }
    // Sorted output is sorted.
    for (std::size_t i = 1; i < sorted.vertices.size(); ++i) {
      EXPECT_TRUE(sorted.vertices[i - 1].kmer < sorted.vertices[i].kmer);
    }
  }
}

TEST(SortMergeBaseline, WholeGraphMatchesReference) {
  const auto reads = simulate(1500, 6.0, 1.0, 47);
  MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 4;

  io::TempDir dir("sortmerge_test");
  io::PartitionSet partitions(dir.file("parts"), config.k, config.p,
                              config.num_partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r.bases);
  MspBatchOutput out(config.num_partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  std::vector<concurrent::VertexEntry<1>> all;
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    partitions.writer(p).append_raw(
        out.parts[p].bytes.data(), out.parts[p].bytes.size(),
        out.parts[p].superkmers, out.parts[p].kmers, out.parts[p].bases);
  }
  for (const auto& path : partitions.close_all()) {
    const auto blob = io::PartitionBlob::read_file(path);
    const auto result = SortMergeBuilder<1>::build_partition(blob);
    all.insert(all.end(), result.vertices.begin(), result.vertices.end());
  }

  ReferenceBuilder reference(config.k);
  for (const auto& r : reads) reference.add_read(r.bases);
  expect_matches_reference<1>(all, reference);
}

TEST(SortMergeBaseline, EmptyPartitionYieldsNothing) {
  io::TempDir dir("sortmerge_test");
  io::PartitionWriter writer(dir.file("empty.phsk"), 27, 11, 0);
  writer.close();
  const auto blob = io::PartitionBlob::read_file(dir.file("empty.phsk"));
  const auto result = SortMergeBuilder<1>::build_partition(blob);
  EXPECT_TRUE(result.vertices.empty());
  EXPECT_EQ(result.pairs, 0u);
}

}  // namespace
}  // namespace parahash::core
