// Tests for unitig compaction over the constructed graph.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/msp.h"
#include "core/subgraph.h"
#include "core/unitig.h"
#include "io/tmpdir.h"
#include "util/rng.h"

namespace parahash::core {
namespace {

/// Builds a graph straight from a list of reads through the real
/// partition path.
template <int W>
DeBruijnGraph<W> graph_of(const std::vector<std::string>& reads, int k,
                          int p, std::uint32_t partitions) {
  MspConfig config;
  config.k = k;
  config.p = p;
  config.num_partitions = partitions;
  io::TempDir dir("unitig_test");
  io::PartitionSet set(dir.file("parts"), k, p, partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  MspBatchOutput out(partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t i = 0; i < partitions; ++i) {
    set.writer(i).append_raw(out.parts[i].bytes.data(),
                             out.parts[i].bytes.size(),
                             out.parts[i].superkmers, out.parts[i].kmers,
                             out.parts[i].bases);
  }
  DeBruijnGraph<W> graph(k, p, partitions);
  HashConfig hash_config;
  const auto paths = set.close_all();
  for (std::uint32_t i = 0; i < partitions; ++i) {
    auto result =
        build_subgraph<W>(io::PartitionBlob::read_file(paths[i]),
                          hash_config, nullptr);
    graph.adopt_table(i, *result.table);
  }
  return graph;
}

/// A genome whose (k-1)-mers are all distinct compacts to ONE unitig.
std::string repeat_free_genome(int length, int k, std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::string genome;
    for (int i = 0; i < length; ++i) genome.push_back(decode_base(rng.base()));
    std::set<std::string> seen;
    bool ok = true;
    for (int i = 0; i + k - 1 <= length && ok; ++i) {
      const std::string sub = genome.substr(i, k - 1);
      const std::string canon =
          std::min(sub, reverse_complement_str(sub));
      ok = seen.insert(canon).second;
    }
    if (ok) return genome;
  }
  throw Error("could not generate a repeat-free genome");
}

/// Tiling reads covering every adjacency of the genome.
std::vector<std::string> tiling_reads(const std::string& genome, int L,
                                      int stride) {
  std::vector<std::string> reads;
  for (std::size_t pos = 0; pos + L <= genome.size();
       pos += static_cast<std::size_t>(stride)) {
    reads.push_back(genome.substr(pos, L));
  }
  reads.push_back(genome.substr(genome.size() - L));
  return reads;
}

TEST(Unitig, LinearGenomeCompactsToOnePath) {
  const int k = 21;
  const std::string genome = repeat_free_genome(300, k, 5);
  const auto reads = tiling_reads(genome, 60, 20);
  const auto graph = graph_of<1>(reads, k, 9, 4);

  UnitigBuilder<1> builder(graph);
  const auto unitigs = builder.build();
  ASSERT_EQ(unitigs.size(), 1u);
  const std::string expected =
      std::min(genome, reverse_complement_str(genome));
  EXPECT_EQ(unitigs[0].bases, expected);
  EXPECT_EQ(unitigs[0].kmers, genome.size() - k + 1);
  EXPECT_EQ(unitigs[0].length(), genome.size());
}

TEST(Unitig, CoversEveryVertexExactlyOnce) {
  Rng rng(99);
  std::vector<std::string> reads;
  for (int i = 0; i < 40; ++i) {
    std::string r;
    for (int j = 0; j < 70; ++j) r.push_back(decode_base(rng.base()));
    reads.push_back(r);
  }
  const int k = 15;
  const auto graph = graph_of<1>(reads, k, 7, 4);

  UnitigBuilder<1> builder(graph);
  const auto unitigs = builder.build();

  // Expand each unitig back into canonical kmers; the multiset must be
  // exactly the vertex set.
  std::set<std::string> covered;
  std::uint64_t total = 0;
  for (const auto& u : unitigs) {
    ASSERT_GE(u.bases.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(u.kmers, u.bases.size() - k + 1);
    for (std::size_t i = 0; i + k <= u.bases.size(); ++i) {
      const std::string sub = u.bases.substr(i, k);
      const std::string canon = std::min(sub, reverse_complement_str(sub));
      EXPECT_TRUE(covered.insert(canon).second)
          << "kmer appears in two unitigs: " << canon;
      EXPECT_NE(graph.find(Kmer<1>::from_string(canon)), nullptr);
      ++total;
    }
  }
  EXPECT_EQ(total, graph.num_vertices());
}

TEST(Unitig, BranchSplitsPath) {
  // Two reads sharing a prefix then diverging: the shared prefix must end
  // at the branch.  prefix A + suffixes X/Y.
  const int k = 11;
  const std::string prefix = repeat_free_genome(40, k, 17);
  std::string x = prefix + "AACCAGTTGCAATTGGACTACTTGAGC";
  std::string y = prefix + "CGTTAGGCATTACGTAACCCTGATTAC";
  const auto graph = graph_of<1>({x, y}, k, 5, 2);

  UnitigBuilder<1> builder(graph);
  const auto unitigs = builder.build();
  // At least three unitigs (shared prefix + two branches); every vertex
  // covered exactly once.
  EXPECT_GE(unitigs.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& u : unitigs) total += u.kmers;
  EXPECT_EQ(total, graph.num_vertices());
}

TEST(Unitig, MeanCoverageReflectsReadDepth) {
  const int k = 21;
  const std::string genome = repeat_free_genome(200, k, 23);
  // Each adjacent pair covered ~3x by dense tiling.
  const auto reads = tiling_reads(genome, 60, 1);
  const auto graph = graph_of<1>(reads, k, 9, 2);
  UnitigBuilder<1> builder(graph);
  const auto unitigs = builder.build();
  ASSERT_EQ(unitigs.size(), 1u);
  EXPECT_GT(unitigs[0].mean_coverage, 10.0);
}

TEST(Unitig, MinCoverageFiltersErrorBranches) {
  const int k = 15;
  const std::string genome = repeat_free_genome(150, k, 31);
  auto reads = tiling_reads(genome, 50, 5);
  // One erroneous read: creates a low-coverage bubble.
  std::string bad = genome.substr(20, 50);
  bad[25] = bad[25] == 'A' ? 'C' : 'A';
  reads.push_back(bad);
  const auto graph = graph_of<1>(reads, k, 7, 2);

  UnitigBuilder<1> strict(graph, /*min_coverage=*/2);
  const auto unitigs = strict.build();
  // With the error path filtered the clean genome reassembles into few
  // long unitigs covering the genome length.
  std::uint64_t total_kmers = 0;
  for (const auto& u : unitigs) total_kmers += u.kmers;
  EXPECT_LE(unitigs.size(), 4u);
  // The first few genome kmers are covered by only one tiling read and
  // are filtered along with the error branch; allow that fringe.
  EXPECT_GE(total_kmers + k, genome.size() - k);
}

}  // namespace
}  // namespace parahash::core
