// Cross-module integration scenarios that mirror how a downstream user
// strings the library together: end-to-end with two-word kmers through
// filtering, unitigs and GFA; counting mode consistency with the driver;
// the perf-model report plumbed from a real throttled run.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/algo.h"
#include "core/gfa.h"
#include "core/kmer_counter.h"
#include "core/stats.h"
#include "core/unitig.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

namespace parahash {
namespace {

struct Scenario {
  io::TempDir dir{"integration"};
  std::string fastq;
  std::string genome;
};

std::unique_ptr<Scenario> make_scenario(std::uint64_t genome_size,
                                        double coverage, double lambda,
                                        std::uint64_t seed) {
  auto s = std::make_unique<Scenario>();
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = 100;
  spec.coverage = coverage;
  spec.lambda = lambda;
  spec.seed = seed;
  s->fastq = s->dir.file("reads.fastq");
  s->genome = sim::write_dataset(spec, s->fastq);
  return s;
}

TEST(Integration, WideKmersFilterUnitigsGfa) {
  // The denovo flow at k=41 (two-word keys) end to end.
  const auto s = make_scenario(8000, 20.0, 1.0, 321);

  pipeline::Options options;
  options.msp.k = 41;
  options.msp.p = 13;
  options.msp.num_partitions = 16;
  options.cpu_threads = 2;
  pipeline::ParaHash<2> system(options);
  auto [graph, report] = system.construct(s->fastq);

  const auto histogram = core::coverage_histogram(graph);
  const auto threshold =
      std::max<std::uint32_t>(2, histogram.suggested_min_coverage());
  graph.filter_min_coverage(threshold);
  EXPECT_GT(graph.num_vertices(), 6000u);  // genome core survives

  core::UnitigBuilder<2> builder(graph, threshold, 2);
  const auto unitigs = builder.build();
  ASSERT_FALSE(unitigs.empty());

  // Unitigs must cover the surviving vertices exactly once.
  std::uint64_t covered = 0;
  for (const auto& u : unitigs) covered += u.kmers;
  EXPECT_EQ(covered, graph.num_vertices());

  // Most assembled bases align to the genome.
  std::uint64_t aligned = 0;
  std::uint64_t total = 0;
  for (const auto& u : unitigs) {
    total += u.length();
    if (s->genome.find(u.bases) != std::string::npos ||
        s->genome.find(reverse_complement_str(u.bases)) !=
            std::string::npos) {
      aligned += u.length();
    }
  }
  EXPECT_GT(aligned * 10, total * 9);  // >= 90%

  core::GfaExporter<2> exporter(graph, unitigs, threshold, 2);
  const auto [segments, links] = exporter.write(s->dir.file("a.gfa"));
  EXPECT_EQ(segments, unitigs.size());
  // Every link must connect segments with a real (k-1) overlap.
  const int k = options.msp.k;
  for (const auto& link : exporter.links()) {
    std::string a = exporter.unitigs()[link.from].bases;
    if (link.from_orient == '-') a = reverse_complement_str(a);
    std::string b = exporter.unitigs()[link.to].bases;
    if (link.to_orient == '-') b = reverse_complement_str(b);
    EXPECT_EQ(a.substr(a.size() - (k - 1)), b.substr(0, k - 1));
  }
}

TEST(Integration, CountingModeAgreesWithDriverGraph) {
  const auto s = make_scenario(3000, 8.0, 1.0, 654);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.work_dir = s->dir.file("work");
  options.keep_partitions = true;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(s->fastq);

  // Re-count the kept partitions in counting-only mode.
  std::uint64_t distinct = 0;
  std::uint64_t total = 0;
  core::HashConfig hash_config;
  for (std::uint32_t i = 0; i < options.msp.num_partitions; ++i) {
    const auto blob = io::PartitionBlob::read_file(
        options.work_dir + "/part_" + std::to_string(i) + ".phsk");
    auto counted = core::count_partition<1>(blob, hash_config, nullptr);
    distinct += counted.table->size();
    counted.table->for_each(
        [&](const concurrent::ConcurrentCounterTable<1>::Entry& e) {
          total += e.count;
          const auto* entry = graph.find(e.kmer);
          ASSERT_NE(entry, nullptr);
          EXPECT_EQ(entry->coverage, e.count);
        });
  }
  EXPECT_EQ(distinct, report.graph.vertices);
  EXPECT_EQ(total, report.graph.total_coverage);
}

TEST(Integration, ThrottledRunFeedsPerfModel) {
  const auto s = make_scenario(2000, 6.0, 1.0, 987);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 1;
  options.input_bytes_per_sec = 3e6;
  options.output_bytes_per_sec = 3e6;
  options.write_subgraphs = true;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(s->fastq);

  // Eq. (1) from the measured components must land near the measured
  // elapsed time in the IO-dominated regime.
  const auto t2 = report.step2.model_times();
  const double estimate = core::estimate_step_elapsed(t2);
  const double real = report.step2.times.elapsed_seconds;
  EXPECT_GT(estimate, 0.0);
  EXPECT_NEAR(estimate / real, 1.0, 0.35);
}

TEST(Integration, ComponentsSurviveSerialisationRoundTrip) {
  const auto s = make_scenario(4000, 10.0, 0.0, 111);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(s->fastq);

  const std::string path = s->dir.file("graph.phdg");
  graph.write(path);
  const auto loaded = core::DeBruijnGraph<1>::load(path);

  const auto before = core::connected_components(graph);
  const auto after = core::connected_components(loaded);
  EXPECT_EQ(before.count, after.count);
  EXPECT_EQ(before.sizes, after.sizes);
  const auto d1 = core::degree_distribution(graph);
  const auto d2 = core::degree_distribution(loaded);
  EXPECT_EQ(d1.counts, d2.counts);
}

}  // namespace
}  // namespace parahash
