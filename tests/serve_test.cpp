// Tests for the graph-query serving tier: protocol parsing, the
// daemon's correctness under many concurrent clients, error replies,
// and query limits.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen_graph.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "sim/read_sim.h"

namespace parahash::serve {
namespace {

struct ServeFixture {
  io::TempDir dir;
  core::DeBruijnGraph<1> graph{21, 7, 4};
  std::vector<std::string> kmers;  ///< canonical vertex kmers
  std::unique_ptr<Daemon> daemon;

  explicit ServeFixture(ServeOptions options = {}) {
    sim::DatasetSpec spec;
    spec.genome_size = 2000;
    spec.read_length = 80;
    spec.coverage = 6.0;
    spec.lambda = 0.5;
    spec.seed = 33;
    const std::string fastq = dir.file("reads.fastq");
    sim::write_dataset(spec, fastq);

    pipeline::Options build;
    build.msp.k = 21;
    build.msp.p = 7;
    build.msp.num_partitions = 4;
    build.cpu_threads = 2;
    pipeline::ParaHash<1> system(build);
    auto [g, report] = system.construct(fastq);
    graph = std::move(g);
    graph.for_each_vertex([&](const core::DeBruijnGraph<1>::Entry& e) {
      kmers.push_back(e.kmer.to_string());
    });

    options.socket_path = dir.file("serve_test.sock");
    daemon = std::make_unique<Daemon>(
        make_query_engine<1>(core::FrozenGraph<1>::freeze(graph)),
        options);
    daemon->start();
  }

  ~ServeFixture() { daemon->stop(); }

  Client connect() const {
    Client client;
    client.connect(daemon->socket_path());
    return client;
  }
};

TEST(ServeProtocol, ParsesVerbsAndRejectsBadOperandCounts) {
  EXPECT_EQ(parse_request("PING").verb, Verb::kPing);
  EXPECT_EQ(parse_request("FIND ACGT").verb, Verb::kFind);
  EXPECT_EQ(parse_request("MFIND A C G").args.size(), 3u);
  EXPECT_EQ(parse_request("BFS ACGT 3").verb, Verb::kBfs);
  EXPECT_EQ(parse_request("BFS ACGT 3 2").verb, Verb::kBfs);

  EXPECT_EQ(parse_request("").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("FIND").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("FIND A B").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("BFS ACGT").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("FROB X").verb, Verb::kInvalid);
}

TEST(ServeDaemon, AnswersPointAndBatchedLookups) {
  const ServeFixture f;
  Client client = f.connect();
  EXPECT_TRUE(client.ping());

  // Every real vertex is found; a kmer absent from the graph is not.
  for (std::size_t i = 0; i < std::min<std::size_t>(64, f.kmers.size());
       ++i) {
    EXPECT_TRUE(client.find(f.kmers[i])) << f.kmers[i];
  }

  std::vector<std::string> batch(f.kmers.begin(),
                                 f.kmers.begin() +
                                     std::min<std::size_t>(
                                         100, f.kmers.size()));
  const std::vector<bool> bits = client.find_many(batch);
  ASSERT_EQ(bits.size(), batch.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_TRUE(bits[i]) << batch[i];
  }
}

TEST(ServeDaemon, RejectsMalformedKmersWithErrNotCrash) {
  const ServeFixture f;
  Client client = f.connect();

  ClientReply reply = client.request("FIND NOTAKMER");
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.error.empty());

  // Wrong length.
  reply = client.request("FIND ACGT");
  EXPECT_FALSE(reply.ok);

  // The connection survives an error and answers the next query.
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.find(f.kmers.front()));
}

TEST(ServeDaemon, EnforcesBfsRadiusLimit) {
  ServeOptions options;
  options.max_bfs_radius = 2;
  const ServeFixture f(options);
  Client client = f.connect();

  const ClientReply ok = client.request("BFS " + f.kmers.front() + " 2");
  EXPECT_TRUE(ok.ok);
  const ClientReply too_deep =
      client.request("BFS " + f.kmers.front() + " 3");
  EXPECT_FALSE(too_deep.ok);
}

TEST(ServeDaemon, NeighborsAndGfaAreConsistent) {
  const ServeFixture f;
  Client client = f.connect();

  // A BFS of radius 1 contains the start plus its neighbours.
  std::string seed;
  std::vector<std::string> neighbors;
  for (const std::string& kmer : f.kmers) {
    neighbors = client.neighbors(kmer);
    if (!neighbors.empty()) {
      seed = kmer;
      break;
    }
  }
  ASSERT_FALSE(seed.empty()) << "graph has no connected vertex";

  const std::vector<std::string> rows = client.bfs(seed, 1);
  std::set<std::string> bfs_kmers;
  for (const std::string& row : rows) {
    bfs_kmers.insert(row.substr(0, row.find(' ')));
  }
  for (const std::string& n : neighbors) {
    EXPECT_TRUE(bfs_kmers.contains(n)) << n;
  }

  // The GFA export names every BFS vertex as a segment.
  const std::string gfa = client.gfa(seed, 1);
  std::size_t segments = 0;
  for (std::size_t pos = 0; pos < gfa.size();) {
    const std::size_t nl = gfa.find('\n', pos);
    const std::string line =
        gfa.substr(pos, nl == std::string::npos ? std::string::npos
                                                : nl - pos);
    if (line.rfind("S\t", 0) == 0) ++segments;
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  EXPECT_EQ(segments, bfs_kmers.size());
}

TEST(ServeDaemon, ManyConcurrentClientsGetCorrectAnswers) {
  // The acceptance test for cross-client batching: 8 clients hammer
  // the daemon in parallel, each validating every reply against the
  // live graph. A batching bug (answers sliced to the wrong job)
  // shows up as a wrong bit, a wrong coverage, or a stuck future.
  const ServeFixture f;
  std::map<std::string, std::uint32_t> coverage;
  f.graph.for_each_vertex([&](const core::DeBruijnGraph<1>::Entry& e) {
    coverage[e.kmer.to_string()] = e.coverage;
  });

  const int clients = 8;
  const int requests = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client;
        client.connect(f.daemon->socket_path());
        for (int i = 0; i < requests; ++i) {
          const std::string& kmer =
              f.kmers[static_cast<std::size_t>(c * 31 + i * 7) %
                      f.kmers.size()];
          const ClientReply reply = client.request("FIND " + kmer);
          if (!reply.ok || reply.lines.empty()) {
            ++failures;
            continue;
          }
          // Payload: `1 <coverage> <e0..e7>`.
          const std::string& line = reply.lines[0];
          if (line[0] != '1') {
            ++failures;
            continue;
          }
          const std::size_t sp1 = line.find(' ');
          const std::size_t sp2 = line.find(' ', sp1 + 1);
          const auto got = static_cast<std::uint32_t>(
              std::stoul(line.substr(sp1 + 1, sp2 - sp1 - 1)));
          if (got != coverage.at(kmer)) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(f.daemon->queries_served(),
            static_cast<std::uint64_t>(clients) * requests);
}

TEST(ServeDaemon, StopIsIdempotentAndRemovesSocket) {
  auto f = std::make_unique<ServeFixture>();
  const std::string socket_path = f->daemon->socket_path();
  f->daemon->stop();
  f->daemon->stop();
  EXPECT_FALSE(std::ifstream(socket_path).good());
}

}  // namespace
}  // namespace parahash::serve
