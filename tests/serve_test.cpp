// Tests for the graph-query serving tier: protocol parsing, the
// daemon's correctness under many concurrent clients, error replies,
// query limits, crash-proofing (SIGPIPE, worker exceptions, thread
// reaping, connection ceilings) and the scale-out surface (TCP
// transport, snapshot hot-swap, hot-result cache).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen_graph.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/listener.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "sim/read_sim.h"
#include "util/telemetry.h"

namespace parahash::serve {
namespace {

/// Builds a small graph from a simulated dataset; `seed` varies the
/// genome so two builds give genuinely different graphs (the hot-swap
/// tests need distinguishable generations).
core::DeBruijnGraph<1> build_graph(io::TempDir& dir, unsigned seed,
                                   std::vector<std::string>* kmers) {
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 80;
  spec.coverage = 6.0;
  spec.lambda = 0.5;
  spec.seed = seed;
  const std::string fastq =
      dir.file("reads_" + std::to_string(seed) + ".fastq");
  sim::write_dataset(spec, fastq);

  pipeline::Options build;
  build.msp.k = 21;
  build.msp.p = 7;
  build.msp.num_partitions = 4;
  build.cpu_threads = 2;
  pipeline::ParaHash<1> system(build);
  auto [g, report] = system.construct(fastq);
  if (kmers != nullptr) {
    g.for_each_vertex([&](const core::DeBruijnGraph<1>::Entry& e) {
      kmers->push_back(e.kmer.to_string());
    });
  }
  return std::move(g);
}

std::unique_ptr<QueryEngine> engine_for(core::DeBruijnGraph<1>& graph) {
  return make_query_engine<1>(core::FrozenGraph<1>::freeze(graph));
}

struct ServeFixture {
  io::TempDir dir;
  core::DeBruijnGraph<1> graph{21, 7, 4};
  std::vector<std::string> kmers;  ///< canonical vertex kmers
  std::unique_ptr<Daemon> daemon;

  explicit ServeFixture(ServeOptions options = {}) {
    graph = build_graph(dir, 33, &kmers);
    options.socket_path = dir.file("serve_test.sock");
    daemon = std::make_unique<Daemon>(engine_for(graph), options);
    daemon->start();
  }

  ~ServeFixture() { daemon->stop(); }

  Client connect() const {
    Client client;
    client.connect(daemon->socket_path());
    return client;
  }
};

TEST(ServeProtocol, ParsesVerbsAndRejectsBadOperandCounts) {
  EXPECT_EQ(parse_request("PING").verb, Verb::kPing);
  EXPECT_EQ(parse_request("FIND ACGT").verb, Verb::kFind);
  EXPECT_EQ(parse_request("MFIND A C G").args.size(), 3u);
  EXPECT_EQ(parse_request("BFS ACGT 3").verb, Verb::kBfs);
  EXPECT_EQ(parse_request("BFS ACGT 3 2").verb, Verb::kBfs);
  EXPECT_EQ(parse_request("SWAP /tmp/g.phdg").verb, Verb::kSwap);

  EXPECT_EQ(parse_request("").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("FIND").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("FIND A B").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("BFS ACGT").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("SWAP").verb, Verb::kInvalid);
  EXPECT_EQ(parse_request("FROB X").verb, Verb::kInvalid);
}

TEST(ServeListener, ClassifiesTransientAcceptErrnos) {
  // The satellite regression: these must NOT stop the accept loop.
  EXPECT_TRUE(is_transient_accept_error(ECONNABORTED));
  EXPECT_TRUE(is_transient_accept_error(EMFILE));
  EXPECT_TRUE(is_transient_accept_error(ENFILE));
  EXPECT_TRUE(is_transient_accept_error(ENOBUFS));
  EXPECT_TRUE(is_transient_accept_error(ENOMEM));
  // These mean the listen socket itself is gone.
  EXPECT_FALSE(is_transient_accept_error(EBADF));
  EXPECT_FALSE(is_transient_accept_error(EINVAL));
  EXPECT_FALSE(is_transient_accept_error(ENOTSOCK));
}

TEST(ServeListener, ParsesHostPortSpecs) {
  EXPECT_EQ(Listener::parse_host_port("127.0.0.1:4100"),
            (std::pair<std::string, std::uint16_t>{"127.0.0.1", 4100}));
  EXPECT_EQ(Listener::parse_host_port("4100"),
            (std::pair<std::string, std::uint16_t>{"", 4100}));
  EXPECT_EQ(Listener::parse_host_port("localhost:0"),
            (std::pair<std::string, std::uint16_t>{"localhost", 0}));
  EXPECT_THROW(Listener::parse_host_port("host:"), InvalidArgumentError);
  EXPECT_THROW(Listener::parse_host_port("host:70000"),
               InvalidArgumentError);
  EXPECT_THROW(Listener::parse_host_port("host:12x"),
               InvalidArgumentError);
}

TEST(ServeDaemon, AnswersPointAndBatchedLookups) {
  const ServeFixture f;
  Client client = f.connect();
  EXPECT_TRUE(client.ping());

  // Every real vertex is found; a kmer absent from the graph is not.
  for (std::size_t i = 0; i < std::min<std::size_t>(64, f.kmers.size());
       ++i) {
    EXPECT_TRUE(client.find(f.kmers[i])) << f.kmers[i];
  }

  std::vector<std::string> batch(f.kmers.begin(),
                                 f.kmers.begin() +
                                     std::min<std::size_t>(
                                         100, f.kmers.size()));
  const std::vector<bool> bits = client.find_many(batch);
  ASSERT_EQ(bits.size(), batch.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_TRUE(bits[i]) << batch[i];
  }
}

TEST(ServeDaemon, RejectsMalformedKmersWithErrNotCrash) {
  const ServeFixture f;
  Client client = f.connect();

  ClientReply reply = client.request("FIND NOTAKMER");
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.error.empty());

  // Wrong length.
  reply = client.request("FIND ACGT");
  EXPECT_FALSE(reply.ok);

  // The connection survives an error and answers the next query.
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.find(f.kmers.front()));
}

TEST(ServeDaemon, EnforcesBfsRadiusLimit) {
  ServeOptions options;
  options.max_bfs_radius = 2;
  const ServeFixture f(options);
  Client client = f.connect();

  const ClientReply ok = client.request("BFS " + f.kmers.front() + " 2");
  EXPECT_TRUE(ok.ok);
  const ClientReply too_deep =
      client.request("BFS " + f.kmers.front() + " 3");
  EXPECT_FALSE(too_deep.ok);
}

TEST(ServeDaemon, NeighborsAndGfaAreConsistent) {
  const ServeFixture f;
  Client client = f.connect();

  // A BFS of radius 1 contains the start plus its neighbours.
  std::string seed;
  std::vector<std::string> neighbors;
  for (const std::string& kmer : f.kmers) {
    neighbors = client.neighbors(kmer);
    if (!neighbors.empty()) {
      seed = kmer;
      break;
    }
  }
  ASSERT_FALSE(seed.empty()) << "graph has no connected vertex";

  const std::vector<std::string> rows = client.bfs(seed, 1);
  std::set<std::string> bfs_kmers;
  for (const std::string& row : rows) {
    bfs_kmers.insert(row.substr(0, row.find(' ')));
  }
  for (const std::string& n : neighbors) {
    EXPECT_TRUE(bfs_kmers.contains(n)) << n;
  }

  // The GFA export names every BFS vertex as a segment.
  const std::string gfa = client.gfa(seed, 1);
  std::size_t segments = 0;
  for (std::size_t pos = 0; pos < gfa.size();) {
    const std::size_t nl = gfa.find('\n', pos);
    const std::string line =
        gfa.substr(pos, nl == std::string::npos ? std::string::npos
                                                : nl - pos);
    if (line.rfind("S\t", 0) == 0) ++segments;
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  EXPECT_EQ(segments, bfs_kmers.size());
}

TEST(ServeDaemon, ManyConcurrentClientsGetCorrectAnswers) {
  // The acceptance test for cross-client batching: 8 clients hammer
  // the daemon in parallel, each validating every reply against the
  // live graph. A batching bug (answers sliced to the wrong job)
  // shows up as a wrong bit, a wrong coverage, or a stuck future.
  const ServeFixture f;
  std::map<std::string, std::uint32_t> coverage;
  f.graph.for_each_vertex([&](const core::DeBruijnGraph<1>::Entry& e) {
    coverage[e.kmer.to_string()] = e.coverage;
  });

  const int clients = 8;
  const int requests = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client;
        client.connect(f.daemon->socket_path());
        for (int i = 0; i < requests; ++i) {
          const std::string& kmer =
              f.kmers[static_cast<std::size_t>(c * 31 + i * 7) %
                      f.kmers.size()];
          const ClientReply reply = client.request("FIND " + kmer);
          if (!reply.ok || reply.lines.empty()) {
            ++failures;
            continue;
          }
          // Payload: `1 <coverage> <e0..e7>`.
          const std::string& line = reply.lines[0];
          if (line[0] != '1') {
            ++failures;
            continue;
          }
          const std::size_t sp1 = line.find(' ');
          const std::size_t sp2 = line.find(' ', sp1 + 1);
          const auto got = static_cast<std::uint32_t>(
              std::stoul(line.substr(sp1 + 1, sp2 - sp1 - 1)));
          if (got != coverage.at(kmer)) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(f.daemon->queries_served(),
            static_cast<std::uint64_t>(clients) * requests);
}

TEST(ServeDaemon, StopIsIdempotentAndRemovesSocket) {
  auto f = std::make_unique<ServeFixture>();
  const std::string socket_path = f->daemon->socket_path();
  f->daemon->stop();
  f->daemon->stop();
  EXPECT_FALSE(std::ifstream(socket_path).good());
}

// ------------------------------------------------- crash-proofing

TEST(ServeDaemon, SurvivesClientDisconnectMidResponse) {
  // The SIGPIPE regression: a client that pipelines traversal requests
  // and vanishes without reading leaves the daemon writing into a
  // closed socket. Before MSG_NOSIGNAL that raised SIGPIPE and killed
  // the whole process; now it is a clean connection close and every
  // other client keeps being served.
  const ServeFixture f;

  for (int round = 0; round < 3; ++round) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string& path = f.daemon->socket_path();
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    // Pipeline a stack of big traversals, then slam the door without
    // reading a byte: at least one response write hits a dead peer.
    std::string burst;
    for (int i = 0; i < 64; ++i) {
      burst += "BFS " + f.kmers[static_cast<std::size_t>(i) %
                                f.kmers.size()] + " 8\n";
    }
    ASSERT_GT(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL), 0);
    ::close(fd);

    // The daemon must still be alive and serving.
    Client client = f.connect();
    EXPECT_TRUE(client.ping());
    EXPECT_TRUE(client.find(f.kmers.front()));
  }
}

/// A query engine whose table calls blow up with a non-parahash
/// exception — the shape of a std::bad_alloc or future_error escaping
/// the engine mid-batch.
class ThrowingEngine final : public QueryEngine {
 public:
  int k() const override { return 21; }
  int p() const override { return 7; }
  std::uint32_t num_partitions() const override { return 1; }
  std::uint64_t num_vertices() const override { return 0; }
  std::uint64_t memory_bytes() const override { return 0; }
  bool valid_kmer(const std::string& kmer) const override {
    return kmer.size() == 21;
  }
  FindResult find(const std::string&) const override {
    throw std::runtime_error("engine exploded");
  }
  void find_many(std::span<const std::string>,
                 std::vector<FindResult>&) const override {
    throw std::runtime_error("engine exploded");
  }
  std::vector<std::string> neighbors(const std::string&,
                                     std::uint32_t) const override {
    throw std::runtime_error("engine exploded");
  }
  std::vector<BfsRow> bfs(const std::string&, int, std::uint32_t,
                          std::uint64_t) const override {
    throw std::runtime_error("engine exploded");
  }
  std::string gfa(const std::string&, int, std::uint32_t,
                  std::uint64_t) const override {
    throw std::runtime_error("engine exploded");
  }
};

TEST(ServeDaemon, WorkerExceptionsAnswerErrInternalNotTerminate) {
  // A throw escaping process_batch used to propagate out of
  // worker_loop and std::terminate the daemon. Now it is caught at the
  // batch boundary: every affected job gets `ERR internal ...`, every
  // promise is fulfilled, and the daemon keeps serving.
  io::TempDir dir;
  ServeOptions options;
  options.socket_path = dir.file("throwing.sock");
  Daemon daemon(std::make_unique<ThrowingEngine>(), options);
  daemon.start();

  Client client;
  client.connect(daemon.socket_path());
  const std::string kmer(21, 'A');

  // FIND routes through the merged find_many pass.
  ClientReply reply = client.request("FIND " + kmer);
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("internal"), std::string::npos)
      << reply.error;

  // NEIGH routes through the per-job traversal path.
  reply = client.request("NEIGH " + kmer);
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("internal"), std::string::npos)
      << reply.error;

  // The daemon survived both and still answers.
  EXPECT_TRUE(client.ping());
  daemon.stop();
}

TEST(ServeDaemon, ReapsFinishedConnectionThreads) {
  // The thread-leak regression: conn_threads_ used to grow by one
  // std::thread per connection ever accepted, until stop(). Sequential
  // connect/QUIT cycles must leave the tracked-handle count bounded.
  const ServeFixture f;

  const int cycles = 24;
  for (int i = 0; i < cycles; ++i) {
    Client client = f.connect();
    EXPECT_TRUE(client.ping());
    client.request("QUIT");
    client.close();
    // Give the connection thread a moment to finish its loop so the
    // next accept's reap sees it.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // One more connection triggers a reap of everything finished above.
  Client client = f.connect();
  EXPECT_TRUE(client.ping());
  EXPECT_LE(f.daemon->tracked_connection_threads(), 4u)
      << "daemon is leaking one thread handle per served connection";
}

TEST(ServeDaemon, ShedsConnectionsAboveCeiling) {
  ServeOptions options;
  options.max_connections = 2;
  const ServeFixture f(options);

  Client a = f.connect();
  Client b = f.connect();
  EXPECT_TRUE(a.ping());
  EXPECT_TRUE(b.ping());

  // The third connection is answered `ERR server busy` and closed.
  // Read the rejection with a raw socket: sending a request first can
  // race the server's close into an RST that discards the reply.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string& path = f.daemon->socket_path();
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string rejection;
  char chunk[256];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    rejection.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(rejection.find("ERR server busy"), std::string::npos)
      << rejection;

  // Freeing a slot lets the next connection in.
  a.request("QUIT");
  a.close();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client d = f.connect();
  EXPECT_TRUE(d.ping());
}

TEST(ServeDaemon, IdleTimeoutClosesSilentConnections) {
  ServeOptions options;
  options.idle_timeout_seconds = 0.2;
  const ServeFixture f(options);

  const std::uint64_t timeouts_before =
      telemetry::counter("serve.idle_timeouts").value();
  Client client = f.connect();
  EXPECT_TRUE(client.ping());
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  // The daemon closed the idle connection; the next request fails.
  EXPECT_THROW(client.request("PING"), IoError);
  EXPECT_GE(telemetry::counter("serve.idle_timeouts").value(),
            timeouts_before + 1);

  // A fresh connection that keeps talking is unaffected.
  Client busy = f.connect();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(busy.ping());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

// ------------------------------------------------------ transport

TEST(ServeDaemon, TcpTransportSpeaksTheSameProtocol) {
  ServeOptions options;
  options.listen = "127.0.0.1:0";  // ephemeral port
  const ServeFixture f(options);
  ASSERT_NE(f.daemon->tcp_port(), 0);

  Client client;
  client.connect_tcp("127.0.0.1", f.daemon->tcp_port());
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.find(f.kmers.front()));
  std::vector<std::string> batch(f.kmers.begin(),
                                 f.kmers.begin() +
                                     std::min<std::size_t>(
                                         32, f.kmers.size()));
  const std::vector<bool> bits = client.find_many(batch);
  ASSERT_EQ(bits.size(), batch.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_TRUE(bits[i]) << batch[i];
  }

  // The "tcp:host:port" target form dials the same listener, and both
  // transports serve the same snapshot concurrently.
  Client via_target;
  via_target.connect("tcp:127.0.0.1:" +
                     std::to_string(f.daemon->tcp_port()));
  EXPECT_TRUE(via_target.ping());
  Client unix_client = f.connect();
  EXPECT_TRUE(unix_client.find(f.kmers.front()));
}

// ------------------------------------------------------- hot swap

TEST(ServeDaemon, SwapVerbLoadsNewSnapshot) {
  io::TempDir dir;
  std::vector<std::string> kmers_a;
  std::vector<std::string> kmers_b;
  core::DeBruijnGraph<1> graph_a = build_graph(dir, 33, &kmers_a);
  core::DeBruijnGraph<1> graph_b = build_graph(dir, 77, &kmers_b);
  const std::string path_b = dir.file("b.phdg");
  graph_b.write(path_b);

  // A kmer unique to generation B proves which snapshot answers.
  std::set<std::string> set_a(kmers_a.begin(), kmers_a.end());
  std::string only_b;
  for (const std::string& kmer : kmers_b) {
    if (!set_a.contains(kmer)) {
      only_b = kmer;
      break;
    }
  }
  ASSERT_FALSE(only_b.empty()) << "graphs are identical; bad seeds";

  ServeOptions options;
  options.socket_path = dir.file("swap.sock");
  Daemon daemon(engine_for(graph_a), options);
  daemon.start();

  Client client;
  client.connect(daemon.socket_path());
  EXPECT_FALSE(client.find(only_b));
  EXPECT_EQ(daemon.generation(), 1u);

  EXPECT_EQ(client.swap(path_b), 2u);
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_EQ(daemon.swaps(), 1u);
  EXPECT_TRUE(client.find(only_b));

  // STATS reports the new generation.
  const ClientReply stats = client.request("STATS");
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.lines[0].find("\"generation\":2"), std::string::npos)
      << stats.lines[0];

  // A failed swap (missing file) is an ERR and the current snapshot
  // stays live.
  const ClientReply bad = client.request("SWAP /does/not/exist.phdg");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_TRUE(client.find(only_b));
  daemon.stop();
}

TEST(ServeDaemon, HotSwapUnderLoadNeverDropsOrBlends) {
  // The hot-swap acceptance test: clients issue FIND/NEIGH/BFS
  // continuously while the snapshot is swapped many times. Required:
  // zero failed/dropped queries, every answer consistent with exactly
  // one generation (never a blend), and the result cache never serves
  // a stale generation.
  io::TempDir dir;
  std::vector<std::string> kmers_a;
  std::vector<std::string> kmers_b;
  core::DeBruijnGraph<1> graph_a = build_graph(dir, 33, &kmers_a);
  core::DeBruijnGraph<1> graph_b = build_graph(dir, 77, &kmers_b);

  // Expected per-generation answers, computed against offline engines
  // with the daemon's default parameters (min_weight 1, max 4096).
  const auto engine_a = engine_for(graph_a);
  const auto engine_b = engine_for(graph_b);
  std::vector<std::string> probe;  // union sample
  for (std::size_t i = 0; i < kmers_a.size(); i += 7) {
    probe.push_back(kmers_a[i]);
  }
  for (std::size_t i = 0; i < kmers_b.size(); i += 7) {
    probe.push_back(kmers_b[i]);
  }
  struct Expected {
    QueryEngine::FindResult find_a, find_b;
    std::vector<std::string> neigh_a, neigh_b;
    std::vector<std::string> bfs_a, bfs_b;
  };
  const auto bfs_lines = [](const QueryEngine& engine,
                            const std::string& kmer) {
    std::vector<std::string> lines;
    for (const auto& row : engine.bfs(kmer, 2, 1, 4096)) {
      lines.push_back(row.kmer + ' ' + std::to_string(row.depth) + ' ' +
                      std::to_string(row.coverage));
    }
    return lines;
  };
  std::map<std::string, Expected> expected;
  for (const std::string& kmer : probe) {
    Expected e;
    e.find_a = engine_a->find(kmer);
    e.find_b = engine_b->find(kmer);
    e.neigh_a = engine_a->neighbors(kmer, 1);
    e.neigh_b = engine_b->neighbors(kmer, 1);
    e.bfs_a = bfs_lines(*engine_a, kmer);
    e.bfs_b = bfs_lines(*engine_b, kmer);
    expected[kmer] = std::move(e);
  }

  ServeOptions options;
  options.socket_path = dir.file("hotswap.sock");
  options.cache_entries = 256;  // the cache must never serve stale
  options.worker_threads = 2;
  Daemon daemon(engine_for(graph_a), options);
  daemon.start();

  const int clients = 4;
  const int requests = 240;
  std::atomic<int> failures{0};
  std::atomic<int> blends{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client;
        client.connect(daemon.socket_path());
        for (int i = 0; i < requests; ++i) {
          const std::string& kmer =
              probe[static_cast<std::size_t>(c * 13 + i * 5) %
                    probe.size()];
          const Expected& e = expected.at(kmer);
          switch (i % 3) {
            case 0: {
              const ClientReply reply = client.request("FIND " + kmer);
              if (!reply.ok || reply.lines.empty()) {
                ++failures;
                break;
              }
              const auto render = [](const QueryEngine::FindResult& r) {
                if (!r.found) return std::string("0");
                std::string line = "1 " + std::to_string(r.coverage);
                for (const std::uint32_t edge : r.edges) {
                  line += ' ';
                  line += std::to_string(edge);
                }
                return line;
              };
              if (reply.lines[0] != render(e.find_a) &&
                  reply.lines[0] != render(e.find_b)) {
                ++blends;
              }
              break;
            }
            case 1: {
              const ClientReply reply = client.request("NEIGH " + kmer);
              if (!reply.ok) {
                ++failures;
                break;
              }
              if (reply.lines != e.neigh_a && reply.lines != e.neigh_b) {
                ++blends;
              }
              break;
            }
            default: {
              const ClientReply reply =
                  client.request("BFS " + kmer + " 2");
              if (!reply.ok) {
                ++failures;
                break;
              }
              if (reply.lines != e.bfs_a && reply.lines != e.bfs_b) {
                ++blends;
              }
              break;
            }
          }
        }
      } catch (const std::exception&) {
        failures += requests;  // a dropped connection fails the test
      }
    });
  }

  // Swap generations while the load runs: A -> B -> A -> ... The
  // engines are rebuilt per swap (FrozenGraph is move-only).
  const int swaps = 6;
  for (int s = 0; s < swaps; ++s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    daemon.swap_engine(s % 2 == 0 ? engine_for(graph_b)
                                  : engine_for(graph_a));
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0) << "queries dropped during hot swap";
  EXPECT_EQ(blends.load(), 0)
      << "an answer matched neither generation (cross-generation blend "
         "or stale cache)";
  EXPECT_EQ(daemon.generation(), static_cast<std::uint64_t>(1 + swaps));

  // After the final swap (ends on A), the cache must serve generation
  // A answers — a stale generation-B NEIGH would be a blend above, but
  // pin it explicitly here too.
  Client client;
  client.connect(daemon.socket_path());
  for (const std::string& kmer : probe) {
    const ClientReply reply = client.request("NEIGH " + kmer);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.lines, expected.at(kmer).neigh_a) << kmer;
  }
  daemon.stop();
}

// ---------------------------------------------------------- cache

TEST(ServeResultCache, LruEvictsAndCountsPerGeneration) {
  ResultCache cache(4, 2);
  EXPECT_TRUE(cache.enabled());
  Request request;
  request.verb = Verb::kNeigh;
  request.args = {"AAA"};
  const std::string key_gen1 = ResultCache::key(1, request);
  const std::string key_gen2 = ResultCache::key(2, request);
  EXPECT_NE(key_gen1, key_gen2)
      << "generation must be part of the cache key";

  EXPECT_FALSE(cache.lookup(key_gen1).has_value());
  cache.insert(key_gen1, Response::one_line("n1"));
  const auto hit = cache.lookup(key_gen1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->lines[0], "n1");
  // The other generation's key misses even for the same request.
  EXPECT_FALSE(cache.lookup(key_gen2).has_value());

  cache.clear();
  EXPECT_FALSE(cache.lookup(key_gen1).has_value());
  EXPECT_EQ(cache.size(), 0u);

  // Disabled cache: no-ops.
  ResultCache off(0);
  EXPECT_FALSE(off.enabled());
  off.insert(key_gen1, Response::one_line("x"));
  EXPECT_FALSE(off.lookup(key_gen1).has_value());
}

TEST(ServeDaemon, CacheServesRepeatedTraversals) {
  ServeOptions options;
  options.cache_entries = 64;
  const ServeFixture f(options);
  Client client = f.connect();

  const std::uint64_t hits_before =
      telemetry::counter("serve.cache.hits").value();
  const std::string& kmer = f.kmers.front();
  const ClientReply first = client.request("NEIGH " + kmer);
  ASSERT_TRUE(first.ok);
  const ClientReply second = client.request("NEIGH " + kmer);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.lines, second.lines);
  EXPECT_GE(telemetry::counter("serve.cache.hits").value(),
            hits_before + 1)
      << "repeated NEIGH did not hit the hot-result cache";

  // BFS and GFA are cacheable too, and answers stay identical.
  const ClientReply bfs1 = client.request("BFS " + kmer + " 2");
  const ClientReply bfs2 = client.request("BFS " + kmer + " 2");
  ASSERT_TRUE(bfs1.ok);
  EXPECT_EQ(bfs1.lines, bfs2.lines);
}

}  // namespace
}  // namespace parahash::serve
