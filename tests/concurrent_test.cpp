// Tests for the concurrent substrate: the state-transfer hash table (the
// paper's core data structure), the ablation tables behind the shared
// table concept, and the thread pool. The per-variant conformance tests
// run as ONE typed suite over every table satisfying KmerTableLike,
// driven through the shared drive_ops() helper.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "concurrent/batched_upsert.h"
#include "concurrent/counter_table.h"
#include "concurrent/fatslot_table.h"
#include "concurrent/kmer_table.h"
#include "concurrent/mutex_table.h"
#include "concurrent/table_concept.h"
#include "concurrent/thread_pool.h"
#include "util/rng.h"

namespace parahash::concurrent {
namespace {

template <int W>
Kmer<W> random_kmer(Rng& rng, int k) {
  Kmer<W> kmer;
  for (int i = 0; i < k; ++i) kmer.push_back(rng.base());
  return kmer;
}

struct Op {
  std::string kmer;
  int edge_out;
  int edge_in;
};

/// Sequential reference accumulation of the same operations.
struct Expected {
  std::uint32_t coverage = 0;
  std::array<std::uint32_t, 8> edges{};
};

template <typename Table, int W>
void check_against_reference(Table& table, const std::vector<Op>& ops) {
  std::map<std::string, Expected> expected;
  for (const auto& op : ops) {
    auto& e = expected[op.kmer];
    ++e.coverage;
    if (op.edge_out >= 0) ++e.edges[kEdgeOut + op.edge_out];
    if (op.edge_in >= 0) ++e.edges[kEdgeIn + op.edge_in];
  }
  EXPECT_EQ(table.size(), expected.size());
  for (const auto& [kmer_str, e] : expected) {
    const auto found = table.find(Kmer<W>::from_string(kmer_str));
    ASSERT_TRUE(found.has_value()) << kmer_str;
    EXPECT_EQ(found->coverage, e.coverage) << kmer_str;
    EXPECT_EQ(found->edges, e.edges) << kmer_str;
  }
}

template <int W>
std::vector<Op> make_ops(int distinct, int total, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(distinct);
  for (int i = 0; i < distinct; ++i) {
    keys.push_back(random_kmer<W>(rng, k).to_string());
  }
  std::vector<Op> ops;
  ops.reserve(total);
  for (int i = 0; i < total; ++i) {
    Op op;
    op.kmer = keys[rng.below(keys.size())];
    op.edge_out = static_cast<int>(rng.below(5)) - 1;  // -1..3
    op.edge_in = static_cast<int>(rng.below(5)) - 1;
    ops.push_back(op);
  }
  return ops;
}

std::vector<UpsertOp<1>> to_upserts(const std::vector<Op>& ops) {
  std::vector<UpsertOp<1>> upserts;
  upserts.reserve(ops.size());
  for (const auto& op : ops) {
    UpsertOp<1> u;
    u.canon = Kmer<1>::from_string(op.kmer);
    u.edge_out = static_cast<std::int8_t>(op.edge_out);
    u.edge_in = static_cast<std::int8_t>(op.edge_in);
    upserts.push_back(u);
  }
  return upserts;
}

/// Concept-level reference check: coverage (or count) per distinct key,
/// plus the edge counters on variants that carry them.
template <typename Table>
void check_any_table(Table& table, const std::vector<Op>& ops) {
  std::map<std::string, Expected> expected;
  for (const auto& op : ops) {
    auto& e = expected[op.kmer];
    ++e.coverage;
    if (op.edge_out >= 0) ++e.edges[kEdgeOut + op.edge_out];
    if (op.edge_in >= 0) ++e.edges[kEdgeIn + op.edge_in];
  }
  EXPECT_EQ(table.size(), expected.size());
  for (const auto& [kmer_str, e] : expected) {
    const auto found = table.find(Kmer<1>::from_string(kmer_str));
    ASSERT_TRUE(found.has_value()) << kmer_str;
    if constexpr (GraphKmerTableLike<Table>) {
      EXPECT_EQ(found->coverage, e.coverage) << kmer_str;
      EXPECT_EQ(found->edges, e.edges) << kmer_str;
    } else {
      EXPECT_EQ(found->count, e.coverage) << kmer_str;
    }
  }
}

// --------------------------------------------- ConcurrentKmerTable

TEST(KmerTable, InsertAndFindSingle) {
  ConcurrentKmerTable<1> table(64, 27);
  const auto kmer = Kmer<1>::from_string("ACGTACGTACGTACGTACGTACGTACG");
  const auto r = table.add(kmer, 2, -1);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(table.size(), 1u);
  const auto found = table.find(kmer);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->coverage, 1u);
  EXPECT_EQ(found->out_weight(2), 1u);
  EXPECT_EQ(found->in_weight(2), 0u);
  EXPECT_EQ(found->kmer, kmer);
}

TEST(KmerTable, DuplicateAddsMergeIntoOneSlot) {
  ConcurrentKmerTable<1> table(64, 21);
  const auto kmer = Kmer<1>::from_string("ACGTACGTACGTACGTACGTA");
  for (int i = 0; i < 10; ++i) {
    const auto r = table.add(kmer, 1, 3);
    EXPECT_EQ(r.inserted, i == 0);
  }
  EXPECT_EQ(table.size(), 1u);
  const auto found = table.find(kmer);
  EXPECT_EQ(found->coverage, 10u);
  EXPECT_EQ(found->out_weight(1), 10u);
  EXPECT_EQ(found->in_weight(3), 10u);
}

TEST(KmerTable, FindMissingReturnsNullopt) {
  ConcurrentKmerTable<1> table(64, 21);
  table.add(Kmer<1>::from_string("ACGTACGTACGTACGTACGTA"), -1, -1);
  EXPECT_FALSE(
      table.find(Kmer<1>::from_string("TTTTTTTTTTTTTTTTTTTTT")).has_value());
}

TEST(KmerTable, SequentialMatchesReference) {
  const auto ops = make_ops<1>(200, 3000, 27, 1234);
  ConcurrentKmerTable<1> table(512, 27);
  TableStats stats;
  for (const auto& op : ops) {
    stats.absorb(
        table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in));
  }
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
  EXPECT_EQ(stats.adds, 3000u);
  EXPECT_EQ(stats.inserts, 200u);
  EXPECT_GE(stats.probes, stats.adds);
  // Sequentially every probe step resolves as exactly one of: the
  // empty-slot insertion, a tag-only reject, or a full key compare —
  // the identity group probing must preserve exactly.
  EXPECT_EQ(stats.probes,
            stats.inserts + stats.tag_rejects + stats.key_compares);
  // Group accounting: every add issues at least one metadata scan, and
  // on the group path every tag reject is a wholesale lane rejection.
  EXPECT_GE(stats.group_scans, stats.adds);
  EXPECT_EQ(stats.lanes_rejected, stats.tag_rejects);
}

TEST(KmerTable, SlotwisePathMatchesGroupPathExactly) {
  // The preserved per-slot loop (the oracle) and the group engine must
  // agree on contents AND on the probe-resolution statistics.
  const auto ops = make_ops<1>(300, 4000, 27, 2026);
  ConcurrentKmerTable<1> group_table(512, 27);
  ConcurrentKmerTable<1> slot_table(512, 27);
  TableStats group_stats;
  TableStats slot_stats;
  for (const auto& op : ops) {
    const auto kmer = Kmer<1>::from_string(op.kmer);
    const std::uint64_t hash = kmer.hash();
    group_stats.absorb(
        group_table.add_hashed(kmer, hash, op.edge_out, op.edge_in));
    slot_stats.absorb(
        slot_table.add_hashed_slotwise(kmer, hash, op.edge_out, op.edge_in));
  }
  EXPECT_EQ(group_table.size(), slot_table.size());
  group_table.for_each([&](const VertexEntry<1>& e) {
    const auto found = slot_table.find(e.kmer);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->coverage, e.coverage);
    EXPECT_EQ(found->edges, e.edges);
  });
  // Same placement => same per-step resolution counts.
  EXPECT_EQ(group_stats.inserts, slot_stats.inserts);
  EXPECT_EQ(group_stats.probes, slot_stats.probes);
  EXPECT_EQ(group_stats.tag_rejects, slot_stats.tag_rejects);
  EXPECT_EQ(group_stats.key_compares, slot_stats.key_compares);
  EXPECT_GT(group_stats.group_scans, 0u);
  EXPECT_EQ(slot_stats.group_scans, 0u);
}

TEST(KmerTable, MultiWordKeysWork) {
  const int k = 45;  // needs 2 words
  const auto ops = make_ops<2>(100, 1000, k, 99);
  ConcurrentKmerTable<2> table(256, k);
  for (const auto& op : ops) {
    table.add(Kmer<2>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  check_against_reference<ConcurrentKmerTable<2>, 2>(table, ops);
}

TEST(KmerTable, ConcurrentAddsMatchReference) {
  // Many threads hammer a small keyset to force CAS races and lock
  // waits; totals must still be exact.
  const int k = 27;
  const int threads = 8;
  const int per_thread = 5000;
  const auto ops = make_ops<1>(50, threads * per_thread, k, 777);

  ConcurrentKmerTable<1> table(256, k);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        table.add(Kmer<1>::from_string(ops[i].kmer), ops[i].edge_out,
                  ops[i].edge_in);
      }
    });
  }
  for (auto& w : workers) w.join();
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
}

TEST(KmerTable, ConcurrentDistinctInsertsAllLand) {
  // All-distinct keys: every add must insert exactly once even when
  // threads collide on neighbouring slots.
  const int k = 31;
  const int threads = 8;
  const int per_thread = 2000;
  Rng rng(4242);
  std::vector<std::string> keys;
  std::set<std::string> unique;
  while (unique.size() < static_cast<std::size_t>(threads * per_thread)) {
    unique.insert(random_kmer<1>(rng, k).to_string());
  }
  keys.assign(unique.begin(), unique.end());

  ConcurrentKmerTable<1> table(threads * per_thread * 2, k);
  std::atomic<std::uint64_t> inserted{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t mine = 0;
      for (int i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        mine += table.add(Kmer<1>::from_string(keys[i]), 0, 0).inserted;
      }
      inserted.fetch_add(mine);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(inserted.load(), static_cast<std::uint64_t>(threads) * per_thread);
  EXPECT_EQ(table.size(), static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(KmerTable, ThrowsWhenFull) {
  ConcurrentKmerTable<1> table(4, 15);  // capacity rounds to 4
  Rng rng(5);
  std::set<std::string> keys;
  while (keys.size() < 5) keys.insert(random_kmer<1>(rng, 15).to_string());
  auto it = keys.begin();
  for (int i = 0; i < 4; ++i, ++it) {
    table.add(Kmer<1>::from_string(*it), -1, -1);
  }
  EXPECT_THROW(table.add(Kmer<1>::from_string(*it), -1, -1),
               TableFullError);
  // Existing keys still update fine.
  EXPECT_NO_THROW(table.add(Kmer<1>::from_string(*keys.begin()), 1, 1));
}

TEST(KmerTable, GrownPreservesContents) {
  const auto ops = make_ops<1>(100, 1000, 27, 31);
  ConcurrentKmerTable<1> table(256, 27);
  for (const auto& op : ops) {
    table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  auto bigger = table.grown();
  EXPECT_EQ(bigger->capacity(), table.capacity() * 2);
  EXPECT_EQ(bigger->size(), table.size());
  check_against_reference<ConcurrentKmerTable<1>, 1>(*bigger, ops);
}

// ----------------------------------------- bounded growth (overflow +
// incremental migration). These exercise the recoverable table-full
// path: probes that exhaust the displacement bound land in the overflow
// region, and overflow pressure triggers a cooperative in-place
// doubling instead of TableFullError.

TEST(GrowthTable, OverflowAbsorbsBoundOverrunsWithoutMigration) {
  // A high migration threshold keeps the migration machinery out of the
  // picture: every bound overrun must resolve in the overflow region,
  // and lookups must see a unified main+overflow view.
  GrowthConfig growth;
  growth.enabled = true;
  growth.max_displacement = 16;    // rounds up to one group per backend
  growth.overflow_fraction = 1.0;  // plenty of overflow slots
  growth.migration_threshold = 1.0;
  // More distinct keys than main capacity: at least 16 MUST overflow.
  const auto ops = make_ops<1>(80, 600, 27, 2024);
  ConcurrentKmerTable<1> table(64, 27, growth);
  TableStats stats;
  for (const auto& op : ops) {
    stats.absorb(table.add(Kmer<1>::from_string(op.kmer), op.edge_out,
                           op.edge_in));
  }
  EXPECT_EQ(table.migrations(), 0u);
  EXPECT_GT(stats.overflow_hits, 0u);  // alpha 0.875 with a 16-slot bound
  EXPECT_GT(table.overflow_size(), 0u);
  // The probe-accounting identity holds across both regions.
  EXPECT_EQ(stats.probes,
            stats.inserts + stats.tag_rejects + stats.key_compares);
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
}

TEST(GrowthTable, MigrationPreservesContentsSequential) {
  // Default growth knobs, a table ~30x too small: the build must ride
  // through several incremental doublings and end bit-exact with the
  // reference, with every entry reachable and no slot left locked.
  GrowthConfig growth;
  growth.enabled = true;
  const auto ops = make_ops<1>(2000, 8000, 27, 99);
  ConcurrentKmerTable<1> table(64, 27, growth);
  for (const auto& op : ops) {
    table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  EXPECT_GE(table.migrations(), 1u);
  EXPECT_EQ(table.locked_slots(), 0u);
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
}

TEST(GrowthTable, ConcurrentMigrationUnderContentionMatchesReference) {
  // The acceptance test for the migration gate: 8 threads hammer a tiny
  // growth table hard enough to force multiple cooperative migrations
  // mid-insert. Every upsert must land exactly once — a lost update,
  // duplicate insert, or torn migration shows up as a reference
  // mismatch (and as a tsan report under the tsan preset).
  const int threads = 8;
  const int per_thread = 4000;
  GrowthConfig growth;
  growth.enabled = true;
  const auto ops = make_ops<1>(3000, threads * per_thread, 27, 31337);
  ConcurrentKmerTable<1> table(64, 27, growth);
  std::vector<TableStats> stats(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        stats[t].absorb(table.add(Kmer<1>::from_string(ops[i].kmer),
                                  ops[i].edge_out, ops[i].edge_in));
      }
    });
  }
  for (auto& w : workers) w.join();
  TableStats total;
  for (const auto& s : stats) total.merge(s);
  EXPECT_EQ(total.adds, static_cast<std::uint64_t>(threads) * per_thread);
  EXPECT_GE(table.migrations(), 1u);
  EXPECT_EQ(table.locked_slots(), 0u);
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
}

TEST(GrowthTable, MigrationDivertsBoundSaturatedKeysToOverflow) {
  // Regression: migrate_entry used to probe the migration target with
  // no displacement bound (and the target had no overflow region), so
  // a migrated key whose whole bound window was occupied in the
  // doubled table was placed PAST the bound — where find() and upserts
  // never probe — making it invisible and letting a later add of the
  // same key insert a silent duplicate. These knobs keep the table
  // near-full at every doubling (overflow as large as main, migration
  // only once overflow is full), so the target starts at ~95% load
  // with a one-group bound and bound-window saturation during the copy
  // is certain; any key dropped past the bound shows up as a reference
  // mismatch or a size() inflation.
  GrowthConfig growth;
  growth.enabled = true;
  growth.max_displacement = 16;  // rounds up to one group per backend
  growth.overflow_fraction = 1.0;
  growth.migration_threshold = 1.0;
  const int threads = 4;
  const int per_thread = 3000;
  const auto ops = make_ops<1>(2000, threads * per_thread, 27, 777);
  ConcurrentKmerTable<1> table(64, 27, growth);
  std::vector<TableStats> stats(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        stats[t].absorb(table.add(Kmer<1>::from_string(ops[i].kmer),
                                  ops[i].edge_out, ops[i].edge_in));
      }
    });
  }
  for (auto& w : workers) w.join();
  TableStats total;
  for (const auto& s : stats) total.merge(s);
  EXPECT_GE(table.migrations(), 2u);
  EXPECT_GT(total.overflow_hits, 0u);
  EXPECT_EQ(table.locked_slots(), 0u);
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
}

TEST(GrowthTable, DriverAndBatchedUpserterAgreeWithPlainTable) {
  // drive_ops + BatchedUpserter both route through add_hashed; a growth
  // table that migrates underneath them must still produce the same
  // contents as a right-sized plain table fed the same workload.
  const auto ops = make_ops<1>(1500, 6000, 27, 8080);
  const auto upserts = to_upserts(ops);
  ConcurrentKmerTable<1> reference(4096, 27);
  drive_ops<ConcurrentKmerTable<1>, 1>(
      reference, std::span<const UpsertOp<1>>(upserts));

  GrowthConfig growth;
  growth.enabled = true;
  ConcurrentKmerTable<1> growing(64, 27, growth);
  TableStats stats;
  {
    BatchedUpserter<1> batcher(growing, stats);
    for (const auto& u : upserts) {
      batcher.push(u.canon, u.edge_out, u.edge_in);
    }
  }  // destructor flushes
  EXPECT_GE(growing.migrations(), 1u);
  EXPECT_EQ(growing.size(), reference.size());
  reference.for_each([&](const VertexEntry<1>& e) {
    const auto found = growing.find(e.kmer);
    ASSERT_TRUE(found.has_value()) << e.kmer.to_string();
    EXPECT_EQ(found->coverage, e.coverage);
    EXPECT_EQ(found->edges, e.edges);
  });
}

TEST(KmerTable, ForEachVisitsEverything) {
  const auto ops = make_ops<1>(77, 500, 27, 17);
  ConcurrentKmerTable<1> table(256, 27);
  for (const auto& op : ops) {
    table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  std::uint64_t visited = 0;
  std::uint64_t coverage = 0;
  table.for_each([&](const VertexEntry<1>& e) {
    ++visited;
    coverage += e.coverage;
  });
  EXPECT_EQ(visited, table.size());
  EXPECT_EQ(coverage, ops.size());
}

TEST(KmerTable, CapacityRoundsToPow2AndReportsMemory) {
  ConcurrentKmerTable<1> table(1000, 27);
  EXPECT_EQ(table.capacity(), 1024u);
  EXPECT_EQ(table.memory_bytes(),
            1024 * ConcurrentKmerTable<1>::bytes_per_slot());
  EXPECT_EQ(table.load_factor(), 0.0);
}

TEST(KmerTable, TagFiltersMostForeignProbes) {
  // At a realistic load factor, probes that walk over foreign slots
  // should resolve from the 6-bit tag alone almost always (~63/64);
  // full key compares on foreign slots are the rare tag collisions.
  const int k = 27;
  const auto ops = make_ops<1>(1400, 20000, k, 90210);  // alpha ~ 0.68
  ConcurrentKmerTable<1> table(2048, k);
  TableStats stats;
  for (const auto& op : ops) {
    stats.absorb(
        table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in));
  }
  // Every update ends in one successful full compare; compares beyond
  // that are fingerprint collisions.
  const std::uint64_t hits = stats.adds - stats.inserts;
  ASSERT_GE(stats.key_compares, hits);
  const std::uint64_t collisions = stats.key_compares - hits;
  EXPECT_GT(stats.tag_rejects, 0u);
  EXPECT_GT(stats.tag_filter_rate(), 0.0);
  // Expected collision share is 1/64 of tag-decided probes; allow 8x.
  EXPECT_LT(collisions, (stats.tag_rejects + collisions) / 8 + 1);
}

TEST(KmerTable, TagCollisionsFallBackToFullKeyCompare) {
  // Brute-force distinct kmers that share BOTH the 6-bit tag and the
  // home bucket of a small table: the fingerprint cannot tell them
  // apart, so probing past each other's slots must run the full
  // multi-word compare — and the table must stay exact.
  const int k = 27;
  const std::uint64_t capacity = 256;
  const std::uint64_t mask = capacity - 1;
  const int n_colliders = 8;

  Rng rng(20260806);
  std::vector<Kmer<1>> colliders;
  std::set<std::string> unique;
  std::uint64_t bucket0 = 0;
  std::uint8_t meta0 = 0;
  while (colliders.size() < n_colliders) {
    const auto kmer = random_kmer<1>(rng, k);
    const std::uint64_t h = kmer.hash();
    const std::uint64_t bucket = h & mask;
    const std::uint8_t meta = ConcurrentKmerTable<1>::occupied_byte(h);
    if (colliders.empty()) {
      bucket0 = bucket;
      meta0 = meta;
    } else if (bucket != bucket0 || meta != meta0) {
      continue;
    }
    if (!unique.insert(kmer.to_string()).second) continue;
    colliders.push_back(kmer);
  }

  ConcurrentKmerTable<1> table(capacity, k);
  TableStats stats;
  const int rounds = 3;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& kmer : colliders) {
      stats.absorb(table.add(kmer, r & 3, -1));
    }
  }

  EXPECT_EQ(table.size(), static_cast<std::uint64_t>(n_colliders));
  for (const auto& kmer : colliders) {
    const auto found = table.find(kmer);
    ASSERT_TRUE(found.has_value()) << kmer.to_string();
    EXPECT_EQ(found->coverage, static_cast<std::uint32_t>(rounds));
    EXPECT_EQ(found->kmer, kmer);
  }
  // All keys share one tag and chain behind one bucket, so no probe is
  // ever tag-rejected and later keys full-compare over earlier ones.
  EXPECT_EQ(stats.tag_rejects, 0u);
  EXPECT_GT(stats.key_compares, stats.adds);
  EXPECT_EQ(stats.probes, stats.inserts + stats.key_compares);
}

TEST(KmerTable, BatchedUpserterMatchesScalarOracleUnderContention) {
  // Exactness invariant 4 at the table level: 8 threads draining the
  // group-prefetch window produce a table bit-identical to a
  // single-threaded scalar add() oracle over the same operations.
  const int k = 27;
  const int threads = 8;
  const int per_thread = 5000;
  const auto ops = make_ops<1>(120, threads * per_thread, k, 99177);

  ConcurrentKmerTable<1> oracle(1024, k);
  for (const auto& op : ops) {
    oracle.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }

  ConcurrentKmerTable<1> table(1024, k);
  std::vector<TableStats> stats(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BatchedUpserter<1> batcher(table, stats[t]);
      for (int i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        batcher.push(Kmer<1>::from_string(ops[i].kmer), ops[i].edge_out,
                     ops[i].edge_in);
      }
    });  // destructor flushes the partial window
  }
  for (auto& w : workers) w.join();

  TableStats total;
  for (const auto& s : stats) total.merge(s);
  EXPECT_EQ(total.adds, static_cast<std::uint64_t>(threads) * per_thread);
  EXPECT_EQ(table.size(), oracle.size());
  oracle.for_each([&](const VertexEntry<1>& e) {
    const auto found = table.find(e.kmer);
    ASSERT_TRUE(found.has_value()) << e.kmer.to_string();
    EXPECT_EQ(found->coverage, e.coverage);
    EXPECT_EQ(found->edges, e.edges);
  });
}

TEST(KmerTable, BatchedUpserterFlushesPartialWindows) {
  ConcurrentKmerTable<1> table(64, 21);
  TableStats stats;
  const auto kmer = Kmer<1>::from_string("ACGTACGTACGTACGTACGTA");
  {
    BatchedUpserter<1> batcher(table, stats, /*window=*/16);
    for (int i = 0; i < 5; ++i) batcher.push(kmer, 1, 2);
    batcher.flush();
    EXPECT_EQ(stats.adds, 5u);  // explicit flush drains a partial window
    for (int i = 0; i < 3; ++i) batcher.push(kmer, 1, 2);
  }  // destructor drains the rest
  EXPECT_EQ(stats.adds, 8u);
  const auto found = table.find(kmer);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->coverage, 8u);
  EXPECT_EQ(found->out_weight(1), 8u);
}

TEST(KmerTable, BatchedUpserterClampsWindow) {
  ConcurrentKmerTable<1> table(64, 21);
  TableStats stats;
  BatchedUpserter<1> tiny(table, stats, 0);
  EXPECT_EQ(tiny.window(), 1);
  BatchedUpserter<1> huge(table, stats, 1 << 20);
  EXPECT_EQ(huge.window(), BatchedUpserter<1>::kMaxWindow);
}

// ------------------------------------------------------ UpsertWindow

TEST(UpsertWindow, ParsesFixedAndAuto) {
  EXPECT_TRUE(UpsertWindow::parse("auto").is_auto());
  EXPECT_FALSE(UpsertWindow::parse("8").is_auto());
  EXPECT_EQ(UpsertWindow::parse("8").fixed, 8);
  EXPECT_TRUE(UpsertWindow::parse("1").is_scalar());
  EXPECT_EQ(UpsertWindow::parse("0").fixed, 1);  // clamped
  EXPECT_EQ(UpsertWindow::parse("99999").fixed, UpsertWindow::kMax);
  // Garbage falls back to the default fixed window.
  EXPECT_EQ(UpsertWindow::parse("bogus").fixed, UpsertWindow::kDefault);
  EXPECT_FALSE(UpsertWindow::parse("bogus").is_auto());
  EXPECT_EQ(UpsertWindow::auto_window().to_string(), "auto");
  EXPECT_EQ(UpsertWindow::fixed_window(32).to_string(), "32");
}

TEST(UpsertWindow, TuningWidensWithProbeLength) {
  EXPECT_EQ(UpsertWindow::tuned_for(0.0), UpsertWindow::kAutoMin);
  EXPECT_EQ(UpsertWindow::tuned_for(1.0), UpsertWindow::kAutoMin);
  EXPECT_EQ(UpsertWindow::tuned_for(2.0), UpsertWindow::kDefault);
  EXPECT_EQ(UpsertWindow::tuned_for(100.0), UpsertWindow::kMax);
  EXPECT_LE(UpsertWindow::tuned_for(3.0), UpsertWindow::tuned_for(5.0));
}

TEST(KmerTable, AutoWindowRetunesFromMeasuredProbeLength) {
  const auto ops = make_ops<1>(400, 4000, 27, 60606);
  ConcurrentKmerTable<1> table(1024, 27);
  TableStats stats;
  {
    BatchedUpserter<1> batcher(table, stats, UpsertWindow::auto_window());
    EXPECT_EQ(batcher.window(), UpsertWindow::kDefault);  // warmup
    for (const auto& op : ops) {
      batcher.push(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
    }
    batcher.flush();
    EXPECT_EQ(batcher.window(),
              UpsertWindow::tuned_for(stats.mean_probe_length()));
    EXPECT_GE(batcher.window(), UpsertWindow::kAutoMin);
    EXPECT_LE(batcher.window(), UpsertWindow::kMax);
  }
  EXPECT_EQ(stats.adds, ops.size());
  check_against_reference<ConcurrentKmerTable<1>, 1>(table, ops);
}

// --------------------------------- shared concept over every variant
//
// One typed suite replaces the per-table copy-pasted drivers: every
// variant satisfying KmerTableLike replays the same workload through
// the shared drive_ops() helper and must agree with the reference (and,
// for graph tables, with the production table's contents).

template <typename Table>
class AnyTableTest : public ::testing::Test {};

using TableVariants =
    ::testing::Types<ConcurrentKmerTable<1>, FatSlotKmerTable<1>,
                     MutexShardTable<1>, ConcurrentCounterTable<1>>;
TYPED_TEST_SUITE(AnyTableTest, TableVariants);

TYPED_TEST(AnyTableTest, SequentialDriverMatchesReference) {
  const auto ops = make_ops<1>(200, 3000, 27, 4321);
  const auto upserts = to_upserts(ops);
  TypeParam table(512, 27);
  const TableStats stats = drive_ops<TypeParam, 1>(
      table, std::span<const UpsertOp<1>>(upserts));
  EXPECT_EQ(stats.adds, ops.size());
  EXPECT_EQ(stats.inserts, table.size());
  check_any_table(table, ops);
}

TYPED_TEST(AnyTableTest, ConcurrentDriverMatchesReference) {
  const int threads = 8;
  const int per_thread = 2000;
  const auto ops = make_ops<1>(50, threads * per_thread, 27, 8642);
  const auto upserts = to_upserts(ops);
  TypeParam table(256, 27);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      drive_ops<TypeParam, 1>(
          table, std::span<const UpsertOp<1>>(upserts).subspan(
                     static_cast<std::size_t>(t) * per_thread, per_thread));
    });
  }
  for (auto& w : workers) w.join();
  check_any_table(table, ops);
}

TYPED_TEST(AnyTableTest, AgreesWithProductionTable) {
  const auto ops = make_ops<1>(150, 2000, 27, 13579);
  const auto upserts = to_upserts(ops);
  ConcurrentKmerTable<1> production(512, 27);
  TypeParam variant(512, 27);
  drive_ops<ConcurrentKmerTable<1>, 1>(
      production, std::span<const UpsertOp<1>>(upserts));
  drive_ops<TypeParam, 1>(variant,
                          std::span<const UpsertOp<1>>(upserts));
  EXPECT_EQ(production.size(), variant.size());
  production.for_each([&](const VertexEntry<1>& e) {
    const auto found = variant.find(e.kmer);
    ASSERT_TRUE(found.has_value()) << e.kmer.to_string();
    if constexpr (GraphKmerTableLike<TypeParam>) {
      EXPECT_EQ(found->coverage, e.coverage);
      EXPECT_EQ(found->edges, e.edges);
    } else {
      EXPECT_EQ(found->count, e.coverage);
    }
  });
}

TEST(KmerTable, LockWaitStatisticsStayRare) {
  // The state-transfer design claim: lock waits happen at most once per
  // distinct vertex (during its one insertion), so over a duplicate-
  // heavy workload waits << adds.
  const int threads = 8;
  const auto ops = make_ops<1>(20, threads * 4000, 27, 555);
  ConcurrentKmerTable<1> table(128, 27);
  std::vector<TableStats> stats(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = t * 4000; i < (t + 1) * 4000; ++i) {
        stats[t].absorb(table.add(Kmer<1>::from_string(ops[i].kmer),
                                  ops[i].edge_out, ops[i].edge_in));
      }
    });
  }
  for (auto& w : workers) w.join();
  TableStats total;
  for (const auto& s : stats) total.merge(s);
  EXPECT_EQ(total.adds, static_cast<std::uint64_t>(threads) * 4000);
  // Waits can only happen while one of the 20 keys is mid-insertion.
  EXPECT_LT(total.lock_waits, total.adds / 100);
}

// --------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      if (counter.fetch_add(1) + 1 == 100) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return counter.load() == 100; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(hits.size(), 64, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::uint64_t b, std::uint64_t) {
                          if (b == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForQuiescesBeforeRethrow) {
  // Regression: parallel_for used to rethrow as soon as the completion
  // counter hit zero on the *failing* chunk's schedule, while sibling
  // chunks could still be touching caller-frame state — a use-after-
  // scope once the caller unwound. The fix joins every chunk before
  // rethrowing, so frame-local state destroyed right after the catch
  // must be safe. Run several rounds so a racy schedule has chances to
  // bite (tsan flags the old behaviour deterministically).
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> frame_local(64, 0);
    try {
      pool.parallel_for(64, 1, [&](std::uint64_t b, std::uint64_t) {
        if (b == 0) throw std::runtime_error("first chunk fails");
        frame_local[b] = static_cast<int>(b);
      });
      FAIL() << "expected the chunk-0 exception to propagate";
    } catch (const std::runtime_error&) {
      // Every surviving chunk must have fully finished by now.
      for (std::uint64_t i = 1; i < 64; ++i) {
        EXPECT_EQ(frame_local[i], static_cast<int>(i));
      }
    }
    // frame_local destroyed here; a straggler chunk would be a UAF.
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 0, [&](std::uint64_t, std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForDefaultGrain) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(1001, 0, [&](std::uint64_t b, std::uint64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 1001u);
}

}  // namespace
}  // namespace parahash::concurrent
