// Tests for the extension modules: flag parsing, GFA export, graph
// algorithms (components, neighbourhoods), counting-only tables, and
// the Bloom singleton pre-filter.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "concurrent/bloom.h"
#include "concurrent/counter_table.h"
#include "core/algo.h"
#include "core/gfa.h"
#include "core/kmer_counter.h"
#include "core/msp.h"
#include "core/reference.h"
#include "core/subgraph.h"
#include "core/unitig.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"
#include "util/flags.h"
#include "util/rng.h"

namespace parahash {
namespace {

// ---------------------------------------------------------------- Flags

TEST(Flags, ParsesAllStyles) {
  const char* argv[] = {"prog",        "--k=27",     "--p",
                        "11",          "input.fastq", "--alpha=0.7",
                        "--pipelined"};
  Flags flags(7, argv);
  EXPECT_EQ(flags.program(), "prog");
  EXPECT_EQ(flags.get_int("k", 0), 27);
  EXPECT_EQ(flags.get_int("p", 0), 11);
  EXPECT_TRUE(flags.get_bool("pipelined"));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0), 0.7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.fastq");
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get_int("missing", 42), 42);
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=false", "--c=1", "--d=no"};
  Flags flags(5, argv);
  EXPECT_TRUE(flags.get_bool("a"));
  EXPECT_FALSE(flags.get_bool("b"));
  EXPECT_TRUE(flags.get_bool("c"));
  EXPECT_FALSE(flags.get_bool("d"));
}

TEST(Flags, BadValuesThrow) {
  const char* argv[] = {"prog", "--k=abc", "--x=maybe"};
  Flags flags(3, argv);
  EXPECT_THROW(flags.get_int("k", 0), InvalidArgumentError);
  EXPECT_THROW(flags.get_bool("x"), InvalidArgumentError);
}

// ------------------------------------------------------- shared helpers

template <int W>
core::DeBruijnGraph<W> graph_of(const std::vector<std::string>& reads,
                                int k, int p, std::uint32_t partitions,
                                const core::HashConfig& hash_config = {}) {
  core::MspConfig config;
  config.k = k;
  config.p = p;
  config.num_partitions = partitions;
  io::TempDir dir("ext_test");
  io::PartitionSet set(dir.file("parts"), k, p, partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  core::MspBatchOutput out(partitions);
  core::msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t i = 0; i < partitions; ++i) {
    set.writer(i).append_raw(out.parts[i].bytes.data(),
                             out.parts[i].bytes.size(),
                             out.parts[i].superkmers, out.parts[i].kmers,
                             out.parts[i].bases);
  }
  core::DeBruijnGraph<W> graph(k, p, partitions);
  const auto paths = set.close_all();
  for (std::uint32_t i = 0; i < partitions; ++i) {
    auto result = core::build_subgraph<W>(
        io::PartitionBlob::read_file(paths[i]), hash_config, nullptr);
    graph.adopt_table(i, *result.table);
  }
  return graph;
}

std::string random_bases(Rng& rng, int len) {
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(decode_base(rng.base()));
  return s;
}

std::string repeat_free_genome(int length, int k, std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::string genome;
    for (int i = 0; i < length; ++i) genome.push_back(decode_base(rng.base()));
    std::set<std::string> seen;
    bool ok = true;
    for (int i = 0; i + k - 1 <= length && ok; ++i) {
      const std::string sub = genome.substr(i, k - 1);
      ok = seen.insert(std::min(sub, reverse_complement_str(sub))).second;
    }
    if (ok) return genome;
  }
  throw Error("no repeat-free genome found");
}

std::vector<std::string> tiling_reads(const std::string& genome, int L,
                                      int stride) {
  std::vector<std::string> reads;
  for (std::size_t pos = 0; pos + L <= genome.size(); pos += stride) {
    reads.push_back(genome.substr(pos, L));
  }
  reads.push_back(genome.substr(genome.size() - L));
  return reads;
}

// ------------------------------------------------------------------ GFA

TEST(Gfa, LinearGenomeIsOneSegmentNoLinks) {
  const int k = 21;
  const std::string genome = repeat_free_genome(250, k, 7);
  const auto graph = graph_of<1>(tiling_reads(genome, 60, 20), k, 9, 4);
  core::UnitigBuilder<1> builder(graph);
  core::GfaExporter<1> exporter(graph, builder.build());

  io::TempDir dir("gfa_test");
  const auto [segments, links] = exporter.write(dir.file("graph.gfa"));
  EXPECT_EQ(segments, 1u);
  EXPECT_EQ(links, 0u);

  std::ifstream file(dir.file("graph.gfa"));
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_EQ(line.rfind("H\t", 0), 0u);
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_EQ(line.rfind("S\tu0\t", 0), 0u);
}

TEST(Gfa, BranchProducesLinkedSegments) {
  const int k = 11;
  const std::string prefix = repeat_free_genome(40, k, 19);
  const std::string x = prefix + "AACCAGTTGCAATTGGACTACTTGAGC";
  const std::string y = prefix + "CGTTAGGCATTACGTAACCCTGATTAC";
  const auto graph = graph_of<1>({x, y}, k, 5, 2);
  core::UnitigBuilder<1> builder(graph);
  core::GfaExporter<1> exporter(graph, builder.build());

  const auto links = exporter.links();
  // The shared prefix connects to both branch segments.
  EXPECT_GE(exporter.unitigs().size(), 3u);
  EXPECT_GE(links.size(), 2u);

  // Every link endpoint must reference a real segment.
  for (const auto& link : links) {
    EXPECT_LT(link.from, exporter.unitigs().size());
    EXPECT_LT(link.to, exporter.unitigs().size());
  }
}

TEST(Gfa, LinksConsistentWithKminus1Overlap) {
  Rng rng(11);
  std::vector<std::string> reads;
  for (int i = 0; i < 30; ++i) reads.push_back(random_bases(rng, 60));
  const int k = 15;
  const auto graph = graph_of<1>(reads, k, 7, 4);
  core::UnitigBuilder<1> builder(graph);
  core::GfaExporter<1> exporter(graph, builder.build());

  const auto& unitigs = exporter.unitigs();
  for (const auto& link : exporter.links()) {
    std::string a = unitigs[link.from].bases;
    if (link.from_orient == '-') a = reverse_complement_str(a);
    std::string b = unitigs[link.to].bases;
    if (link.to_orient == '-') b = reverse_complement_str(b);
    // GFA overlap semantics: a's suffix (k-1) == b's prefix (k-1).
    EXPECT_EQ(a.substr(a.size() - (k - 1)), b.substr(0, k - 1))
        << "link u" << link.from << link.from_orient << " -> u" << link.to
        << link.to_orient;
  }
}

// ----------------------------------------------------------- algorithms

TEST(Algo, TwoGenomesTwoComponents) {
  const int k = 21;
  const std::string g1 = repeat_free_genome(200, k, 23);
  const std::string g2 = repeat_free_genome(200, k, 29);
  auto reads = tiling_reads(g1, 60, 20);
  for (auto& r : tiling_reads(g2, 60, 20)) reads.push_back(r);
  const auto graph = graph_of<1>(reads, k, 9, 4);

  const auto summary = core::connected_components(graph);
  // g1 and g2 might share a kmer by chance, but at 200 bp each it is
  // essentially impossible; expect exactly two components covering all.
  EXPECT_EQ(summary.count, 2u);
  std::uint64_t total = 0;
  for (const auto s : summary.sizes) total += s;
  EXPECT_EQ(total, graph.num_vertices());
  EXPECT_EQ(summary.largest(), summary.sizes[0]);
}

TEST(Algo, SingleGenomeOneComponent) {
  const int k = 21;
  const std::string genome = repeat_free_genome(300, k, 31);
  const auto graph = graph_of<1>(tiling_reads(genome, 60, 10), k, 9, 4);
  const auto summary = core::connected_components(graph);
  EXPECT_EQ(summary.count, 1u);
  EXPECT_EQ(summary.largest(), graph.num_vertices());
}

TEST(Algo, NeighborhoodRadius) {
  const int k = 15;
  const std::string genome = repeat_free_genome(120, k, 37);
  const auto graph = graph_of<1>(tiling_reads(genome, 50, 5), k, 7, 2);

  // Pick the kmer in the middle of the genome.
  const auto mid = Kmer<1>::from_string(genome.substr(50, k));
  ASSERT_NE(graph.find(mid), nullptr);

  const auto r0 = core::neighborhood(graph, mid, 0);
  EXPECT_EQ(r0.size(), 1u);
  const auto r1 = core::neighborhood(graph, mid, 1);
  EXPECT_EQ(r1.size(), 3u);  // linear graph: self + both sides
  const auto r3 = core::neighborhood(graph, mid, 3);
  EXPECT_EQ(r3.size(), 7u);
  // Missing start -> empty.
  EXPECT_TRUE(core::neighborhood(graph,
                                 Kmer<1>::from_string(std::string(k, 'A')),
                                 2)
                  .empty());
}

// -------------------------------------------------------- counter table

TEST(CounterTable, CountsMatchMap) {
  Rng rng(41);
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(random_bases(rng, 27));
  std::map<std::string, std::uint32_t> expected;
  concurrent::ConcurrentCounterTable<1> table(512, 27);
  for (int i = 0; i < 5000; ++i) {
    const auto& key = keys[rng.below(keys.size())];
    ++expected[key];
    table.add(Kmer<1>::from_string(key));
  }
  EXPECT_EQ(table.size(), expected.size());
  for (const auto& [key, count] : expected) {
    const auto found = table.find(Kmer<1>::from_string(key));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->count, count);
  }
}

TEST(CounterTable, ConcurrentCountsExact) {
  const int threads = 8;
  const int per_thread = 5000;
  Rng rng(43);
  std::vector<std::string> keys;
  for (int i = 0; i < 30; ++i) keys.push_back(random_bases(rng, 27));
  concurrent::ConcurrentCounterTable<1> table(128, 27);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng local(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < per_thread; ++i) {
        table.add(Kmer<1>::from_string(keys[local.below(keys.size())]));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  table.for_each([&](const concurrent::ConcurrentCounterTable<1>::Entry& e) {
    total += e.count;
  });
  EXPECT_EQ(total, static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(CounterTable, SlotSmallerThanGraphSlot) {
  EXPECT_LT(sizeof(concurrent::ConcurrentCounterTable<1>::Slot),
            concurrent::ConcurrentKmerTable<1>::bytes_per_slot());
}

TEST(KmerCounter, MatchesGraphCoverage) {
  sim::DatasetSpec spec;
  spec.genome_size = 1500;
  spec.read_length = 80;
  spec.coverage = 8.0;
  spec.lambda = 1.0;
  spec.seed = 47;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  std::vector<std::string> reads;
  for (auto& r : simulator.all_reads()) reads.push_back(std::move(r.bases));

  const int k = 27;
  core::MspConfig config;
  config.k = k;
  config.p = 11;
  config.num_partitions = 4;
  io::TempDir dir("counter_test");
  io::PartitionSet set(dir.file("parts"), k, 11, 4);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r);
  core::MspBatchOutput out(4);
  core::msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t i = 0; i < 4; ++i) {
    set.writer(i).append_raw(out.parts[i].bytes.data(),
                             out.parts[i].bytes.size(),
                             out.parts[i].superkmers, out.parts[i].kmers,
                             out.parts[i].bases);
  }
  const auto paths = set.close_all();

  core::HashConfig hash_config;
  std::uint64_t counter_distinct = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto blob = io::PartitionBlob::read_file(paths[i]);
    auto counted = core::count_partition<1>(blob, hash_config, nullptr);
    auto graphed = core::build_subgraph<1>(blob, hash_config, nullptr);
    EXPECT_EQ(counted.table->size(), graphed.table->size());
    counter_distinct += counted.table->size();
    counted.table->for_each(
        [&](const concurrent::ConcurrentCounterTable<1>::Entry& e) {
          const auto entry = graphed.table->find(e.kmer);
          ASSERT_TRUE(entry.has_value());
          EXPECT_EQ(entry->coverage, e.count);
        });
  }
  core::ReferenceBuilder reference(k);
  for (const auto& r : reads) reference.add_read(r);
  EXPECT_EQ(counter_distinct, reference.distinct_vertices());
}

// ---------------------------------------------------------------- bloom

TEST(Bloom, CountsAreNeverUnderestimates) {
  concurrent::CountingBloom bloom(1 << 14, 3);
  Rng rng(53);
  std::map<std::uint64_t, int> truth;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t item = rng.below(500);
    const int count = ++truth[mix64(item)];
    const int estimate = bloom.increment_and_count(mix64(item));
    EXPECT_GE(estimate, std::min(count, 15));
  }
  for (const auto& [hash, count] : truth) {
    EXPECT_GE(bloom.count(hash), std::min(count, 15));
  }
}

TEST(Bloom, SaturatesAtFifteen) {
  concurrent::CountingBloom bloom(1024, 2);
  for (int i = 0; i < 40; ++i) {
    EXPECT_LE(bloom.increment_and_count(12345), 15);
  }
  EXPECT_EQ(bloom.count(12345), 15);
}

TEST(Bloom, ConcurrentIncrementsDoNotLoseCounts) {
  concurrent::CountingBloom bloom(1 << 16, 1);
  const std::uint64_t item = 777;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 4; ++i) bloom.increment_and_count(item);
    });
  }
  for (auto& w : workers) w.join();
  // 32 increments saturate the 4-bit cell exactly (no lost updates up
  // to the cap): the count must read 15.
  EXPECT_EQ(bloom.count(item), 15);
}

TEST(BloomPrefilter, DropsSingletonsKeepsRepeats) {
  // High-error dataset: plenty of singletons.
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 80;
  spec.coverage = 12.0;
  spec.lambda = 2.0;
  spec.seed = 59;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  std::vector<std::string> reads;
  for (auto& r : simulator.all_reads()) reads.push_back(std::move(r.bases));

  core::HashConfig exact;
  auto full = graph_of<1>(reads, 27, 11, 4, exact);

  core::HashConfig filtered = exact;
  filtered.singleton_prefilter = true;
  filtered.bloom_cells_per_kmer = 8.0;
  auto pre = graph_of<1>(reads, 27, 11, 4, filtered);

  // The prefiltered vertex set sits between coverage>=2 (exact filter)
  // and everything: false positives only ADD singleton vertices.
  auto exact_filtered = full;
  exact_filtered.filter_min_coverage(2);
  EXPECT_LE(pre.num_vertices(), full.num_vertices());
  EXPECT_GE(pre.num_vertices(), exact_filtered.num_vertices());
  // It must remove the bulk of the singletons.
  const auto dropped = full.num_vertices() - pre.num_vertices();
  const auto singletons =
      full.num_vertices() - exact_filtered.num_vertices();
  EXPECT_GT(dropped, singletons * 8 / 10);

  // Every repeated kmer must be present, with coverage one below true
  // (the first sighting is absorbed by the filter).
  std::uint64_t checked = 0;
  exact_filtered.for_each_vertex([&](const concurrent::VertexEntry<1>& e) {
    const auto* entry = pre.find(e.kmer);
    ASSERT_NE(entry, nullptr) << e.kmer.to_string();
    EXPECT_EQ(entry->coverage, e.coverage - 1);
    ++checked;
  });
  EXPECT_GT(checked, 1000u);
}

}  // namespace
}  // namespace parahash
