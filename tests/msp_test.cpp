// Tests for the MSP partitioner (Step 1): Definitions 1-2, the canonical
// minimizer, superkmer decomposition invariants, and the paper's
// two-extra-base adjacency fix.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/msp.h"
#include "util/dna.h"
#include "util/kmer.h"
#include "util/rng.h"

namespace parahash::core {
namespace {

std::vector<std::uint8_t> codes_of(const std::string& s) {
  std::vector<std::uint8_t> codes;
  for (char c : s) codes.push_back(encode_base(c));
  return codes;
}

std::string random_bases(Rng& rng, int len) {
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(decode_base(rng.base()));
  return s;
}

/// Brute-force canonical minimizer straight from Definition 1: minimum
/// over all length-p substrings of the kmer AND of its reverse
/// complement (strings compared lexicographically).
std::string minimizer_by_definition(const std::string& kmer, int p) {
  std::string best;
  for (const std::string& strand : {kmer, reverse_complement_str(kmer)}) {
    for (std::size_t j = 0; j + p <= strand.size(); ++j) {
      const std::string sub = strand.substr(j, p);
      if (best.empty() || sub < best) best = sub;
    }
  }
  return best;
}

std::string minimizer_value_to_string(std::uint64_t value, int p) {
  std::string s(p, 'A');
  for (int i = 0; i < p; ++i) {
    s[p - 1 - i] = decode_base(static_cast<std::uint8_t>(value & 3u));
    value >>= 2;
  }
  return s;
}

TEST(Minimizer, NaiveMatchesStringDefinition) {
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 9 + 2 * static_cast<int>(rng.below(10));  // 9..27
    const int p = 1 + static_cast<int>(rng.below(std::min(k, 16)));
    const std::string kmer = random_bases(rng, k);
    const auto codes = codes_of(kmer);
    const std::uint64_t value = kmer_minimizer_naive(codes.data(), k, p);
    EXPECT_EQ(minimizer_value_to_string(value, p),
              minimizer_by_definition(kmer, p))
        << "kmer " << kmer << " p " << p;
  }
}

TEST(Minimizer, StrandSymmetric) {
  // A kmer and its reverse complement must share a minimizer, otherwise
  // duplicate vertices could land in different partitions.
  Rng rng(73);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 27;
    const int p = 11;
    const std::string kmer = random_bases(rng, k);
    const std::string rc = reverse_complement_str(kmer);
    const auto a = codes_of(kmer);
    const auto b = codes_of(rc);
    EXPECT_EQ(kmer_minimizer_naive(a.data(), k, p),
              kmer_minimizer_naive(b.data(), k, p))
        << kmer;
  }
}

TEST(MinimizerPartition, DeterministicAndInRange) {
  Rng rng(79);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t m = rng.next();
    const std::uint32_t parts = 1 + static_cast<std::uint32_t>(rng.below(999));
    const auto id = minimizer_partition(m, parts);
    EXPECT_LT(id, parts);
    EXPECT_EQ(id, minimizer_partition(m, parts));
  }
}

TEST(MspConfig, Validation) {
  MspConfig ok;
  EXPECT_NO_THROW(ok.validate());

  MspConfig even = ok;
  even.k = 28;
  EXPECT_THROW(even.validate(), Error);

  MspConfig p_too_big = ok;
  p_too_big.p = ok.k + 1;
  EXPECT_THROW(p_too_big.validate(), Error);

  MspConfig p17 = ok;
  p17.k = 35;
  p17.p = 17;
  EXPECT_THROW(p17.validate(), Error);  // 32-bit minimizer packing

  MspConfig no_parts = ok;
  no_parts.num_partitions = 0;
  EXPECT_THROW(no_parts.validate(), Error);
}

class MspScanTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MspScanTest, FastScanMatchesNaiveScan) {
  const auto [k, p] = GetParam();
  MspConfig config;
  config.k = k;
  config.p = p;
  config.num_partitions = 32;
  MspScanner scanner(config);

  Rng rng(83);
  for (int trial = 0; trial < 100; ++trial) {
    const int len = k + static_cast<int>(rng.below(120));
    const std::string read = random_bases(rng, len);
    const auto codes = codes_of(read);

    std::vector<SuperkmerSpan> fast;
    std::vector<SuperkmerSpan> naive;
    const auto n1 = scanner.scan_read(codes, fast);
    const auto n2 = scanner.scan_read_naive(codes, naive);
    EXPECT_EQ(n1, n2);
    ASSERT_EQ(fast.size(), naive.size()) << "read " << read;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i], naive[i]) << "span " << i << " of " << read;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KandP, MspScanTest,
    ::testing::Values(std::pair{27, 11}, std::pair{27, 5}, std::pair{27, 16},
                      std::pair{15, 7}, std::pair{31, 1}, std::pair{9, 9},
                      std::pair{63, 13}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.first) + "p" +
             std::to_string(info.param.second);
    });

TEST(MspScan, SuperkmersPartitionTheKmers) {
  // The spans must tile the read's kmers exactly: contiguous, in order,
  // no overlap, covering kmers 0 .. L-k.
  MspConfig config;
  config.k = 27;
  config.p = 11;
  MspScanner scanner(config);
  Rng rng(89);
  for (int trial = 0; trial < 100; ++trial) {
    const int len = 27 + static_cast<int>(rng.below(200));
    const auto codes = codes_of(random_bases(rng, len));
    std::vector<SuperkmerSpan> spans;
    scanner.scan_read(codes, spans);
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans.front().begin, 0u);
    EXPECT_EQ(spans.back().end, static_cast<std::uint32_t>(len));
    for (std::size_t i = 0; i < spans.size(); ++i) {
      // Each span holds >= 1 kmer: end - begin >= k.
      EXPECT_GE(spans[i].end - spans[i].begin, 27u);
      if (i > 0) {
        // Next superkmer starts at the kmer right after the previous
        // one's last: begin_{i} = (end_{i-1} - k) + 1.
        EXPECT_EQ(spans[i].begin, spans[i - 1].end - 27 + 1);
        // Adjacent spans have different minimizers (maximality).
        EXPECT_NE(spans[i].minimizer, spans[i - 1].minimizer);
      }
    }
  }
}

TEST(MspScan, ExtensionFlagsMarkReadBoundaries) {
  MspConfig config;
  config.k = 27;
  config.p = 11;
  MspScanner scanner(config);
  Rng rng(97);
  const auto codes = codes_of(random_bases(rng, 150));
  std::vector<SuperkmerSpan> spans;
  scanner.scan_read(codes, spans);
  ASSERT_FALSE(spans.empty());
  EXPECT_FALSE(spans.front().has_left);
  EXPECT_FALSE(spans.back().has_right);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_TRUE(spans[i].has_right);
    EXPECT_TRUE(spans[i + 1].has_left);
  }
}

TEST(MspScan, ShortReadsYieldNothing) {
  MspConfig config;
  config.k = 27;
  config.p = 11;
  MspScanner scanner(config);
  std::vector<SuperkmerSpan> spans;
  const auto codes = codes_of(std::string(26, 'A'));
  EXPECT_EQ(scanner.scan_read(codes, spans), 0u);
  EXPECT_TRUE(spans.empty());
}

TEST(MspScan, SingleKmerReadIsOneSuperkmer) {
  MspConfig config;
  config.k = 27;
  config.p = 11;
  MspScanner scanner(config);
  Rng rng(101);
  const auto codes = codes_of(random_bases(rng, 27));
  std::vector<SuperkmerSpan> spans;
  EXPECT_EQ(scanner.scan_read(codes, spans), 1u);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, 27u);
  EXPECT_FALSE(spans[0].has_left);
  EXPECT_FALSE(spans[0].has_right);
}

TEST(MspScan, CompactionBeatsRawKmers) {
  // A superkmer holding M kmers stores M + K - 1 bases instead of M*K:
  // total superkmer bases should be far below the raw kmer expansion.
  MspConfig config;
  config.k = 27;
  config.p = 11;
  MspScanner scanner(config);
  Rng rng(103);
  std::uint64_t superkmer_bases = 0;
  std::uint64_t raw_kmer_bases = 0;
  for (int r = 0; r < 200; ++r) {
    const auto codes = codes_of(random_bases(rng, 101));
    std::vector<SuperkmerSpan> spans;
    const auto kmers = scanner.scan_read(codes, spans);
    raw_kmer_bases += kmers * config.k;
    for (const auto& s : spans) superkmer_bases += s.end - s.begin;
  }
  EXPECT_LT(superkmer_bases, raw_kmer_bases / 4);
}

TEST(MspScan, EqualKmersShareAPartition) {
  // The partitioning invariant: every occurrence of a canonical kmer —
  // on either strand, in any read — routes to the same partition.
  MspConfig config;
  config.k = 15;
  config.p = 7;
  config.num_partitions = 13;
  MspScanner scanner(config);

  Rng rng(107);
  const std::string genome = random_bases(rng, 300);
  std::map<std::string, std::set<std::uint32_t>> partitions_of_kmer;

  for (int trial = 0; trial < 60; ++trial) {
    const int pos = static_cast<int>(rng.below(genome.size() - 60));
    std::string read = genome.substr(pos, 60);
    if (rng.chance(0.5)) read = reverse_complement_str(read);

    const auto codes = codes_of(read);
    std::vector<SuperkmerSpan> spans;
    scanner.scan_read(codes, spans);
    for (const auto& span : spans) {
      for (std::uint32_t i = span.begin; i + config.k <= span.end; ++i) {
        const std::string fwd = read.substr(i, config.k);
        const std::string canon =
            std::min(fwd, reverse_complement_str(fwd));
        partitions_of_kmer[canon].insert(span.partition);
      }
    }
  }
  EXPECT_GT(partitions_of_kmer.size(), 100u);
  for (const auto& [kmer, parts] : partitions_of_kmer) {
    EXPECT_EQ(parts.size(), 1u) << "kmer " << kmer << " split across "
                                << parts.size() << " partitions";
  }
}

TEST(MspBatch, ProcessRangeCountsAndRecords) {
  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 8;

  io::ReadBatch batch;
  Rng rng(109);
  for (int i = 0; i < 20; ++i) batch.add(random_bases(rng, 101));
  batch.add("ACGT");  // too short, must be counted but yield nothing

  MspBatchOutput out(config.num_partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  EXPECT_EQ(out.reads_processed, 21u);
  EXPECT_EQ(out.kmers_covered, 20u * (101 - 27 + 1));

  std::uint64_t kmers = 0;
  std::uint64_t superkmers = 0;
  for (const auto& p : out.parts) {
    kmers += p.kmers;
    superkmers += p.superkmers;
  }
  EXPECT_EQ(kmers, out.kmers_covered);
  EXPECT_GT(superkmers, 0u);
}

TEST(MspBatch, RangesComposeLikeFullScan) {
  MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 4;

  io::ReadBatch batch;
  Rng rng(113);
  for (int i = 0; i < 30; ++i) batch.add(random_bases(rng, 101));

  MspBatchOutput whole(config.num_partitions);
  msp_process_range(batch, config, 0, batch.size(), whole);

  MspBatchOutput merged(config.num_partitions);
  MspBatchOutput part1(config.num_partitions);
  MspBatchOutput part2(config.num_partitions);
  msp_process_range(batch, config, 0, 13, part1);
  msp_process_range(batch, config, 13, batch.size(), part2);
  merged.merge(std::move(part1));
  merged.merge(std::move(part2));

  EXPECT_EQ(merged.reads_processed, whole.reads_processed);
  EXPECT_EQ(merged.kmers_covered, whole.kmers_covered);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    EXPECT_EQ(merged.parts[p].bytes, whole.parts[p].bytes) << "part " << p;
    EXPECT_EQ(merged.parts[p].kmers, whole.parts[p].kmers);
    EXPECT_EQ(merged.parts[p].superkmers, whole.parts[p].superkmers);
  }
}

TEST(MspBatch, ByteSizeSumsParts) {
  MspBatchOutput out(3);
  out.parts[0].bytes = {1, 2, 3};
  out.parts[2].bytes = {4, 5};
  EXPECT_EQ(out.byte_size(), 5u);
}

}  // namespace
}  // namespace parahash::core
