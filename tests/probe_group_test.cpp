// Tests for the group-probing engine: backend mask equivalence (scalar
// vs SSE2 vs AVX2), group-boundary wraparound, tag collisions inside
// one group, forced-backend oracle equivalence over random workloads,
// and the runtime SIMD dispatch (environment overrides included).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/kmer_table.h"
#include "concurrent/probe_group.h"
#include "util/rng.h"
#include "util/simd.h"

namespace parahash::concurrent {
namespace {

using probe::GroupScan;

template <int W>
Kmer<W> random_kmer(Rng& rng, int k) {
  Kmer<W> kmer;
  for (int i = 0; i < k; ++i) kmer.push_back(rng.base());
  return kmer;
}

/// Backends the build AND this CPU can actually run; the others are
/// covered by the scalar-vs-scalar trivial case (and the ci-scalar leg).
std::vector<simd::Level> runnable_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (static_cast<int>(simd::detect()) >=
      static_cast<int>(simd::Level::kSse2)) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::detect() == simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

// ------------------------------------------------- scan-mask oracles

TEST(ProbeGroup, BackendsClassifyRandomMetadataIdentically) {
  // Random metadata arrays (all four byte classes represented), random
  // bases including ones that wrap past the array end: every backend
  // must produce the scalar reference masks bit for bit.
  constexpr std::uint64_t kCapacity = 128;
  constexpr std::uint64_t kMask = kCapacity - 1;
  std::vector<std::atomic<std::uint8_t>> meta(kCapacity);
  Rng rng(424242);

  for (int round = 0; round < 50; ++round) {
    for (auto& m : meta) {
      const auto roll = rng.below(8);
      std::uint8_t byte = 0x00;
      if (roll >= 4) {
        byte = static_cast<std::uint8_t>(0x80 | rng.below(64));  // occupied
      } else if (roll >= 2) {
        byte = 0x01;  // locked
      }
      m.store(byte, std::memory_order_relaxed);
    }
    const std::uint8_t occupied =
        static_cast<std::uint8_t>(0x80 | rng.below(64));

    for (std::uint64_t base = 0; base < kCapacity; ++base) {
      for (const auto level : runnable_levels()) {
        const GroupScan got =
            probe::scan_group(meta.data(), kMask, base, occupied, level);
        const GroupScan want = probe::detail::scan_scalar(
            meta.data(), kMask, base, occupied, got.width);
        EXPECT_EQ(got.width, probe::group_width(level));
        EXPECT_EQ(got.match, want.match)
            << "level=" << simd::to_string(level) << " base=" << base;
        EXPECT_EQ(got.empty, want.empty)
            << "level=" << simd::to_string(level) << " base=" << base;
        EXPECT_EQ(got.locked, want.locked)
            << "level=" << simd::to_string(level) << " base=" << base;
        // The derived masks partition the lanes.
        EXPECT_EQ(got.lane_mask(),
                  got.match | got.empty | got.locked | got.mismatch());
      }
    }
  }
}

TEST(ProbeGroup, TinyCapacityClampsWidth) {
  constexpr std::uint64_t kCapacity = 8;  // smaller than any SIMD width
  std::vector<std::atomic<std::uint8_t>> meta(kCapacity);
  for (std::uint64_t i = 0; i < kCapacity; ++i) {
    meta[i].store(i % 2 == 0 ? 0x00 : 0x01, std::memory_order_relaxed);
  }
  for (const auto level : runnable_levels()) {
    const GroupScan scan =
        probe::scan_group(meta.data(), kCapacity - 1, 3, 0x80, level);
    EXPECT_EQ(scan.width, static_cast<int>(kCapacity));
    EXPECT_EQ(std::popcount(scan.empty | scan.locked), 8);
    EXPECT_EQ(scan.match, 0u);
  }
}

// ------------------------------------------------ table-level checks

TEST(ProbeGroup, WraparoundProbeSequenceStaysExact) {
  // A probe sequence that crosses the metadata array end: with a
  // 32-slot table, keys whose home group straddles slot 31 -> 0 force
  // the wrapped (gathered) scan path. Contents must match the slotwise
  // oracle exactly under every backend.
  const int k = 27;
  const std::uint64_t capacity = 32;
  Rng rng(555);
  std::vector<Kmer<1>> keys;
  std::set<std::string> unique;
  int near_end = 0;
  // Collect 24 distinct keys, at least 8 homed in the last group-width
  // stretch so their groups wrap.
  while (keys.size() < 24) {
    const auto kmer = random_kmer<1>(rng, k);
    const std::uint64_t home = kmer.hash() & (capacity - 1);
    const bool wraps = home > capacity - probe::kGroupWidth;
    if (keys.size() < 8 && !wraps) continue;
    if (wraps) ++near_end;
    if (!unique.insert(kmer.to_string()).second) continue;
    keys.push_back(kmer);
  }
  ASSERT_GE(near_end, 8);

  for (const auto level : runnable_levels()) {
    ConcurrentKmerTable<1> table(capacity, k);
    table.set_simd_level(level);
    ConcurrentKmerTable<1> oracle(capacity, k);
    for (int round = 0; round < 3; ++round) {
      for (const auto& key : keys) {
        table.add(key, round & 3, -1);
        oracle.add_hashed_slotwise(key, key.hash(), round & 3, -1);
      }
    }
    EXPECT_EQ(table.size(), oracle.size());
    oracle.for_each([&](const VertexEntry<1>& e) {
      const auto found = table.find(e.kmer);
      ASSERT_TRUE(found.has_value())
          << simd::to_string(level) << " " << e.kmer.to_string();
      EXPECT_EQ(found->coverage, e.coverage);
      EXPECT_EQ(found->edges, e.edges);
    });
  }
}

TEST(ProbeGroup, EqualTagsInOneGroupDisambiguateByKeyCompare) {
  // Two distinct keys with the SAME 6-bit tag and the SAME home slot:
  // the scan reports both slots as match lanes for either key's
  // fingerprint, and only the full key compare tells them apart — the
  // second key must be probed PAST the first's slot on every add.
  using Table = ConcurrentKmerTable<1>;
  const int k = 27;
  const std::uint64_t capacity = 64;
  const std::uint64_t mask = capacity - 1;

  Rng rng(20260807);
  const Kmer<1> first = random_kmer<1>(rng, k);
  const std::uint64_t home0 = first.hash() & mask;
  const std::uint8_t tag0 = Table::occupied_byte(first.hash());
  Kmer<1> second;
  for (;;) {
    const auto kmer = random_kmer<1>(rng, k);
    if ((kmer.hash() & mask) == home0 &&
        Table::occupied_byte(kmer.hash()) == tag0 &&
        kmer.to_string() != first.to_string()) {
      second = kmer;
      break;
    }
  }

  for (const auto level : runnable_levels()) {
    Table table(capacity, k);
    table.set_simd_level(level);
    TableStats stats;
    stats.absorb(table.add(first, 1, -1));   // inserts at home0, lane 0
    stats.absorb(table.add(second, 2, -1));  // compare-fails first, lane 1
    stats.absorb(table.add(first, 1, -1));   // 1 compare (lane 0 hits)
    stats.absorb(table.add(second, 2, -1));  // 2 compares (lane 0 misses)
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.find(first)->out_weight(1), 2u);
    EXPECT_EQ(table.find(second)->out_weight(2), 2u);
    // The equal tags can never be rejected by fingerprint alone: every
    // foreign encounter is a full key compare, never a tag reject.
    EXPECT_EQ(stats.tag_rejects, 0u);
    EXPECT_EQ(stats.key_compares, 4u);

    // One scan sees both keys as candidate match lanes.
    const auto scan = table.probe_group(home0, tag0);
    EXPECT_GE(std::popcount(scan.match), 2);
  }
}

TEST(ProbeGroup, BackendsProduceIdenticalTablesSequentially) {
  const int k = 27;
  Rng rng(99);
  std::vector<Kmer<1>> keys;
  for (int i = 0; i < 400; ++i) keys.push_back(random_kmer<1>(rng, k));

  // Drive the identical workload (with duplicates) under every backend
  // and demand identical contents AND identical probe statistics.
  std::vector<TableStats> all_stats;
  std::vector<std::uint64_t> sizes;
  ConcurrentKmerTable<1> reference(1024, k);
  for (const auto level : runnable_levels()) {
    ConcurrentKmerTable<1> table(1024, k);
    table.set_simd_level(level);
    TableStats stats;
    Rng pick(7);
    for (int i = 0; i < 6000; ++i) {
      const auto& key = keys[pick.below(keys.size())];
      stats.absorb(table.add(key, static_cast<int>(pick.below(4)),
                             static_cast<int>(pick.below(4))));
    }
    if (all_stats.empty()) {
      table.for_each([&](const VertexEntry<1>& e) {
        reference.add(e.kmer, -1, -1);
      });
    } else {
      // Same placement under every backend.
      std::uint64_t matched = 0;
      table.for_each([&](const VertexEntry<1>& e) {
        matched += reference.find(e.kmer).has_value();
      });
      EXPECT_EQ(matched, table.size());
    }
    all_stats.push_back(stats);
    sizes.push_back(table.size());
  }
  for (std::size_t i = 1; i < all_stats.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[0]);
    EXPECT_EQ(all_stats[i].inserts, all_stats[0].inserts);
    EXPECT_EQ(all_stats[i].probes, all_stats[0].probes);
    EXPECT_EQ(all_stats[i].tag_rejects, all_stats[0].tag_rejects);
    EXPECT_EQ(all_stats[i].key_compares, all_stats[0].key_compares);
    EXPECT_EQ(all_stats[i].lanes_rejected, all_stats[0].lanes_rejected);
  }
}

TEST(ProbeGroup, BackendsAgreeUnderContention) {
  // 8 threads hammering a small keyset through each backend: totals
  // must agree with the sequential scalar oracle.
  const int k = 27;
  const int threads = 8;
  const int per_thread = 4000;
  Rng rng(1212);
  std::vector<Kmer<1>> keys;
  for (int i = 0; i < 60; ++i) keys.push_back(random_kmer<1>(rng, k));

  ConcurrentKmerTable<1> oracle(256, k);
  {
    Rng pick(3);
    for (int i = 0; i < threads * per_thread; ++i) {
      const auto& key = keys[pick.below(keys.size())];
      oracle.add_hashed_slotwise(key, key.hash(),
                                 static_cast<int>(pick.below(4)), -1);
    }
  }

  for (const auto level : runnable_levels()) {
    ConcurrentKmerTable<1> table(256, k);
    table.set_simd_level(level);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Rng pick(3);
        // Re-derive the full op stream; this thread executes its slice.
        for (int i = 0; i < threads * per_thread; ++i) {
          const auto& key = keys[pick.below(keys.size())];
          const int eo = static_cast<int>(pick.below(4));
          if (i % threads == t) table.add(key, eo, -1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(table.size(), oracle.size());
    oracle.for_each([&](const VertexEntry<1>& e) {
      const auto found = table.find(e.kmer);
      ASSERT_TRUE(found.has_value()) << simd::to_string(level);
      EXPECT_EQ(found->coverage, e.coverage);
      EXPECT_EQ(found->edges, e.edges);
    });
  }
}

// -------------------------------------------------- runtime dispatch

TEST(SimdDispatch, ResolveAppliesOverrides) {
  using simd::Level;
  // No overrides: detected level passes through.
  EXPECT_EQ(simd::resolve(nullptr, nullptr, Level::kAvx2), Level::kAvx2);
  // PARAHASH_FORCE_SCALAR wins over everything.
  EXPECT_EQ(simd::resolve("1", nullptr, Level::kAvx2), Level::kScalar);
  EXPECT_EQ(simd::resolve("1", "avx2", Level::kAvx2), Level::kScalar);
  // "0" and empty mean unset.
  EXPECT_EQ(simd::resolve("0", nullptr, Level::kSse2), Level::kSse2);
  EXPECT_EQ(simd::resolve("", nullptr, Level::kSse2), Level::kSse2);
  // PARAHASH_SIMD can lower ...
  EXPECT_EQ(simd::resolve(nullptr, "scalar", Level::kAvx2), Level::kScalar);
  EXPECT_EQ(simd::resolve(nullptr, "sse2", Level::kAvx2), Level::kSse2);
  // ... but never raise above the detected ceiling.
  EXPECT_EQ(simd::resolve(nullptr, "avx2", Level::kSse2), Level::kSse2);
  // Unknown names are ignored.
  EXPECT_EQ(simd::resolve(nullptr, "avx512", Level::kAvx2), Level::kAvx2);
}

TEST(SimdDispatch, EnvironmentOverrideIsHonoured) {
  // The uncached resolver must see the live environment. (active() is
  // deliberately cached, so the test drives level_from_environment.)
  const char* const saved_force = std::getenv("PARAHASH_FORCE_SCALAR");
  const char* const saved_simd = std::getenv("PARAHASH_SIMD");
  const std::string saved_force_value = saved_force ? saved_force : "";
  const std::string saved_simd_value = saved_simd ? saved_simd : "";

  ::setenv("PARAHASH_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(simd::level_from_environment(), simd::Level::kScalar);
  ::unsetenv("PARAHASH_FORCE_SCALAR");

  ::setenv("PARAHASH_SIMD", "scalar", 1);
  EXPECT_EQ(simd::level_from_environment(), simd::Level::kScalar);
  ::unsetenv("PARAHASH_SIMD");

  EXPECT_EQ(simd::level_from_environment(), simd::detect());

  if (saved_force) {
    ::setenv("PARAHASH_FORCE_SCALAR", saved_force_value.c_str(), 1);
  }
  if (saved_simd) ::setenv("PARAHASH_SIMD", saved_simd_value.c_str(), 1);
}

TEST(SimdDispatch, CompiledCeilingBoundsEverything) {
  EXPECT_LE(static_cast<int>(simd::detect()),
            static_cast<int>(simd::compiled_ceiling()));
  EXPECT_LE(static_cast<int>(simd::active()),
            static_cast<int>(simd::detect()));
#if !PARAHASH_SIMD_X86
  // Forced-scalar / sanitizer / non-x86 builds: everything is scalar.
  EXPECT_EQ(simd::compiled_ceiling(), simd::Level::kScalar);
  EXPECT_EQ(simd::detect(), simd::Level::kScalar);
#endif
}

TEST(SimdDispatch, TableClampsRequestedLevel) {
  ConcurrentKmerTable<1> table(64, 21);
  table.set_simd_level(simd::Level::kAvx2);
  EXPECT_LE(static_cast<int>(table.simd_level()),
            static_cast<int>(simd::detect()));
  table.set_simd_level(simd::Level::kScalar);
  EXPECT_EQ(table.simd_level(), simd::Level::kScalar);
}

}  // namespace
}  // namespace parahash::concurrent
