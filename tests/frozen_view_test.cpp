// Parity tests for the serving snapshot: a FrozenTableView (and the
// per-partition FrozenGraph built from it) must answer find/for_each
// IDENTICALLY to the live ConcurrentKmerTable it was frozen from — for
// every SIMD probe backend, after incremental migrations, and with
// adopted overflow entries compacted in.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "concurrent/frozen_view.h"
#include "concurrent/kmer_table.h"
#include "core/frozen_graph.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/simd.h"

namespace parahash::concurrent {
namespace {

template <int W>
Kmer<W> random_kmer(Rng& rng, int k) {
  Kmer<W> kmer;
  for (int i = 0; i < k; ++i) kmer.push_back(rng.base());
  return kmer;
}

struct Op {
  std::string kmer;
  int edge_out;
  int edge_in;
};

template <int W>
std::vector<Op> make_ops(int distinct, int total, int k,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(distinct);
  for (int i = 0; i < distinct; ++i) {
    keys.push_back(random_kmer<W>(rng, k).to_string());
  }
  std::vector<Op> ops;
  ops.reserve(total);
  for (int i = 0; i < total; ++i) {
    Op op;
    op.kmer = keys[rng.below(keys.size())];
    op.edge_out = static_cast<int>(rng.below(5)) - 1;  // -1..3
    op.edge_in = static_cast<int>(rng.below(5)) - 1;
    ops.push_back(op);
  }
  return ops;
}

/// Every backend the host supports, scalar always included.
std::vector<simd::Level> backends() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  if (simd::detect() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::detect() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// find() parity for present keys, absent keys, and for_each coverage,
/// at one SIMD level.
template <int W>
void expect_view_matches_table(const ConcurrentKmerTable<W>& table,
                               FrozenTableView<W>& view,
                               const std::vector<Op>& ops, int k,
                               simd::Level level) {
  view.set_simd_level(level);
  ASSERT_EQ(view.size(), table.size());

  std::set<std::string> present;
  for (const auto& op : ops) present.insert(op.kmer);
  for (const std::string& key : present) {
    const auto kmer = Kmer<W>::from_string(key);
    const auto live = table.find(kmer);
    const auto frozen = view.find(kmer);
    ASSERT_TRUE(live.has_value()) << key;
    ASSERT_TRUE(frozen.has_value())
        << key << " missing at " << simd::to_string(level);
    EXPECT_EQ(frozen->coverage, live->coverage) << key;
    EXPECT_EQ(frozen->edges, live->edges) << key;
  }

  // Absent keys miss in both.
  Rng rng(4242);
  for (int i = 0; i < 256; ++i) {
    const auto kmer = random_kmer<W>(rng, k);
    if (present.contains(kmer.to_string())) continue;
    EXPECT_EQ(view.find(kmer).has_value(),
              table.find(kmer).has_value())
        << kmer.to_string();
  }

  // for_each visits exactly the live key set, once each.
  std::set<std::string> visited;
  view.for_each([&](const VertexEntry<W>& e) {
    EXPECT_TRUE(visited.insert(e.kmer.to_string()).second)
        << "duplicate " << e.kmer.to_string();
  });
  EXPECT_EQ(visited.size(), present.size());
}

TEST(FrozenView, ParityAfterMigrations) {
  // A table ~30x undersized rides through several incremental
  // doublings before the freeze; the snapshot must match the final
  // live state on every probe backend.
  GrowthConfig growth;
  growth.enabled = true;
  const int k = 27;
  const auto ops = make_ops<1>(2000, 8000, k, 99);
  ConcurrentKmerTable<1> table(64, k, growth);
  for (const auto& op : ops) {
    table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  ASSERT_GE(table.migrations(), 1u);

  auto view = FrozenTableView<1>::freeze(table);
  for (const simd::Level level : backends()) {
    SCOPED_TRACE(simd::to_string(level));
    expect_view_matches_table(table, view, ops, k, level);
  }
}

TEST(FrozenView, ParityWithAdoptedOverflowEntries) {
  // Overflow-heavy knobs (tiny displacement bound, migration disabled
  // by a threshold of 1.0) force entries into the overflow region; the
  // freeze must compact them into the same probe-only array as main
  // entries.
  GrowthConfig growth;
  growth.enabled = true;
  growth.max_displacement = 16;
  growth.overflow_fraction = 1.0;
  growth.migration_threshold = 1.0;
  const int k = 27;
  const auto ops = make_ops<1>(80, 600, k, 2024);
  ConcurrentKmerTable<1> table(64, k, growth);
  for (const auto& op : ops) {
    table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  ASSERT_GT(table.overflow_size(), 0u);

  auto view = FrozenTableView<1>::freeze(table);
  for (const simd::Level level : backends()) {
    SCOPED_TRACE(simd::to_string(level));
    expect_view_matches_table(table, view, ops, k, level);
  }
}

TEST(FrozenView, TwoWordKmerParity) {
  const int k = 43;  // W=2 territory
  GrowthConfig growth;
  growth.enabled = true;
  const auto ops = make_ops<2>(500, 2500, k, 5150);
  ConcurrentKmerTable<2> table(64, k, growth);
  for (const auto& op : ops) {
    table.add(Kmer<2>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  auto view = FrozenTableView<2>::freeze(table);
  for (const simd::Level level : backends()) {
    SCOPED_TRACE(simd::to_string(level));
    expect_view_matches_table(table, view, ops, k, level);
  }
}

TEST(FrozenView, FindManyMatchesPointLookups) {
  const int k = 27;
  const auto ops = make_ops<1>(1000, 4000, k, 7);
  ConcurrentKmerTable<1> table(2048, k);
  for (const auto& op : ops) {
    table.add(Kmer<1>::from_string(op.kmer), op.edge_out, op.edge_in);
  }
  auto view = FrozenTableView<1>::freeze(table);

  // Present and absent keys interleaved, in one batched pass.
  Rng rng(11);
  std::vector<Kmer<1>> keys;
  for (const auto& op : ops) keys.push_back(Kmer<1>::from_string(op.kmer));
  for (int i = 0; i < 200; ++i) keys.push_back(random_kmer<1>(rng, k));

  std::vector<std::optional<VertexEntry<1>>> results;
  view.find_many(keys, results);
  ASSERT_EQ(results.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto point = view.find(keys[i]);
    ASSERT_EQ(results[i].has_value(), point.has_value()) << i;
    if (point.has_value()) {
      EXPECT_EQ(results[i]->coverage, point->coverage);
      EXPECT_EQ(results[i]->edges, point->edges);
    }
  }
}

TEST(FrozenView, IsImmutable) {
  ConcurrentKmerTable<1> table(64, 27);
  table.add(Kmer<1>::from_string("ACGTACGTACGTACGTACGTACGTACG"), 1, 2);
  auto view = FrozenTableView<1>::freeze(table);
  EXPECT_THROW(
      view.add(Kmer<1>::from_string("ACGTACGTACGTACGTACGTACGTACG"), 1, 2),
      Error);
}

// --------------------------------------------------------------- graph

TEST(FrozenGraph, MatchesLiveGraphFromPipelineRun) {
  // End-to-end: simulate reads, build the partitioned graph, publish
  // the snapshot through the pipeline hook, and compare every vertex
  // (and a batched find_many pass) against the live graph.
  io::TempDir dir;
  sim::DatasetSpec spec;
  spec.genome_size = 3000;
  spec.read_length = 90;
  spec.coverage = 8.0;
  spec.lambda = 1.0;
  spec.seed = 7;
  const std::string fastq = dir.file("reads.fastq");
  sim::write_dataset(spec, fastq);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 2;
  options.publish_frozen = true;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);
  const auto frozen = system.frozen();
  ASSERT_NE(frozen, nullptr);
  EXPECT_TRUE(report.frozen.published);
  EXPECT_EQ(report.frozen.vertices, report.graph.vertices);
  EXPECT_EQ(frozen->num_vertices(), report.graph.vertices);
  EXPECT_EQ(frozen->k(), graph.k());
  EXPECT_EQ(frozen->p(), graph.p());
  EXPECT_EQ(frozen->num_partitions(), graph.num_partitions());

  std::vector<Kmer<1>> all_kmers;
  graph.for_each_vertex([&](const core::DeBruijnGraph<1>::Entry& e) {
    const auto entry = frozen->find_entry(e.kmer);
    ASSERT_TRUE(entry.has_value()) << e.kmer.to_string();
    EXPECT_EQ(entry->coverage, e.coverage);
    EXPECT_EQ(entry->edges, e.edges);
    all_kmers.push_back(e.kmer);
  });
  ASSERT_EQ(all_kmers.size(), report.graph.vertices);

  std::vector<std::optional<core::FrozenGraph<1>::Entry>> results;
  frozen->find_many(all_kmers, results);
  ASSERT_EQ(results.size(), all_kmers.size());
  for (std::size_t i = 0; i < all_kmers.size(); ++i) {
    ASSERT_TRUE(results[i].has_value()) << all_kmers[i].to_string();
    EXPECT_EQ(results[i]->coverage,
              graph.find(all_kmers[i])->coverage);
  }
}

TEST(FrozenGraph, LoadsFromSubgraphDir) {
  // Step-2 subgraph files round-trip into a snapshot equivalent to the
  // one frozen from the in-memory graph.
  io::TempDir dir;
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 80;
  spec.coverage = 6.0;
  spec.lambda = 0.5;
  spec.seed = 21;
  const std::string fastq = dir.file("reads.fastq");
  sim::write_dataset(spec, fastq);

  pipeline::Options options;
  options.msp.k = 21;
  options.msp.p = 7;
  options.msp.num_partitions = 4;
  options.cpu_threads = 2;
  options.write_subgraphs = true;
  options.subgraph_dir = dir.file("subgraphs");
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);

  const auto loaded = core::FrozenGraph<1>::load_subgraph_dir(
      options.subgraph_dir, options.msp.p);
  EXPECT_EQ(loaded.k(), graph.k());
  EXPECT_EQ(loaded.num_vertices(), report.graph.vertices);
  graph.for_each_vertex([&](const core::DeBruijnGraph<1>::Entry& e) {
    const auto entry = loaded.find_entry(e.kmer);
    ASSERT_TRUE(entry.has_value()) << e.kmer.to_string();
    EXPECT_EQ(entry->coverage, e.coverage);
    EXPECT_EQ(entry->edges, e.edges);
  });
}

}  // namespace
}  // namespace parahash::concurrent
