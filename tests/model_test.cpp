// Tests for Property 1 (expected graph size), the hash-table sizing
// rule, and the Sec. IV-B performance model equations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/perf_model.h"
#include "core/properties.h"
#include "core/reference.h"
#include "sim/read_sim.h"
#include "util/hash.h"

namespace parahash::core {
namespace {

// ------------------------------------------------------------ Property 1

TEST(Property1, PerErrorKmerCountSmallCases) {
  // L=5, k=2 (case 2k <= L+1): an error at position i corrupts
  // min(i+1, k, L-i, L-k+1) kmers; expectation over uniform i:
  // positions 0..4 corrupt 1,2,2,2,1 kmers -> mean 8/5.
  EXPECT_NEAR(expected_erroneous_kmers_per_error(5, 2), 8.0 / 5, 1e-12);
  // L=5, k=4 (case 2k > L+1): positions corrupt 1,2,2,2,1 of the 2
  // kmers? kmers at 0,1: position 0 -> 1, pos 1..3 -> 2, pos 4 -> 1,
  // mean = (1+2+2+2+1)/5 = 8/5.
  EXPECT_NEAR(expected_erroneous_kmers_per_error(5, 4), 8.0 / 5, 1e-12);
}

TEST(Property1, PerErrorMatchesDirectEnumeration) {
  // Directly average the number of kmers covering each error position.
  for (const auto [L, k] : {std::pair{101, 27}, std::pair{50, 31},
                            std::pair{124, 27}, std::pair{30, 29}}) {
    double direct = 0;
    for (int i = 0; i < L; ++i) {
      const int first = std::max(0, i - k + 1);
      const int last = std::min(i, L - k);
      direct += last >= first ? last - first + 1 : 0;
    }
    direct /= L;
    EXPECT_NEAR(expected_erroneous_kmers_per_error(L, k), direct, 1e-9)
        << "L=" << L << " k=" << k;
  }
}

TEST(Property1, BoundIsThetaLOver4) {
  // The paper's bound: E(Y | one error) <= Theta(L/4); the maximum over
  // k is at k ~ L/2 where it approaches L/4 + O(1).
  const int L = 100;
  double max_value = 0;
  for (int k = 1; k <= L; ++k) {
    max_value = std::max(max_value, expected_erroneous_kmers_per_error(L, k));
  }
  EXPECT_GE(max_value, L / 4.0);
  EXPECT_LE(max_value, L / 4.0 + 2.0);
}

TEST(Property1, PredictsSimulatedGraphSize) {
  // The estimate Ge + lambda*N*E1 should be within ~20% of the real
  // distinct-vertex count of a simulated dataset (errors can collide
  // with genome kmers or each other, so it overestimates slightly).
  sim::DatasetSpec spec;
  spec.genome_size = 20'000;
  spec.read_length = 101;
  spec.coverage = 30.0;
  spec.lambda = 1.0;
  spec.seed = 2030;
  const int k = 27;

  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  ReferenceBuilder reference(k);
  for (const auto& r : simulator.all_reads()) reference.add_read(r.bases);

  const double estimate = expected_distinct_vertices(
      spec.genome_size, spec.num_reads(), spec.read_length, k, spec.lambda);
  const double actual = static_cast<double>(reference.distinct_vertices());
  EXPECT_NEAR(estimate / actual, 1.0, 0.2)
      << "estimate " << estimate << " vs actual " << actual;
}

TEST(Property1, DistinctVerticesAreSmallFractionOfKmers) {
  // The paper: distinct vertices ~ 1/5 of all kmers at deep coverage,
  // which is what makes the state-transfer locking pay off.
  sim::DatasetSpec spec;
  spec.genome_size = 10'000;
  spec.read_length = 101;
  spec.coverage = 40.0;
  spec.lambda = 1.0;
  spec.seed = 11;
  const int k = 27;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  ReferenceBuilder reference(k);
  for (const auto& r : simulator.all_reads()) reference.add_read(r.bases);
  const double ratio =
      static_cast<double>(reference.distinct_vertices()) /
      static_cast<double>(reference.total_kmers());
  EXPECT_LT(ratio, 0.45);
  EXPECT_GT(ratio, 0.02);
}

TEST(SizingRule, FollowsPaperFormula) {
  // lambda/(4*alpha) * kmers, rounded up to a power of two.
  const auto slots = hash_table_slots(1'000'000, 2.0, 0.7, 0, 1024);
  const double raw = 2.0 / (4 * 0.7) * 1'000'000;
  EXPECT_EQ(slots, next_pow2(static_cast<std::uint64_t>(std::ceil(raw))));
}

TEST(SizingRule, ClampsToMinAndToKmerCount) {
  EXPECT_EQ(hash_table_slots(10, 2.0, 0.7, 0, 1024), 1024u);
  // lambda huge: never more than kmers/alpha.
  const auto slots = hash_table_slots(1000, 400.0, 0.5, 0, 16);
  EXPECT_LE(slots, next_pow2(static_cast<std::uint64_t>(1000 / 0.5)) * 2);
}

TEST(SizingRule, RejectsBadParameters) {
  EXPECT_THROW(hash_table_slots(1000, 2.0, 0.0), Error);
  EXPECT_THROW(hash_table_slots(1000, 2.0, 1.5), Error);
  EXPECT_THROW(hash_table_slots(1000, -1.0, 0.7), Error);
}

// ------------------------------------------------------------- Eq. (1)

TEST(PerfModel, ComputeBoundStep) {
  StepTimes t;
  t.cpu_compute = 10.0;
  t.gpu_compute = 4.0;
  t.dh_transfer = 1.0;
  t.input = 2.0;
  t.output = 1.0;
  t.partitions = 10;
  // max(10, 5, 0.9*2) + 3/10 = 10.3
  EXPECT_NEAR(estimate_step_elapsed(t), 10.3, 1e-9);
}

TEST(PerfModel, IoBoundStep) {
  StepTimes t;
  t.cpu_compute = 1.0;
  t.gpu_compute = 0.5;
  t.dh_transfer = 0.1;
  t.input = 20.0;
  t.output = 12.0;
  t.partitions = 20;
  // T_io = 19/20 * 20 = 19 -> max(1, 0.6, 19) + 32/20 = 20.6
  EXPECT_NEAR(estimate_step_elapsed(t), 20.6, 1e-9);
  EXPECT_NEAR(estimate_io_bound(t), 20.6, 1e-9);
}

TEST(PerfModel, SinglePartitionHasNoOverlap) {
  StepTimes t;
  t.cpu_compute = 5.0;
  t.input = 2.0;
  t.output = 1.0;
  t.partitions = 1;
  // No partition overlap possible: 5 + (2+1)/1 = 8.
  EXPECT_NEAR(estimate_step_elapsed(t), 8.0, 1e-9);
}

// ------------------------------------------------------------- Eq. (2)

TEST(PerfModel, CoprocessingAddsSpeeds) {
  // CPU alone 10 s, one GPU alone 10 s -> together 5 s.
  EXPECT_NEAR(estimate_coprocessing(10.0, 10.0, 1), 5.0, 1e-9);
  // Two GPUs of speed 1/10 plus CPU of 1/10 -> 10/3 s.
  EXPECT_NEAR(estimate_coprocessing(10.0, 10.0, 2), 10.0 / 3, 1e-9);
  // GPU twice as fast as CPU.
  EXPECT_NEAR(estimate_coprocessing(10.0, 5.0, 1), 1.0 / (0.1 + 0.2), 1e-9);
}

TEST(PerfModel, CoprocessingDegenerateCases) {
  EXPECT_NEAR(estimate_coprocessing(10.0, 0.0, 0), 10.0, 1e-9);
  EXPECT_NEAR(estimate_coprocessing(0.0, 8.0, 2), 4.0, 1e-9);
  EXPECT_EQ(estimate_coprocessing(0.0, 0.0, 0), 0.0);
}

}  // namespace
}  // namespace parahash::core
