// Tests for the device abstraction: CPU device, simulated GPU (result
// equivalence, transfer accounting, capacity rejection).
#include <gtest/gtest.h>

#include <string>

#include "core/reference.h"
#include "device/device.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"
#include "util/rng.h"

namespace parahash::device {
namespace {

struct Workload {
  io::ReadBatch batch;
  std::vector<std::string> reads;
  core::MspConfig config;
};

Workload make_workload(std::uint32_t partitions = 8) {
  Workload w;
  w.config.k = 27;
  w.config.p = 11;
  w.config.num_partitions = partitions;
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 90;
  spec.coverage = 8.0;
  spec.lambda = 1.0;
  spec.seed = 99;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  for (auto& r : simulator.all_reads()) {
    w.batch.add(r.bases);
    w.reads.push_back(std::move(r.bases));
  }
  return w;
}

io::PartitionBlob partition_blob_for(const Workload& w,
                                     io::TempDir& dir,
                                     std::uint32_t part = 0) {
  io::PartitionSet partitions(dir.file("parts"), w.config.k, w.config.p,
                              w.config.num_partitions);
  core::MspBatchOutput out(w.config.num_partitions);
  core::msp_process_range(w.batch, w.config, 0, w.batch.size(), out);
  for (std::uint32_t p = 0; p < w.config.num_partitions; ++p) {
    partitions.writer(p).append_raw(
        out.parts[p].bytes.data(), out.parts[p].bytes.size(),
        out.parts[p].superkmers, out.parts[p].kmers, out.parts[p].bases);
  }
  const auto paths = partitions.close_all();
  return io::PartitionBlob::read_file(paths[part]);
}

TEST(CpuDevice, RunsMspAndTracksStats) {
  const auto w = make_workload();
  CpuDevice<1> cpu(2);
  const auto out = cpu.run_msp(w.batch, w.config);
  EXPECT_EQ(out.reads_processed, w.batch.size());
  const auto stats = cpu.stats();
  EXPECT_EQ(stats.msp_batches, 1u);
  EXPECT_EQ(stats.msp_reads, w.batch.size());
  EXPECT_GT(stats.msp_compute_seconds, 0.0);
  EXPECT_EQ(stats.transfer_seconds, 0.0);  // CPUs do not stage
}

TEST(CpuDevice, MultiThreadMatchesSingleThreadCounts) {
  const auto w = make_workload();
  CpuDevice<1> one(1);
  CpuDevice<1> four(4);
  const auto a = one.run_msp(w.batch, w.config);
  const auto b = four.run_msp(w.batch, w.config);
  EXPECT_EQ(a.reads_processed, b.reads_processed);
  EXPECT_EQ(a.kmers_covered, b.kmers_covered);
  for (std::uint32_t p = 0; p < w.config.num_partitions; ++p) {
    // Thread merge order may differ, so compare counts, not byte order.
    EXPECT_EQ(a.parts[p].kmers, b.parts[p].kmers) << p;
    EXPECT_EQ(a.parts[p].superkmers, b.parts[p].superkmers);
    EXPECT_EQ(a.parts[p].bases, b.parts[p].bases);
    EXPECT_EQ(a.parts[p].bytes.size(), b.parts[p].bytes.size());
  }
}

TEST(SimGpuDevice, MspResultsMatchCpuCounts) {
  const auto w = make_workload();
  CpuDevice<1> cpu(1);
  SimGpuConfig config;
  config.threads = 2;
  config.launch_latency_seconds = 0;
  config.h2d_bytes_per_sec = 0;  // unmetered for this test
  config.d2h_bytes_per_sec = 0;
  SimGpuDevice<1> gpu(config);

  const auto a = cpu.run_msp(w.batch, w.config);
  const auto b = gpu.run_msp(w.batch, w.config);
  EXPECT_EQ(a.kmers_covered, b.kmers_covered);
  for (std::uint32_t p = 0; p < w.config.num_partitions; ++p) {
    EXPECT_EQ(a.parts[p].kmers, b.parts[p].kmers);
    EXPECT_EQ(a.parts[p].superkmers, b.parts[p].superkmers);
  }
}

TEST(SimGpuDevice, HashResultMatchesCpuAndReference) {
  const auto w = make_workload(4);
  io::TempDir dir("device_test");
  const auto blob = partition_blob_for(w, dir, 2);

  core::HashConfig hash_config;
  CpuDevice<1> cpu(2);
  SimGpuConfig config;
  config.launch_latency_seconds = 0;
  config.h2d_bytes_per_sec = 0;
  config.d2h_bytes_per_sec = 0;
  SimGpuDevice<1> gpu(config);

  auto a = cpu.run_hash(blob, hash_config);
  auto b = gpu.run_hash(blob, hash_config);
  EXPECT_EQ(a.table->size(), b.table->size());
  a.table->for_each([&](const concurrent::VertexEntry<1>& e) {
    const auto found = b.table->find(e.kmer);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->coverage, e.coverage);
    EXPECT_EQ(found->edges, e.edges);
  });
}

TEST(SimGpuDevice, TransferTimeScalesWithBytes) {
  const auto w = make_workload();
  SimGpuConfig config;
  config.threads = 1;
  config.launch_latency_seconds = 0;
  config.h2d_bytes_per_sec = 50e6;  // 50 MB/s: slow enough to observe
  config.d2h_bytes_per_sec = 50e6;
  SimGpuDevice<1> gpu(config);

  gpu.run_msp(w.batch, w.config);
  const auto stats = gpu.stats();
  EXPECT_GT(stats.bytes_h2d, 0u);
  EXPECT_GT(stats.bytes_d2h, 0u);
  const double expected =
      static_cast<double>(stats.bytes_h2d) / 50e6 +
      static_cast<double>(stats.bytes_d2h) / 50e6;
  EXPECT_NEAR(stats.transfer_seconds, expected, expected * 0.25 + 0.01);
}

TEST(SimGpuDevice, RejectsOversizedWork) {
  const auto w = make_workload(2);
  io::TempDir dir("device_test");
  const auto blob = partition_blob_for(w, dir, 0);

  SimGpuConfig config;
  config.device_memory_bytes = 1024;  // tiny device
  config.launch_latency_seconds = 0;
  config.h2d_bytes_per_sec = 0;
  config.d2h_bytes_per_sec = 0;
  SimGpuDevice<1> gpu(config);

  core::HashConfig hash_config;
  EXPECT_THROW(gpu.run_hash(blob, hash_config), DeviceCapacityError);
  EXPECT_THROW(gpu.run_msp(w.batch, w.config), DeviceCapacityError);
}

TEST(Device, KindNames) {
  EXPECT_STREQ(device_kind_name(DeviceKind::kCpu), "CPU");
  EXPECT_STREQ(device_kind_name(DeviceKind::kGpu), "GPU");
  CpuDevice<1> cpu(1, "my-cpu");
  EXPECT_EQ(cpu.name(), "my-cpu");
  EXPECT_EQ(cpu.kind(), DeviceKind::kCpu);
  SimGpuDevice<1> gpu(SimGpuConfig{});
  EXPECT_EQ(gpu.kind(), DeviceKind::kGpu);
}

TEST(DeviceStats, DeltaSubtraction) {
  DeviceStats a;
  a.msp_reads = 100;
  a.transfer_seconds = 2.5;
  DeviceStats b;
  b.msp_reads = 40;
  b.transfer_seconds = 1.0;
  const auto d = a - b;
  EXPECT_EQ(d.msp_reads, 60u);
  EXPECT_NEAR(d.transfer_seconds, 1.5, 1e-12);
}

}  // namespace
}  // namespace parahash::device
