// Partition-lifecycle scheduler tests: the PartitionLedger's counter
// protocol (paper Sec. III-E: srv >= cns >= prd >= wrt), its in-flight
// memory budget, and the fused Step-1 → Step-2 runs built on it —
// which must produce bit-identical graphs to unfused runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "core/reference.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "pipeline/partition_ledger.h"
#include "sim/read_sim.h"

namespace parahash::pipeline {
namespace {

io::SealedPartition make_part(std::uint32_t id, std::uint64_t bytes = 0,
                              std::uint64_t kmers = 0) {
  io::SealedPartition part;
  part.id = id;
  part.path = "partition_" + std::to_string(id) + ".phsk";
  part.bytes = bytes;
  part.kmers = kmers;
  return part;
}

// ------------------------------------------------------ ledger units

TEST(PartitionLedger, PublishClaimFifoAndCounters) {
  PartitionLedger ledger;
  EXPECT_EQ(ledger.state(3), PartitionState::kWriting);

  ledger.publish(make_part(3));
  ledger.publish(make_part(1));
  ledger.publish(make_part(2));
  auto c = ledger.counters();
  EXPECT_EQ(c.srv, 3u);
  EXPECT_EQ(c.cns, 0u);
  EXPECT_EQ(ledger.state(3), PartitionState::kSealed);

  // Claims come back in seal order, not id order.
  auto first = ledger.claim();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 3u);
  EXPECT_EQ(ledger.state(3), PartitionState::kClaimed);

  ledger.mark_built(3);
  EXPECT_EQ(ledger.state(3), PartitionState::kBuilt);
  ledger.retire(3);
  EXPECT_EQ(ledger.state(3), PartitionState::kRetired);

  EXPECT_EQ(ledger.claim()->id, 1u);
  EXPECT_EQ(ledger.claim()->id, 2u);
  c = ledger.counters();
  EXPECT_EQ(c.srv, 3u);
  EXPECT_EQ(c.cns, 3u);
  EXPECT_EQ(c.prd, 1u);
  EXPECT_EQ(c.wrt, 1u);
}

TEST(PartitionLedger, CloseDrainsThenEndsStream) {
  PartitionLedger ledger;
  ledger.publish(make_part(0));
  ledger.publish(make_part(1));
  ledger.close();
  EXPECT_TRUE(ledger.claim().has_value());
  EXPECT_TRUE(ledger.claim().has_value());
  EXPECT_FALSE(ledger.claim().has_value());  // closed and drained
}

TEST(PartitionLedger, ClaimBlocksUntilPublish) {
  PartitionLedger ledger;
  std::atomic<bool> claimed{false};
  std::thread consumer([&] {
    auto part = ledger.claim();
    ASSERT_TRUE(part.has_value());
    EXPECT_EQ(part->id, 7u);
    claimed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(claimed);  // nothing sealed yet
  ledger.publish(make_part(7));
  consumer.join();
  EXPECT_TRUE(claimed);
}

TEST(PartitionLedger, BudgetBlocksClaimUntilRetire) {
  // Cost = the partition's byte size; budget fits one 80-byte table.
  PartitionLedger ledger(100, [](const io::SealedPartition& p) {
    return p.bytes;
  });
  ledger.publish(make_part(0, /*bytes=*/80));
  ledger.publish(make_part(1, /*bytes=*/80));

  ASSERT_TRUE(ledger.claim().has_value());
  EXPECT_EQ(ledger.inflight_bytes(), 80u);

  std::atomic<bool> second_claimed{false};
  std::thread consumer([&] {
    auto part = ledger.claim();
    ASSERT_TRUE(part.has_value());
    second_claimed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_claimed);  // 80 + 80 > 100: must wait

  ledger.retire(0);  // frees the budget
  consumer.join();
  EXPECT_TRUE(second_claimed);
  EXPECT_EQ(ledger.inflight_bytes(), 80u);
}

TEST(PartitionLedger, OversizedPartitionAdmittedWhenNothingInFlight) {
  PartitionLedger ledger(10, [](const io::SealedPartition& p) {
    return p.bytes;
  });
  ledger.publish(make_part(0, /*bytes=*/500));  // 50x the budget
  // Progress guarantee: with nothing in flight the head is admitted
  // regardless of cost — it just runs alone.
  EXPECT_TRUE(ledger.claim().has_value());
  EXPECT_EQ(ledger.inflight_bytes(), 500u);
}

TEST(PartitionLedger, AbortUnblocksClaimAndDropsLatePublishes) {
  PartitionLedger ledger;
  std::thread consumer([&] {
    EXPECT_FALSE(ledger.claim().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ledger.abort();
  consumer.join();

  // Publishes after abort are silent no-ops (a dead consumer must not
  // throw into the Step-1 writer path).
  ledger.publish(make_part(0));
  EXPECT_EQ(ledger.counters().srv, 0u);
  EXPECT_TRUE(ledger.aborted());
}

TEST(PartitionLedger, ProtocolViolationsAreChecked) {
  PartitionLedger ledger;
  ledger.publish(make_part(0));
  EXPECT_THROW(ledger.publish(make_part(0)), Error);  // sealed twice
  EXPECT_THROW(ledger.mark_built(0), Error);          // not claimed yet
  EXPECT_THROW(ledger.retire(0), Error);              // not in flight
  ledger.close();
  EXPECT_THROW(ledger.publish(make_part(1)), Error);  // publish after close
}

TEST(PartitionLedger, StateNames) {
  EXPECT_STREQ(partition_state_name(PartitionState::kWriting), "writing");
  EXPECT_STREQ(partition_state_name(PartitionState::kSealed), "sealed");
  EXPECT_STREQ(partition_state_name(PartitionState::kClaimed), "claimed");
  EXPECT_STREQ(partition_state_name(PartitionState::kBuilt), "built");
  EXPECT_STREQ(partition_state_name(PartitionState::kRetired), "retired");
}

TEST(PartitionLedger, ConcurrentStressHoldsCounterInvariant) {
  constexpr std::uint32_t kPartitions = 64;
  constexpr int kConsumers = 4;
  PartitionLedger ledger(256, [](const io::SealedPartition& p) {
    return p.bytes;
  });

  std::atomic<bool> done{false};
  std::thread watcher([&] {
    // The standing invariant of the paper's shared counters, sampled
    // while the pipeline runs: srv >= cns >= prd >= wrt.
    while (!done) {
      const auto c = ledger.counters();
      EXPECT_GE(c.srv, c.cns);
      EXPECT_GE(c.cns, c.prd);
      EXPECT_GE(c.prd, c.wrt);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> consumers;
  std::atomic<std::uint32_t> retired{0};
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      while (auto part = ledger.claim()) {
        ledger.mark_built(part->id);
        ledger.retire(part->id);
        ++retired;
      }
    });
  }

  for (std::uint32_t id = 0; id < kPartitions; ++id) {
    ledger.publish(make_part(id, /*bytes=*/64));
  }
  ledger.close();
  for (auto& t : consumers) t.join();
  done = true;
  watcher.join();

  EXPECT_EQ(retired, kPartitions);
  EXPECT_EQ(ledger.inflight_bytes(), 0u);
  const auto c = ledger.counters();
  EXPECT_EQ(c.srv, kPartitions);
  EXPECT_EQ(c.cns, kPartitions);
  EXPECT_EQ(c.prd, kPartitions);
  EXPECT_EQ(c.wrt, kPartitions);
  for (std::uint32_t id = 0; id < kPartitions; ++id) {
    EXPECT_EQ(ledger.state(id), PartitionState::kRetired);
  }
}

// ---------------------------------------------------- ledger sampler

TEST(LedgerSampler, CapturesCounterTimeline) {
  PartitionLedger ledger;
  constexpr double kPeriod = 1e-3;
  LedgerSampler sampler(ledger, kPeriod);

  ledger.publish(make_part(0));
  auto claimed = ledger.claim();
  ASSERT_TRUE(claimed.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ledger.publish(make_part(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();

  const auto& samples = sampler.samples();
  ASSERT_GE(samples.size(), 2u);  // periodic samples plus the final one
  // Timestamps strictly ordered, counters monotone (each ledger counter
  // only ever advances).
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
    EXPECT_GE(samples[i].counters.srv, samples[i - 1].counters.srv);
    EXPECT_GE(samples[i].counters.cns, samples[i - 1].counters.cns);
    EXPECT_GE(samples[i].counters.prd, samples[i - 1].counters.prd);
    EXPECT_GE(samples[i].counters.wrt, samples[i - 1].counters.wrt);
  }
  // The final (stop-time) sample sees the end state: two published, one
  // claimed.
  EXPECT_EQ(samples.back().counters.srv, 2u);
  EXPECT_EQ(samples.back().counters.cns, 1u);
  // Some mid-run sample caught the consumer ahead of the second
  // publish: cns >= 1 while srv == 1.
  bool saw_midpoint = false;
  for (const auto& s : samples) {
    if (s.counters.cns >= 1 && s.counters.srv == 1) saw_midpoint = true;
  }
  EXPECT_TRUE(saw_midpoint);
}

TEST(LedgerSampler, StopIsIdempotentAndFinalSampleAlwaysTaken) {
  PartitionLedger ledger;
  // A period far longer than the test: only the stop-time sample fires.
  LedgerSampler sampler(ledger, /*period_seconds=*/10.0);
  ledger.publish(make_part(0));
  sampler.stop();
  sampler.stop();
  ASSERT_GE(sampler.samples().size(), 1u);
  EXPECT_EQ(sampler.samples().back().counters.srv, 1u);
}

// ------------------------------------------------- fused integration

struct Dataset {
  io::TempDir dir{"scheduler_test"};
  std::string fastq;
  std::vector<io::Read> reads;
};

std::unique_ptr<Dataset> make_dataset(std::uint64_t genome_size = 2000,
                                      double coverage = 6.0,
                                      std::uint64_t seed = 21) {
  auto d = std::make_unique<Dataset>();
  d->fastq = d->dir.file("reads.fastq");
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = 90;
  spec.coverage = coverage;
  spec.lambda = 1.0;
  spec.seed = seed;
  sim::write_dataset(spec, d->fastq);
  d->reads = io::read_fastx_file(d->fastq);
  return d;
}

Options base_options() {
  Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 2;
  options.batch_bases = 16 << 10;
  return options;
}

TEST(FusedPipeline, MatchesUnfusedBitIdentical) {
  const auto d = make_dataset();
  auto options = base_options();

  ParaHash<1> unfused(options);
  auto [graph_a, report_a] = unfused.construct(d->fastq);
  EXPECT_EQ(report_a.step_overlap_seconds, 0.0);

  options.fuse_steps = true;
  ParaHash<1> fused(options);
  auto [graph_b, report_b] = fused.construct(d->fastq);

  EXPECT_TRUE(graph_a == graph_b);
  // The fused run carries its ledger timeline: the direct record of the
  // shared counters (srv >= cns >= prd >= wrt throughout), ending at
  // the fully-drained state. Overlap itself is asserted in
  // LedgerTimelineShowsStepOverlap, where multi-pass Step 1 keeps the
  // window wide enough to sample reliably.
  ASSERT_FALSE(report_b.ledger_samples.empty());
  for (const auto& s : report_b.ledger_samples) {
    EXPECT_GE(s.counters.srv, s.counters.cns);
    EXPECT_GE(s.counters.cns, s.counters.prd);
    EXPECT_GE(s.counters.prd, s.counters.wrt);
  }
  EXPECT_EQ(report_b.ledger_samples.back().counters.srv,
            options.msp.num_partitions);
  EXPECT_EQ(report_b.ledger_samples.back().counters.wrt,
            options.msp.num_partitions);
  EXPECT_LE(report_b.step_overlap_seconds, report_b.total_elapsed_seconds);
  // All partitions flowed through both steps.
  EXPECT_EQ(report_b.step2.times.items, options.msp.num_partitions);
  EXPECT_GT(report_b.step1.bytes_out, 0u);

  core::ReferenceBuilder reference(options.msp.k);
  for (const auto& r : d->reads) reference.add_read(r.bases);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph_b, &diff)) << diff;
}

TEST(FusedPipeline, MultiPassMatchesUnfused) {
  const auto d = make_dataset(2500, 6.0, 33);
  auto options = base_options();
  options.msp.num_partitions = 16;
  options.max_open_partitions = 5;  // 4 passes over the input

  ParaHash<1> unfused(options);
  auto [graph_a, report_a] = unfused.construct(d->fastq);

  options.fuse_steps = true;
  ParaHash<1> fused(options);
  auto [graph_b, report_b] = fused.construct(d->fastq);

  EXPECT_TRUE(graph_a == graph_b);
  // Fusion changes scheduling, never the Step-1 IO volume.
  EXPECT_EQ(report_b.step1.bytes_in, report_a.step1.bytes_in);
  EXPECT_EQ(report_b.step1.bytes_out, report_a.step1.bytes_out);
}

TEST(FusedPipeline, LedgerTimelineShowsStepOverlap) {
  // Direct Step 1 ∥ Step 2 overlap evidence (the paper's Fig. 12 view):
  // some ledger sample must show Step 2 consuming (cns > 0) while
  // Step 1 is still publishing (srv < num_partitions). Multi-pass
  // Step 1 seals the first pass's partitions early, so Step 2 builds
  // them while the later passes are still scanning the input — the
  // overlap window spans most of the run, not just its tail.
  const auto d = make_dataset(3000, 8.0, 99);
  auto options = base_options();
  options.msp.num_partitions = 16;
  options.max_open_partitions = 4;  // 4 passes over the input
  options.fuse_steps = true;
  options.ledger_sample_period = 1e-4;

  ParaHash<1> fused(options);
  auto [graph, report] = fused.construct(d->fastq);

  ASSERT_GE(report.ledger_samples.size(), 2u);
  bool overlapped = false;
  for (const auto& s : report.ledger_samples) {
    if (s.counters.cns > 0 &&
        s.counters.srv < options.msp.num_partitions) {
      overlapped = true;
    }
  }
  EXPECT_TRUE(overlapped)
      << "no sample caught Step 2 consuming while Step 1 was still "
         "publishing ("
      << report.ledger_samples.size() << " samples)";
  // Timestamps cover the run: the last sample is at stop time, after
  // every partition retired.
  const auto& last = report.ledger_samples.back();
  EXPECT_EQ(last.counters.wrt, options.msp.num_partitions);
  EXPECT_GT(last.t_seconds, 0.0);
}

TEST(FusedPipeline, CoProcessingDeviceMixMatchesReference) {
  const auto d = make_dataset(3000, 8.0, 44);
  auto options = base_options();
  options.msp.num_partitions = 16;
  options.num_gpus = 2;
  options.gpu.launch_latency_seconds = 0;
  options.gpu.h2d_bytes_per_sec = 0;
  options.gpu.d2h_bytes_per_sec = 0;
  options.fuse_steps = true;

  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  core::ReferenceBuilder reference(options.msp.k);
  for (const auto& r : d->reads) reference.add_read(r.bases);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;

  // The fused report splits whole-run device deltas by counter family:
  // every partition's hash build must be attributed in step2, and the
  // step1 shares must carry no hashing counters (and vice versa).
  std::uint64_t hashed = 0;
  for (const auto& dev : report.step2.devices) {
    hashed += dev.stats.hash_partitions;
    EXPECT_EQ(dev.stats.msp_batches, 0u);
  }
  EXPECT_EQ(hashed, options.msp.num_partitions);
  for (const auto& dev : report.step1.devices) {
    EXPECT_EQ(dev.stats.hash_partitions, 0u);
    EXPECT_EQ(dev.stats.transfer_seconds, 0.0);
  }
}

TEST(FusedPipeline, TightTableBudgetStillExact) {
  const auto d = make_dataset(2000, 6.0, 55);
  auto options = base_options();

  ParaHash<1> unfused(options);
  auto [graph_a, report_a] = unfused.construct(d->fastq);

  options.fuse_steps = true;
  // A budget below any single table's estimate: the always-admit-one
  // rule serialises Step-2 claims without deadlocking.
  options.inflight_table_budget_bytes = 1;
  ParaHash<1> fused(options);
  auto [graph_b, report_b] = fused.construct(d->fastq);
  EXPECT_TRUE(graph_a == graph_b);
}

TEST(FusedPipeline, TinyTablesGrowIdenticallyFusedAndUnfused) {
  // Force every partition's table far below its Property-1 estimate:
  // the default kOverflow growth mode must absorb the undersizing
  // in-place (migrations, not restarts) and the fused and unfused
  // schedules must still produce identical graphs.
  const auto d = make_dataset(2500, 8.0, 77);
  auto options = base_options();
  options.hash.slots_override = 64;  // ~every partition must migrate

  ParaHash<1> unfused(options);
  auto [graph_a, report_a] = unfused.construct(d->fastq);
  EXPECT_EQ(report_a.resizes, 0);
  EXPECT_GE(report_a.step2_table.migrations, 1u);

  options.fuse_steps = true;
  ParaHash<1> fused(options);
  auto [graph_b, report_b] = fused.construct(d->fastq);
  EXPECT_EQ(report_b.resizes, 0);
  EXPECT_GE(report_b.step2_table.migrations, 1u);

  EXPECT_TRUE(graph_a == graph_b);
  core::ReferenceBuilder reference(options.msp.k);
  for (const auto& r : d->reads) reference.add_read(r.bases);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph_b, &diff)) << diff;
}

TEST(FusedPipeline, StreamedModeReportsSameStats) {
  const auto d = make_dataset(2000, 8.0, 66);
  auto options = base_options();

  ParaHash<1> retained(options);
  auto [graph, retained_report] = retained.construct(d->fastq);

  options.fuse_steps = true;
  options.accumulate_graph = false;
  ParaHash<1> streamed(options);
  auto [empty_graph, streamed_report] = streamed.construct(d->fastq);

  EXPECT_EQ(empty_graph.num_vertices(), 0u);
  EXPECT_EQ(streamed_report.graph.vertices, retained_report.graph.vertices);
  EXPECT_EQ(streamed_report.graph.total_coverage,
            retained_report.graph.total_coverage);
  EXPECT_EQ(streamed_report.graph.distinct_edges,
            retained_report.graph.distinct_edges);
}

TEST(FusedPipeline, WorkerExceptionAbortsCleanly) {
  const auto d = make_dataset(2000, 6.0, 77);
  auto options = base_options();
  options.fuse_steps = true;
  options.max_open_partitions = 3;  // keep Step 1 streaming mid-failure
  // Force a mid-stream Step-2 failure: a 16-slot table in strict
  // Property-1 mode (no overflow, no restart) overflows on the first
  // real partition.
  options.hash.slots_override = 16;
  options.hash.growth_mode = core::GrowthMode::kFail;

  std::string partition_dir;
  {
    ParaHash<1> system(options);
    partition_dir = system.partition_dir();
    EXPECT_THROW(system.construct(d->fastq), TableFullError);
    EXPECT_TRUE(std::filesystem::exists(partition_dir));
  }
  // Clean abort: the owned partition directory (and every partition
  // file Step 1 managed to write) is gone after destruction.
  EXPECT_FALSE(std::filesystem::exists(partition_dir));
}

TEST(FusedPipeline, SequentialExecutorModeAlsoFuses) {
  const auto d = make_dataset(1500, 5.0, 88);
  auto options = base_options();
  options.pipelined = false;  // per-step sequential executor, still fused

  ParaHash<1> unfused(options);
  auto [graph_a, report_a] = unfused.construct(d->fastq);

  options.fuse_steps = true;
  ParaHash<1> fused(options);
  auto [graph_b, report_b] = fused.construct(d->fastq);
  EXPECT_TRUE(graph_a == graph_b);
}

}  // namespace
}  // namespace parahash::pipeline
