// Parameterized property sweeps: the concurrent table across capacity /
// thread / duplication regimes, and the MSP scanner across the full
// (k, P) envelope including the multi-word boundary.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/kmer_table.h"
#include "core/msp.h"
#include "util/rng.h"

namespace parahash {
namespace {

// ----------------------------------------------------- table sweep

struct TableSweepConfig {
  const char* name;
  int threads;
  int distinct;
  int total;
  double load_factor;  // capacity = distinct / load_factor
};

class TableSweep : public ::testing::TestWithParam<TableSweepConfig> {};

TEST_P(TableSweep, ExactCountsUnderContention) {
  const auto& config = GetParam();
  const int k = 27;
  Rng rng(static_cast<std::uint64_t>(config.distinct) * 31 +
          config.threads);

  // Distinct keys.
  std::vector<Kmer<1>> keys;
  std::set<std::string> unique;
  while (unique.size() < static_cast<std::size_t>(config.distinct)) {
    Kmer<1> kmer;
    for (int i = 0; i < k; ++i) kmer.push_back(rng.base());
    if (unique.insert(kmer.to_string()).second) keys.push_back(kmer);
  }

  // Pre-draw the whole operation stream, then split across threads.
  struct Op {
    std::uint32_t key;
    std::int8_t edge_out;
    std::int8_t edge_in;
  };
  std::vector<Op> ops(static_cast<std::size_t>(config.total));
  for (auto& op : ops) {
    op.key = static_cast<std::uint32_t>(rng.below(keys.size()));
    op.edge_out = static_cast<std::int8_t>(rng.below(5)) - 1;
    op.edge_in = static_cast<std::int8_t>(rng.below(5)) - 1;
  }

  concurrent::ConcurrentKmerTable<1> table(
      static_cast<std::uint64_t>(config.distinct / config.load_factor) + 8,
      k);

  std::vector<std::thread> workers;
  const std::size_t per_thread = ops.size() / config.threads;
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      const std::size_t begin = t * per_thread;
      const std::size_t end =
          t + 1 == config.threads ? ops.size() : begin + per_thread;
      for (std::size_t i = begin; i < end; ++i) {
        table.add(keys[ops[i].key], ops[i].edge_out, ops[i].edge_in);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Exact reference accumulation.
  std::map<std::uint32_t, std::array<std::uint64_t, 9>> expected;
  for (const auto& op : ops) {
    auto& e = expected[op.key];
    ++e[8];
    if (op.edge_out >= 0) ++e[op.edge_out];
    if (op.edge_in >= 0) ++e[4 + op.edge_in];
  }
  EXPECT_EQ(table.size(), expected.size());
  for (const auto& [key, e] : expected) {
    const auto found = table.find(keys[key]);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->coverage, e[8]);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(found->edges[i], e[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, TableSweep,
    ::testing::Values(
        TableSweepConfig{"serial_sparse", 1, 500, 2000, 0.25},
        TableSweepConfig{"serial_dense", 1, 500, 2000, 0.95},
        TableSweepConfig{"hot_keys", 8, 8, 40000, 0.5},
        TableSweepConfig{"mostly_distinct", 8, 5000, 10000, 0.7},
        TableSweepConfig{"paper_ratio", 8, 4000, 20000, 0.7},
        TableSweepConfig{"near_full", 4, 2000, 8000, 0.98},
        TableSweepConfig{"two_threads", 2, 1000, 10000, 0.6},
        TableSweepConfig{"many_threads", 16, 100, 32000, 0.5}),
    [](const auto& info) { return info.param.name; });

// ------------------------------------------------------- msp sweep

struct MspSweepConfig {
  const char* name;
  int k;
  int p;
  int read_len;
};

class MspSweep : public ::testing::TestWithParam<MspSweepConfig> {};

TEST_P(MspSweep, ScannerInvariantsHold) {
  const auto& config = GetParam();
  core::MspConfig msp;
  msp.k = config.k;
  msp.p = config.p;
  msp.num_partitions = 17;
  core::MspScanner scanner(msp);

  Rng rng(static_cast<std::uint64_t>(config.k) * 1000 + config.p);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> codes(
        static_cast<std::size_t>(config.read_len));
    for (auto& c : codes) c = rng.base();

    std::vector<core::SuperkmerSpan> fast;
    std::vector<core::SuperkmerSpan> naive;
    const auto n1 = scanner.scan_read(codes, fast);
    const auto n2 = scanner.scan_read_naive(codes, naive);
    ASSERT_EQ(n1, n2);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i], naive[i]);
    }

    // Tiling invariant.
    if (!fast.empty()) {
      EXPECT_EQ(fast.front().begin, 0u);
      EXPECT_EQ(fast.back().end, codes.size());
      std::uint64_t kmers = 0;
      for (const auto& span : fast) {
        kmers += (span.end - span.begin) - config.k + 1;
      }
      EXPECT_EQ(kmers, n1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KP, MspSweep,
    ::testing::Values(MspSweepConfig{"k63_p16", 63, 16, 150},
                      MspSweepConfig{"k63_p3", 63, 3, 200},
                      MspSweepConfig{"k33_p11", 33, 11, 101},
                      MspSweepConfig{"k5_p2", 5, 2, 40},
                      MspSweepConfig{"k3_p1", 3, 1, 24},
                      MspSweepConfig{"k27_p14", 27, 14, 124},
                      MspSweepConfig{"k45_p9", 45, 9, 90},
                      MspSweepConfig{"read_eq_k", 31, 9, 31}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace parahash
