// Step 3 (graph simplification + contig extraction) tests: the contig
// set must be byte-identical across every execution mode (one
// partition, many partitions sequential, many partitions fused into
// the three-stage chain), the simplifier must actually clip tips and
// pop bubbles on error-bearing reads, the GFA export must round-trip
// the contigs, and the fused chain's second ledger boundary must show
// Step 3 consuming while Step 2 is still producing — the three-band
// Fig.-12 timeline.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/perf_model.h"
#include "core/simplify.h"
#include "core/unitig.h"
#include "io/fastx.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

namespace parahash::pipeline {
namespace {

struct Dataset {
  io::TempDir dir{"step3_test"};
  std::string fastq;
};

std::unique_ptr<Dataset> make_dataset(std::uint64_t genome_size = 3000,
                                      double coverage = 8.0,
                                      std::uint64_t seed = 17,
                                      double lambda = 1.0) {
  auto d = std::make_unique<Dataset>();
  d->fastq = d->dir.file("reads.fastq");
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = 90;
  spec.coverage = coverage;
  spec.lambda = lambda;
  spec.seed = seed;
  sim::write_dataset(spec, d->fastq);
  return d;
}

Options base_options() {
  Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 2;
  options.batch_bases = 16 << 10;
  options.step3 = true;
  return options;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------- determinism across modes

TEST(Step3, ContigsIdenticalAcrossExecutionModes) {
  const auto d = make_dataset();
  auto options = base_options();
  options.min_coverage = 2;
  options.min_tip_len = 2;
  options.bubble_max_len = 60;

  // (a) one partition: no cross-partition stitching at all.
  options.msp.num_partitions = 1;
  options.contigs_out = d->dir.file("a.fa");
  ParaHash<1> one(options);
  one.construct(d->fastq);
  const auto fasta_a = slurp(options.contigs_out);
  const auto contigs_a = one.contigs();

  // (b) eight partitions, sequential executor.
  options.msp.num_partitions = 8;
  options.pipelined = false;
  options.contigs_out = d->dir.file("b.fa");
  ParaHash<1> seq(options);
  seq.construct(d->fastq);
  const auto fasta_b = slurp(options.contigs_out);

  // (c) eight partitions, fused three-stage chain.
  options.pipelined = true;
  options.fuse_steps = true;
  options.contigs_out = d->dir.file("c.fa");
  ParaHash<1> fused(options);
  auto [graph, report] = fused.construct(d->fastq);
  const auto fasta_c = slurp(options.contigs_out);

  ASSERT_FALSE(contigs_a.empty());
  EXPECT_EQ(fasta_a, fasta_b);
  EXPECT_EQ(fasta_a, fasta_c);
  ASSERT_EQ(contigs_a.size(), fused.contigs().size());
  for (std::size_t i = 0; i < contigs_a.size(); ++i) {
    EXPECT_EQ(contigs_a[i].bases, fused.contigs()[i].bases);
    EXPECT_EQ(contigs_a[i].kmers, fused.contigs()[i].kmers);
  }
  EXPECT_EQ(report.step3_stats.contigs, contigs_a.size());
  EXPECT_EQ(report.step3.times.items, 8u);
}

// --------------------------------------------- simplification effects

TEST(Step3, ClipsTipsPopsBubblesAndCompactsThroughJunctions) {
  // min_coverage = 1 keeps every error kmer: a substitution mid-read
  // forks a length-k side path that rejoins (a bubble); one near a
  // read end dangles (a tip). The simplifier must remove both kinds,
  // and the surviving paths must compact THROUGH the former junctions
  // — strictly fewer contigs than plain unitig extraction sees.
  const auto d = make_dataset(4000, 10.0, 5, /*lambda=*/1.0);
  auto options = base_options();
  options.min_coverage = 1;
  options.min_tip_len = 0;     // auto: 2k
  options.bubble_max_len = 0;  // auto: 2k

  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);
  const auto& s3 = report.step3_stats;

  EXPECT_GT(s3.branch_seed_vertices, 0u);
  EXPECT_GT(s3.simplify.tips_clipped, 0u);
  EXPECT_GT(s3.simplify.bubbles_popped, 0u);
  EXPECT_EQ(s3.simplify.removed_vertices,
            s3.simplify.tip_kmers + s3.simplify.bubble_kmers);

  core::UnitigBuilder<1> plain(graph, options.min_coverage,
                               options.min_edge_weight);
  EXPECT_LT(system.contigs().size(), plain.build().size());
}

TEST(Step3, ContigsMatchUnitigsOnCleanReads) {
  // Error-free reads leave nothing to simplify: Step 3's contigs must
  // equal what the caller-side UnitigBuilder extracts directly.
  const auto d = make_dataset(2500, 6.0, 11, /*lambda=*/0.0);
  auto options = base_options();

  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);
  EXPECT_EQ(report.step3_stats.simplify.removed_vertices, 0u);

  core::UnitigBuilder<1> plain(graph, 0, 1);
  auto expected = plain.build();
  std::sort(expected.begin(), expected.end(),
            [](const core::Unitig& a, const core::Unitig& b) {
              if (a.bases.size() != b.bases.size()) {
                return a.bases.size() > b.bases.size();
              }
              return a.bases < b.bases;
            });
  ASSERT_EQ(system.contigs().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(system.contigs()[i].bases, expected[i].bases);
  }
}

// --------------------------------------------------- GFA round-trip

TEST(Step3, GfaRoundTripsContigs) {
  const auto d = make_dataset();
  auto options = base_options();
  options.min_coverage = 2;
  options.gfa_out = d->dir.file("assembly.gfa");

  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);
  ASSERT_FALSE(system.contigs().empty());
  EXPECT_EQ(report.step3_stats.gfa_segments, system.contigs().size());

  std::multiset<std::string> contig_seqs;
  for (const auto& u : system.contigs()) contig_seqs.insert(u.bases);

  std::ifstream in(options.gfa_out);
  ASSERT_TRUE(in.is_open());
  std::multiset<std::string> gfa_seqs;
  std::set<std::string> segment_names;
  std::size_t links = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "S") {
      std::string name, seq;
      fields >> name >> seq;
      gfa_seqs.insert(seq);
      segment_names.insert(name);
    } else if (tag == "L") {
      std::string from, from_dir, to;
      fields >> from >> from_dir >> to;
      ++links;
      EXPECT_TRUE(segment_names.count(from)) << line;
      EXPECT_TRUE(segment_names.count(to)) << line;
    }
  }
  EXPECT_EQ(gfa_seqs, contig_seqs);
  EXPECT_EQ(links, report.step3_stats.gfa_links);
}

// ------------------------------------------- three-band fused timeline

TEST(Step3, FusedTimelineShowsStep23Overlap) {
  // The Fig.-12 three-band view: some sample on the second chain
  // boundary must catch Step 3 consuming built subgraphs (cns2 > 0)
  // while Step 2 has not yet published them all (srv2 < partitions).
  // Multi-pass Step 1 keeps the whole chain's window wide.
  const auto d = make_dataset(3000, 8.0, 99);
  auto options = base_options();
  options.msp.num_partitions = 16;
  options.max_open_partitions = 4;  // 4 passes over the input
  options.fuse_steps = true;
  options.ledger_sample_period = 1e-4;

  ParaHash<1> fused(options);
  auto [graph, report] = fused.construct(d->fastq);

  EXPECT_GT(report.step23_overlap_seconds, 0.0);
  EXPECT_LE(report.step23_overlap_seconds, report.total_elapsed_seconds);

  ASSERT_GE(report.ledger_samples.size(), 2u);
  bool saw_band = false;
  bool overlapped = false;
  for (const auto& s : report.ledger_samples) {
    if (s.bands.size() < 2) continue;
    saw_band = true;
    const auto& b = s.bands[1];
    EXPECT_GE(b.srv, b.cns);
    EXPECT_GE(b.cns, b.prd);
    EXPECT_GE(b.prd, b.wrt);
    if (b.cns > 0 && b.srv < options.msp.num_partitions) {
      overlapped = true;
    }
  }
  EXPECT_TRUE(saw_band) << "no sample carried the step2-step3 band";
  EXPECT_TRUE(overlapped)
      << "no sample caught Step 3 consuming while Step 2 was still "
         "publishing ("
      << report.ledger_samples.size() << " samples)";
  // The final sample is fully drained on both boundaries.
  const auto& last = report.ledger_samples.back();
  ASSERT_GE(last.bands.size(), 2u);
  EXPECT_EQ(last.bands[1].wrt, options.msp.num_partitions);
}

// ----------------------------------------------------- routing + model

TEST(Step3, RoutePartitionMatchesGraphPlacement) {
  const auto d = make_dataset(1500, 5.0, 7);
  auto options = base_options();
  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  std::size_t checked = 0;
  for (std::uint32_t part = 0; part < graph.num_partitions(); ++part) {
    for (const auto& e : graph.partition(part)) {
      ASSERT_EQ(core::route_partition<1>(e.kmer, options.msp.p,
                                         graph.num_partitions()),
                graph.partition_of(e.kmer));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Step3, FusedElapsedModelGeneralisesEqOne) {
  core::StepTimes a;
  a.cpu_compute = 2.0;
  a.input = 1.0;
  a.output = 0.5;
  a.partitions = 4;
  // One stage: identical to Eq. (1).
  EXPECT_DOUBLE_EQ(core::estimate_fused_elapsed({a}),
                   core::estimate_step_elapsed(a));
  // Adding a faster stage only adds its fill/drain share.
  core::StepTimes b;
  b.cpu_compute = 0.5;
  b.input = 0.2;
  b.partitions = 4;
  EXPECT_DOUBLE_EQ(core::estimate_fused_elapsed({a, b}),
                   core::estimate_step_elapsed(a) + b.input / 4.0);
  // A slower second stage dominates the overlapped span.
  core::StepTimes c;
  c.cpu_compute = 8.0;
  c.partitions = 4;
  EXPECT_DOUBLE_EQ(core::estimate_fused_elapsed({a, c}),
                   8.0 + (a.input + a.output) / 4.0);
}

}  // namespace
}  // namespace parahash::pipeline
