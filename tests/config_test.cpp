// Tests for the unified config aggregate (pipeline/config.h) and the
// JSON parser beneath it (util/json.h).
#include <gtest/gtest.h>

#include <string>

#include "pipeline/config.h"
#include "pipeline/report_json.h"
#include "util/error.h"
#include "util/json.h"

namespace parahash {
namespace {

// ----------------------------------------------------------- parser

TEST(JsonParser, ParsesScalarsArraysAndObjects) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1.5, "b": "text", "c": [1, 2, 3], "d": {"e": true},
          "f": null, "g": -7})");
  EXPECT_DOUBLE_EQ(v.at("a").as_double(), 1.5);
  EXPECT_EQ(v.at("b").as_string(), "text");
  EXPECT_EQ(v.at("c").as_array().size(), 3u);
  EXPECT_EQ(v.at("c").as_array()[2].as_int(), 3);
  EXPECT_TRUE(v.at("d").at("e").as_bool());
  EXPECT_TRUE(v.at("f").is_null());
  EXPECT_EQ(v.at("g").as_int(), -7);
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(JsonParser, RoundTripsWriterEscapes) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value(std::string("quote \" slash \\ tab \t nl \n"));
  w.end_object();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("s").as_string(), "quote \" slash \\ tab \t nl \n");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1 2]"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("tru"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
}

TEST(JsonParser, KindMismatchThrows) {
  const JsonValue v = JsonValue::parse(R"({"a": 1})");
  EXPECT_THROW(v.at("a").as_string(), std::runtime_error);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("-3").as_uint(), std::runtime_error);
}

// ----------------------------------------------------------- config

Config non_default_config() {
  Config config;
  config.build.msp.k = 31;
  config.build.msp.p = 13;
  config.build.msp.num_partitions = 128;
  config.build.hash.alpha = 0.8;
  config.build.hash.growth_mode = core::GrowthMode::kRestart;
  config.build.hash.upsert_window =
      concurrent::UpsertWindow::fixed_window(32);
  config.build.cpu_threads = 4;
  config.build.num_gpus = 2;
  config.build.gpu.threads = 3;
  config.build.gpu.name = "test-gpu";
  config.build.fuse_steps = true;
  config.build.inflight_table_budget_bytes = 123456789;
  config.build.autotune.enabled = true;
  config.build.autotune.pin_partitions = true;
  config.build.step3 = true;
  config.build.min_edge_weight = 2;
  config.build.contigs_out = "contigs.fa";
  config.build.publish_frozen = true;
  config.build.frozen_alpha = 0.65;
  config.build.min_coverage = 2;
  config.build.accumulate_graph = false;
  config.serve.socket_path = "/tmp/x.sock";
  config.serve.listen = "127.0.0.1:4100";
  config.serve.worker_threads = 4;
  config.serve.max_batch = 128;
  config.serve.max_connections = 64;
  config.serve.idle_timeout_seconds = 30.0;
  config.serve.cache_entries = 4096;
  config.serve.cache_shards = 4;
  config.serve.max_bfs_radius = 8;
  config.serve.min_edge_weight = 3;
  config.paths.inputs = {"a.fastq", "b.fastq.gz"};
  config.paths.graph = "out.phdg";
  config.paths.report_json = "report.json";
  return config;
}

TEST(Config, JsonRoundTripIsIdentity) {
  const Config config = non_default_config();
  const Config back = Config::from_json(config.to_json());
  EXPECT_EQ(back, config);
  // Spot-check decoded fields (operator== compares serialisations; a
  // field silently dropped by BOTH directions would not be caught by
  // it alone).
  EXPECT_EQ(back.build.msp.k, 31);
  EXPECT_EQ(back.build.hash.growth_mode, core::GrowthMode::kRestart);
  EXPECT_EQ(back.build.hash.upsert_window.to_string(), "32");
  EXPECT_EQ(back.build.inflight_table_budget_bytes, 123456789u);
  EXPECT_TRUE(back.build.autotune.pin_partitions);
  EXPECT_FALSE(back.build.accumulate_graph);
  EXPECT_EQ(back.serve.max_batch, 128);
  EXPECT_EQ(back.serve.listen, "127.0.0.1:4100");
  EXPECT_EQ(back.serve.max_connections, 64);
  EXPECT_DOUBLE_EQ(back.serve.idle_timeout_seconds, 30.0);
  EXPECT_EQ(back.serve.cache_entries, 4096);
  EXPECT_EQ(back.serve.cache_shards, 4);
  EXPECT_EQ(back.paths.inputs.size(), 2u);
  EXPECT_EQ(back.paths.inputs[1], "b.fastq.gz");
}

TEST(Config, DefaultRoundTripIsIdentity) {
  const Config config;
  EXPECT_EQ(Config::from_json(config.to_json()), config);
}

TEST(Config, PartialJsonKeepsDefaults) {
  const Config config = Config::from_json(
      R"({"version": 1, "build": {"k": 23, "hash": {"alpha": 0.9}}})");
  EXPECT_EQ(config.build.msp.k, 23);
  EXPECT_DOUBLE_EQ(config.build.hash.alpha, 0.9);
  // Everything else stays at defaults.
  const Config defaults;
  EXPECT_EQ(config.build.msp.p, defaults.build.msp.p);
  EXPECT_EQ(config.serve, defaults.serve);
  EXPECT_EQ(config.paths, defaults.paths);
}

TEST(Config, RejectsNewerSchemaVersion) {
  EXPECT_THROW(Config::from_json(R"({"version": 999})"),
               InvalidArgumentError);
  EXPECT_THROW(Config::from_json(R"({"version": 0})"),
               InvalidArgumentError);
  EXPECT_THROW(Config::from_json("[]"), InvalidArgumentError);
  EXPECT_THROW(Config::from_json("{nope"), JsonParseError);
}

TEST(Config, RejectsUnknownEnumNames) {
  EXPECT_THROW(
      Config::from_json(R"({"build": {"hash": {"growth_mode": "x"}}})"),
      InvalidArgumentError);
  EXPECT_THROW(Config::from_json(R"({"build": {"encoding": "x"}})"),
               InvalidArgumentError);
}

TEST(Config, FileRoundTrip) {
  const Config config = non_default_config();
  const std::string path = ::testing::TempDir() + "parahash_config.json";
  config.save_file(path);
  EXPECT_EQ(Config::load_file(path), config);
  EXPECT_THROW(Config::load_file(path + ".does-not-exist"), IoError);
}

TEST(Config, EmbedsInReportJson) {
  // The report writer splices the config verbatim under "config" and
  // the round trip through the report recovers it.
  const Config config = non_default_config();
  pipeline::RunReport report;
  const std::string json = pipeline::run_report_json(
      report, "scalar", "16", 0, config.to_json());
  const JsonValue root = JsonValue::parse(json);
  ASSERT_TRUE(root.has("config"));
  EXPECT_EQ(root.at("config").at("build").at("k").as_int(), 31);
}

}  // namespace
}  // namespace parahash
