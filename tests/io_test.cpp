// Tests for the io substrate: FASTA/FASTQ parsing, read batching,
// superkmer partition files, throttled channels, temp dirs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/fastx.h"
#include "io/gzip.h"
#include "io/partition_file.h"
#include "io/throttle.h"
#include "io/tmpdir.h"
#include "util/rng.h"
#include "util/timer.h"

namespace parahash::io {
namespace {

// --------------------------------------------------------------- fastx

TEST(Fastx, ParsesFasta) {
  std::istringstream in(">r1 desc\nACGT\n>r2\nGG\nTT\n>r3\nA\n");
  FastxReader reader(in);
  Read r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.id, "r1 desc");
  EXPECT_EQ(r.bases, "ACGT");
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.id, "r2");
  EXPECT_EQ(r.bases, "GGTT");  // multi-line sequence
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.bases, "A");
  EXPECT_FALSE(reader.next(r));
}

TEST(Fastx, ParsesFastq) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nTTGCA\n+anything\nJJJJJ\n");
  FastxReader reader(in);
  Read r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.bases, "ACGT");
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.bases, "TTGCA");
  EXPECT_FALSE(reader.next(r));
}

TEST(Fastx, HandlesCrlfAndBlankLines) {
  std::istringstream in("\n>r1\r\nAC\r\nGT\r\n\n>r2\nTT\n");
  FastxReader reader(in);
  Read r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.bases, "ACGT");
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.bases, "TT");
  EXPECT_FALSE(reader.next(r));
}

TEST(Fastx, EmptyInputYieldsNothing) {
  std::istringstream in("");
  FastxReader reader(in);
  Read r;
  EXPECT_FALSE(reader.next(r));
}

TEST(Fastx, RejectsGarbage) {
  std::istringstream in("not a fastx file\n");
  FastxReader reader(in);
  Read r;
  EXPECT_THROW(reader.next(r), IoError);
}

TEST(Fastx, RejectsTruncatedFastq) {
  std::istringstream in("@r1\nACGT\n+\n");
  FastxReader reader(in);
  Read r;
  EXPECT_THROW(reader.next(r), IoError);
}

TEST(Fastx, RejectsQualityLengthMismatch) {
  std::istringstream in("@r1\nACGT\n+\nII\n");
  FastxReader reader(in);
  Read r;
  EXPECT_THROW(reader.next(r), IoError);
}

TEST(Fastx, WriterReaderRoundTripFastq) {
  TempDir dir("fastx_test");
  const std::string path = dir.file("reads.fastq");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    writer.write({"a", "ACGTACGT"});
    writer.write({"b", "TTTT"});
    writer.close();
    EXPECT_EQ(writer.records_written(), 2u);
  }
  const auto reads = read_fastx_file(path);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].id, "a");
  EXPECT_EQ(reads[0].bases, "ACGTACGT");
  EXPECT_EQ(reads[1].bases, "TTTT");
}

TEST(Fastx, WriterReaderRoundTripFasta) {
  TempDir dir("fastx_test");
  const std::string path = dir.file("reads.fasta");
  {
    FastxWriter writer(path, FastxWriter::Format::kFasta);
    writer.write({"x", "GATTACA"});
    writer.close();
  }
  const auto reads = read_fastx_file(path);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].bases, "GATTACA");
}

TEST(Fastx, QualityStringRoundTrips) {
  TempDir dir("fastx_test");
  const std::string path = dir.file("q.fastq");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    writer.write({"a", "ACGT", "!I#J"});
    writer.write({"b", "GG", ""});  // no quality: constant filler
    writer.close();
  }
  const auto reads = read_fastx_file(path);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].quality, "!I#J");
  EXPECT_EQ(reads[1].quality, "II");
}

TEST(Fastx, MissingFileThrows) {
  EXPECT_THROW(FastxFileReader("/nonexistent/path.fq"), IoError);
}

// ----------------------------------------------------------- ReadBatch

TEST(ReadBatch, AddAndAccess) {
  ReadBatch batch;
  batch.add("ACGT");
  batch.add("TTGCATT");
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.read_length(0), 4u);
  EXPECT_EQ(batch.read_length(1), 7u);
  EXPECT_EQ(batch.total_bases(), 11u);
  EXPECT_EQ(batch.bases.to_string(), "ACGTTTGCATT");
}

TEST(ReadBatch, UnknownBasesBecomeA) {
  ReadBatch batch;
  batch.add("ANNT");
  EXPECT_EQ(batch.bases.to_string(), "AAAT");
}

TEST(FastxChunker, SplitsIntoBoundedBatches) {
  TempDir dir("chunker_test");
  const std::string path = dir.file("reads.fastq");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    for (int i = 0; i < 10; ++i) {
      writer.write({"r" + std::to_string(i), std::string(100, 'A')});
    }
    writer.close();
  }
  FastxChunker chunker(path, /*max_batch_bases=*/250);
  ReadBatch batch;
  std::size_t total_reads = 0;
  std::size_t batches = 0;
  while (chunker.next(batch)) {
    ++batches;
    total_reads += batch.size();
    EXPECT_LE(batch.size(), 3u);  // 2 full reads fit, 3rd spills over
  }
  EXPECT_EQ(total_reads, 10u);
  EXPECT_GE(batches, 4u);
}

TEST(FastxChunker, OversizedReadStillEmitted) {
  TempDir dir("chunker_test");
  const std::string path = dir.file("reads.fastq");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    writer.write({"big", std::string(1000, 'C')});
    writer.close();
  }
  FastxChunker chunker(path, /*max_batch_bases=*/100);
  ReadBatch batch;
  ASSERT_TRUE(chunker.next(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.read_length(0), 1000u);
  EXPECT_FALSE(chunker.next(batch));
}

// ------------------------------------------------------ partition file

std::vector<std::uint8_t> codes_of(const std::string& s) {
  std::vector<std::uint8_t> codes;
  for (char c : s) codes.push_back(encode_base(c));
  return codes;
}

class PartitionFileTest : public ::testing::TestWithParam<Encoding> {};

TEST_P(PartitionFileTest, WriteReadRoundTrip) {
  TempDir dir("partition_test");
  const std::string path = dir.file("part.phsk");
  const auto s1 = codes_of("ACGTACGTACGTACGTACGTACGTACGTA");  // 29 bases
  const auto s2 = codes_of("TTTTGGGGCCCCAAAATTTTGGGGCCC");    // 27
  {
    PartitionWriter writer(path, /*k=*/27, /*p=*/11, /*id=*/5, GetParam());
    writer.add(s1.data(), s1.size(), true, true);
    writer.add(s2.data(), s2.size(), false, false);
    writer.close();
    EXPECT_EQ(writer.header().superkmer_count, 2u);
    // record 1: core 27 -> 1 kmer; record 2: core 27 -> 1 kmer.
    EXPECT_EQ(writer.header().kmer_count, 2u);
    EXPECT_EQ(writer.header().base_count, 56u);
  }

  const PartitionBlob blob = PartitionBlob::read_file(path);
  EXPECT_EQ(blob.header().partition_id, 5u);
  EXPECT_EQ(blob.header().k, 27u);
  EXPECT_EQ(blob.header().superkmer_count, 2u);

  auto it = blob.begin();
  SuperkmerView v1 = *it;
  EXPECT_EQ(v1.n_bases, 29);
  EXPECT_TRUE(v1.has_left);
  EXPECT_TRUE(v1.has_right);
  EXPECT_EQ(v1.core_len(), 27);
  EXPECT_EQ(v1.core_begin(), 1);
  EXPECT_EQ(v1.kmer_count(27), 1);
  EXPECT_EQ(v1.to_string(), "ACGTACGTACGTACGTACGTACGTACGTA");

  ++it;
  SuperkmerView v2 = *it;
  EXPECT_EQ(v2.n_bases, 27);
  EXPECT_FALSE(v2.has_left);
  EXPECT_FALSE(v2.has_right);
  EXPECT_EQ(v2.core_begin(), 0);
  EXPECT_EQ(v2.to_string(), "TTTTGGGGCCCCAAAATTTTGGGGCCC");

  ++it;
  EXPECT_TRUE(it == blob.end());
}

TEST_P(PartitionFileTest, RecordOffsetsIndexEveryRecord) {
  TempDir dir("partition_test");
  const std::string path = dir.file("part.phsk");
  Rng rng(3);
  std::vector<std::string> originals;
  {
    PartitionWriter writer(path, 5, 3, 0, GetParam());
    for (int i = 0; i < 50; ++i) {
      std::string s;
      const int len = 5 + static_cast<int>(rng.below(60));
      for (int j = 0; j < len; ++j) s.push_back(decode_base(rng.base()));
      originals.push_back(s);
      const auto codes = codes_of(s);
      writer.add(codes.data(), codes.size(), false, false);
    }
    writer.close();
  }
  const PartitionBlob blob = PartitionBlob::read_file(path);
  const auto offsets = record_offsets(blob);
  ASSERT_EQ(offsets.size(), originals.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(record_at(blob, offsets[i]).to_string(), originals[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, PartitionFileTest,
                         ::testing::Values(Encoding::kTwoBit,
                                           Encoding::kByte),
                         [](const auto& info) {
                           return info.param == Encoding::kTwoBit ? "TwoBit"
                                                                  : "Byte";
                         });

TEST(PartitionFile, TwoBitEncodingIsQuarterSize) {
  TempDir dir("partition_test");
  const auto codes = codes_of(std::string(400, 'G'));
  std::uint64_t two_bit_size = 0;
  std::uint64_t byte_size = 0;
  for (auto [enc, out] :
       {std::pair{Encoding::kTwoBit, &two_bit_size},
        std::pair{Encoding::kByte, &byte_size}}) {
    const std::string path = dir.file(enc == Encoding::kTwoBit ? "a" : "b");
    PartitionWriter writer(path, 27, 11, 0, enc);
    for (int i = 0; i < 100; ++i) {
      writer.add(codes.data(), codes.size(), false, false);
    }
    writer.close();
    *out = writer.bytes_written();
  }
  // Payload shrinks 4x; headers/record framing add a little.
  EXPECT_LT(two_bit_size, byte_size / 3);
}

TEST(PartitionFile, AppendRawMatchesAdd) {
  TempDir dir("partition_test");
  const auto s = codes_of("ACGTACGTTTGCAGCATATTACCGGAT");
  const std::string direct_path = dir.file("direct");
  const std::string raw_path = dir.file("raw");
  {
    PartitionWriter writer(direct_path, 5, 3, 0);
    writer.add(s.data(), s.size(), true, false);
    writer.close();
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_superkmer_record(bytes, s.data(), s.size(), true, false,
                            Encoding::kTwoBit);
    PartitionWriter writer(raw_path, 5, 3, 0);
    writer.append_raw(bytes.data(), bytes.size(), 1,
                      s.size() - 1 - 5 + 1, s.size());
    writer.close();
  }
  const auto direct = PartitionBlob::read_file(direct_path);
  const auto raw = PartitionBlob::read_file(raw_path);
  EXPECT_EQ(direct.bytes(), raw.bytes());
}

TEST(PartitionFile, RejectsCorruptHeader) {
  TempDir dir("partition_test");
  const std::string path = dir.file("bad.phsk");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a partition file at all, but long enough to read";
  }
  EXPECT_THROW(PartitionBlob::read_file(path), IoError);
}

TEST(PartitionFile, RejectsTooShortFile) {
  TempDir dir("partition_test");
  const std::string path = dir.file("short.phsk");
  {
    std::ofstream f(path, std::ios::binary);
    f << "abc";
  }
  EXPECT_THROW(PartitionBlob::read_file(path), IoError);
}

TEST(PartitionSet, RoutesAndCloses) {
  TempDir dir("partition_test");
  PartitionSet set(dir.file("parts"), 27, 11, 8);
  EXPECT_EQ(set.size(), 8u);
  const auto s = codes_of(std::string(30, 'T'));
  set.writer(3).add(s.data(), s.size(), false, false);
  const auto paths = set.close_all();
  ASSERT_EQ(paths.size(), 8u);
  const auto blob3 = PartitionBlob::read_file(paths[3]);
  EXPECT_EQ(blob3.header().superkmer_count, 1u);
  const auto blob0 = PartitionBlob::read_file(paths[0]);
  EXPECT_EQ(blob0.header().superkmer_count, 0u);
  EXPECT_EQ(set.total_kmers(), blob3.header().kmer_count);
}

// ------------------------------------------------------------ throttle

TEST(Throttle, UnlimitedDoesNotBlock) {
  Throttle throttle(0);
  WallTimer timer;
  throttle.consume(100'000'000);
  EXPECT_LT(timer.seconds(), 0.05);
}

TEST(Throttle, EnforcesBandwidth) {
  Throttle throttle(1'000'000);  // 1 MB/s
  WallTimer timer;
  throttle.consume(50'000);
  throttle.consume(50'000);  // 100 KB total -> >= 0.1 s
  EXPECT_GE(timer.seconds(), 0.08);
  EXPECT_EQ(throttle.total_bytes(), 100'000u);
}

// ------------------------------------------------------ quality trimming

TEST(QualityTrim, DropsLowQualityTail) {
  Read read{"r", "ACGTACGT", "IIIII##!"};  // last 3 below phred 20
  EXPECT_EQ(quality_trim_3prime(read, 20), 3u);
  EXPECT_EQ(read.bases, "ACGTA");
  EXPECT_EQ(read.quality, "IIIII");
}

TEST(QualityTrim, KeepsInteriorLowQuality) {
  // Only the 3' tail is trimmed; interior dips stay.
  Read read{"r", "ACGTACGT", "II!IIIII"};
  EXPECT_EQ(quality_trim_3prime(read, 20), 0u);
  EXPECT_EQ(read.bases.size(), 8u);
}

TEST(QualityTrim, NoQualityIsNoop) {
  Read read{"r", "ACGT", ""};
  EXPECT_EQ(quality_trim_3prime(read, 20), 0u);
  EXPECT_EQ(read.bases, "ACGT");
}

TEST(QualityTrim, CanConsumeWholeRead) {
  Read read{"r", "ACGT", "!!!!"};
  EXPECT_EQ(quality_trim_3prime(read, 20), 4u);
  EXPECT_TRUE(read.bases.empty());
}

TEST(QualityTrim, ChunkerAppliesTrim) {
  TempDir dir("trim_test");
  const std::string path = dir.file("reads.fastq");
  {
    std::ofstream f(path);
    f << "@good\n" << std::string(60, 'A') << "\n+\n"
      << std::string(60, 'I') << "\n";
    f << "@tail\n" << std::string(60, 'C') << "\n+\n"
      << std::string(40, 'I') << std::string(20, '!') << "\n";
    f << "@junk\n" << std::string(60, 'G') << "\n+\n"
      << std::string(60, '!') << "\n";
  }
  FastxChunker chunker(path, 1 << 20, /*quality_trim_phred=*/20);
  ReadBatch batch;
  ASSERT_TRUE(chunker.next(batch));
  ASSERT_EQ(batch.size(), 2u);  // fully-junk read dropped
  EXPECT_EQ(batch.read_length(0), 60u);
  EXPECT_EQ(batch.read_length(1), 40u);
  EXPECT_FALSE(chunker.next(batch));
}

// ---------------------------------------------------------------- gzip

TEST(Gzip, WriterReaderRoundTrip) {
  TempDir dir("gzip_test");
  const std::string path = dir.file("reads.fastq.gz");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    writer.write({"a", "ACGTACGTACGT"});
    writer.write({"b", "TTTTGGGG"});
    writer.close();
  }
  EXPECT_TRUE(is_gzip_file(path));
  const auto reads = read_fastx_file(path);  // content-sniffed, not by name
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].bases, "ACGTACGTACGT");
  EXPECT_EQ(reads[1].bases, "TTTTGGGG");
}

TEST(Gzip, PlainFileIsNotDetectedAsGzip) {
  TempDir dir("gzip_test");
  const std::string path = dir.file("plain.fastq");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    writer.write({"a", "ACGT"});
    writer.close();
  }
  EXPECT_FALSE(is_gzip_file(path));
  EXPECT_EQ(read_fastx_file(path).size(), 1u);
}

TEST(Gzip, CompressionActuallyShrinks) {
  TempDir dir("gzip_test");
  const std::string gz_path = dir.file("big.fastq.gz");
  const std::string plain_path = dir.file("big.fastq");
  const std::string bases(1000, 'A');
  for (const auto& path : {gz_path, plain_path}) {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    for (int i = 0; i < 100; ++i) writer.write({"r", bases});
    writer.close();
  }
  EXPECT_LT(std::filesystem::file_size(gz_path),
            std::filesystem::file_size(plain_path) / 10);
}

TEST(Gzip, ChunkerReadsCompressedInput) {
  TempDir dir("gzip_test");
  const std::string path = dir.file("reads.fastq.gz");
  {
    FastxWriter writer(path, FastxWriter::Format::kFastq);
    for (int i = 0; i < 20; ++i) {
      writer.write({"r" + std::to_string(i), std::string(50, 'C')});
    }
    writer.close();
  }
  FastxChunker chunker(path, 200);
  ReadBatch batch;
  std::size_t total = 0;
  while (chunker.next(batch)) total += batch.size();
  EXPECT_EQ(total, 20u);
}

// -------------------------------------------------------------- tmpdir

TEST(TempDir, CreatesAndRemoves) {
  std::string path;
  {
    TempDir dir("tmpdir_test");
    path = dir.path();
    EXPECT_TRUE(std::filesystem::exists(path));
    std::ofstream(dir.file("x.txt")) << "hello";
    EXPECT_TRUE(std::filesystem::exists(dir.file("x.txt")));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDir, UniquePaths) {
  TempDir a("tmpdir_test");
  TempDir b("tmpdir_test");
  EXPECT_NE(a.path(), b.path());
}

}  // namespace
}  // namespace parahash::io
