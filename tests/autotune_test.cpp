// Autotuner policy and control-loop tests driven by synthetic
// telemetry (the tick() core is pure given a ControlSample), plus an
// end-to-end check that a --autotune run matches the default run's
// graph and documents its decisions in the report.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrent/batched_upsert.h"
#include "concurrent/kmer_table.h"
#include "core/properties.h"
#include "io/tmpdir.h"
#include "pipeline/autotune.h"
#include "pipeline/parahash.h"
#include "pipeline/partition_ledger.h"
#include "sim/read_sim.h"

namespace parahash {
namespace {

using pipeline::Actuators;
using pipeline::AutotuneOptions;
using pipeline::Autotuner;
using pipeline::ControlSample;
using pipeline::DeviceControlSample;

constexpr std::uint64_t kMiB = std::uint64_t{1} << 20;

// A recording actuator set: every change lands in plain variables the
// test can assert on (and feed back into the next sample, closing the
// loop the way the live pipeline does).
struct Recorder {
  std::uint64_t budget = 0;
  int window = 0;
  std::vector<std::pair<std::size_t, int>> lease_calls;

  Actuators actuators() {
    Actuators a;
    a.set_inflight_budget = [this](std::uint64_t b) { budget = b; };
    a.set_upsert_window = [this](int w) { window = w; };
    a.set_lease_lanes = [this](std::size_t i, int lanes) {
      lease_calls.emplace_back(i, lanes);
    };
    return a;
  }
};

ControlSample base_sample() {
  ControlSample s;
  s.t_seconds = 1.0;
  s.devices.push_back(DeviceControlSample{"cpu", false, 4, 0.04, 0, 1});
  return s;
}

int count_knob(const std::vector<pipeline::TunerDecision>& decisions,
               const std::string& knob) {
  int n = 0;
  for (const auto& d : decisions) n += d.knob == knob;
  return n;
}

// --- Static policy rules --------------------------------------------

TEST(AutotunePolicy, PartitionCountGrowsWithWork) {
  core::HashConfig hash;
  const std::uint64_t bps = 32;
  const auto small = Autotuner::pick_partition_count(
      1e6, hash, bps, /*memory_target=*/512 * kMiB, /*gpu_mem=*/0, 1);
  const auto large = Autotuner::pick_partition_count(
      1e9, hash, bps, /*memory_target=*/512 * kMiB, /*gpu_mem=*/0, 1);
  EXPECT_GE(small, 4u);
  EXPECT_GT(large, small);
  // Powers of two (the MSP fingerprint router needs it).
  EXPECT_EQ(large & (large - 1), 0u);
}

TEST(AutotunePolicy, PartitionCountRespectsDeviceMemory) {
  core::HashConfig hash;
  const std::uint64_t bps = 32;
  const auto roomy = Autotuner::pick_partition_count(
      1e9, hash, bps, /*memory_target=*/0, /*gpu_mem=*/8192 * kMiB, 2);
  const auto tight = Autotuner::pick_partition_count(
      1e9, hash, bps, /*memory_target=*/0, /*gpu_mem=*/64 * kMiB, 2);
  // A smaller device memory forces more, smaller partitions: two
  // tables (table + staged blob) must fit the 64 MiB device.
  EXPECT_GT(tight, roomy);
  const auto kmers_per_part = static_cast<std::uint64_t>(1e9) / tight;
  const auto slots = core::hash_table_slots(kmers_per_part, hash.lambda,
                                            hash.alpha, 0, hash.min_slots);
  EXPECT_LE(2 * slots * bps, 64 * kMiB);
}

TEST(AutotunePolicy, PartitionCountFloorScalesWithDevices) {
  core::HashConfig hash;
  // Negligible work: the floor of 4 partitions per device (rounded up
  // to a power of two) decides.
  EXPECT_EQ(Autotuner::pick_partition_count(100, hash, 32, 0, 0, 1), 4u);
  EXPECT_EQ(Autotuner::pick_partition_count(100, hash, 32, 0, 0, 3), 16u);
}

TEST(AutotunePolicy, InflightBudgetBounds) {
  const std::uint64_t table = 10 * kMiB;
  // Unconstrained: six tables.
  EXPECT_EQ(Autotuner::pick_inflight_budget(table, 0), 6 * table);
  // Half the memory target caps it...
  EXPECT_EQ(Autotuner::pick_inflight_budget(table, 80 * kMiB), 4 * table);
  // ...but never below the two tables pipelining needs.
  EXPECT_EQ(Autotuner::pick_inflight_budget(table, 8 * kMiB), 2 * table);
  EXPECT_EQ(Autotuner::pick_inflight_budget(0, 80 * kMiB), 0u);
}

TEST(AutotunePolicy, DefaultMemoryTargetIsPositive) {
  EXPECT_GT(Autotuner::default_memory_target(), 0u);
}

// --- Upsert-window control ------------------------------------------

TEST(AutotuneTick, UpsertWindowFollowsMeasuredProbeLength) {
  concurrent::set_tuned_window(concurrent::UpsertWindow::kDefault);
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  Autotuner tuner(opt, /*table_bytes=*/0);
  Recorder rec;

  ControlSample s = base_sample();
  s.mean_probe_length = 6.0;
  s.probe_samples = concurrent::UpsertWindow::kAutoWarmup;
  tuner.tick(s, rec.actuators());

  EXPECT_EQ(rec.window, concurrent::UpsertWindow::tuned_for(6.0));
  const auto decisions = tuner.decisions();
  ASSERT_EQ(count_knob(decisions, "upsert_window"), 1);
  EXPECT_EQ(decisions[0].new_value, rec.window);
  EXPECT_EQ(decisions[0].measured_value, 6.0);
}

TEST(AutotuneTick, UpsertWindowWaitsForWarmup) {
  concurrent::set_tuned_window(concurrent::UpsertWindow::kDefault);
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  Autotuner tuner(opt, 0);
  Recorder rec;

  ControlSample s = base_sample();
  s.mean_probe_length = 6.0;
  s.probe_samples = concurrent::UpsertWindow::kAutoWarmup - 1;
  tuner.tick(s, rec.actuators());
  EXPECT_TRUE(tuner.decisions().empty());
}

TEST(AutotuneTick, CooldownDampsOscillation) {
  concurrent::set_tuned_window(concurrent::UpsertWindow::kDefault);
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  opt.cooldown_ticks = 5;
  Autotuner tuner(opt, 0);
  Recorder rec;
  Actuators act = rec.actuators();
  // Wire the loop closed: each change lands in the tuned-window slot
  // the next tick reads, as in the live pipeline.
  act.set_upsert_window = [&](int w) {
    rec.window = w;
    concurrent::set_tuned_window(w);
  };

  // A measured probe length that flip-flops every tick would retune
  // every tick without damping; the cooldown bounds it.
  for (int t = 0; t < 20; ++t) {
    ControlSample s = base_sample();
    s.mean_probe_length = (t % 2 == 0) ? 2.0 : 7.0;
    s.probe_samples = concurrent::UpsertWindow::kAutoWarmup;
    tuner.tick(s, act);
  }
  const int changes = count_knob(tuner.decisions(), "upsert_window");
  EXPECT_GE(changes, 1);
  EXPECT_LE(changes, 20 / opt.cooldown_ticks);
  concurrent::set_tuned_window(concurrent::UpsertWindow::kDefault);
}

TEST(AutotuneTick, PinnedWindowIsNeverTouched) {
  concurrent::set_tuned_window(concurrent::UpsertWindow::kDefault);
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  opt.pin_upsert_window = true;
  Autotuner tuner(opt, 0);
  Recorder rec;

  for (int t = 0; t < 5; ++t) {
    ControlSample s = base_sample();
    s.mean_probe_length = 7.0;
    s.probe_samples = concurrent::UpsertWindow::kAutoWarmup;
    tuner.tick(s, rec.actuators());
  }
  EXPECT_EQ(rec.window, 0);  // actuator never called
  EXPECT_EQ(count_knob(tuner.decisions(), "upsert_window"), 0);
}

TEST(AutotuneTick, TunedWindowDrivesBatchedUpserter) {
  concurrent::set_tuned_window(32);
  concurrent::ConcurrentKmerTable<1> table(256, 15);
  concurrent::TableStats stats;
  concurrent::BatchedUpserter<1> up(
      table, stats, concurrent::UpsertWindow::tuned_window());
  EXPECT_EQ(up.window(), 32);
  // A mid-run retune (the control thread writing the slot) takes
  // effect at the next flush.
  concurrent::set_tuned_window(8);
  up.push(Kmer<1>::from_string("ACGTACGTACGTACG"), 0, 1);
  up.flush();
  EXPECT_EQ(up.window(), 8);
  concurrent::set_tuned_window(concurrent::UpsertWindow::kDefault);
}

// --- In-flight budget control ---------------------------------------

TEST(AutotuneTick, BudgetRaisedWhenClaimsBlockWithHeadroom) {
  AutotuneOptions opt;
  opt.memory_target_bytes = 100 * kMiB;
  const std::uint64_t table = 10 * kMiB;
  Autotuner tuner(opt, table);
  Recorder rec;

  ControlSample s = base_sample();
  s.ledger.srv = 6;
  s.ledger.cns = 2;  // backlog: sealed partitions waiting
  s.budget_bytes = 2 * table;
  s.inflight_bytes = 2 * table;  // next claim would not fit
  s.rss_bytes = 40 * kMiB;       // well under the target
  tuner.tick(s, rec.actuators());

  EXPECT_EQ(rec.budget, 3 * table);
  ASSERT_EQ(count_knob(tuner.decisions(), "inflight_budget"), 1);
}

TEST(AutotuneTick, BudgetShedWhenRssExceedsTarget) {
  AutotuneOptions opt;
  opt.memory_target_bytes = 100 * kMiB;
  const std::uint64_t table = 10 * kMiB;
  Autotuner tuner(opt, table);
  Recorder rec;

  ControlSample s = base_sample();
  s.budget_bytes = 5 * table;
  s.inflight_bytes = 4 * table;
  s.rss_bytes = 120 * kMiB;  // over the target
  tuner.tick(s, rec.actuators());

  EXPECT_EQ(rec.budget, 4 * table);

  // Never below the two tables pipelining needs, however long the
  // pressure lasts.
  opt.cooldown_ticks = 0;
  Autotuner floor_tuner(opt, table);
  Recorder floor_rec;
  std::uint64_t budget = 5 * table;
  for (int t = 0; t < 10; ++t) {
    ControlSample p = base_sample();
    p.budget_bytes = budget;
    p.inflight_bytes = 2 * table;
    p.rss_bytes = 120 * kMiB;
    Actuators act = floor_rec.actuators();
    act.set_inflight_budget = [&](std::uint64_t b) { budget = b; };
    floor_tuner.tick(p, act);
  }
  EXPECT_EQ(budget, 2 * table);
}

TEST(AutotuneTick, PinnedBudgetIsNeverTouched) {
  AutotuneOptions opt;
  opt.memory_target_bytes = 100 * kMiB;
  opt.pin_inflight_budget = true;
  const std::uint64_t table = 10 * kMiB;
  Autotuner tuner(opt, table);
  Recorder rec;

  ControlSample s = base_sample();
  s.ledger.srv = 6;
  s.ledger.cns = 2;
  s.budget_bytes = 2 * table;
  s.inflight_bytes = 2 * table;
  s.rss_bytes = 40 * kMiB;
  tuner.tick(s, rec.actuators());
  EXPECT_EQ(rec.budget, 0u);
  EXPECT_EQ(count_knob(tuner.decisions(), "inflight_budget"), 0);
}

// --- Device leases ---------------------------------------------------

TEST(AutotuneTick, DivergentGpuIsParkedOnce) {
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  Autotuner tuner(opt, 0);
  Recorder rec;

  // GPU measured 10x the CPU's span per partition — far beyond any
  // modelled ratio; the tuner must stop feeding it.
  ControlSample s;
  s.t_seconds = 2.0;
  s.devices.push_back(DeviceControlSample{"cpu", false, 8, 0.08, 0, 1});
  s.devices.push_back(
      DeviceControlSample{"sim-gpu", true, 4, 0.3, 0.1, 1});
  tuner.tick(s, rec.actuators());

  ASSERT_EQ(rec.lease_calls.size(), 1u);
  EXPECT_EQ(rec.lease_calls[0], (std::pair<std::size_t, int>{1, 0}));
  ASSERT_EQ(count_knob(tuner.decisions(), "lease.sim-gpu"), 1);

  // Parking is one-way: further divergent samples change nothing.
  ControlSample after = s;
  after.devices[1].lanes = 0;
  for (int t = 0; t < 20; ++t) tuner.tick(after, rec.actuators());
  EXPECT_EQ(rec.lease_calls.size(), 1u);
}

TEST(AutotuneTick, GpuWithinModelRatioStaysLeased) {
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  opt.divergence_threshold = 0.25;
  Autotuner tuner(opt, 0);
  // Calibration predicted the GPU 4x slower per partition; a measured
  // 4.5x is within the 25% divergence band (and the 3x absolute floor
  // does not apply once a model ratio exists).
  pipeline::CalibrationReport cal;
  cal.ran = true;
  cal.devices.push_back({"cpu", false, 1e8, 0.01});
  cal.devices.push_back({"sim-gpu", true, 2.5e7, 0.04});
  tuner.set_calibration(cal);
  Recorder rec;

  ControlSample s;
  s.devices.push_back(DeviceControlSample{"cpu", false, 8, 0.08, 0, 1});
  s.devices.push_back(
      DeviceControlSample{"sim-gpu", true, 4, 0.15, 0.03, 1});
  tuner.tick(s, rec.actuators());
  EXPECT_TRUE(rec.lease_calls.empty());
}

TEST(AutotuneTick, CpuLeaseWidensUnderBacklogAndDecaysWhenClear) {
  AutotuneOptions opt;
  opt.memory_target_bytes = 1024 * kMiB;
  opt.cooldown_ticks = 1;
  Autotuner tuner(opt, 0);
  int lanes = 1;
  Recorder rec;
  Actuators act = rec.actuators();
  act.set_lease_lanes = [&](std::size_t, int n) { lanes = n; };

  auto sample = [&](bool backlog) {
    ControlSample s;
    s.ledger.srv = backlog ? 8 : 4;
    s.ledger.cns = 4;
    s.devices.push_back(
        DeviceControlSample{"cpu", false, 4, 0.04, 0, lanes});
    return s;
  };

  // Three consecutive backlogged ticks admit the second lane.
  for (int t = 0; t < 3; ++t) tuner.tick(sample(true), act);
  EXPECT_EQ(lanes, 2);
  // Once the backlog clears for long enough, the lease narrows again.
  for (int t = 0; t < 10; ++t) tuner.tick(sample(false), act);
  EXPECT_EQ(lanes, 1);
}

// --- Ledger re-negotiation (the budget actuator's target) ------------

TEST(AutotuneLedger, RaisingBudgetUnblocksClaim) {
  pipeline::PartitionLedger ledger(
      /*inflight_budget_bytes=*/100,
      [](const io::SealedPartition&) { return std::uint64_t{80}; });
  io::SealedPartition a;
  a.id = 0;
  io::SealedPartition b;
  b.id = 1;
  ledger.publish(a);
  ledger.publish(b);
  ledger.close();

  auto first = ledger.claim();  // always admitted
  ASSERT_TRUE(first.has_value());

  std::atomic<bool> claimed{false};
  std::thread waiter([&] {
    auto second = ledger.claim();  // blocked: 160 > 100
    EXPECT_TRUE(second.has_value());
    claimed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(claimed.load());
  ledger.set_budget(200);  // the autotuner's raise path
  waiter.join();
  EXPECT_TRUE(claimed.load());
  EXPECT_EQ(ledger.budget(), 200u);
}

// --- End to end ------------------------------------------------------

TEST(AutotuneIntegration, SelfTunedRunMatchesDefaultGraph) {
  io::TempDir dir("autotune");
  sim::DatasetSpec spec;
  spec.genome_size = 4000;
  spec.read_length = 100;
  spec.coverage = 10.0;
  spec.lambda = 1.0;
  spec.seed = 777;
  const std::string fastq = dir.file("reads.fastq");
  sim::write_dataset(spec, fastq);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 2;

  pipeline::ParaHash<1> reference(options);
  auto [ref_graph, ref_report] = reference.construct(fastq);

  pipeline::Options tuned_options = options;
  tuned_options.autotune.enabled = true;
  tuned_options.autotune.memory_target_bytes = 512 * kMiB;
  pipeline::ParaHash<1> tuned(tuned_options);
  auto [graph, report] = tuned.construct(fastq);

  // Identical graph whatever configuration the tuner picked.
  EXPECT_EQ(report.graph.vertices, ref_report.graph.vertices);
  EXPECT_EQ(report.graph.total_coverage, ref_report.graph.total_coverage);

  // The report documents the tuner: calibration ran and fitted this
  // dataset, and every choice is in the decision log.
  ASSERT_TRUE(report.tuner.enabled);
  const auto& cal = report.tuner.calibration;
  ASSERT_TRUE(cal.ran);
  EXPECT_GT(cal.sampled_bases, 0u);
  EXPECT_GT(cal.kmers_per_base, 0.0);
  EXPECT_GT(cal.chosen_partitions, 0u);
  EXPECT_GT(cal.predicted_step2_seconds, 0.0);
  ASSERT_FALSE(report.tuner.decisions.empty());
  EXPECT_GE(count_knob(report.tuner.decisions, "partitions"), 1);
  EXPECT_GE(count_knob(report.tuner.decisions, "inflight_budget"), 1);

  // Self-tuned wall time stays within a (very loose — CI runs on one
  // core) factor of the default run: the tuner must not wreck the run.
  EXPECT_LT(report.total_elapsed_seconds,
            10 * ref_report.total_elapsed_seconds + 5.0);
}

TEST(AutotuneIntegration, ExplicitFlagsPinTheTuner) {
  io::TempDir dir("autotune_pin");
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 100;
  spec.coverage = 6.0;
  spec.seed = 42;
  const std::string fastq = dir.file("reads.fastq");
  sim::write_dataset(spec, fastq);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.autotune.enabled = true;
  options.autotune.memory_target_bytes = 512 * kMiB;
  options.autotune.pin_partitions = true;  // "--partitions 8" given
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);

  ASSERT_TRUE(report.tuner.enabled);
  // The pinned knob was honoured and never decided on.
  EXPECT_EQ(count_knob(report.tuner.decisions, "partitions"), 0);
  EXPECT_EQ(graph.num_partitions(), 8u);
}

}  // namespace
}  // namespace parahash
