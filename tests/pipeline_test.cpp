// Tests for the pipeline substrate: the srv/cns/prd/wrt queues and the
// pipelined / sequential executors (ordering, completeness, work
// stealing, capacity overflow, error propagation).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "device/device.h"
#include "pipeline/executor.h"
#include "pipeline/queue.h"

namespace parahash::pipeline {
namespace {

// ------------------------------------------------------------- queues

TEST(TicketQueue, FifoTickets) {
  TicketQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) queue.push(i * 10);
  queue.close();
  for (int i = 0; i < 4; ++i) {
    const auto got = queue.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->first, static_cast<std::uint64_t>(i));
    EXPECT_EQ(got->second, i * 10);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(TicketQueue, BlocksProducerWhenFull) {
  TicketQueue<int> queue(2);
  queue.push(1);
  queue.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.push(3);  // must block until a pop frees a slot
    third_pushed.store(true);
    queue.close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_TRUE(queue.pop().has_value());
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(TicketQueue, ManyConsumersEachTicketOnce) {
  TicketQueue<int> queue(8);
  constexpr int kItems = 2000;
  std::mutex seen_mutex;
  std::set<std::uint64_t> seen;
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      while (auto got = queue.pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_TRUE(seen.insert(got->first).second) << "duplicate ticket";
      }
    });
  }
  for (int i = 0; i < kItems; ++i) queue.push(i);
  queue.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kItems));
}

TEST(TicketQueue, CloseWakesBlockedConsumers) {
  TicketQueue<int> queue(2);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

TEST(OutputQueue, DrainsUntilAllProducersDone) {
  OutputQueue<int> queue(4);
  queue.set_expected_producers(2);
  std::thread p1([&] {
    for (int i = 0; i < 10; ++i) queue.push(i);
    queue.producer_done();
  });
  std::thread p2([&] {
    for (int i = 10; i < 20; ++i) queue.push(i);
    queue.producer_done();
  });
  std::set<int> got;
  while (auto item = queue.pop()) got.insert(*item);
  p1.join();
  p2.join();
  EXPECT_EQ(got.size(), 20u);
}

// ---------------------------------------------------------- executors

template <int W>
StepCallbacks<int, int, W> doubling_callbacks(int total,
                                              std::atomic<int>& produced,
                                              std::vector<int>& consumed,
                                              std::mutex& consumed_mutex) {
  StepCallbacks<int, int, W> callbacks;
  callbacks.produce = [&produced, total](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= total) return false;
    item = i;
    return true;
  };
  callbacks.compute = [](device::Device<W>&, const int& item) {
    return item * 2;
  };
  callbacks.consume = [&consumed, &consumed_mutex](int item) {
    std::lock_guard<std::mutex> lock(consumed_mutex);
    consumed.push_back(item);
  };
  return callbacks;
}

TEST(Executor, PipelinedProcessesEverything) {
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  std::atomic<int> produced{0};
  std::vector<int> consumed;
  std::mutex consumed_mutex;
  const auto callbacks =
      doubling_callbacks<1>(100, produced, consumed, consumed_mutex);

  const auto times = run_pipelined(devices, callbacks, 4);
  EXPECT_EQ(times.items, 100u);
  ASSERT_EQ(consumed.size(), 100u);
  std::sort(consumed.begin(), consumed.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(consumed[i], 2 * i);
}

TEST(Executor, SequentialProcessesEverythingInOrder) {
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  std::atomic<int> produced{0};
  std::vector<int> consumed;
  std::mutex consumed_mutex;
  const auto callbacks =
      doubling_callbacks<1>(50, produced, consumed, consumed_mutex);

  const auto times = run_sequential(devices, callbacks);
  EXPECT_EQ(times.items, 50u);
  ASSERT_EQ(consumed.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(consumed[i], 2 * i);  // in order
}

TEST(Executor, MultiDeviceSharesWork) {
  device::CpuDevice<1> a(1, "cpu-a");
  device::CpuDevice<1> b(1, "cpu-b");
  std::vector<device::Device<1>*> devices{&a, &b};

  std::atomic<int> produced{0};
  std::atomic<int> computed{0};
  std::atomic<int> consumed_count{0};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [&](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= 200) return false;
    item = i;
    return true;
  };
  callbacks.compute = [&](device::Device<1>&, const int& item) {
    computed.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return item;
  };
  callbacks.consume = [&](int) { consumed_count.fetch_add(1); };

  const auto times = run_pipelined(devices, callbacks, 4);
  EXPECT_EQ(times.items, 200u);
  EXPECT_EQ(computed.load(), 200);
  EXPECT_EQ(consumed_count.load(), 200);
}

TEST(Executor, PipelinedOverlapsStages) {
  // Each stage takes ~1ms per item; pipelined wall time should be well
  // under the sum of the stage busy times.
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  constexpr int kItems = 40;
  constexpr auto kDelay = std::chrono::milliseconds(1);

  std::atomic<int> produced{0};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [&](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= kItems) return false;
    std::this_thread::sleep_for(kDelay);
    item = i;
    return true;
  };
  callbacks.compute = [&](device::Device<1>&, const int& item) {
    std::this_thread::sleep_for(kDelay);
    return item;
  };
  callbacks.consume = [&](int) { std::this_thread::sleep_for(kDelay); };

  const auto times = run_pipelined(devices, callbacks, 4);
  const double busy =
      times.input_seconds + times.compute_seconds + times.output_seconds;
  EXPECT_EQ(times.items, static_cast<std::uint64_t>(kItems));
  EXPECT_LT(times.elapsed_seconds, busy * 0.8)
      << "pipeline failed to overlap stages";
}

struct CapacityFussyDevice final : device::Device<1> {
  explicit CapacityFussyDevice(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  device::DeviceKind kind() const override {
    return device::DeviceKind::kGpu;
  }
  core::MspBatchOutput run_msp(const io::ReadBatch&,
                               const core::MspConfig&) override {
    throw Error("unused");
  }
  core::SubgraphBuildResult<1> run_hash(
      const io::PartitionBlob&, const core::HashConfig&) override {
    throw Error("unused");
  }
  core::CompactScanResult<1> run_compact(
      std::uint32_t, const std::vector<concurrent::VertexEntry<1>>&,
      const core::CompactScanConfig&) override {
    throw Error("unused");
  }
  device::DeviceStats stats() const override { return {}; }
  std::string name_;
};

TEST(Executor, CapacityRejectionsFallBackToCpu) {
  device::CpuDevice<1> cpu(1);
  CapacityFussyDevice gpu("fussy-gpu");
  std::vector<device::Device<1>*> devices{&cpu, &gpu};

  std::atomic<int> produced{0};
  std::atomic<int> cpu_items{0};
  std::atomic<int> consumed_count{0};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [&](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= 60) return false;
    item = i;
    return true;
  };
  callbacks.compute = [&](device::Device<1>& dev, const int& item) {
    if (dev.kind() == device::DeviceKind::kGpu) {
      throw DeviceCapacityError("does not fit");
    }
    cpu_items.fetch_add(1);
    return item;
  };
  callbacks.consume = [&](int) { consumed_count.fetch_add(1); };

  const auto times = run_pipelined(devices, callbacks, 4);
  EXPECT_EQ(times.items, 60u);
  EXPECT_EQ(cpu_items.load(), 60);
  EXPECT_EQ(consumed_count.load(), 60);
}

TEST(Executor, CapacityRejectionWithoutCpuThrows) {
  CapacityFussyDevice gpu("fussy-gpu");
  std::vector<device::Device<1>*> devices{&gpu};

  std::atomic<int> produced{0};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [&](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= 3) return false;
    item = i;
    return true;
  };
  callbacks.compute = [&](device::Device<1>&, const int& item) -> int {
    throw DeviceCapacityError("does not fit");
    return item;
  };
  callbacks.consume = [&](int) {};

  EXPECT_THROW(run_pipelined(devices, callbacks, 2), DeviceCapacityError);
  produced.store(0);  // fresh input for the second executor
  EXPECT_THROW(run_sequential(devices, callbacks), DeviceCapacityError);
}

TEST(TicketQueue, AbortUnblocksProducer) {
  TicketQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    // Ring is full; this push must block until abort, then drop.
    EXPECT_FALSE(queue.push(2));
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(unblocked.load());
  queue.abort();
  producer.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_FALSE(queue.pop().has_value());  // aborted queues yield nothing
}

TEST(Executor, ComputeErrorDoesNotDeadlockFullQueue) {
  // Regression: worker dies on item 0 while the producer still has many
  // items; without queue abort the producer blocks on the full ring and
  // join() hangs forever.
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  std::atomic<int> produced{0};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [&](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= 1000) return false;
    item = i;
    return true;
  };
  callbacks.compute = [&](device::Device<1>&, const int&) -> int {
    throw std::runtime_error("dead on arrival");
  };
  callbacks.consume = [&](int) {};
  EXPECT_THROW(run_pipelined(devices, callbacks, 2), std::runtime_error);
}

TEST(Executor, ComputeErrorsPropagate) {
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  std::atomic<int> produced{0};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [&](int& item) {
    const int i = produced.fetch_add(1);
    if (i >= 10) return false;
    item = i;
    return true;
  };
  callbacks.compute = [&](device::Device<1>&, const int& item) -> int {
    if (item == 5) throw std::runtime_error("kernel failed");
    return item;
  };
  callbacks.consume = [&](int) {};
  EXPECT_THROW(run_pipelined(devices, callbacks, 2), std::runtime_error);
}

TEST(Executor, ProduceErrorsPropagate) {
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [](int&) -> bool {
    throw IoError("disk on fire");
  };
  callbacks.compute = [](device::Device<1>&, const int& item) {
    return item;
  };
  callbacks.consume = [](int) {};
  EXPECT_THROW(run_pipelined(devices, callbacks, 2), IoError);
}

TEST(Executor, EmptyInputCompletesImmediately) {
  device::CpuDevice<1> cpu(1);
  std::vector<device::Device<1>*> devices{&cpu};
  StepCallbacks<int, int, 1> callbacks;
  callbacks.produce = [](int&) { return false; };
  callbacks.compute = [](device::Device<1>&, const int& item) {
    return item;
  };
  callbacks.consume = [](int) {};
  EXPECT_EQ(run_pipelined(devices, callbacks, 2).items, 0u);
  EXPECT_EQ(run_sequential(devices, callbacks).items, 0u);
}

}  // namespace
}  // namespace parahash::pipeline
