// Tests for the warp-synchronous SIMT hashing kernel: bit-identical
// results to the scalar kernel, correct lockstep accounting, and the
// divergence metric's basic properties.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/msp.h"
#include "core/reference.h"
#include "core/subgraph.h"
#include "device/simt_kernel.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"
#include "util/rng.h"

namespace parahash::device {
namespace {

io::PartitionBlob one_partition(std::uint64_t genome_size, double coverage,
                                double lambda, std::uint64_t seed,
                                std::vector<std::string>* reads_out) {
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = 80;
  spec.coverage = coverage;
  spec.lambda = lambda;
  spec.seed = seed;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);

  core::MspConfig config;
  config.k = 27;
  config.p = 11;
  config.num_partitions = 1;

  io::ReadBatch batch;
  for (auto& r : simulator.all_reads()) {
    if (reads_out != nullptr) reads_out->push_back(r.bases);
    batch.add(r.bases);
  }
  core::MspBatchOutput out(1);
  core::msp_process_range(batch, config, 0, batch.size(), out);

  io::TempDir dir("simt_test");
  io::PartitionSet set(dir.file("p"), config.k, config.p, 1);
  set.writer(0).append_raw(out.parts[0].bytes.data(),
                           out.parts[0].bytes.size(),
                           out.parts[0].superkmers, out.parts[0].kmers,
                           out.parts[0].bases);
  const auto paths = set.close_all();
  return io::PartitionBlob::read_file(paths[0]);
}

TEST(Simt, MatchesScalarKernelExactly) {
  std::vector<std::string> reads;
  const auto blob = one_partition(2000, 8.0, 1.0, 66, &reads);

  core::HashConfig hash_config;
  auto scalar = core::build_subgraph<1>(blob, hash_config, nullptr);

  concurrent::ConcurrentKmerTable<1> simt_table(scalar.table->capacity(),
                                                27);
  const auto stats = simt_process_partition<1>(blob, simt_table, 32);

  EXPECT_EQ(simt_table.size(), scalar.table->size());
  EXPECT_EQ(stats.kmers, blob.header().kmer_count);
  scalar.table->for_each([&](const concurrent::VertexEntry<1>& e) {
    const auto found = simt_table.find(e.kmer);
    ASSERT_TRUE(found.has_value()) << e.kmer.to_string();
    EXPECT_EQ(found->coverage, e.coverage);
    EXPECT_EQ(found->edges, e.edges);
  });

  // Cross-check against the reference oracle too.
  core::ReferenceBuilder reference(27);
  for (const auto& r : reads) reference.add_read(r);
  EXPECT_EQ(simt_table.size(), reference.distinct_vertices());
}

TEST(Simt, DivergenceFactorAtLeastOne) {
  const auto blob = one_partition(1500, 6.0, 1.0, 67, nullptr);
  concurrent::ConcurrentKmerTable<1> table(
      core::hash_table_slots(blob.header().kmer_count, 2.0, 0.7), 27);
  const auto stats = simt_process_partition<1>(blob, table, 32);
  EXPECT_GE(stats.divergence_factor(), 1.0);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_GE(stats.lane_slots, stats.useful_probes);
  EXPECT_LE(stats.lane_slots, stats.rounds * 32);
}

TEST(Simt, DivergenceGrowsWithLoadFactor) {
  const auto blob = one_partition(3000, 10.0, 2.0, 68, nullptr);
  // Size the tight table from the TRUE distinct count so it is nearly
  // full but never overflows (a full table throws, see below).
  core::HashConfig hash_config;
  auto sized = core::build_subgraph<1>(blob, hash_config, nullptr);
  const std::uint64_t distinct = sized.table->size();

  // Roomy table: short probes, low divergence. Tight table: long,
  // varied probes, higher divergence.
  concurrent::ConcurrentKmerTable<1> roomy(distinct * 8, 27);
  concurrent::ConcurrentKmerTable<1> tight(distinct + distinct / 16, 27);
  const auto low = simt_process_partition<1>(blob, roomy, 32);
  const auto high = simt_process_partition<1>(blob, tight, 32);
  EXPECT_GT(high.divergence_factor(), low.divergence_factor());
}

TEST(Simt, FullTableThrowsInsteadOfSpinning) {
  const auto blob = one_partition(1000, 4.0, 2.0, 70, nullptr);
  concurrent::ConcurrentKmerTable<1> tiny(16, 27);  // far too small
  EXPECT_THROW(simt_process_partition<1>(blob, tiny, 32), TableFullError);
}

TEST(Simt, FullTableUnwindLeavesNoLockedSlots) {
  // Regression: the kernel used to throw TableFullError from inside a
  // lane step, abandoning sibling lanes mid-flight. The unwind must
  // leave every slot empty or occupied — never `locked` — or any later
  // prober (including the resize-and-retry recovery path walking the
  // old table) would spin forever.
  const auto blob = one_partition(1000, 4.0, 2.0, 70, nullptr);
  concurrent::ConcurrentKmerTable<1> tiny(16, 27);
  EXPECT_THROW(simt_process_partition<1>(blob, tiny, 32), TableFullError);
  EXPECT_EQ(tiny.locked_slots(), 0u);
  // Single-threaded, a lane only fails after seeing every slot occupied
  // by foreign keys — and its drained siblings then resolve as updates
  // or failures — so the unwound table is exactly full, and every
  // occupied slot is still a readable, consistent vertex.
  EXPECT_EQ(tiny.size(), tiny.capacity());
  std::uint64_t visited = 0;
  tiny.for_each([&](const concurrent::VertexEntry<1>& e) {
    ++visited;
    EXPECT_GE(e.coverage, 1u);
  });
  EXPECT_EQ(visited, tiny.size());
}

TEST(Simt, GrowthTableAbsorbsOverflowMidWarp) {
  // The same far-too-small table that throws above, but with bounded
  // growth enabled: lanes whose probes exhaust the displacement bound
  // divert to the overflow region mid-warp, migrations re-home the
  // surviving lanes, and the whole partition completes with contents
  // identical to the scalar build — no TableFullError, no slot left
  // locked by a diverted lane.
  const auto blob = one_partition(1000, 4.0, 2.0, 70, nullptr);

  core::HashConfig hash_config;
  auto scalar = core::build_subgraph<1>(blob, hash_config, nullptr);

  concurrent::GrowthConfig growth;
  growth.enabled = true;
  concurrent::ConcurrentKmerTable<1> tiny(16, 27, growth);
  const auto stats = simt_process_partition<1>(blob, tiny, 32);

  EXPECT_EQ(stats.kmers, blob.header().kmer_count);
  EXPECT_GE(tiny.migrations(), 1u);
  EXPECT_EQ(tiny.locked_slots(), 0u);
  EXPECT_EQ(tiny.size(), scalar.table->size());
  scalar.table->for_each([&](const concurrent::VertexEntry<1>& e) {
    const auto found = tiny.find(e.kmer);
    ASSERT_TRUE(found.has_value()) << e.kmer.to_string();
    EXPECT_EQ(found->coverage, e.coverage);
    EXPECT_EQ(found->edges, e.edges);
  });
}

TEST(Simt, WarpSizeOneHasNoDivergence) {
  const auto blob = one_partition(1000, 5.0, 1.0, 69, nullptr);
  concurrent::ConcurrentKmerTable<1> table(
      core::hash_table_slots(blob.header().kmer_count, 2.0, 0.7), 27);
  const auto stats = simt_process_partition<1>(blob, table, 1);
  // A 1-lane warp never waits for other lanes (no kRetry possible
  // single-threaded): every issued slot is useful.
  EXPECT_DOUBLE_EQ(stats.divergence_factor(), 1.0);
}

TEST(Simt, EmptyPartition) {
  io::TempDir dir("simt_empty");
  io::PartitionWriter writer(dir.file("e.phsk"), 27, 11, 0);
  writer.close();
  const auto blob = io::PartitionBlob::read_file(dir.file("e.phsk"));
  concurrent::ConcurrentKmerTable<1> table(64, 27);
  const auto stats = simt_process_partition<1>(blob, table, 32);
  EXPECT_EQ(stats.kmers, 0u);
  EXPECT_EQ(stats.warps, 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(ProbeGroupStep, MatchesAddSemantics) {
  using Table = concurrent::ConcurrentKmerTable<1>;
  Table table(64, 21);
  const auto a = Kmer<1>::from_string("ACGTACGTACGTACGTACGTA");

  // Fresh key: the first group step at its home index inserts.
  const std::uint64_t home = a.hash() & (table.capacity() - 1);
  concurrent::AddResult first;
  const auto s1 = table.probe_group_step(home, a, 1, 2, first);
  EXPECT_EQ(s1.outcome, concurrent::ProbeOutcome::kDone);
  EXPECT_GT(s1.width, 0);
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.group_scans, 1u);
  EXPECT_EQ(table.size(), 1u);

  // Same key again: the step resolves as an update in the same group.
  concurrent::AddResult second;
  const auto s2 = table.probe_group_step(home, a, 1, -1, second);
  EXPECT_EQ(s2.outcome, concurrent::ProbeOutcome::kDone);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(second.key_compares, 1u);
  const auto found = table.find(a);
  EXPECT_EQ(found->coverage, 2u);
  EXPECT_EQ(found->out_weight(1), 2u);
  EXPECT_EQ(found->in_weight(2), 1u);

  // The scan classifies a's slot as a match lane for a's fingerprint.
  const auto scan = table.probe_group(home, Table::occupied_byte(a.hash()));
  EXPECT_TRUE(scan.match & 1u) << "lane 0 must match the home slot";
  EXPECT_EQ(scan.locked, 0u);

  // claim_lane: an occupied slot is not claimable; an empty one is, and
  // publish_claimed completes the empty -> locked -> occupied transfer.
  EXPECT_FALSE(table.claim_lane(home));
  Rng rng(7);
  Kmer<1> b;
  std::uint64_t b_home = home;
  while (b_home == home) {
    b = Kmer<1>();
    for (int i = 0; i < 21; ++i) b.push_back(rng.base());
    b_home = b.hash() & (table.capacity() - 1);
  }
  ASSERT_TRUE(table.claim_lane(b_home));
  EXPECT_EQ(table.lane_state(b_home), Table::kLocked);
  EXPECT_EQ(table.locked_slots(), 1u);
  table.publish_claimed(b_home, b, b.hash(), 3, -1);
  EXPECT_EQ(table.locked_slots(), 0u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(b)->out_weight(3), 1u);
}

TEST(ProbeGroupStep, AdvancesPastAFullyForeignGroup) {
  // A 16-slot table is one probe group wide. Fill it with 15 keys, then
  // step a 16th DISTINCT key whose home group is all foreign slots plus
  // one empty: it must insert. A 17th key then sees a fully-occupied
  // foreign group and must report kAdvance with the scanned width.
  using Table = concurrent::ConcurrentKmerTable<1>;
  Table table(16, 21);
  Rng rng(31337);
  std::vector<Kmer<1>> keys;
  std::set<std::string> unique;
  while (keys.size() < 17) {
    Kmer<1> kmer;
    for (int i = 0; i < 21; ++i) kmer.push_back(rng.base());
    if (unique.insert(kmer.to_string()).second) keys.push_back(kmer);
  }
  for (std::size_t i = 0; i < 16; ++i) table.add(keys[i], -1, -1);
  ASSERT_EQ(table.size(), 16u);

  concurrent::AddResult r;
  const auto step = table.probe_group_step(
      keys[16].hash() & (table.capacity() - 1), keys[16], -1, -1, r);
  EXPECT_EQ(step.outcome, concurrent::ProbeOutcome::kAdvance);
  EXPECT_EQ(step.width, 16);
  EXPECT_FALSE(r.inserted);
}

}  // namespace
}  // namespace parahash::device
