// End-to-end tests of the ParaHash driver: full Step1+Step2 runs against
// the naive reference, device mixes, pipelined vs sequential, throttled
// IO, coverage filtering, partition reuse, and the report contents.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/reference.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

namespace parahash::pipeline {
namespace {

struct Dataset {
  io::TempDir dir{"parahash_test"};
  std::string fastq;
  std::string genome;
  std::vector<io::Read> reads;
};

std::unique_ptr<Dataset> make_dataset(std::uint64_t genome_size = 3000,
                                      double coverage = 8.0,
                                      double lambda = 1.0,
                                      int read_length = 90,
                                      std::uint64_t seed = 7) {
  auto d = std::make_unique<Dataset>();
  d->fastq = d->dir.file("reads.fastq");
  sim::DatasetSpec spec;
  spec.genome_size = genome_size;
  spec.read_length = read_length;
  spec.coverage = coverage;
  spec.lambda = lambda;
  spec.seed = seed;
  d->genome = sim::write_dataset(spec, d->fastq);
  d->reads = io::read_fastx_file(d->fastq);
  return d;
}

Options base_options() {
  Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 2;
  options.batch_bases = 16 << 10;
  return options;
}

core::ReferenceBuilder reference_for(const Dataset& d, int k) {
  core::ReferenceBuilder reference(k);
  for (const auto& r : d.reads) reference.add_read(r.bases);
  return reference;
}

TEST(ParaHash, CpuOnlyMatchesReference) {
  const auto d = make_dataset();
  const auto options = base_options();
  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  auto reference = reference_for(*d, options.msp.k);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;

  EXPECT_EQ(report.graph.vertices, reference.distinct_vertices());
  EXPECT_EQ(report.graph.total_coverage, reference.total_kmers());
  EXPECT_GT(report.step1.times.items, 0u);
  EXPECT_EQ(report.step2.times.items, options.msp.num_partitions);
  EXPECT_GT(report.partition_bytes, 0u);
  EXPECT_GT(report.total_elapsed_seconds, 0.0);
  EXPECT_GT(report.peak_rss_bytes, 0u);
  EXPECT_EQ(report.resizes, 0);
}

TEST(ParaHash, GpuOnlyMatchesCpuOnly) {
  const auto d = make_dataset(2000, 6.0, 1.0);
  auto options = base_options();

  ParaHash<1> cpu_system(options);
  auto [cpu_graph, cpu_report] = cpu_system.construct(d->fastq);

  options.use_cpu = false;
  options.num_gpus = 1;
  options.gpu.launch_latency_seconds = 0;
  options.gpu.h2d_bytes_per_sec = 0;
  options.gpu.d2h_bytes_per_sec = 0;
  ParaHash<1> gpu_system(options);
  auto [gpu_graph, gpu_report] = gpu_system.construct(d->fastq);

  EXPECT_TRUE(cpu_graph == gpu_graph);
  // All Step-2 work must have landed on the GPU.
  ASSERT_EQ(gpu_report.step2.devices.size(), 1u);
  EXPECT_EQ(gpu_report.step2.devices[0].kind, device::DeviceKind::kGpu);
  EXPECT_EQ(gpu_report.step2.devices[0].stats.hash_partitions,
            options.msp.num_partitions);
  EXPECT_GT(gpu_report.step2.devices[0].stats.bytes_h2d, 0u);
}

TEST(ParaHash, CoProcessingMatchesAndSplitsWork) {
  const auto d = make_dataset(4000, 10.0, 1.0);
  auto options = base_options();
  options.msp.num_partitions = 16;
  options.num_gpus = 2;
  options.gpu.launch_latency_seconds = 0;
  options.gpu.h2d_bytes_per_sec = 0;
  options.gpu.d2h_bytes_per_sec = 0;

  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  auto reference = reference_for(*d, options.msp.k);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;

  // Work-stealing should give every device a share of the partitions.
  ASSERT_EQ(report.step2.devices.size(), 3u);
  std::uint64_t total_partitions = 0;
  for (const auto& dev : report.step2.devices) {
    total_partitions += dev.stats.hash_partitions;
  }
  EXPECT_EQ(total_partitions, options.msp.num_partitions);
}

TEST(ParaHash, SequentialModeMatchesPipelined) {
  const auto d = make_dataset(2000, 6.0, 2.0);
  auto options = base_options();
  ParaHash<1> pipelined(options);
  auto [graph_a, report_a] = pipelined.construct(d->fastq);

  options.pipelined = false;
  ParaHash<1> sequential(options);
  auto [graph_b, report_b] = sequential.construct(d->fastq);

  EXPECT_TRUE(graph_a == graph_b);
}

TEST(ParaHash, ThrottledIoStillCorrect) {
  const auto d = make_dataset(1500, 5.0, 1.0);
  auto options = base_options();
  options.input_bytes_per_sec = 2e6;
  options.output_bytes_per_sec = 2e6;
  options.write_subgraphs = true;
  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  auto reference = reference_for(*d, options.msp.k);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
  EXPECT_GT(report.step2.bytes_out, 0u);  // subgraph output charged
}

TEST(ParaHash, MinCoverageFilterApplied) {
  const auto d = make_dataset(3000, 12.0, 1.5);
  auto options = base_options();
  options.min_coverage = 3;
  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  EXPECT_GT(report.filtered_vertices, 0u);
  graph.for_each_vertex([](const concurrent::VertexEntry<1>& e) {
    EXPECT_GE(e.coverage, 3u);
  });
  auto reference = reference_for(*d, options.msp.k);
  EXPECT_EQ(report.graph.vertices + report.filtered_vertices,
            reference.distinct_vertices());
}

TEST(ParaHash, TwoWordKmerRun) {
  const auto d = make_dataset(1500, 5.0, 1.0);
  auto options = base_options();
  options.msp.k = 45;
  options.msp.p = 13;
  ParaHash<2> system(options);
  auto [graph, report] = system.construct(d->fastq);

  auto reference = reference_for(*d, options.msp.k);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

TEST(ParaHash, StepwiseApiAndPartitionReuse) {
  const auto d = make_dataset(1500, 5.0, 1.0);
  auto options = base_options();
  options.work_dir = d->dir.file("work");
  options.keep_partitions = true;

  std::vector<std::string> paths;
  {
    ParaHash<1> system(options);
    StepReport step1;
    paths = system.run_partitioning(d->fastq, step1);
    EXPECT_EQ(paths.size(), options.msp.num_partitions);
    EXPECT_GT(step1.bytes_out, 0u);
  }
  // Partition files survive; a second system can hash them directly.
  for (const auto& p : paths) {
    EXPECT_TRUE(std::filesystem::exists(p)) << p;
  }
  ParaHash<1> system(options);
  StepReport step2;
  const auto graph = system.run_hashing(paths, step2);

  auto reference = reference_for(*d, options.msp.k);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

TEST(ParaHash, TempPartitionDirIsCleanedUp) {
  const auto d = make_dataset(1000, 4.0, 0.5);
  auto options = base_options();
  std::string partition_file;
  {
    ParaHash<1> system(options);
    StepReport step1;
    const auto paths = system.run_partitioning(d->fastq, step1);
    partition_file = paths[0];
    EXPECT_TRUE(std::filesystem::exists(partition_file));
  }
  EXPECT_FALSE(std::filesystem::exists(partition_file));
}

TEST(ParaHash, SubgraphOutputsSurviveTempDirCleanup) {
  // Regression: construct() used to remove_all the owned temp partition
  // directory at end of run even with write_subgraphs=true, destroying
  // the subgraph files it had just written there.
  const auto d = make_dataset(1200, 4.0, 1.0);
  auto options = base_options();
  options.write_subgraphs = true;

  std::string dir;
  {
    ParaHash<1> system(options);
    dir = system.partition_dir();
    auto [graph, report] = system.construct(d->fastq);
    EXPECT_GT(report.step2.bytes_out, 0u);
    // After the run: subgraph outputs present, superkmer partition
    // files already cleaned up.
    for (std::uint32_t id = 0; id < options.msp.num_partitions; ++id) {
      EXPECT_TRUE(std::filesystem::exists(
          dir + "/subgraph_" + std::to_string(id) + ".bin"));
    }
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_NE(entry.path().extension(), ".phsk") << entry.path();
    }
  }
  // The outputs must outlive the system itself.
  for (std::uint32_t id = 0; id < options.msp.num_partitions; ++id) {
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/subgraph_" + std::to_string(id) + ".bin"));
  }
  std::filesystem::remove_all(dir);
}

TEST(ParaHash, SubgraphDirRoutesOutputsElsewhere) {
  const auto d = make_dataset(1200, 4.0, 1.0);
  auto options = base_options();
  options.write_subgraphs = true;
  options.subgraph_dir = d->dir.file("subgraphs");

  std::string partition_dir;
  {
    ParaHash<1> system(options);
    partition_dir = system.partition_dir();
    auto [graph, report] = system.construct(d->fastq);
  }
  // Outputs land in the requested directory; with nothing left to
  // protect, the owned temp partition dir is removed entirely.
  for (std::uint32_t id = 0; id < options.msp.num_partitions; ++id) {
    EXPECT_TRUE(std::filesystem::exists(
        options.subgraph_dir + "/subgraph_" + std::to_string(id) + ".bin"));
  }
  EXPECT_FALSE(std::filesystem::exists(partition_dir));
}

TEST(ParaHash, ConstructGraphDispatchesOnK) {
  const auto d = make_dataset(1200, 4.0, 1.0);
  auto options = base_options();
  const std::string graph_path = d->dir.file("graph.phdg");
  const auto report = construct_graph(options, d->fastq, graph_path);
  EXPECT_GT(report.graph.vertices, 0u);
  const auto loaded = core::DeBruijnGraph<1>::load(graph_path);
  EXPECT_EQ(loaded.num_vertices(), report.graph.vertices);

  auto wide = options;
  wide.msp.k = 33;
  const auto report2 = construct_graph(wide, d->fastq);
  EXPECT_GT(report2.graph.vertices, 0u);
}

TEST(ParaHash, OptionValidation) {
  Options options = base_options();
  options.msp.k = 28;  // even
  EXPECT_THROW(ParaHash<1>{options}, Error);

  options = base_options();
  options.use_cpu = false;
  options.num_gpus = 0;
  EXPECT_THROW(ParaHash<1>{options}, Error);

  options = base_options();
  options.msp.k = 45;  // too wide for one word
  EXPECT_THROW(ParaHash<1>{options}, Error);
}

// ------------------------------------------------------------- sweep
// Every configuration axis the system exposes must yield the exact
// reference graph: device mixes x pipelining x encoding x (k, P) x
// partition counts.
struct SweepConfig {
  const char* name;
  int k;
  int p;
  std::uint32_t partitions;
  bool use_cpu;
  int gpus;
  bool pipelined;
  io::Encoding encoding;
};

class ParaHashSweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(ParaHashSweep, MatchesReference) {
  const SweepConfig& config = GetParam();
  const auto d = make_dataset(1500, 6.0, 1.0, 80,
                              /*seed=*/1000 + config.partitions);

  Options options;
  options.msp.k = config.k;
  options.msp.p = config.p;
  options.msp.num_partitions = config.partitions;
  options.msp.encoding = config.encoding;
  options.use_cpu = config.use_cpu;
  options.cpu_threads = 2;
  options.num_gpus = config.gpus;
  options.gpu.launch_latency_seconds = 0;
  options.gpu.h2d_bytes_per_sec = 0;
  options.gpu.d2h_bytes_per_sec = 0;
  options.pipelined = config.pipelined;
  options.batch_bases = 8 << 10;

  core::ReferenceBuilder reference(config.k);
  for (const auto& r : d->reads) reference.add_read(r.bases);

  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << config.name << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParaHashSweep,
    ::testing::Values(
        SweepConfig{"cpu_seq", 27, 11, 8, true, 0, false,
                    io::Encoding::kTwoBit},
        SweepConfig{"cpu_pipe", 27, 11, 8, true, 0, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"gpu_pipe", 27, 11, 8, false, 1, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"mix_pipe", 27, 11, 16, true, 2, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"mix_seq", 27, 11, 16, true, 2, false,
                    io::Encoding::kTwoBit},
        SweepConfig{"byte_enc", 27, 11, 8, true, 0, true,
                    io::Encoding::kByte},
        SweepConfig{"small_kp", 15, 7, 4, true, 1, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"p_equals_k", 15, 15, 32, true, 0, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"one_partition", 21, 9, 1, true, 0, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"many_partitions", 21, 9, 64, true, 1, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"p_one", 21, 1, 8, true, 0, true,
                    io::Encoding::kTwoBit},
        SweepConfig{"k31", 31, 13, 8, true, 0, true,
                    io::Encoding::kTwoBit}),
    [](const auto& info) { return info.param.name; });

TEST(ParaHash, MultiPassPartitioningMatchesSinglePass) {
  const auto d = make_dataset(2000, 6.0, 1.0);
  auto options = base_options();
  options.msp.num_partitions = 16;

  ParaHash<1> single(options);
  auto [graph_single, report_single] = single.construct(d->fastq);

  options.max_open_partitions = 5;  // 4 passes over the input
  ParaHash<1> multi(options);
  auto [graph_multi, report_multi] = multi.construct(d->fastq);

  EXPECT_TRUE(graph_single == graph_multi);
  // Multi-pass re-reads the input once per pass.
  EXPECT_EQ(report_multi.step1.bytes_in, 4 * report_single.step1.bytes_in);
  EXPECT_EQ(report_multi.step1.bytes_out, report_single.step1.bytes_out);
}

TEST(ParaHash, MultiFileInputEqualsConcatenation) {
  const auto d = make_dataset(2000, 6.0, 1.0);
  // Split the dataset's reads across two files (one gzipped).
  const std::string part1 = d->dir.file("lane1.fastq");
  const std::string part2 = d->dir.file("lane2.fastq.gz");
  {
    io::FastxWriter w1(part1, io::FastxWriter::Format::kFastq);
    io::FastxWriter w2(part2, io::FastxWriter::Format::kFastq);
    for (std::size_t i = 0; i < d->reads.size(); ++i) {
      (i % 2 == 0 ? w1 : w2).write(d->reads[i]);
    }
    w1.close();
    w2.close();
  }
  const auto options = base_options();
  ParaHash<1> whole(options);
  auto [graph_whole, r1] = whole.construct(d->fastq);
  ParaHash<1> split(options);
  auto [graph_split, r2] = split.construct({part1, part2});
  EXPECT_TRUE(graph_whole == graph_split);
}

TEST(ParaHash, GzipInputMatchesPlainInput) {
  const auto d = make_dataset(1500, 5.0, 1.0);
  // Re-compress the dataset.
  const std::string gz_path = d->dir.file("reads.fastq.gz");
  {
    io::FastxWriter writer(gz_path, io::FastxWriter::Format::kFastq);
    for (const auto& read : d->reads) writer.write(read);
    writer.close();
  }
  const auto options = base_options();
  ParaHash<1> plain(options);
  auto [graph_plain, r1] = plain.construct(d->fastq);
  ParaHash<1> gz(options);
  auto [graph_gz, r2] = gz.construct(gz_path);
  EXPECT_TRUE(graph_plain == graph_gz);
}

TEST(ParaHash, StreamedModeReportsSameStats) {
  const auto d = make_dataset(2000, 8.0, 1.0);
  auto options = base_options();

  ParaHash<1> retained(options);
  auto [graph, retained_report] = retained.construct(d->fastq);

  options.accumulate_graph = false;
  ParaHash<1> streamed(options);
  auto [empty_graph, streamed_report] = streamed.construct(d->fastq);

  EXPECT_EQ(empty_graph.num_vertices(), 0u);  // nothing retained
  EXPECT_EQ(streamed_report.graph.vertices, retained_report.graph.vertices);
  EXPECT_EQ(streamed_report.graph.total_coverage,
            retained_report.graph.total_coverage);
  EXPECT_EQ(streamed_report.graph.edge_counter_total,
            retained_report.graph.edge_counter_total);
  EXPECT_EQ(streamed_report.graph.distinct_edges,
            retained_report.graph.distinct_edges);
  EXPECT_EQ(streamed_report.graph.branching_vertices,
            retained_report.graph.branching_vertices);
}

TEST(ParaHash, StreamedModeAppliesCoverageFilterToStats) {
  const auto d = make_dataset(2000, 10.0, 1.5);
  auto options = base_options();
  options.min_coverage = 3;

  ParaHash<1> retained(options);
  auto [graph, retained_report] = retained.construct(d->fastq);

  options.accumulate_graph = false;
  ParaHash<1> streamed(options);
  auto [empty_graph, streamed_report] = streamed.construct(d->fastq);

  EXPECT_EQ(streamed_report.graph.vertices, retained_report.graph.vertices);
  EXPECT_EQ(streamed_report.filtered_vertices,
            retained_report.filtered_vertices);
}

TEST(ParaHash, DeterministicAcrossRuns) {
  const auto d = make_dataset(1500, 6.0, 1.5);
  const auto options = base_options();
  ParaHash<1> a(options);
  ParaHash<1> b(options);
  auto [graph_a, ra] = a.construct(d->fastq);
  auto [graph_b, rb] = b.construct(d->fastq);
  EXPECT_TRUE(graph_a == graph_b);
}

TEST(ParaHash, ModelTimesExposedForEquationOne) {
  const auto d = make_dataset(2000, 6.0, 1.0);
  auto options = base_options();
  options.num_gpus = 1;
  options.gpu.launch_latency_seconds = 1e-5;
  ParaHash<1> system(options);
  auto [graph, report] = system.construct(d->fastq);

  const auto t = report.step2.model_times();
  EXPECT_GT(t.cpu_compute + t.gpu_compute, 0.0);
  EXPECT_EQ(t.partitions, options.msp.num_partitions);
  const double estimate = core::estimate_step_elapsed(t);
  EXPECT_GT(estimate, 0.0);
}

}  // namespace
}  // namespace parahash::pipeline
