// Unit and property tests for the util substrate: DNA alphabet, multi-word
// kmers, packed sequences, hashing, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "util/dna.h"
#include "util/hash.h"
#include "util/kmer.h"
#include "util/log.h"
#include "util/mem.h"
#include "util/packed_seq.h"
#include "util/rng.h"
#include "util/timer.h"

namespace parahash {
namespace {

// ---------------------------------------------------------------- dna

TEST(Dna, EncodeDecodeRoundTrip) {
  EXPECT_EQ(encode_base('A'), 0);
  EXPECT_EQ(encode_base('C'), 1);
  EXPECT_EQ(encode_base('G'), 2);
  EXPECT_EQ(encode_base('T'), 3);
  for (std::uint8_t b = 0; b < 4; ++b) {
    EXPECT_EQ(encode_base(decode_base(b)), b);
  }
}

TEST(Dna, LowercaseAccepted) {
  EXPECT_EQ(encode_base('a'), encode_base('A'));
  EXPECT_EQ(encode_base('c'), encode_base('C'));
  EXPECT_EQ(encode_base('g'), encode_base('G'));
  EXPECT_EQ(encode_base('t'), encode_base('T'));
}

TEST(Dna, UnknownBasesReadAsA) {
  EXPECT_EQ(encode_base('N'), 0);
  EXPECT_EQ(encode_base('n'), 0);
  EXPECT_EQ(encode_base('X'), 0);
  EXPECT_EQ(encode_base('-'), 0);
}

TEST(Dna, ComplementPairs) {
  EXPECT_EQ(complement(encode_base('A')), encode_base('T'));
  EXPECT_EQ(complement(encode_base('C')), encode_base('G'));
  for (std::uint8_t b = 0; b < 4; ++b) {
    EXPECT_EQ(complement(complement(b)), b);
  }
}

TEST(Dna, EncodingPreservesLexOrder) {
  const std::string chars = "ACGT";
  for (char a : chars) {
    for (char b : chars) {
      EXPECT_EQ(a < b, encode_base(a) < encode_base(b));
    }
  }
}

TEST(Dna, ReverseComplementString) {
  EXPECT_EQ(reverse_complement_str("ACGT"), "ACGT");
  EXPECT_EQ(reverse_complement_str("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement_str("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement_str(""), "");
}

TEST(Dna, ReverseComplementIsInvolution) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    for (int i = 0; i < 50; ++i) s.push_back(decode_base(rng.base()));
    EXPECT_EQ(reverse_complement_str(reverse_complement_str(s)), s);
  }
}

// ---------------------------------------------------------------- kmer

template <typename T>
class KmerTypedTest : public ::testing::Test {};

using KmerTypes = ::testing::Types<Kmer<1>, Kmer<2>, Kmer<3>>;
TYPED_TEST_SUITE(KmerTypedTest, KmerTypes);

TYPED_TEST(KmerTypedTest, FromStringToStringRoundTrip) {
  const std::string s = "ACGTTGCAACGTTGCAACGTTGCAACGTT";
  const int max_k = std::min<int>(TypeParam::kMaxK, s.size());
  for (int k = 1; k <= max_k; ++k) {
    auto kmer = TypeParam::from_string(s.substr(0, k));
    EXPECT_EQ(kmer.k(), k);
    EXPECT_EQ(kmer.to_string(), s.substr(0, k));
  }
}

TYPED_TEST(KmerTypedTest, BaseAccess) {
  const std::string s = "GATTACAGATTACAGATTACAGATTACAGATT";
  const int k = std::min<int>(TypeParam::kMaxK, s.size());
  auto kmer = TypeParam::from_string(s.substr(0, k));
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(decode_base(kmer.base(i)), s[i]) << "at " << i;
  }
}

TYPED_TEST(KmerTypedTest, RollAppendSlidesWindow) {
  Rng rng(11);
  std::string s;
  for (int i = 0; i < 2 * TypeParam::kMaxK; ++i) {
    s.push_back(decode_base(rng.base()));
  }
  for (int k : {1, 3, TypeParam::kMaxK / 2, TypeParam::kMaxK}) {
    if (k < 1) continue;
    auto kmer = TypeParam::from_string(s.substr(0, k));
    for (std::size_t pos = 1; pos + k <= s.size(); ++pos) {
      kmer.roll_append(encode_base(s[pos + k - 1]));
      EXPECT_EQ(kmer.to_string(), s.substr(pos, k));
    }
  }
}

TYPED_TEST(KmerTypedTest, RollPrependSlidesWindowLeft) {
  Rng rng(13);
  std::string s;
  for (int i = 0; i < 2 * TypeParam::kMaxK; ++i) {
    s.push_back(decode_base(rng.base()));
  }
  const int k = TypeParam::kMaxK;
  auto kmer = TypeParam::from_string(s.substr(s.size() - k));
  for (int pos = static_cast<int>(s.size()) - k - 1; pos >= 0; --pos) {
    kmer.roll_prepend(encode_base(s[pos]));
    EXPECT_EQ(kmer.to_string(), s.substr(pos, k));
  }
}

TYPED_TEST(KmerTypedTest, ReverseComplementMatchesStringVersion) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    std::string s;
    const int k = 1 + static_cast<int>(rng.below(TypeParam::kMaxK));
    for (int i = 0; i < k; ++i) s.push_back(decode_base(rng.base()));
    auto kmer = TypeParam::from_string(s);
    EXPECT_EQ(kmer.reverse_complement().to_string(),
              reverse_complement_str(s));
  }
}

TYPED_TEST(KmerTypedTest, ReverseComplementInvolution) {
  Rng rng(19);
  for (int trial = 0; trial < 30; ++trial) {
    std::string s;
    const int k = 1 + static_cast<int>(rng.below(TypeParam::kMaxK));
    for (int i = 0; i < k; ++i) s.push_back(decode_base(rng.base()));
    auto kmer = TypeParam::from_string(s);
    EXPECT_EQ(kmer.reverse_complement().reverse_complement(), kmer);
  }
}

TYPED_TEST(KmerTypedTest, ComparisonIsLexicographic) {
  Rng rng(23);
  const int k = std::min(TypeParam::kMaxK, 37);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a;
    std::string b;
    for (int i = 0; i < k; ++i) {
      a.push_back(decode_base(rng.base()));
      b.push_back(decode_base(rng.base()));
    }
    const auto ka = TypeParam::from_string(a);
    const auto kb = TypeParam::from_string(b);
    EXPECT_EQ(a < b, ka < kb);
    EXPECT_EQ(a == b, ka == kb);
  }
}

TYPED_TEST(KmerTypedTest, CanonicalIsMinOfStrandPair) {
  Rng rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    const int k = 1 + static_cast<int>(rng.below(TypeParam::kMaxK));
    std::string s;
    for (int i = 0; i < k; ++i) s.push_back(decode_base(rng.base()));
    auto kmer = TypeParam::from_string(s);
    const std::string rc = reverse_complement_str(s);
    EXPECT_EQ(kmer.canonical().to_string(), std::min(s, rc));
    // A kmer and its RC share a canonical form.
    EXPECT_EQ(kmer.canonical(), kmer.reverse_complement().canonical());
  }
}

TYPED_TEST(KmerTypedTest, SuccessorPredecessorInverse) {
  Rng rng(31);
  const int k = std::min(TypeParam::kMaxK, 27);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    for (int i = 0; i < k; ++i) s.push_back(decode_base(rng.base()));
    auto kmer = TypeParam::from_string(s);
    const std::uint8_t b = rng.base();
    const auto succ = kmer.successor(b);
    EXPECT_EQ(succ.to_string(), s.substr(1) + decode_base(b));
    // Walking back with the dropped base restores the original.
    EXPECT_EQ(succ.predecessor(encode_base(s[0])), kmer);
  }
}

TYPED_TEST(KmerTypedTest, WordsRoundTrip) {
  Rng rng(37);
  const int k = TypeParam::kMaxK;
  std::string s;
  for (int i = 0; i < k; ++i) s.push_back(decode_base(rng.base()));
  const auto kmer = TypeParam::from_string(s);
  const auto rebuilt = TypeParam::from_words(kmer.words(), k);
  EXPECT_EQ(rebuilt, kmer);
}

TEST(Kmer, HashSpreadsValues) {
  std::set<std::uint64_t> hashes;
  Rng rng(41);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string s;
    for (int i = 0; i < 27; ++i) s.push_back(decode_base(rng.base()));
    hashes.insert(Kmer<1>::from_string(s).hash());
  }
  // Essentially no collisions expected among 1000 random 27-mers.
  EXPECT_GT(hashes.size(), 990u);
}

TEST(Kmer, WithKmerWordsDispatch) {
  EXPECT_EQ(with_kmer_words(27, []<int W>() { return W; }), 1);
  EXPECT_EQ(with_kmer_words(32, []<int W>() { return W; }), 1);
  EXPECT_EQ(with_kmer_words(33, []<int W>() { return W; }), 2);
  EXPECT_EQ(with_kmer_words(63, []<int W>() { return W; }), 2);
  EXPECT_THROW(with_kmer_words(65, []<int W>() { return W; }), Error);
  EXPECT_THROW(with_kmer_words(0, []<int W>() { return W; }), Error);
}

TEST(Kmer, LengthOutOfRangeThrows) {
  EXPECT_THROW(Kmer<1>(33), Error);
  EXPECT_NO_THROW(Kmer<1>(32));
  EXPECT_THROW(Kmer<1>::from_string(std::string(33, 'A')), Error);
}

// ---------------------------------------------------------- packed_seq

TEST(PackedSeq, FromStringRoundTrip) {
  const std::string s = "ACGTACGTTTGCAGCATATTA";
  const auto seq = PackedSeq::from_string(s);
  EXPECT_EQ(seq.size(), s.size());
  EXPECT_EQ(seq.to_string(), s);
}

TEST(PackedSeq, RandomAccessMatchesString) {
  Rng rng(43);
  std::string s;
  for (int i = 0; i < 301; ++i) s.push_back(decode_base(rng.base()));
  const auto seq = PackedSeq::from_string(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(decode_base(seq[i]), s[i]);
  }
}

TEST(PackedSeq, BytesRoundTrip) {
  Rng rng(47);
  for (int len : {0, 1, 3, 4, 5, 31, 32, 33, 64, 257}) {
    std::string s;
    for (int i = 0; i < len; ++i) s.push_back(decode_base(rng.base()));
    const auto seq = PackedSeq::from_string(s);
    std::vector<std::uint8_t> bytes(PackedSeq::packed_bytes(seq.size()));
    seq.write_bytes(bytes.data());
    const auto back = PackedSeq::from_bytes(bytes.data(), seq.size());
    EXPECT_EQ(back, seq) << "len " << len;
    EXPECT_EQ(back.to_string(), s);
  }
}

TEST(PackedSeq, PackedBytesIsQuarterOfBases) {
  EXPECT_EQ(PackedSeq::packed_bytes(0), 0u);
  EXPECT_EQ(PackedSeq::packed_bytes(1), 1u);
  EXPECT_EQ(PackedSeq::packed_bytes(4), 1u);
  EXPECT_EQ(PackedSeq::packed_bytes(5), 2u);
  EXPECT_EQ(PackedSeq::packed_bytes(100), 25u);
}

TEST(PackedSeq, KmerAtMatchesSubstring) {
  Rng rng(53);
  std::string s;
  for (int i = 0; i < 120; ++i) s.push_back(decode_base(rng.base()));
  const auto seq = PackedSeq::from_string(s);
  for (std::size_t pos = 0; pos + 27 <= s.size(); pos += 7) {
    EXPECT_EQ((seq.kmer_at<1>(pos, 27)).to_string(), s.substr(pos, 27));
  }
}

TEST(PackedSeq, SubstrMatches) {
  const std::string s = "ACGTACGTTTGCAGCATATTACCGGA";
  const auto seq = PackedSeq::from_string(s);
  EXPECT_EQ(seq.substr(3, 10).to_string(), s.substr(3, 10));
  EXPECT_EQ(seq.substr(0, 0).to_string(), "");
}

// ---------------------------------------------------------------- hash

TEST(Hash, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  std::set<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.insert(mix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(Hash, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(next_pow2((1ull << 40) + 1), 1ull << 41);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(101);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(103);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, PoissonMeanApproximatesLambda) {
  Rng rng(107);
  const double lambda = 2.0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(lambda);
  EXPECT_NEAR(sum / n, lambda, 0.05);
}

TEST(Mem, RssProbesReportSomething) {
  // On Linux both probes should report a positive resident size.
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

// -------------------------------------------------------------- timer

TEST(AtomicSeconds, AccumulatesPositiveDeltas) {
  AtomicSeconds acc;
  acc.add(0.5);
  acc.add(1.25);
  EXPECT_NEAR(acc.seconds(), 1.75, 1e-9);
}

TEST(AtomicSeconds, ClampsNegativeDeltas) {
  // A clock that stepped backwards must not subtract time other
  // workers measured.
  AtomicSeconds acc;
  acc.add(2.0);
  acc.add(-1.0);
  EXPECT_NEAR(acc.seconds(), 2.0, 1e-9);
  AtomicSeconds fresh;
  fresh.add(-5.0);
  EXPECT_EQ(fresh.seconds(), 0.0);
}

TEST(AtomicSeconds, ClampsNaNAndInfinity) {
  // Casting NaN to an integer is UB; the accumulator must ignore it
  // rather than corrupt (or crash) — same for negative infinity. A
  // positive infinity is also dropped: there is no meaningful finite
  // nanosecond count for it.
  AtomicSeconds acc;
  acc.add(1.0);
  acc.add(std::numeric_limits<double>::quiet_NaN());
  acc.add(-std::numeric_limits<double>::infinity());
  EXPECT_NEAR(acc.seconds(), 1.0, 1e-9);
}

TEST(AtomicSeconds, ZeroIsANoOp) {
  AtomicSeconds acc;
  acc.add(0.0);
  EXPECT_EQ(acc.seconds(), 0.0);
}

// ---------------------------------------------------------------- log

TEST(Log, FilteredLevelSkipsFormatting) {
  // The macro must not evaluate its stream operands when the level is
  // filtered out — formatting cost belongs only to emitted lines.
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("formatted");
  };
  PARAHASH_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kDebug);
  PARAHASH_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 1);
  set_log_level(saved);
}

TEST(Log, MacroIsDanglingElseSafe) {
  // The statement shape must bind cleanly inside an unbraced if/else.
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  bool else_taken = false;
  if (false)
    PARAHASH_LOG(kInfo) << "not reached";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
  set_log_level(saved);
}

}  // namespace
}  // namespace parahash
