// Robustness and edge-case tests: malformed inputs, degenerate
// sequences, corrupted intermediate files, and concurrency edges the
// main suites do not reach.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "core/msp.h"
#include "core/reference.h"
#include "core/subgraph.h"
#include "io/fastx.h"
#include "io/partition_file.h"
#include "io/throttle.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "util/rng.h"

namespace parahash {
namespace {

// ------------------------------------------------- degenerate sequences

TEST(Degenerate, HomopolymerReadIsOneSuperkmer) {
  core::MspConfig config;
  config.k = 27;
  config.p = 11;
  core::MspScanner scanner(config);
  std::vector<std::uint8_t> codes(101, 0);  // AAAA...
  std::vector<core::SuperkmerSpan> spans;
  EXPECT_EQ(scanner.scan_read(codes, spans), 75u);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, 101u);
}

TEST(Degenerate, HomopolymerGraphIsOneSelfLoopVertex) {
  // AAA...A: every kmer is the same canonical vertex with an A self-edge.
  std::vector<io::Read> reads = {{"r", std::string(60, 'A')}};
  core::ReferenceBuilder reference(21);
  reference.add_read(reads[0].bases);
  EXPECT_EQ(reference.distinct_vertices(), 1u);

  io::TempDir dir("degen");
  io::PartitionSet set(dir.file("p"), 21, 9, 2);
  io::ReadBatch batch;
  batch.add(reads[0].bases);
  core::MspConfig config;
  config.k = 21;
  config.p = 9;
  config.num_partitions = 2;
  core::MspBatchOutput out(2);
  core::msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t i = 0; i < 2; ++i) {
    set.writer(i).append_raw(out.parts[i].bytes.data(),
                             out.parts[i].bytes.size(),
                             out.parts[i].superkmers, out.parts[i].kmers,
                             out.parts[i].bases);
  }
  core::DeBruijnGraph<1> graph(21, 9, 2);
  core::HashConfig hash_config;
  const auto paths = set.close_all();
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto result = core::build_subgraph<1>(
        io::PartitionBlob::read_file(paths[i]), hash_config, nullptr);
    graph.adopt_table(i, *result.table);
  }
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

TEST(Degenerate, AlternatingPatternMatchesReference) {
  // ACACAC... and its RC TGTGTG... stress canonical tie handling.
  std::string read;
  for (int i = 0; i < 50; ++i) read += (i % 2 == 0) ? 'A' : 'C';
  core::ReferenceBuilder reference(21);
  reference.add_read(read);
  EXPECT_EQ(reference.distinct_vertices(), 2u);  // ACAC.., CACA..
}

TEST(Degenerate, ReadsWithNsMatchReference) {
  Rng rng(17);
  std::vector<std::string> reads;
  for (int i = 0; i < 20; ++i) {
    std::string r;
    for (int j = 0; j < 70; ++j) {
      const double roll = rng.uniform();
      if (roll < 0.1) {
        r.push_back('N');
      } else if (roll < 0.15) {
        r.push_back('n');
      } else {
        r.push_back(decode_base(rng.base()));
      }
    }
    reads.push_back(r);
  }

  io::TempDir dir("ns_test");
  const std::string fastq = dir.file("reads.fastq");
  {
    io::FastxWriter writer(fastq, io::FastxWriter::Format::kFastq);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      writer.write({"r" + std::to_string(i), reads[i]});
    }
    writer.close();
  }

  pipeline::Options options;
  options.msp.k = 21;
  options.msp.p = 9;
  options.msp.num_partitions = 4;
  options.cpu_threads = 2;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);

  core::ReferenceBuilder reference(21);
  for (const auto& r : reads) reference.add_read(r);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

TEST(Degenerate, EmptyInputProducesEmptyGraph) {
  io::TempDir dir("empty_test");
  const std::string fastq = dir.file("empty.fastq");
  std::ofstream(fastq).close();

  pipeline::Options options;
  options.msp.k = 21;
  options.msp.p = 9;
  options.msp.num_partitions = 4;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);
  EXPECT_EQ(graph.num_vertices(), 0u);
  EXPECT_EQ(report.graph.vertices, 0u);
}

TEST(Degenerate, AllReadsTooShortProducesEmptyGraph) {
  io::TempDir dir("short_test");
  const std::string fastq = dir.file("short.fastq");
  {
    io::FastxWriter writer(fastq, io::FastxWriter::Format::kFastq);
    for (int i = 0; i < 5; ++i) writer.write({"r", "ACGTACGT"});
    writer.close();
  }
  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 2;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);
  EXPECT_EQ(graph.num_vertices(), 0u);
}

TEST(Degenerate, WholeGenomeFastaInputSplitsLongSuperkmers) {
  // A single 70 kbp "read" (whole-genome FASTA): homopolymer stretches
  // force superkmers beyond the 16-bit record length, which must be
  // split without losing kmers or adjacencies.
  Rng rng(29);
  std::string genome;
  genome.reserve(70'000);
  // Long A-runs interleaved with random stretches produce both huge and
  // ordinary superkmers.
  while (genome.size() < 70'000) {
    genome.append(40'000, 'A');
    for (int i = 0; i < 10'000; ++i) {
      genome.push_back(decode_base(rng.base()));
    }
  }

  io::TempDir dir("genome_input");
  const std::string fasta = dir.file("genome.fasta");
  {
    io::FastxWriter writer(fasta, io::FastxWriter::Format::kFasta);
    writer.write({"chr1", genome});
    writer.close();
  }

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 8;
  options.cpu_threads = 2;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fasta);

  core::ReferenceBuilder reference(27);
  reference.add_read(genome);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

// ------------------------------------------------------ corrupted files

TEST(Corruption, TruncatedPartitionRecordDetected) {
  io::TempDir dir("corrupt");
  const std::string path = dir.file("part.phsk");
  {
    io::PartitionWriter writer(path, 21, 9, 0);
    std::vector<std::uint8_t> codes(30, 2);
    writer.add(codes.data(), codes.size(), false, false);
    writer.close();
  }
  // Chop bytes off the end: record_offsets must notice.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  std::filesystem::resize_file(path, size - 3, ec);
  const auto blob = io::PartitionBlob::read_file(path);
  EXPECT_THROW(io::record_offsets(blob), IoError);
}

TEST(Corruption, TruncatedGraphFileDetected) {
  io::TempDir dir("corrupt");
  core::DeBruijnGraph<1> graph(21, 9, 2);
  std::vector<concurrent::VertexEntry<1>> entries(3);
  entries[0].kmer = Kmer<1>::from_string("ACGTACGTACGTACGTACGTA");
  entries[1].kmer = Kmer<1>::from_string("CCGTACGTACGTACGTACGTA");
  entries[2].kmer = Kmer<1>::from_string("GCGTACGTACGTACGTACGTA");
  graph.set_partition(0, entries);
  const std::string path = dir.file("graph.phdg");
  graph.write(path);

  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  std::filesystem::resize_file(path, size - 10, ec);
  EXPECT_THROW(core::DeBruijnGraph<1>::load(path), Error);
}

TEST(Corruption, GarbageGraphFileDetected) {
  io::TempDir dir("corrupt");
  const std::string path = dir.file("garbage.phdg");
  std::ofstream(path) << "not a graph file, definitely long enough header";
  EXPECT_THROW(core::DeBruijnGraph<1>::load(path), Error);
}

// --------------------------------------------------------- concurrency

TEST(ThrottleConcurrent, SharedChannelSerialises) {
  io::Throttle throttle(2'000'000);  // 2 MB/s
  WallTimer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5; ++i) throttle.consume(10'000);
    });
  }
  for (auto& w : workers) w.join();
  // 200 KB over a shared 2 MB/s channel >= ~0.1 s regardless of threads.
  EXPECT_GE(timer.seconds(), 0.08);
  EXPECT_EQ(throttle.total_bytes(), 200'000u);
}

TEST(Robustness, ManySmallBatchesStillExact) {
  // Tiny batch size forces many pipeline items (stress srv/cns churn).
  io::TempDir dir("small_batches");
  const std::string fastq = dir.file("reads.fastq");
  Rng rng(23);
  std::vector<std::string> reads;
  {
    io::FastxWriter writer(fastq, io::FastxWriter::Format::kFastq);
    for (int i = 0; i < 200; ++i) {
      std::string r;
      for (int j = 0; j < 60; ++j) r.push_back(decode_base(rng.base()));
      reads.push_back(r);
      writer.write({"r" + std::to_string(i), r});
    }
    writer.close();
  }

  pipeline::Options options;
  options.msp.k = 21;
  options.msp.p = 9;
  options.msp.num_partitions = 4;
  options.batch_bases = 64;  // one read per batch
  options.queue_depth = 2;
  options.cpu_threads = 2;
  options.num_gpus = 1;
  options.gpu.launch_latency_seconds = 0;
  options.gpu.h2d_bytes_per_sec = 0;
  options.gpu.d2h_bytes_per_sec = 0;
  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);
  EXPECT_EQ(report.step1.times.items, 200u);

  core::ReferenceBuilder reference(21);
  for (const auto& r : reads) reference.add_read(r);
  std::string diff;
  EXPECT_TRUE(reference.matches(graph, &diff)) << diff;
}

}  // namespace
}  // namespace parahash
