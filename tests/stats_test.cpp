// Tests for graph statistics (coverage histogram, degree distribution),
// the text exporters, and the telemetry histogram (whose log2 shard
// merge the run reports depend on).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/export.h"
#include "core/msp.h"
#include "core/stats.h"
#include "core/subgraph.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace parahash::core {
namespace {

template <int W>
DeBruijnGraph<W> build_graph(const std::vector<io::Read>& reads, int k,
                             int p, std::uint32_t partitions) {
  MspConfig config;
  config.k = k;
  config.p = p;
  config.num_partitions = partitions;
  io::TempDir dir("stats_test");
  io::PartitionSet set(dir.file("parts"), k, p, partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r.bases);
  MspBatchOutput out(partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t i = 0; i < partitions; ++i) {
    set.writer(i).append_raw(out.parts[i].bytes.data(),
                             out.parts[i].bytes.size(),
                             out.parts[i].superkmers, out.parts[i].kmers,
                             out.parts[i].bases);
  }
  DeBruijnGraph<W> graph(k, p, partitions);
  HashConfig hash_config;
  const auto paths = set.close_all();
  for (std::uint32_t i = 0; i < partitions; ++i) {
    auto result = build_subgraph<W>(io::PartitionBlob::read_file(paths[i]),
                                    hash_config, nullptr);
    graph.adopt_table(i, *result.table);
  }
  return graph;
}

std::vector<io::Read> deep_coverage_reads() {
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 80;
  spec.coverage = 15.0;
  spec.lambda = 1.0;
  spec.seed = 77;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  return simulator.all_reads();
}

TEST(Stats, CoverageHistogramSumsToVertices) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 27, 11, 8);
  const auto histogram = coverage_histogram(graph, 32);
  std::uint64_t total = 0;
  for (const auto b : histogram.buckets) total += b;
  EXPECT_EQ(total, graph.num_vertices());
  EXPECT_EQ(histogram.at_least(0), graph.num_vertices());
  EXPECT_EQ(histogram.buckets[0], 0u);  // coverage 0 cannot exist
}

TEST(Stats, HistogramSeparatesErrorPeakFromGenomePeak) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 27, 11, 8);
  const auto histogram = coverage_histogram(graph, 40);
  // Errors pile up at coverage 1, genome around 12-15: the suggested
  // threshold should sit between them.
  const auto threshold = histogram.suggested_min_coverage();
  EXPECT_GE(threshold, 2u);
  EXPECT_LE(threshold, 8u);
  EXPECT_GT(histogram.buckets[1], 0u);
  // at_least(threshold) keeps most of the ~2000 genomic kmers.
  EXPECT_GT(histogram.at_least(threshold), 1500u);
}

TEST(Stats, DegreeDistributionCountsAllVertices) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 27, 11, 8);
  const auto distribution = degree_distribution(graph);
  std::uint64_t total = 0;
  for (const auto& row : distribution.counts) {
    for (const auto c : row) total += c;
  }
  EXPECT_EQ(total, graph.num_vertices());
  // A mostly-linear genome graph is dominated by (1,1) vertices.
  EXPECT_GT(distribution.simple_path_vertices(), total / 2);
}

TEST(Export, TsvContainsEveryVertex) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 21, 9, 4);
  io::TempDir dir("export_test");
  const std::string path = dir.file("graph.tsv");
  const auto written = write_adjacency_tsv(graph, path);
  EXPECT_EQ(written, graph.num_vertices());

  std::ifstream file(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(file, line)) {
    ++lines;
    // kmer <tab> coverage <tab> out:... <tab> in:...
    std::istringstream ss(line);
    std::string kmer;
    std::string coverage;
    std::string out;
    std::string in;
    ASSERT_TRUE(std::getline(ss, kmer, '\t'));
    ASSERT_TRUE(std::getline(ss, coverage, '\t'));
    ASSERT_TRUE(std::getline(ss, out, '\t'));
    ASSERT_TRUE(std::getline(ss, in, '\t'));
    EXPECT_EQ(kmer.size(), 21u);
    EXPECT_NE(graph.find(Kmer<1>::from_string(kmer)), nullptr);
    EXPECT_EQ(out.rfind("out:", 0), 0u);
    EXPECT_EQ(in.rfind("in:", 0), 0u);
  }
  EXPECT_EQ(lines, written);
}

TEST(Export, TsvRespectsMinCoverage) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 21, 9, 4);
  io::TempDir dir("export_test");
  const auto all = write_adjacency_tsv(graph, dir.file("all.tsv"), 0);
  const auto filtered =
      write_adjacency_tsv(graph, dir.file("filtered.tsv"), 3);
  EXPECT_LT(filtered, all);
  EXPECT_GT(filtered, 0u);
}

TEST(Export, DotExportsSmallGraph) {
  std::vector<io::Read> reads = {{"r", "ACGTACGTTTGCAGCATATTACC"}};
  const auto graph = build_graph<1>(reads, 11, 5, 2);
  io::TempDir dir("export_test");
  const std::string path = dir.file("graph.dot");
  write_dot(graph, path);

  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  const std::string dot = content.str();
  EXPECT_NE(dot.find("digraph dbg"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  // Refuses big graphs.
  const auto big = build_graph<1>(deep_coverage_reads(), 21, 9, 4);
  EXPECT_THROW(write_dot(big, dir.file("big.dot"), 100), Error);
}

// ------------------------------------------------- telemetry histogram

TEST(TelemetryHistogram, BucketBoundariesAtPowersOfTwo) {
  using H = telemetry::Histogram;
  // Bucket 0 is exactly the value 0; bucket b>0 covers [2^(b-1), 2^b-1].
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 1u);
  EXPECT_EQ(H::bucket_index(2), 2u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  EXPECT_EQ(H::bucket_index(4), 3u);
  for (std::size_t b = 1; b < 64; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(H::bucket_index(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(H::bucket_index(hi), b) << "hi of bucket " << b;
    EXPECT_EQ(H::bucket_lo(b), lo);
    EXPECT_EQ(H::bucket_hi(b), hi);
    if (b > 1) {
      EXPECT_EQ(H::bucket_index(lo - 1), b - 1)
          << "below lo of bucket " << b;
    }
  }
  EXPECT_EQ(H::bucket_index(~std::uint64_t{0}), 64u);
  EXPECT_EQ(H::bucket_hi(64), ~std::uint64_t{0});
  EXPECT_EQ(H::bucket_lo(0), 0u);
  EXPECT_EQ(H::bucket_hi(0), 0u);
}

TEST(TelemetryHistogram, ShardMergeMatchesSingleThreadOracle) {
  // Concurrent recording across every shard must merge to exactly the
  // totals a single-threaded oracle computes from the same samples.
  telemetry::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;

  std::vector<std::vector<std::uint64_t>> samples(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<std::uint64_t>(t));
    samples[t].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      // Mix of tiny probe-length-like values and wide ns-scale values.
      const std::uint64_t v = i % 3 == 0 ? rng.below(8)
                                         : rng.below(1u << 20);
      samples[t].push_back(v);
    }
  }

  std::array<std::uint64_t, telemetry::Histogram::kBuckets> oracle{};
  std::uint64_t oracle_sum = 0;
  for (const auto& vec : samples) {
    for (const std::uint64_t v : vec) {
      ++oracle[telemetry::Histogram::bucket_index(v)];
      oracle_sum += v;
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, &samples, t] {
      for (const std::uint64_t v : samples[t]) hist.record(v);
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, oracle_sum);
  for (std::size_t b = 0; b < telemetry::Histogram::kBuckets; ++b) {
    EXPECT_EQ(snap.buckets[b], oracle[b]) << "bucket " << b;
  }
}

TEST(TelemetryHistogram, SnapshotWhileRecordingIsMonotone) {
  // Every per-shard cell is monotone, so snapshots taken while writers
  // are mid-flight must never lose counts between observations.
  telemetry::Histogram hist;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&hist, &stop, t] {
      Rng rng(77 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        hist.record(rng.below(1u << 12));
      }
    });
  }

  std::uint64_t last_count = 0;
  std::uint64_t last_sum = 0;
  std::array<std::uint64_t, telemetry::Histogram::kBuckets> last{};
  for (int i = 0; i < 200; ++i) {
    const auto snap = hist.snapshot();
    EXPECT_GE(snap.count, last_count);
    EXPECT_GE(snap.sum, last_sum);
    for (std::size_t b = 0; b < telemetry::Histogram::kBuckets; ++b) {
      EXPECT_GE(snap.buckets[b], last[b]) << "bucket " << b;
    }
    last_count = snap.count;
    last_sum = snap.sum;
    last = snap.buckets;
  }
  stop.store(true);
  for (auto& th : writers) th.join();

  // Quiesced: the final snapshot is exact and self-consistent.
  const auto final_snap = hist.snapshot();
  std::uint64_t bucket_total = 0;
  for (const auto n : final_snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, final_snap.count);
}

TEST(TelemetryHistogram, QuantileBoundBracketsDistribution) {
  telemetry::Histogram hist;
  for (std::uint64_t v = 0; v < 1024; ++v) hist.record(v);
  const auto snap = hist.snapshot();
  // p=1 must bound the maximum; p=0.5 must be >= the true median's
  // bucket floor and well below the max bucket's bound.
  EXPECT_GE(snap.quantile_bound(1.0), 1023u);
  const std::uint64_t p50 = snap.quantile_bound(0.5);
  EXPECT_GE(p50, 511u);
  EXPECT_LE(p50, 1023u);
  EXPECT_EQ(snap.mean(), 511.5);
}

}  // namespace
}  // namespace parahash::core
