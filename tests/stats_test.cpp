// Tests for graph statistics (coverage histogram, degree distribution)
// and the text exporters.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/export.h"
#include "core/msp.h"
#include "core/stats.h"
#include "core/subgraph.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"

namespace parahash::core {
namespace {

template <int W>
DeBruijnGraph<W> build_graph(const std::vector<io::Read>& reads, int k,
                             int p, std::uint32_t partitions) {
  MspConfig config;
  config.k = k;
  config.p = p;
  config.num_partitions = partitions;
  io::TempDir dir("stats_test");
  io::PartitionSet set(dir.file("parts"), k, p, partitions);
  io::ReadBatch batch;
  for (const auto& r : reads) batch.add(r.bases);
  MspBatchOutput out(partitions);
  msp_process_range(batch, config, 0, batch.size(), out);
  for (std::uint32_t i = 0; i < partitions; ++i) {
    set.writer(i).append_raw(out.parts[i].bytes.data(),
                             out.parts[i].bytes.size(),
                             out.parts[i].superkmers, out.parts[i].kmers,
                             out.parts[i].bases);
  }
  DeBruijnGraph<W> graph(k, p, partitions);
  HashConfig hash_config;
  const auto paths = set.close_all();
  for (std::uint32_t i = 0; i < partitions; ++i) {
    auto result = build_subgraph<W>(io::PartitionBlob::read_file(paths[i]),
                                    hash_config, nullptr);
    graph.adopt_table(i, *result.table);
  }
  return graph;
}

std::vector<io::Read> deep_coverage_reads() {
  sim::DatasetSpec spec;
  spec.genome_size = 2000;
  spec.read_length = 80;
  spec.coverage = 15.0;
  spec.lambda = 1.0;
  spec.seed = 77;
  sim::ReadSimulator simulator(
      sim::simulate_genome(spec.genome_size, spec.seed), spec);
  return simulator.all_reads();
}

TEST(Stats, CoverageHistogramSumsToVertices) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 27, 11, 8);
  const auto histogram = coverage_histogram(graph, 32);
  std::uint64_t total = 0;
  for (const auto b : histogram.buckets) total += b;
  EXPECT_EQ(total, graph.num_vertices());
  EXPECT_EQ(histogram.at_least(0), graph.num_vertices());
  EXPECT_EQ(histogram.buckets[0], 0u);  // coverage 0 cannot exist
}

TEST(Stats, HistogramSeparatesErrorPeakFromGenomePeak) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 27, 11, 8);
  const auto histogram = coverage_histogram(graph, 40);
  // Errors pile up at coverage 1, genome around 12-15: the suggested
  // threshold should sit between them.
  const auto threshold = histogram.suggested_min_coverage();
  EXPECT_GE(threshold, 2u);
  EXPECT_LE(threshold, 8u);
  EXPECT_GT(histogram.buckets[1], 0u);
  // at_least(threshold) keeps most of the ~2000 genomic kmers.
  EXPECT_GT(histogram.at_least(threshold), 1500u);
}

TEST(Stats, DegreeDistributionCountsAllVertices) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 27, 11, 8);
  const auto distribution = degree_distribution(graph);
  std::uint64_t total = 0;
  for (const auto& row : distribution.counts) {
    for (const auto c : row) total += c;
  }
  EXPECT_EQ(total, graph.num_vertices());
  // A mostly-linear genome graph is dominated by (1,1) vertices.
  EXPECT_GT(distribution.simple_path_vertices(), total / 2);
}

TEST(Export, TsvContainsEveryVertex) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 21, 9, 4);
  io::TempDir dir("export_test");
  const std::string path = dir.file("graph.tsv");
  const auto written = write_adjacency_tsv(graph, path);
  EXPECT_EQ(written, graph.num_vertices());

  std::ifstream file(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(file, line)) {
    ++lines;
    // kmer <tab> coverage <tab> out:... <tab> in:...
    std::istringstream ss(line);
    std::string kmer;
    std::string coverage;
    std::string out;
    std::string in;
    ASSERT_TRUE(std::getline(ss, kmer, '\t'));
    ASSERT_TRUE(std::getline(ss, coverage, '\t'));
    ASSERT_TRUE(std::getline(ss, out, '\t'));
    ASSERT_TRUE(std::getline(ss, in, '\t'));
    EXPECT_EQ(kmer.size(), 21u);
    EXPECT_NE(graph.find(Kmer<1>::from_string(kmer)), nullptr);
    EXPECT_EQ(out.rfind("out:", 0), 0u);
    EXPECT_EQ(in.rfind("in:", 0), 0u);
  }
  EXPECT_EQ(lines, written);
}

TEST(Export, TsvRespectsMinCoverage) {
  const auto graph = build_graph<1>(deep_coverage_reads(), 21, 9, 4);
  io::TempDir dir("export_test");
  const auto all = write_adjacency_tsv(graph, dir.file("all.tsv"), 0);
  const auto filtered =
      write_adjacency_tsv(graph, dir.file("filtered.tsv"), 3);
  EXPECT_LT(filtered, all);
  EXPECT_GT(filtered, 0u);
}

TEST(Export, DotExportsSmallGraph) {
  std::vector<io::Read> reads = {{"r", "ACGTACGTTTGCAGCATATTACC"}};
  const auto graph = build_graph<1>(reads, 11, 5, 2);
  io::TempDir dir("export_test");
  const std::string path = dir.file("graph.dot");
  write_dot(graph, path);

  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  const std::string dot = content.str();
  EXPECT_NE(dot.find("digraph dbg"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  // Refuses big graphs.
  const auto big = build_graph<1>(deep_coverage_reads(), 21, 9, 4);
  EXPECT_THROW(write_dot(big, dir.file("big.dot"), 100), Error);
}

}  // namespace
}  // namespace parahash::core
