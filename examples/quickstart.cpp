// Quickstart: build a De Bruijn graph from a FASTA/FASTQ file and query
// it.
//
// Usage:
//   quickstart [reads.fastq [k [partitions]]]
//
// With no arguments a small demo dataset is simulated first, so the
// example is runnable out of the box.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

int main(int argc, char** argv) {
  using namespace parahash;

  io::TempDir scratch("quickstart");
  std::string input;
  if (argc > 1) {
    input = argv[1];
  } else {
    // No input given: simulate a 200 kbp genome at 15x coverage.
    sim::DatasetSpec spec;
    spec.genome_size = 200'000;
    spec.read_length = 101;
    spec.coverage = 15.0;
    spec.lambda = 1.0;
    input = scratch.file("demo.fastq");
    std::printf("simulating %llu reads into %s ...\n",
                static_cast<unsigned long long>(spec.num_reads()),
                input.c_str());
    sim::write_dataset(spec, input);
  }

  // Configure ParaHash: k-mer length, minimizer length, partition count,
  // and which processors participate.
  pipeline::Options options;
  options.msp.k = argc > 2 ? std::atoi(argv[2]) : 27;
  options.msp.p = 11;
  options.msp.num_partitions = argc > 3 ? std::atoi(argv[3]) : 32;
  options.cpu_threads = 4;
  options.min_coverage = 0;  // keep everything; filter later if desired

  std::printf("constructing De Bruijn graph (k=%d, P=%d, %u partitions)\n",
              options.msp.k, options.msp.p, options.msp.num_partitions);

  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(input);

  std::printf("\n-- construction report --\n");
  std::printf("step 1 (MSP partitioning): %.3f s over %llu batches\n",
              report.step1.times.elapsed_seconds,
              static_cast<unsigned long long>(report.step1.times.items));
  std::printf("step 2 (hashing):          %.3f s over %llu partitions\n",
              report.step2.times.elapsed_seconds,
              static_cast<unsigned long long>(report.step2.times.items));
  std::printf("superkmer partition bytes: %llu\n",
              static_cast<unsigned long long>(report.partition_bytes));
  std::printf("distinct vertices:  %llu\n",
              static_cast<unsigned long long>(report.graph.vertices));
  std::printf("duplicate vertices: %llu\n",
              static_cast<unsigned long long>(
                  report.graph.duplicate_vertices()));
  std::printf("distinct edges:     %llu\n",
              static_cast<unsigned long long>(report.graph.distinct_edges));
  std::printf("peak RSS:           %.1f MB\n",
              static_cast<double>(report.peak_rss_bytes) / 1e6);

  // Point queries: pull a vertex out of the graph and inspect it. Any
  // strand works — queries are canonicalised internally.
  const core::DeBruijnGraph<1>& g = graph;
  const concurrent::VertexEntry<1>* sample = nullptr;
  g.for_each_vertex([&](const concurrent::VertexEntry<1>& e) {
    if (sample == nullptr || e.coverage > sample->coverage) sample = &e;
  });
  if (sample != nullptr) {
    std::printf("\n-- highest-coverage vertex --\n");
    std::printf("kmer       %s\n", sample->kmer.to_string().c_str());
    std::printf("coverage   %u\n", sample->coverage);
    std::printf("out edges  ");
    for (int b = 0; b < 4; ++b) {
      if (sample->out_weight(b) > 0) {
        std::printf("%c:%u ", "ACGT"[b], sample->out_weight(b));
      }
    }
    std::printf("\nin edges   ");
    for (int b = 0; b < 4; ++b) {
      if (sample->in_weight(b) > 0) {
        std::printf("%c:%u ", "ACGT"[b], sample->in_weight(b));
      }
    }
    std::printf("\n");

    const auto rc = sample->kmer.reverse_complement();
    std::printf("query by reverse complement finds the same vertex: %s\n",
                g.find(rc) == g.find(sample->kmer) ? "yes" : "NO (bug!)");
  }

  // Persist the graph for downstream tools.
  const std::string graph_path = scratch.file("graph.phdg");
  const auto bytes = graph.write(graph_path);
  std::printf("\ngraph written to %s (%llu bytes)\n", graph_path.c_str(),
              static_cast<unsigned long long>(bytes));
  return 0;
}
