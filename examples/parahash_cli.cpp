// parahash_cli — the retired flat front end, kept as an alias.
//
// Every historical invocation (`parahash_cli build ... --k=27`,
// `parahash_cli stats g.phdg`, ...) forwards unchanged to the
// subcommand CLI in src/cli/ — the flag vocabulary is identical, the
// new binary just adds `serve`, `query`, `report` and `--config`.
// Prefer the `parahash` binary; this shim exists so existing scripts
// keep working and prints a one-line deprecation note to stderr.
#include <cstdio>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::fprintf(stderr,
               "note: parahash_cli is deprecated; use the `parahash` "
               "binary (same commands and flags, plus serve/query/"
               "report and --config)\n");
  return parahash::cli::run_cli(argc, argv);
}
