// parahash_cli — a complete command-line front end for the library.
//
//   parahash_cli build  <reads.fastq...> --graph=out.phdg [--k=27 --p=11
//        --partitions=512 --gpus=0 --threads=N --min-coverage=0
//        --work-dir=DIR --no-pipeline --input-mbps=0 --output-mbps=0
//        --quality-trim=0 --max-open-files=0 --fuse-steps
//        --inflight-table-budget=MB --upsert-batch=N|auto|tuned
//        --autotune --trace-out=trace.json --metrics-out=metrics.json
//        --report-json=report.json
//        --step3 --min-tip-len=N --bubble-max-len=N --min-edge-weight=N
//        --contigs-out=contigs.fa --gfa-out=graph.gfa]
//        (several input files — plain or .gz — concatenate)
//   parahash_cli stats  <graph.phdg>
//   parahash_cli unitigs <graph.phdg> --fasta=out.fa [--min-coverage=2
//        --min-edge-weight=2]
//   parahash_cli gfa    <graph.phdg> --out=graph.gfa [--min-coverage=2]
//   parahash_cli export <graph.phdg> --tsv=graph.tsv [--min-coverage=0]
//
// The graph file must have been produced with k <= 32 (one-word kmers);
// `build` dispatches on k automatically.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/algo.h"
#include "core/export.h"
#include "core/gfa.h"
#include "core/stats.h"
#include "core/unitig.h"
#include "pipeline/parahash.h"
#include "pipeline/report_json.h"
#include "util/flags.h"
#include "util/simd.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace {

using namespace parahash;

int usage() {
  std::fprintf(stderr,
               "usage: parahash_cli <build|stats|unitigs|gfa|export> ...\n"
               "see the header of examples/parahash_cli.cpp\n");
  return 2;
}

int cmd_build(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  // Every positional after "build" is an input file (lanes concatenate).
  const std::vector<std::string> inputs(flags.positional().begin() + 1,
                                        flags.positional().end());
  pipeline::Options options;
  options.msp.k = static_cast<int>(flags.get_int("k", 27));
  options.msp.p = static_cast<int>(flags.get_int("p", 11));
  options.msp.num_partitions =
      static_cast<std::uint32_t>(flags.get_int("partitions", 512));
  options.cpu_threads = static_cast<int>(flags.get_int("threads", 0));
  options.num_gpus = static_cast<int>(flags.get_int("gpus", 0));
  options.min_coverage =
      static_cast<std::uint32_t>(flags.get_int("min-coverage", 0));
  options.work_dir = flags.get("work-dir");
  options.pipelined = !flags.get_bool("no-pipeline");
  options.input_bytes_per_sec = flags.get_double("input-mbps", 0) * 1e6;
  options.output_bytes_per_sec = flags.get_double("output-mbps", 0) * 1e6;
  options.quality_trim_phred =
      static_cast<int>(flags.get_int("quality-trim", 0));
  options.max_open_partitions =
      static_cast<std::uint32_t>(flags.get_int("max-open-files", 0));
  options.fuse_steps = flags.get_bool("fuse-steps");
  options.inflight_table_budget_bytes = static_cast<std::uint64_t>(
      flags.get_double("inflight-table-budget", 0) * 1e6);
  options.hash.upsert_window = concurrent::UpsertWindow::parse(
      flags.get("upsert-batch",
                concurrent::UpsertWindow{}.to_string()));

  // Step 3 — graph simplification + contig extraction. Implied by a
  // contig/GFA output path; rides the fused chain under --fuse-steps.
  options.contigs_out = flags.get("contigs-out");
  options.gfa_out = flags.get("gfa-out");
  options.step3 = flags.get_bool("step3") || !options.contigs_out.empty() ||
                  !options.gfa_out.empty();
  options.min_tip_len =
      static_cast<std::uint32_t>(flags.get_int("min-tip-len", 0));
  options.bubble_max_len =
      static_cast<std::uint32_t>(flags.get_int("bubble-max-len", 0));
  options.min_edge_weight =
      static_cast<std::uint32_t>(flags.get_int("min-edge-weight", 1));

  // --autotune: calibration pre-pass + live control loop. Explicitly
  // given flags are pinned — the tuner fills in only what the user
  // left at defaults.
  options.autotune.enabled = flags.get_bool("autotune");
  if (options.autotune.enabled) {
    options.autotune.pin_partitions = flags.has("partitions");
    options.autotune.pin_inflight_budget =
        flags.has("inflight-table-budget");
    options.autotune.pin_upsert_window = flags.has("upsert-batch");
    options.autotune.pin_fuse =
        flags.has("fuse-steps") || flags.has("no-pipeline");
  }

  const std::string graph_path = flags.get("graph", "graph.phdg");
  const std::string trace_path = flags.get("trace-out");
  const std::string metrics_path = flags.get("metrics-out");
  const std::string report_path = flags.get("report-json");
  if (!metrics_path.empty()) telemetry::set_enabled(true);
  if (!trace_path.empty()) trace::start();

  const auto report = with_kmer_words(options.msp.k, [&]<int W>() {
    pipeline::ParaHash<W> system(options);
    auto [graph, run_report] = system.construct(inputs);
    graph.write(graph_path);
    return run_report;
  });

  std::printf("step1 %.3f s (%llu batches), step2 %.3f s (%llu "
              "partitions), total %.3f s\n",
              report.step1.times.elapsed_seconds,
              static_cast<unsigned long long>(report.step1.times.items),
              report.step2.times.elapsed_seconds,
              static_cast<unsigned long long>(report.step2.times.items),
              report.total_elapsed_seconds);
  if (options.step3) {
    const auto& s3 = report.step3_stats;
    std::printf("step3 %.3f s (%llu partitions): %llu contigs "
                "(%llu bases, %llu cross-partition), tips clipped %llu, "
                "bubbles popped %llu\n",
                report.step3.times.elapsed_seconds,
                static_cast<unsigned long long>(report.step3.times.items),
                static_cast<unsigned long long>(s3.contigs),
                static_cast<unsigned long long>(s3.contig_bases),
                static_cast<unsigned long long>(s3.cross_partition_contigs),
                static_cast<unsigned long long>(s3.simplify.tips_clipped),
                static_cast<unsigned long long>(s3.simplify.bubbles_popped));
    if (!options.contigs_out.empty()) {
      std::printf("contigs written to %s\n", options.contigs_out.c_str());
    }
    if (!options.gfa_out.empty()) {
      std::printf("gfa written to %s (%llu segments, %llu links)\n",
                  options.gfa_out.c_str(),
                  static_cast<unsigned long long>(s3.gfa_segments),
                  static_cast<unsigned long long>(s3.gfa_links));
    }
  }
  if (options.fuse_steps) {
    std::printf("fused steps: overlap %.3f s", report.step_overlap_seconds);
    if (options.step3) {
      std::printf(", step2/3 overlap %.3f s",
                  report.step23_overlap_seconds);
    }
    if (options.inflight_table_budget_bytes > 0) {
      std::printf(" (table budget %.1f MB)",
                  static_cast<double>(options.inflight_table_budget_bytes) /
                      1e6);
    }
    std::printf("\n");
  }
  if (report.tuner.enabled) {
    std::printf("autotune: partitions=%u, budget %.1f MB, window %d, "
                "%zu decisions (see report tuner section)\n",
                report.tuner.calibration.chosen_partitions,
                static_cast<double>(
                    report.tuner.calibration.chosen_inflight_budget) /
                    1e6,
                report.tuner.calibration.chosen_upsert_window,
                report.tuner.decisions.size());
  }
  std::printf("vertices %llu (filtered %llu), partition bytes %llu, "
              "peak RSS %.1f MB\n",
              static_cast<unsigned long long>(report.graph.vertices),
              static_cast<unsigned long long>(report.filtered_vertices),
              static_cast<unsigned long long>(report.partition_bytes),
              static_cast<double>(report.peak_rss_bytes) / 1e6);
  const auto& ht = report.step2_table;
  if (ht.adds > 0) {
    std::printf("upserts %llu, probes/upsert %.2f, tag-rejected %llu, "
                "full key compares %llu (tag filter %.1f%%)\n",
                static_cast<unsigned long long>(ht.adds),
                ht.mean_probe_length(),
                static_cast<unsigned long long>(ht.tag_rejects),
                static_cast<unsigned long long>(ht.key_compares),
                100.0 * ht.tag_filter_rate());
    std::printf("group scans %llu (%s, window %s), lanes rejected "
                "wholesale %llu\n",
                static_cast<unsigned long long>(ht.group_scans),
                simd::to_string(simd::active()),
                options.hash.upsert_window.to_string().c_str(),
                static_cast<unsigned long long>(ht.lanes_rejected));
    if (ht.overflow_hits > 0 || ht.migrations > 0 || report.resizes > 0) {
      std::printf("overflow hits %llu, table migrations %llu, "
                  "restarts %d\n",
                  static_cast<unsigned long long>(ht.overflow_hits),
                  static_cast<unsigned long long>(ht.migrations),
                  report.resizes);
    }
  }
  if (!trace_path.empty()) {
    trace::stop();
    trace::write(trace_path);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw IoError("cannot open " + metrics_path);
    out << telemetry::Registry::global().snapshot_json() << '\n';
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) throw IoError("cannot open " + report_path);
    out << pipeline::run_report_json(
               report, simd::to_string(simd::active()),
               options.hash.upsert_window.to_string(),
               options.inflight_table_budget_bytes)
        << '\n';
    std::printf("report written to %s\n", report_path.c_str());
  }
  std::printf("graph written to %s\n", graph_path.c_str());
  return 0;
}

int cmd_stats(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const auto graph = core::DeBruijnGraph<1>::load(flags.positional()[1]);
  const auto stats = graph.stats();
  std::printf("k=%d P=%d partitions=%u\n", graph.k(), graph.p(),
              graph.num_partitions());
  std::printf("vertices:            %llu\n",
              static_cast<unsigned long long>(stats.vertices));
  std::printf("total coverage:      %llu\n",
              static_cast<unsigned long long>(stats.total_coverage));
  std::printf("distinct edges:      %llu\n",
              static_cast<unsigned long long>(stats.distinct_edges));
  std::printf("branching vertices:  %llu\n",
              static_cast<unsigned long long>(stats.branching_vertices));

  const auto histogram = core::coverage_histogram(graph, 32);
  std::printf("suggested min-coverage: %u\n",
              histogram.suggested_min_coverage());
  const auto degrees = core::degree_distribution(graph);
  std::printf("simple-path vertices:   %llu\n",
              static_cast<unsigned long long>(
                  degrees.simple_path_vertices()));
  std::printf("tips:                   %llu\n",
              static_cast<unsigned long long>(degrees.tips()));
  std::printf("branch vertices:        %llu\n",
              static_cast<unsigned long long>(degrees.branches()));
  const auto components = core::connected_components(graph);
  std::printf("connected components:   %llu (largest %llu)\n",
              static_cast<unsigned long long>(components.count),
              static_cast<unsigned long long>(components.largest()));
  return 0;
}

int cmd_unitigs(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const auto graph = core::DeBruijnGraph<1>::load(flags.positional()[1]);
  const auto min_coverage =
      static_cast<std::uint32_t>(flags.get_int("min-coverage", 0));
  const auto min_edge =
      static_cast<std::uint32_t>(flags.get_int("min-edge-weight", 1));
  core::UnitigBuilder<1> builder(graph, min_coverage, min_edge);
  const auto unitigs = builder.build();

  const std::string fasta = flags.get("fasta", "unitigs.fa");
  std::ofstream out(fasta);
  if (!out) throw IoError("cannot open " + fasta);
  std::uint64_t bases = 0;
  for (std::size_t i = 0; i < unitigs.size(); ++i) {
    out << ">unitig_" << i << " len=" << unitigs[i].length()
        << " cov=" << unitigs[i].mean_coverage << '\n'
        << unitigs[i].bases << '\n';
    bases += unitigs[i].length();
  }
  std::printf("%zu unitigs, %llu bases -> %s\n", unitigs.size(),
              static_cast<unsigned long long>(bases), fasta.c_str());
  return 0;
}

int cmd_gfa(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const auto graph = core::DeBruijnGraph<1>::load(flags.positional()[1]);
  const auto min_coverage =
      static_cast<std::uint32_t>(flags.get_int("min-coverage", 0));
  core::UnitigBuilder<1> builder(graph, min_coverage);
  core::GfaExporter<1> exporter(graph, builder.build(), min_coverage);
  const std::string path = flags.get("out", "graph.gfa");
  const auto [segments, links] = exporter.write(path);
  std::printf("%zu segments, %zu links -> %s\n", segments, links,
              path.c_str());
  return 0;
}

int cmd_export(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const auto graph = core::DeBruijnGraph<1>::load(flags.positional()[1]);
  const std::string path = flags.get("tsv", "graph.tsv");
  const auto written = core::write_adjacency_tsv(
      graph, path,
      static_cast<std::uint32_t>(flags.get_int("min-coverage", 0)));
  std::printf("%llu vertices -> %s\n",
              static_cast<unsigned long long>(written), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return usage();
  const std::string& command = flags.positional()[0];
  try {
    if (command == "build") return cmd_build(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "unitigs") return cmd_unitigs(flags);
    if (command == "gfa") return cmd_gfa(flags);
    if (command == "export") return cmd_export(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
