// Heterogeneous co-processing demo: run the same construction with
// different processor mixes (CPU only, GPUs only, CPU + GPUs), show how
// the work-stealing pipeline splits partitions by processor speed, and
// compare the measured times against the paper's Eq. (2) ideal.
//
// The "GPU" here is the simulated device described in DESIGN.md — same
// results, modelled transfer costs — so the demo runs on any machine.
//
// Usage: heterogeneous_demo [genome_size [num_gpus]]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/perf_model.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

namespace {

parahash::pipeline::Options make_options(bool use_cpu, int gpus) {
  parahash::pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 32;
  options.use_cpu = use_cpu;
  options.cpu_threads = 2;
  options.num_gpus = gpus;
  options.gpu.threads = 2;
  options.gpu.h2d_bytes_per_sec = 2e9;
  options.gpu.d2h_bytes_per_sec = 2e9;
  return options;
}

double run_once(const std::string& fastq, bool use_cpu, int gpus,
                parahash::pipeline::RunReport* out = nullptr) {
  parahash::pipeline::ParaHash<1> system(make_options(use_cpu, gpus));
  auto [graph, report] = system.construct(fastq);
  if (out != nullptr) *out = report;
  return report.total_elapsed_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parahash;

  sim::DatasetSpec spec;
  spec.genome_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150'000;
  spec.read_length = 101;
  spec.coverage = 20.0;
  spec.lambda = 1.0;
  const int max_gpus = argc > 2 ? std::atoi(argv[2]) : 2;

  io::TempDir scratch("hetero");
  const std::string fastq = scratch.file("reads.fastq");
  sim::write_dataset(spec, fastq);

  // Single-processor baselines feed Eq. (2).
  std::printf("measuring single-processor baselines...\n");
  const double t_cpu = run_once(fastq, true, 0);
  const double t_gpu = run_once(fastq, false, 1);
  std::printf("  CPU only:   %7.3f s\n", t_cpu);
  std::printf("  1 GPU only: %7.3f s\n", t_gpu);

  std::printf("\n%-18s %10s %12s\n", "configuration", "elapsed(s)",
              "Eq.(2) ideal");
  struct Mix {
    const char* name;
    bool cpu;
    int gpus;
  };
  std::vector<Mix> mixes = {{"CPU", true, 0}, {"1 GPU", false, 1}};
  if (max_gpus >= 2) mixes.push_back({"2 GPU", false, 2});
  mixes.push_back({"CPU + 1 GPU", true, 1});
  if (max_gpus >= 2) mixes.push_back({"CPU + 2 GPU", true, 2});

  pipeline::RunReport last_report;
  for (const auto& mix : mixes) {
    pipeline::RunReport report;
    const double elapsed = run_once(fastq, mix.cpu, mix.gpus, &report);
    const double ideal = core::estimate_coprocessing(
        mix.cpu ? t_cpu : 0.0, t_gpu, mix.gpus);
    std::printf("%-18s %10.3f %12.3f\n", mix.name, elapsed, ideal);
    if (mix.cpu && mix.gpus == std::min(max_gpus, 2)) last_report = report;
  }

  // Workload distribution of the most heterogeneous mix (Fig. 11's
  // question: did each processor take work proportional to its speed?).
  std::printf("\n-- workload distribution (Step 2, %s) --\n",
              max_gpus >= 2 ? "CPU + 2 GPU" : "CPU + 1 GPU");
  std::uint64_t total_vertices = 0;
  for (const auto& dev : last_report.step2.devices) {
    total_vertices += dev.stats.hash_vertices;
  }
  for (const auto& dev : last_report.step2.devices) {
    std::printf("  %-12s %3llu partitions, %6.2f%% of vertices, "
                "compute %.3f s, transfer %.3f s\n",
                dev.name.c_str(),
                static_cast<unsigned long long>(dev.stats.hash_partitions),
                total_vertices == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(dev.stats.hash_vertices) /
                          static_cast<double>(total_vertices),
                dev.stats.hash_compute_seconds,
                dev.stats.transfer_seconds);
  }
  std::printf("\n(on a single-core host the parallel gains are bounded by "
              "the hardware;\n the shape — workload following processing "
              "speed — is what to look at)\n");
  return 0;
}
