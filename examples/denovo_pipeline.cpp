// A miniature de novo assembly pipeline on simulated sequencing data:
//
//   1. simulate a genome and error-bearing shotgun reads (Poisson(λ)
//      substitution errors, both strands),
//   2. construct the De Bruijn graph with ParaHash,
//   3. filter low-coverage (erroneous) vertices by multiplicity,
//   4. compact the surviving graph into unitigs,
//   5. check how much of the true genome the unitigs recover.
//
// This is the workload the paper's introduction motivates: the graph
// construction step feeding a de novo assembler.
//
// Usage: denovo_pipeline [genome_size [coverage [lambda]]]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/algo.h"
#include "core/gfa.h"
#include "core/stats.h"
#include "core/unitig.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

int main(int argc, char** argv) {
  using namespace parahash;

  sim::DatasetSpec spec;
  spec.genome_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  spec.read_length = 101;
  spec.coverage = argc > 2 ? std::atof(argv[2]) : 25.0;
  spec.lambda = argc > 3 ? std::atof(argv[3]) : 1.0;
  spec.seed = 4242;

  io::TempDir scratch("denovo");
  const std::string fastq = scratch.file("reads.fastq");
  std::printf("simulating: genome %llu bp, %.0fx coverage, lambda=%.1f\n",
              static_cast<unsigned long long>(spec.genome_size),
              spec.coverage, spec.lambda);
  const std::string genome = sim::write_dataset(spec, fastq);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 32;
  options.cpu_threads = 4;

  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);
  std::printf("graph constructed in %.3f s: %llu distinct vertices "
              "(%llu duplicates merged)\n",
              report.total_elapsed_seconds,
              static_cast<unsigned long long>(report.graph.vertices),
              static_cast<unsigned long long>(
                  report.graph.duplicate_vertices()));

  // Erroneous kmers can only be told apart by multiplicity after the
  // graph is built (paper Sec. III-C1); pick the threshold from the
  // coverage histogram's error valley.
  const std::uint64_t before = graph.num_vertices();
  const auto histogram = core::coverage_histogram(graph);
  std::uint32_t min_coverage = histogram.suggested_min_coverage();
  if (min_coverage < 2) min_coverage = 2;
  std::printf("coverage histogram suggests min coverage %u\n", min_coverage);
  const std::uint64_t removed = graph.filter_min_coverage(min_coverage);
  std::printf("coverage filter (>= %u): removed %llu error vertices "
              "(%.1f%% of the graph), kept %llu\n",
              min_coverage, static_cast<unsigned long long>(removed),
              100.0 * static_cast<double>(removed) /
                  static_cast<double>(before),
              static_cast<unsigned long long>(graph.num_vertices()));

  core::UnitigBuilder<1> builder(graph, min_coverage,
                                 /*min_edge_weight=*/2);
  const auto unitigs = builder.build();

  std::uint64_t total_length = 0;
  std::size_t longest = 0;
  for (const auto& u : unitigs) {
    total_length += u.length();
    longest = std::max(longest, u.length());
  }
  // N50: half the assembled bases live in unitigs at least this long.
  std::vector<std::size_t> lengths;
  lengths.reserve(unitigs.size());
  for (const auto& u : unitigs) lengths.push_back(u.length());
  std::sort(lengths.rbegin(), lengths.rend());
  std::uint64_t acc = 0;
  std::size_t n50 = 0;
  for (const auto len : lengths) {
    acc += len;
    if (acc * 2 >= total_length) {
      n50 = len;
      break;
    }
  }

  std::printf("\n-- assembly summary --\n");
  std::printf("unitigs:        %zu\n", unitigs.size());
  std::printf("total length:   %llu bp (genome: %llu bp)\n",
              static_cast<unsigned long long>(total_length),
              static_cast<unsigned long long>(genome.size()));
  std::printf("longest unitig: %zu bp\n", longest);
  std::printf("unitig N50:     %zu bp\n", n50);

  // Validation against the truth we happen to own: what fraction of
  // assembled bases align exactly to the genome (either strand)?
  std::uint64_t aligned = 0;
  for (const auto& u : unitigs) {
    if (genome.find(u.bases) != std::string::npos ||
        genome.find(reverse_complement_str(u.bases)) != std::string::npos) {
      aligned += u.length();
    }
  }
  std::printf("unitig bases exactly matching the genome: %.1f%%\n",
              total_length == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(aligned) /
                        static_cast<double>(total_length));

  // Connectivity of the filtered graph, and a GFA for Bandage & friends.
  const auto components = core::connected_components(graph);
  std::printf("connected components: %llu (largest %llu vertices)\n",
              static_cast<unsigned long long>(components.count),
              static_cast<unsigned long long>(components.largest()));

  core::GfaExporter<1> exporter(graph, unitigs);
  const std::string gfa_path = scratch.file("assembly.gfa");
  const auto [segments, links] = exporter.write(gfa_path);
  std::printf("assembly graph: %zu segments, %zu links -> %s\n", segments,
              links, gfa_path.c_str());
  return 0;
}
