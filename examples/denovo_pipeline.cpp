// A miniature de novo assembly pipeline on simulated sequencing data:
//
//   1. simulate a genome and error-bearing shotgun reads (Poisson(λ)
//      substitution errors, both strands),
//   2. run the full three-stage ParaHash pipeline — partition, hash,
//      and Step 3's simplification + contig extraction — fused, so the
//      stages overlap partition-by-partition,
//   3. check how much of the true genome the contigs recover.
//
// This is the workload the paper's introduction motivates: the graph
// construction step feeding a de novo assembler, with the assembler's
// first pass (tip clipping, bubble popping, unitig compaction) now a
// pipeline stage instead of a caller-side loop.
//
// Usage: denovo_pipeline [genome_size [coverage [lambda]]]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/algo.h"
#include "core/stats.h"
#include "core/unitig.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

int main(int argc, char** argv) {
  using namespace parahash;

  sim::DatasetSpec spec;
  spec.genome_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  spec.read_length = 101;
  spec.coverage = argc > 2 ? std::atof(argv[2]) : 25.0;
  spec.lambda = argc > 3 ? std::atof(argv[3]) : 1.0;
  spec.seed = 4242;

  io::TempDir scratch("denovo");
  const std::string fastq = scratch.file("reads.fastq");
  std::printf("simulating: genome %llu bp, %.0fx coverage, lambda=%.1f\n",
              static_cast<unsigned long long>(spec.genome_size),
              spec.coverage, spec.lambda);
  const std::string genome = sim::write_dataset(spec, fastq);

  pipeline::Options options;
  options.msp.k = 27;
  options.msp.p = 11;
  options.msp.num_partitions = 32;
  options.cpu_threads = 4;
  // Erroneous kmers can only be told apart by multiplicity after the
  // graph is built (paper Sec. III-C1). At 25x coverage a Poisson(1)
  // substitution error yields kmers seen once or twice, so coverage
  // >= 2 with edge weight >= 2 strips almost all of them; what
  // survives shows up as short tips and coverage-asymmetric bubbles,
  // which Step 3's simplifier removes.
  options.min_coverage = 2;
  options.min_edge_weight = 2;
  options.step3 = true;
  options.min_tip_len = 0;     // auto: 2k
  options.bubble_max_len = 0;  // auto: 2k
  options.fuse_steps = true;   // three-band pipeline (Fig. 12 shape)
  options.gfa_out = scratch.file("assembly.gfa");

  pipeline::ParaHash<1> system(options);
  auto [graph, report] = system.construct(fastq);
  std::printf("graph constructed in %.3f s: %llu distinct vertices "
              "(%llu duplicates merged, %llu below coverage %u)\n",
              report.total_elapsed_seconds,
              static_cast<unsigned long long>(report.graph.vertices),
              static_cast<unsigned long long>(
                  report.graph.duplicate_vertices()),
              static_cast<unsigned long long>(report.filtered_vertices),
              options.min_coverage);
  const auto& s3 = report.step3_stats;
  std::printf("step3: %llu branch seeds, %llu boundary vertices, "
              "%llu tips clipped (%llu kmers), %llu bubbles popped "
              "(%llu kmers); step2/3 overlap %.3f s\n",
              static_cast<unsigned long long>(s3.branch_seed_vertices),
              static_cast<unsigned long long>(s3.boundary_vertices),
              static_cast<unsigned long long>(s3.simplify.tips_clipped),
              static_cast<unsigned long long>(s3.simplify.tip_kmers),
              static_cast<unsigned long long>(s3.simplify.bubbles_popped),
              static_cast<unsigned long long>(s3.simplify.bubble_kmers),
              report.step23_overlap_seconds);

  // The pipeline's Step 3 already extracted the contigs.
  const auto& contigs = system.contigs();

  std::uint64_t total_length = 0;
  std::size_t longest = 0;
  for (const auto& u : contigs) {
    total_length += u.length();
    longest = std::max(longest, u.length());
  }
  // N50: half the assembled bases live in contigs at least this long.
  std::vector<std::size_t> lengths;
  lengths.reserve(contigs.size());
  for (const auto& u : contigs) lengths.push_back(u.length());
  std::sort(lengths.rbegin(), lengths.rend());
  std::uint64_t acc = 0;
  std::size_t n50 = 0;
  for (const auto len : lengths) {
    acc += len;
    if (acc * 2 >= total_length) {
      n50 = len;
      break;
    }
  }

  std::printf("\n-- assembly summary --\n");
  std::printf("contigs:        %zu (%llu spanning partitions)\n",
              contigs.size(),
              static_cast<unsigned long long>(s3.cross_partition_contigs));
  std::printf("total length:   %llu bp (genome: %llu bp)\n",
              static_cast<unsigned long long>(total_length),
              static_cast<unsigned long long>(genome.size()));
  std::printf("longest contig: %zu bp\n", longest);
  std::printf("contig N50:     %zu bp\n", n50);

  // Validation against the truth we happen to own: what fraction of
  // assembled bases align exactly to the genome (either strand)?
  std::uint64_t aligned = 0;
  for (const auto& u : contigs) {
    if (genome.find(u.bases) != std::string::npos ||
        genome.find(reverse_complement_str(u.bases)) != std::string::npos) {
      aligned += u.length();
    }
  }
  std::printf("contig bases exactly matching the genome: %.1f%%\n",
              total_length == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(aligned) /
                        static_cast<double>(total_length));

  // Connectivity of the filtered graph, and the GFA Step 3 wrote for
  // Bandage & friends.
  const auto components = core::connected_components(graph);
  std::printf("connected components: %llu (largest %llu vertices)\n",
              static_cast<unsigned long long>(components.count),
              static_cast<unsigned long long>(components.largest()));
  std::printf("assembly graph: %llu segments, %llu links -> %s\n",
              static_cast<unsigned long long>(s3.gfa_segments),
              static_cast<unsigned long long>(s3.gfa_links),
              options.gfa_out.c_str());
  return 0;
}
