// Kmer-spectrum analysis with the counting-only mode.
//
// Runs Step 1 (MSP partitioning) and then the counting kernel — the
// "kmer counter" sibling of graph construction the paper's related work
// discusses — and prints the coverage spectrum: the histogram of kmer
// multiplicities, whose error peak (count 1-2) and genomic peak
// (count ~ coverage) drive the error-filter threshold, plus a genome
// size estimate from the spectrum.
//
// Usage: kmer_spectrum [reads.fastq [k]]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/kmer_counter.h"
#include "io/tmpdir.h"
#include "pipeline/parahash.h"
#include "sim/read_sim.h"

int main(int argc, char** argv) {
  using namespace parahash;

  io::TempDir scratch("spectrum");
  std::string input;
  std::uint64_t true_genome_size = 0;
  if (argc > 1) {
    input = argv[1];
  } else {
    sim::DatasetSpec spec;
    spec.genome_size = 150'000;
    spec.read_length = 101;
    spec.coverage = 20.0;
    spec.lambda = 1.0;
    true_genome_size = spec.genome_size;
    input = scratch.file("demo.fastq");
    std::printf("simulating %s (%llu bp genome, %.0fx)\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(spec.genome_size),
                spec.coverage);
    sim::write_dataset(spec, input);
  }
  const int k = argc > 2 ? std::atoi(argv[2]) : 27;

  // Step 1: partition.
  pipeline::Options options;
  options.msp.k = k;
  options.msp.p = 11;
  options.msp.num_partitions = 32;
  options.cpu_threads = 4;
  options.work_dir = scratch.file("parts");
  options.keep_partitions = true;
  pipeline::ParaHash<1> system(options);
  pipeline::StepReport step1;
  const auto paths = system.run_partitioning(input, step1);

  // Step 2 in counting mode.
  core::HashConfig hash_config;
  concurrent::ThreadPool pool(4);
  std::vector<std::uint64_t> spectrum(65, 0);
  std::uint64_t distinct = 0;
  std::uint64_t total = 0;
  std::uint64_t counting_memory = 0;
  WallTimer timer;
  for (const auto& path : paths) {
    const auto blob = io::PartitionBlob::read_file(path);
    auto result = core::count_partition<1>(blob, hash_config, &pool);
    counting_memory += result.table->memory_bytes();
    distinct += result.table->size();
    result.table->for_each(
        [&](const concurrent::ConcurrentCounterTable<1>::Entry& e) {
          const std::size_t bucket = e.count < 64 ? e.count : 64;
          ++spectrum[bucket];
          total += e.count;
        });
  }
  std::printf("counted %llu distinct kmers (%llu total) in %.3f s; "
              "counting tables: %.1f MB\n\n",
              static_cast<unsigned long long>(distinct),
              static_cast<unsigned long long>(total), timer.seconds(),
              static_cast<double>(counting_memory) / 1e6);

  // Print the spectrum with a terminal bar chart.
  std::uint64_t peak = 1;
  for (std::size_t c = 1; c < spectrum.size(); ++c) {
    peak = std::max(peak, spectrum[c]);
  }
  std::printf("%6s %12s\n", "count", "#kmers");
  for (std::size_t c = 1; c < spectrum.size(); ++c) {
    if (spectrum[c] == 0) continue;
    const int bar =
        static_cast<int>(60.0 * static_cast<double>(spectrum[c]) /
                         static_cast<double>(peak));
    std::printf("%5zu%s %12llu %.*s\n", c, c == 64 ? "+" : " ",
                static_cast<unsigned long long>(spectrum[c]), bar,
                "############################################################");
  }

  // Genome size estimate: kmers above the error valley, weighted by
  // count, divided by the genomic peak's mean multiplicity.
  std::size_t valley = 2;
  for (std::size_t c = 2; c + 1 < spectrum.size(); ++c) {
    if (spectrum[c] <= spectrum[c - 1] && spectrum[c] <= spectrum[c + 1]) {
      valley = c;
      break;
    }
  }
  std::uint64_t genomic_kmers = 0;
  double weighted = 0;
  for (std::size_t c = valley; c < spectrum.size(); ++c) {
    genomic_kmers += spectrum[c];
    weighted += static_cast<double>(spectrum[c]) * static_cast<double>(c);
  }
  std::printf("\nerror valley at count %zu; genomic kmers ~ %llu\n", valley,
              static_cast<unsigned long long>(genomic_kmers));
  std::printf("estimated genome size: ~%llu bp\n",
              static_cast<unsigned long long>(genomic_kmers + k - 1));
  if (true_genome_size != 0) {
    std::printf("true genome size:       %llu bp\n",
                static_cast<unsigned long long>(true_genome_size));
  }
  return 0;
}
