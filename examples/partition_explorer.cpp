// MSP parameter study on your own data (or a simulated dataset): how the
// minimizer length P and the partition count shape the superkmer
// partitions — the partition-size balance and hash-table sizing story of
// the paper's Sec. IV-A / Fig. 6 / Table II, as a tool.
//
// Usage: partition_explorer [reads.fastq]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/msp.h"
#include "core/properties.h"
#include "io/fastx.h"
#include "io/tmpdir.h"
#include "sim/read_sim.h"

namespace {

struct PartitionShape {
  std::uint64_t superkmers = 0;
  std::uint64_t total_superkmer_bases = 0;
  std::vector<std::uint64_t> kmers_per_partition;

  double mean_superkmer_len() const {
    return superkmers == 0 ? 0.0
                           : static_cast<double>(total_superkmer_bases) /
                                 static_cast<double>(superkmers);
  }
  std::uint64_t max_partition_kmers() const {
    return *std::max_element(kmers_per_partition.begin(),
                             kmers_per_partition.end());
  }
  double cv_partition_kmers() const {  // coefficient of variation
    const double n = static_cast<double>(kmers_per_partition.size());
    double mean = 0;
    for (auto v : kmers_per_partition) mean += static_cast<double>(v);
    mean /= n;
    double var = 0;
    for (auto v : kmers_per_partition) {
      const double d = static_cast<double>(v) - mean;
      var += d * d;
    }
    return mean == 0 ? 0.0 : std::sqrt(var / n) / mean;
  }
};

PartitionShape scan(const parahash::io::ReadBatch& batch,
                    const parahash::core::MspConfig& config) {
  using namespace parahash;
  PartitionShape shape;
  shape.kmers_per_partition.assign(config.num_partitions, 0);
  core::MspScanner scanner(config);
  std::vector<std::uint8_t> codes;
  std::vector<core::SuperkmerSpan> spans;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const auto len = batch.read_length(r);
    codes.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      codes[i] = batch.bases[batch.offsets[r] + i];
    }
    spans.clear();
    scanner.scan_read(codes, spans);
    for (const auto& span : spans) {
      ++shape.superkmers;
      shape.total_superkmer_bases += span.end - span.begin;
      shape.kmers_per_partition[span.partition] +=
          (span.end - span.begin) - config.k + 1;
    }
  }
  return shape;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parahash;

  io::TempDir scratch("explorer");
  std::string input;
  if (argc > 1) {
    input = argv[1];
  } else {
    sim::DatasetSpec spec = sim::human_chr14_like(0.2);
    input = scratch.file("demo.fastq");
    std::printf("no input given; simulating %s (%llu bp genome)\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(spec.genome_size));
    sim::write_dataset(spec, input);
  }

  // Load up to ~40 Mbp of reads.
  io::FastxChunker chunker(input, 40u << 20);
  io::ReadBatch batch;
  chunker.next(batch);
  std::printf("loaded %zu reads (%zu bases)\n\n", batch.size(),
              batch.total_bases());

  // Sweep P at a fixed partition count (the Fig. 6 question).
  std::printf("-- minimizer length sweep (32 partitions, k=27) --\n");
  std::printf("%4s %12s %14s %18s %10s\n", "P", "#superkmers",
              "mean sk len", "max part kmers(M)", "size CV");
  for (int p : {5, 7, 9, 11, 13, 15}) {
    core::MspConfig config;
    config.k = 27;
    config.p = p;
    config.num_partitions = 32;
    const auto shape = scan(batch, config);
    std::printf("%4d %12llu %14.1f %18.3f %10.3f\n", p,
                static_cast<unsigned long long>(shape.superkmers),
                shape.mean_superkmer_len(),
                static_cast<double>(shape.max_partition_kmers()) / 1e6,
                shape.cv_partition_kmers());
  }

  // Sweep the partition count at fixed P (the Table II question):
  // maximum hash table size per partition.
  std::printf("\n-- partition count sweep (P=11, k=27) --\n");
  std::printf("%6s %18s %22s\n", "parts", "max kmers/part(M)",
              "max hash table (MB)");
  for (std::uint32_t parts : {16u, 32u, 64u, 128u, 256u}) {
    core::MspConfig config;
    config.k = 27;
    config.p = 11;
    config.num_partitions = parts;
    const auto shape = scan(batch, config);
    const auto max_kmers = shape.max_partition_kmers();
    const auto slots = core::hash_table_slots(max_kmers, 2.0, 0.7);
    // 32-byte slots for one-word kmers (state + key + 8 counters + cov).
    const double table_mb = static_cast<double>(slots) * 32.0 / 1e6;
    std::printf("%6u %18.3f %22.1f\n", parts,
                static_cast<double>(max_kmers) / 1e6, table_mb);
  }

  std::printf("\nlarger P -> more, shorter superkmers but a flatter "
              "partition-size distribution;\nmore partitions -> smaller "
              "per-partition hash tables (the paper picks P>=11 and "
              "512-960 partitions).\n");
  return 0;
}
