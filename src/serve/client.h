// Blocking client for the query daemon: one connection, lockstep
// request/response (protocol.h), over either transport — AF_UNIX or
// TCP. Used by the `parahash query` subcommand, the serve tests and
// the bench_serve load generator — all three speak through this one
// implementation so the wire format has a single reader.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parahash::serve {

/// A decoded reply: `ok` plus payload lines, or an error message.
struct ClientReply {
  bool ok = false;
  std::string error;
  std::vector<std::string> lines;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a daemon endpoint. A target of the form
  /// "tcp:host:port" dials TCP; anything else is an AF_UNIX socket
  /// path. Throws IoError.
  void connect(const std::string& target);
  /// Dials the daemon's TCP listener directly. Throws IoError.
  void connect_tcp(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request line and reads the full reply. Throws IoError
  /// on a broken connection; protocol-level failures come back as
  /// `ok == false` with the server's message.
  ClientReply request(std::string_view line);

  // Typed conveniences over request().
  bool ping();
  /// Membership of one kmer (FIND); throws on ERR replies.
  bool find(const std::string& kmer);
  /// Batched membership (MFIND); one bool per kmer.
  std::vector<bool> find_many(const std::vector<std::string>& kmers);
  std::vector<std::string> neighbors(const std::string& kmer);
  /// BFS rows as raw "<kmer> <depth> <coverage>" lines.
  std::vector<std::string> bfs(const std::string& kmer, int radius);
  /// The neighbourhood's GFA1 text.
  std::string gfa(const std::string& kmer, int radius);
  /// Hot-swaps the daemon to a new .phdg snapshot (SWAP); returns the
  /// new generation. Throws on ERR replies.
  std::uint64_t swap(const std::string& path);

 private:
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace parahash::serve
