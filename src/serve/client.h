// Blocking client for the query daemon: one connection, lockstep
// request/response (protocol.h). Used by the `parahash query`
// subcommand, the serve tests and the bench_serve load generator —
// all three speak through this one implementation so the wire format
// has a single reader.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace parahash::serve {

/// A decoded reply: `ok` plus payload lines, or an error message.
struct ClientReply {
  bool ok = false;
  std::string error;
  std::vector<std::string> lines;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to the daemon's AF_UNIX socket. Throws IoError.
  void connect(const std::string& socket_path);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request line and reads the full reply. Throws IoError
  /// on a broken connection; protocol-level failures come back as
  /// `ok == false` with the server's message.
  ClientReply request(std::string_view line);

  // Typed conveniences over request().
  bool ping();
  /// Membership of one kmer (FIND); throws on ERR replies.
  bool find(const std::string& kmer);
  /// Batched membership (MFIND); one bool per kmer.
  std::vector<bool> find_many(const std::vector<std::string>& kmers);
  std::vector<std::string> neighbors(const std::string& kmer);
  /// BFS rows as raw "<kmer> <depth> <coverage>" lines.
  std::vector<std::string> bfs(const std::string& kmer, int radius);
  /// The neighbourhood's GFA1 text.
  std::string gfa(const std::string& kmer, int radius);

 private:
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace parahash::serve
