#include "serve/query_engine.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/query.h"
#include "util/error.h"
#include "util/json.h"
#include "util/kmer.h"

namespace parahash::serve {

namespace {

/// One validation point for query kmers: exact length, ACGT only.
/// (Kmer::from_string folds unknown characters to A, which is right
/// for sequencing input but would silently answer the wrong query
/// here.)
void validate_kmer(const std::string& s, int k) {
  if (static_cast<int>(s.size()) != k) {
    throw InvalidArgumentError("kmer '" + s + "' is not length " +
                               std::to_string(k));
  }
  for (char c : s) {
    switch (c) {
      case 'A': case 'a': case 'C': case 'c':
      case 'G': case 'g': case 'T': case 't':
        break;
      default:
        throw InvalidArgumentError("kmer '" + s +
                                   "' has a non-ACGT character");
    }
  }
}

template <int W>
class FrozenQueryEngine final : public QueryEngine {
 public:
  explicit FrozenQueryEngine(core::FrozenGraph<W> graph)
      : graph_(std::move(graph)) {}

  int k() const override { return graph_.k(); }
  int p() const override { return graph_.p(); }
  std::uint32_t num_partitions() const override {
    return graph_.num_partitions();
  }
  std::uint64_t num_vertices() const override {
    return graph_.num_vertices();
  }
  std::uint64_t memory_bytes() const override {
    return graph_.memory_bytes();
  }

  bool valid_kmer(const std::string& kmer) const override {
    if (static_cast<int>(kmer.size()) != graph_.k()) return false;
    for (char c : kmer) {
      switch (c) {
        case 'A': case 'a': case 'C': case 'c':
        case 'G': case 'g': case 'T': case 't':
          break;
        default:
          return false;
      }
    }
    return true;
  }

  FindResult find(const std::string& kmer) const override {
    validate_kmer(kmer, graph_.k());
    const auto entry = graph_.find_entry(Kmer<W>::from_string(kmer));
    FindResult r;
    if (entry.has_value()) {
      r.found = true;
      r.coverage = entry->coverage;
      r.edges = entry->edges;
    }
    return r;
  }

  void find_many(std::span<const std::string> kmers,
                 std::vector<FindResult>& out) const override {
    std::vector<Kmer<W>> keys;
    keys.reserve(kmers.size());
    for (const std::string& s : kmers) {
      validate_kmer(s, graph_.k());
      keys.push_back(Kmer<W>::from_string(s));
    }
    std::vector<std::optional<concurrent::VertexEntry<W>>> hits;
    graph_.find_many(keys, hits);
    out.assign(hits.size(), FindResult{});
    for (std::size_t i = 0; i < hits.size(); ++i) {
      if (hits[i].has_value()) {
        out[i].found = true;
        out[i].coverage = hits[i]->coverage;
        out[i].edges = hits[i]->edges;
      }
    }
  }

  std::vector<std::string> neighbors(
      const std::string& kmer,
      std::uint32_t min_edge_weight) const override {
    validate_kmer(kmer, graph_.k());
    const Kmer<W> canon = Kmer<W>::from_string(kmer).canonical();
    const auto entry = graph_.find_entry(canon);
    std::vector<std::string> out;
    if (!entry.has_value()) return out;
    for (const auto& n : core::entry_neighbors(*entry, min_edge_weight)) {
      // Only neighbours that exist in the snapshot: an edge counter can
      // point at a vertex filtered by min-coverage.
      if (graph_.find_entry(n).has_value()) out.push_back(n.to_string());
    }
    return out;
  }

  std::vector<BfsRow> bfs(const std::string& kmer, int radius,
                          std::uint32_t min_edge_weight,
                          std::uint64_t max_vertices) const override {
    validate_kmer(kmer, graph_.k());
    const auto vertices = core::bfs_neighborhood<W>(
        graph_, Kmer<W>::from_string(kmer), radius, min_edge_weight,
        max_vertices);
    std::vector<BfsRow> rows;
    rows.reserve(vertices.size());
    for (const auto& v : vertices) {
      rows.push_back(BfsRow{v.entry.kmer.to_string(), v.depth,
                            v.entry.coverage});
    }
    return rows;
  }

  std::string gfa(const std::string& kmer, int radius,
                  std::uint32_t min_edge_weight,
                  std::uint64_t max_vertices) const override {
    validate_kmer(kmer, graph_.k());
    const auto vertices = core::bfs_neighborhood<W>(
        graph_, Kmer<W>::from_string(kmer), radius, min_edge_weight,
        max_vertices);
    std::ostringstream out;
    core::write_neighborhood_gfa<W>(out, vertices, graph_.k(),
                                    min_edge_weight);
    return std::move(out).str();
  }

 private:
  core::FrozenGraph<W> graph_;
};

}  // namespace

template <int W>
std::unique_ptr<QueryEngine> make_query_engine(core::FrozenGraph<W> graph) {
  return std::make_unique<FrozenQueryEngine<W>>(std::move(graph));
}

template std::unique_ptr<QueryEngine> make_query_engine<1>(
    core::FrozenGraph<1>);
template std::unique_ptr<QueryEngine> make_query_engine<2>(
    core::FrozenGraph<2>);

std::unique_ptr<QueryEngine> load_engine_from_graph(const std::string& path,
                                                    double alpha) {
  // Peek the header for the word count, then dispatch.
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("serve: cannot open graph file " + path);
  core::internal::GraphFileHeader header;
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!file || header.magic != core::internal::GraphFileHeader::kMagic) {
    throw IoError("serve: bad graph header in " + path);
  }
  file.close();
  // Dispatch on the file's word count, not on k: a two-word graph with
  // small k must still load as W=2 to match its on-disk layout.
  const auto load = [&]<int W>() -> std::unique_ptr<QueryEngine> {
    auto graph = core::DeBruijnGraph<W>::load(path);
    return make_query_engine<W>(core::FrozenGraph<W>::freeze(graph, alpha));
  };
  if (header.words == 1) return load.template operator()<1>();
  if (header.words == 2) return load.template operator()<2>();
  throw IoError("serve: unsupported kmer word count in " + path);
}

std::unique_ptr<QueryEngine> load_engine_from_subgraph_dir(
    const std::string& dir, int p, double alpha) {
  // Peek k from any subgraph file to pick the word count.
  namespace fs = std::filesystem;
  int k = 0;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("subgraph_", 0) != 0 ||
          name.substr(name.size() < 4 ? 0 : name.size() - 4) != ".bin") {
        continue;
      }
      std::ifstream file(entry.path(), std::ios::binary);
      std::uint32_t k32 = 0;
      file.read(reinterpret_cast<char*>(&k32), sizeof(k32));
      if (file) {
        k = static_cast<int>(k32);
        break;
      }
    }
  }
  if (k == 0) {
    throw IoError("serve: no readable subgraph_<id>.bin files in " + dir);
  }
  return with_kmer_words(k, [&]<int W>() -> std::unique_ptr<QueryEngine> {
    return make_query_engine<W>(
        core::FrozenGraph<W>::load_subgraph_dir(dir, p, alpha));
  });
}

}  // namespace parahash::serve
