// The daemon's query surface, type-erased over the kmer word count.
//
// A snapshot's W (1 word for k <= 32, 2 for k <= 64) is a template
// parameter everywhere else in the tree, but the daemon picks it at
// LOAD time (from the graph file / subgraph headers), so the socket
// and batching layers talk to this interface and never mention W. The
// concrete engine wraps a core::FrozenGraph and traffics in validated
// kmer strings — one validation point, every malformed query becomes
// an InvalidArgumentError the connection layer turns into an ERR
// reply.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/frozen_graph.h"

namespace parahash::serve {

class QueryEngine {
 public:
  struct FindResult {
    bool found = false;
    std::uint32_t coverage = 0;
    std::array<std::uint32_t, 8> edges{};
  };
  struct BfsRow {
    std::string kmer;  ///< canonical form
    int depth = 0;
    std::uint32_t coverage = 0;
  };

  virtual ~QueryEngine() = default;

  virtual int k() const = 0;
  virtual int p() const = 0;
  virtual std::uint32_t num_partitions() const = 0;
  virtual std::uint64_t num_vertices() const = 0;
  virtual std::uint64_t memory_bytes() const = 0;

  /// Non-throwing shape check (length + charset); the daemon uses it
  /// to reject a malformed job with an ERR before it joins a batch.
  virtual bool valid_kmer(const std::string& kmer) const = 0;

  virtual FindResult find(const std::string& kmer) const = 0;
  /// Batched lookup (the cross-client batching path: the whole batch
  /// drains through the snapshot's prefetch front-end in one pass).
  /// out[i] answers kmers[i]; every kmer must pass valid_kmer.
  virtual void find_many(std::span<const std::string> kmers,
                         std::vector<FindResult>& out) const = 0;
  virtual std::vector<std::string> neighbors(
      const std::string& kmer, std::uint32_t min_edge_weight) const = 0;
  virtual std::vector<BfsRow> bfs(const std::string& kmer, int radius,
                                  std::uint32_t min_edge_weight,
                                  std::uint64_t max_vertices) const = 0;
  /// The neighbourhood as GFA1 text (core::write_neighborhood_gfa).
  virtual std::string gfa(const std::string& kmer, int radius,
                          std::uint32_t min_edge_weight,
                          std::uint64_t max_vertices) const = 0;
};

/// Wraps a frozen snapshot; the daemon owns the returned engine.
template <int W>
std::unique_ptr<QueryEngine> make_query_engine(core::FrozenGraph<W> graph);

/// Loads a .phdg graph file and freezes it (W picked from the header).
std::unique_ptr<QueryEngine> load_engine_from_graph(
    const std::string& path, double alpha = 0.7);

/// Loads Step-2 subgraph_<id>.bin files (W picked from k in the
/// headers; `p` must match the build's minimizer length).
std::unique_ptr<QueryEngine> load_engine_from_subgraph_dir(
    const std::string& dir, int p, double alpha = 0.7);

}  // namespace parahash::serve
