// Hot-result cache for the query daemon: a sharded LRU over rendered
// traversal responses.
//
// Traversals (NEIGH/BFS/GFA) are the expensive verbs — a BFS walks the
// snapshot vertex by vertex while a FIND is one batched probe — and
// real query streams hit the same few neighbourhoods over and over
// (a genome browser panning, an assembler polishing one region). The
// cache keys the fully rendered Response on
//
//   (snapshot generation, verb, raw argument string)
//
// so a hit skips the queue entirely: the connection thread answers
// from the cache without waking a worker. Including the generation in
// the key means a swapped-in snapshot can never be answered with the
// old graph's payload; on top of that the daemon calls clear() at swap
// time so the dead generation's entries release their memory at once
// instead of aging out.
//
// Sharding: the key hash picks one of `shards` independent LRUs, each
// behind its own mutex, so concurrent connection threads rarely
// contend. Capacity is per-cache (split evenly across shards) and
// counted in entries; eviction is strict LRU within a shard.
//
// Telemetry: serve.cache.{hits,misses,evictions} counters, exported
// through the global registry like every other serve.* instrument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "util/telemetry.h"

namespace parahash::serve {

class ResultCache {
 public:
  /// `capacity` total entries across `shards` LRUs; capacity 0
  /// disables the cache (lookup always misses, insert is a no-op).
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8)
      : capacity_(capacity) {
    if (shards == 0) shards = 1;
    if (capacity_ > 0 && shards > capacity_) shards = capacity_;
    const std::size_t per_shard =
        capacity_ == 0 ? 0 : (capacity_ + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  bool enabled() const noexcept { return capacity_ > 0; }

  /// Builds the cache key for a request against one snapshot
  /// generation. Only traversal verbs are cacheable: membership verbs
  /// are already one batched probe, and PING/STATS/SWAP are dynamic.
  static bool cacheable(Verb verb) noexcept {
    return verb == Verb::kNeigh || verb == Verb::kBfs || verb == Verb::kGfa;
  }
  static std::string key(std::uint64_t generation, const Request& request) {
    std::string key = std::to_string(generation);
    key += '|';
    key += std::to_string(static_cast<int>(request.verb));
    for (const std::string& arg : request.args) {
      key += '|';
      key += arg;
    }
    return key;
  }

  std::optional<Response> lookup(const std::string& key) {
    if (capacity_ == 0) return std::nullopt;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      telemetry::counter("serve.cache.misses").add(1);
      return std::nullopt;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    telemetry::counter("serve.cache.hits").add(1);
    return it->second->response;
  }

  void insert(const std::string& key, const Response& response) {
    if (capacity_ == 0) return;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->response = response;
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.push_front(Entry{key, response});
    shard.index[key] = shard.order.begin();
    while (shard.order.size() > shard.capacity) {
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      telemetry::counter("serve.cache.evictions").add(1);
    }
  }

  /// Drops every entry (the swap path: the old generation's results
  /// can never be served again, so release them now).
  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->order.clear();
      shard->index.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->order.size();
    }
    return total;
  }

 private:
  struct Entry {
    std::string key;
    Response response;
  };
  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}
    std::size_t capacity;
    mutable std::mutex mutex;
    std::list<Entry> order;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace parahash::serve
