#include "serve/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <exception>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/json.h"
#include "util/telemetry.h"

namespace parahash::serve {

namespace {

/// Writes the whole buffer, riding out short writes and EINTR.
/// MSG_NOSIGNAL turns a disconnected peer into an EPIPE return instead
/// of a process-killing SIGPIPE — a client vanishing mid-response
/// (e.g. during a large BFS payload) is an ordinary connection close.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: peer is gone, close cleanly
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool parse_int(const std::string& s, int& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Daemon::Daemon(std::unique_ptr<QueryEngine> engine, ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries > 0
                 ? static_cast<std::size_t>(options_.cache_entries)
                 : 0,
             options_.cache_shards > 0
                 ? static_cast<std::size_t>(options_.cache_shards)
                 : 1) {
  PARAHASH_CHECK_MSG(engine != nullptr, "daemon needs a query engine");
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_batch < 1) options_.max_batch = 1;
  publish_snapshot(std::shared_ptr<QueryEngine>(std::move(engine)));
}

Daemon::~Daemon() { stop(); }

std::shared_ptr<const Daemon::Snapshot> Daemon::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Daemon::publish_snapshot(
    std::shared_ptr<QueryEngine> engine) {
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    generation = snapshot_ ? snapshot_->generation + 1 : 1;
    auto next = std::make_shared<Snapshot>();
    next->engine = std::move(engine);
    next->generation = generation;
    snapshot_ = std::move(next);
  }
  // The dead generation's cached results can never be served again
  // (the generation is part of every key); release them now rather
  // than letting them squat in the LRU until they age out.
  cache_.clear();
  telemetry::gauge("serve.swap.generation")
      .set(static_cast<std::int64_t>(generation));
  return generation;
}

std::uint64_t Daemon::swap_engine(std::unique_ptr<QueryEngine> engine) {
  PARAHASH_CHECK_MSG(engine != nullptr, "swap needs a query engine");
  const std::uint64_t generation =
      publish_snapshot(std::shared_ptr<QueryEngine>(std::move(engine)));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("serve.swap.count").add(1);
  return generation;
}

std::uint64_t Daemon::swap_from_path(const std::string& path) {
  const auto started = std::chrono::steady_clock::now();
  std::unique_ptr<QueryEngine> engine;
  try {
    engine = load_engine_from_graph(path, swap_alpha_);
  } catch (...) {
    telemetry::counter("serve.swap.errors").add(1);
    throw;
  }
  telemetry::histogram("serve.swap.load_ns").record(ns_since(started));
  return swap_engine(std::move(engine));
}

std::uint64_t Daemon::generation() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_ ? snapshot_->generation : 0;
}

std::size_t Daemon::open_connections() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return connections_.size() - finished_.size();
}

std::size_t Daemon::tracked_connection_threads() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return connections_.size();
}

void Daemon::start() {
  PARAHASH_CHECK_MSG(!running(), "daemon already started");
  PARAHASH_CHECK_MSG(
      !options_.socket_path.empty() || !options_.listen.empty(),
      "daemon needs at least one listener (socket_path or listen)");

  listeners_.clear();
  tcp_listener_ = SIZE_MAX;
  tcp_port_ = 0;
  if (!options_.socket_path.empty()) {
    listeners_.push_back(
        Listener::bind_unix(options_.socket_path, options_.backlog));
  }
  if (!options_.listen.empty()) {
    listeners_.push_back(
        Listener::bind_tcp(options_.listen, options_.backlog));
    tcp_listener_ = listeners_.size() - 1;
    tcp_port_ = listeners_.back().bound_port();
  }

  running_.store(true, std::memory_order_release);
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    accept_threads_.emplace_back([this, i] { accept_loop(i); });
  }
}

void Daemon::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // Unblock accept(): shutdown() wakes it on Linux; close finishes it.
  for (const Listener& listener : listeners_) listener.interrupt();
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  for (Listener& listener : listeners_) listener.close_and_cleanup();
  listeners_.clear();

  // Unblock connection readers; their loops exit on EOF (jobs still in
  // flight finish first: workers are joined only after the readers).
  std::unordered_map<std::uint64_t, Connection> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& [id, conn] : connections_) ::shutdown(conn.fd, SHUT_RDWR);
    connections = std::move(connections_);
    connections_.clear();
    finished_.clear();
  }
  for (auto& [id, conn] : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }

  // Workers: wake everyone; the loop exits once the queue is dry. Any
  // jobs still queued are answered (their connections already closed,
  // the write just fails quietly).
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void Daemon::accept_loop(std::size_t listener_index) {
  const Listener& listener = listeners_[listener_index];
  while (running()) {
    const int fd = listener.accept_client(options_.idle_timeout_seconds);
    if (fd < 0) {
      if (!running()) break;
      if (errno == EINTR) continue;
      if (is_transient_accept_error(errno)) {
        // ECONNABORTED / fd exhaustion under load: stopping here would
        // leave a daemon that reports running but never accepts again.
        // Count it, back off briefly and keep accepting.
        accept_errors_.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter("serve.accept_errors").add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      break;  // listen socket is genuinely gone (shutdown or fatal)
    }
    if (!running()) {
      ::close(fd);
      break;
    }
    adopt_connection(fd);
  }
}

void Daemon::adopt_connection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  reap_finished_locked();
  const std::size_t open = connections_.size();
  if (options_.max_connections > 0 &&
      open >= static_cast<std::size_t>(options_.max_connections)) {
    // Load-shed above the ceiling: answer once so a protocol-speaking
    // client sees why, then close.
    send_all(fd, "ERR server busy (connection limit reached)\n");
    ::close(fd);
    telemetry::counter("serve.rejected_connections").add(1);
    return;
  }
  telemetry::counter("serve.connections").add(1);
  telemetry::gauge("serve.active_connections").add(1);
  const std::uint64_t id = next_conn_id_++;
  Connection& conn = connections_[id];
  conn.fd = fd;
  conn.thread = std::thread([this, id, fd] { connection_loop(id, fd); });
}

void Daemon::reap_finished_locked() {
  for (const std::uint64_t id : finished_) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    // The loop body has already returned (it queued its id last), so
    // this join completes immediately.
    if (it->second.thread.joinable()) it->second.thread.join();
    connections_.erase(it);
  }
  finished_.clear();
}

void Daemon::connection_loop(std::uint64_t id, int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Pull the next complete line (requests are tiny; the buffer only
    // grows past one chunk if a client pipelines).
    std::size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          // SO_RCVTIMEO expired: the connection idled past the limit.
          telemetry::counter("serve.idle_timeouts").add(1);
        }
        open = false;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (!open) break;
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    const auto started = std::chrono::steady_clock::now();
    const Request request = parse_request(line);
    Response response;
    bool handled = true;
    switch (request.verb) {
      case Verb::kInvalid:
        response = Response::err(request.error);
        break;
      case Verb::kPing:
        response = Response::one_line("pong");
        break;
      case Verb::kQuit:
        response = Response::one_line("bye");
        break;
      case Verb::kStats:
        response = stats_response();
        break;
      case Verb::kSwap:
        // The load runs here on the connection thread — the query
        // workers keep draining batches against generation N the
        // whole time.
        response = swap_response(request);
        break;
      default:
        handled = false;
        break;
    }
    if (!handled && cache_.enabled() &&
        ResultCache::cacheable(request.verb)) {
      // Hot-result fast path: a cached traversal answer for the
      // current generation skips the queue entirely.
      const auto snapshot = current_snapshot();
      auto cached =
          cache_.lookup(ResultCache::key(snapshot->generation, request));
      if (cached.has_value()) {
        response = std::move(*cached);
        handled = true;
      }
    }
    if (!handled) {
      // Table/traversal work goes through the shared queue so the
      // workers can batch it across connections.
      std::future<Response> future;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        Job job;
        job.request = request;
        job.enqueued = started;
        future = job.promise.get_future();
        queue_.push_back(std::move(job));
        telemetry::gauge("serve.queue_depth")
            .set(static_cast<std::int64_t>(queue_.size()));
      }
      queue_cv_.notify_one();
      response = future.get();
    }
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    telemetry::counter("serve.queries").add(1);
    if (!response.ok) telemetry::counter("serve.errors").add(1);
    telemetry::histogram("serve.query_ns").record(ns_since(started));
    if (!send_all(fd, response.to_wire())) break;
    if (request.verb == Verb::kQuit) break;
  }
  ::close(fd);
  telemetry::gauge("serve.active_connections").add(-1);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  if (connections_.contains(id)) finished_.push_back(id);
}

void Daemon::worker_loop() {
  while (true) {
    std::vector<Job> jobs;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || !running();
      });
      if (queue_.empty()) {
        if (!running()) return;
        continue;
      }
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(options_.max_batch), queue_.size());
      jobs.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        jobs.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      telemetry::gauge("serve.queue_depth")
          .set(static_cast<std::int64_t>(queue_.size()));
    }
    telemetry::histogram("serve.batch_size").record(jobs.size());
    process_batch(jobs);
  }
}

void Daemon::process_batch(std::vector<Job>& jobs) {
  // The batch pins ONE snapshot for its whole lifetime: every answer
  // in it is computed against exactly this generation, and a
  // concurrent swap takes effect at the next batch boundary.
  const auto snapshot = current_snapshot();
  const QueryEngine& engine = *snapshot->engine;

  std::vector<Response> responses(jobs.size());
  std::vector<bool> fulfilled(jobs.size(), false);
  const auto fulfil = [&](std::size_t j, Response response) {
    if (fulfilled[j]) return;
    jobs[j].promise.set_value(std::move(response));
    fulfilled[j] = true;
  };

  try {
    // Merge every membership lookup in the popped batch into one
    // find_many pass: keys from all FIND/MFIND jobs concatenate, probe
    // together through the prefetch front-end, then slice back per job.
    std::vector<std::string> keys;
    struct SliceRef {
      std::size_t job;
      std::size_t begin;
      std::size_t count;
    };
    std::vector<SliceRef> slices;
    std::vector<bool> answered(jobs.size(), false);

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const Request& request = jobs[j].request;
      if (request.verb != Verb::kFind && request.verb != Verb::kMfind) {
        continue;
      }
      bool valid = true;
      for (const std::string& kmer : request.args) {
        if (!engine.valid_kmer(kmer)) {
          responses[j] = Response::err("invalid kmer '" + kmer + "'");
          answered[j] = true;
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      slices.push_back(SliceRef{j, keys.size(), request.args.size()});
      keys.insert(keys.end(), request.args.begin(), request.args.end());
    }

    if (!keys.empty()) {
      std::vector<QueryEngine::FindResult> results;
      engine.find_many(keys, results);
      for (const SliceRef& slice : slices) {
        const Request& request = jobs[slice.job].request;
        if (request.verb == Verb::kFind) {
          const auto& r = results[slice.begin];
          if (r.found) {
            std::string line = "1 " + std::to_string(r.coverage);
            for (int e = 0; e < 8; ++e) {
              line += ' ';
              line += std::to_string(r.edges[static_cast<std::size_t>(e)]);
            }
            responses[slice.job] = Response::one_line(std::move(line));
          } else {
            responses[slice.job] = Response::one_line("0");
          }
        } else {
          std::string bits;
          for (std::size_t i = 0; i < slice.count; ++i) {
            if (i > 0) bits += ' ';
            bits += results[slice.begin + i].found ? '1' : '0';
          }
          responses[slice.job] = Response::one_line(std::move(bits));
        }
        answered[slice.job] = true;
      }
    }

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!answered[j]) {
        const Request& request = jobs[j].request;
        responses[j] = handle_traversal(engine, request);
        if (responses[j].ok && cache_.enabled() &&
            ResultCache::cacheable(request.verb)) {
          cache_.insert(ResultCache::key(snapshot->generation, request),
                        responses[j]);
        }
      }
      fulfil(j, std::move(responses[j]));
    }
  } catch (const std::exception& e) {
    // Anything not already turned into an ERR by handle_traversal —
    // std::bad_alloc, a future_error, a non-parahash throw from the
    // engine — must not escape the worker (std::terminate would take
    // the whole daemon down). Answer the affected jobs and move on.
    telemetry::counter("serve.internal_errors").add(1);
    const Response err =
        Response::err(std::string("internal: ") + e.what());
    for (std::size_t j = 0; j < jobs.size(); ++j) fulfil(j, err);
  } catch (...) {
    telemetry::counter("serve.internal_errors").add(1);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      fulfil(j, Response::err("internal error"));
    }
  }
  // Belt and braces: a promise left unfulfilled would hang its
  // connection forever; make sure none can slip through.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    fulfil(j, Response::err("internal: job dropped"));
  }
}

Response Daemon::handle_traversal(const QueryEngine& engine,
                                  const Request& request) {
  try {
    switch (request.verb) {
      case Verb::kNeigh: {
        std::uint32_t min_weight = options_.min_edge_weight;
        if (request.args.size() > 1 &&
            !parse_u32(request.args[1], min_weight)) {
          return Response::err("bad min_weight");
        }
        return Response::success(
            engine.neighbors(request.args[0], min_weight));
      }
      case Verb::kBfs:
      case Verb::kGfa: {
        int radius = 0;
        if (!parse_int(request.args[1], radius) || radius < 0) {
          return Response::err("bad radius");
        }
        if (radius > options_.max_bfs_radius) {
          return Response::err("radius exceeds server limit " +
                               std::to_string(options_.max_bfs_radius));
        }
        std::uint32_t min_weight = options_.min_edge_weight;
        if (request.args.size() > 2 &&
            !parse_u32(request.args[2], min_weight)) {
          return Response::err("bad min_weight");
        }
        if (request.verb == Verb::kBfs) {
          const auto rows =
              engine.bfs(request.args[0], radius, min_weight,
                         options_.max_bfs_vertices);
          std::vector<std::string> lines;
          lines.reserve(rows.size());
          for (const auto& row : rows) {
            lines.push_back(row.kmer + ' ' + std::to_string(row.depth) +
                            ' ' + std::to_string(row.coverage));
          }
          return Response::success(std::move(lines));
        }
        const std::string text =
            engine.gfa(request.args[0], radius, min_weight,
                       options_.max_bfs_vertices);
        std::vector<std::string> lines;
        std::istringstream stream(text);
        for (std::string line; std::getline(stream, line);) {
          lines.push_back(std::move(line));
        }
        return Response::success(std::move(lines));
      }
      default:
        return Response::err("verb not handled");
    }
  } catch (const Error& e) {
    return Response::err(e.what());
  }
}

Response Daemon::stats_response() const {
  const auto snapshot = current_snapshot();
  const QueryEngine& engine = *snapshot->engine;
  JsonWriter w;
  w.begin_object();
  w.key("k").value(engine.k());
  w.key("p").value(engine.p());
  w.key("partitions").value(engine.num_partitions());
  w.key("vertices").value(engine.num_vertices());
  w.key("memory_bytes").value(engine.memory_bytes());
  w.key("generation").value(snapshot->generation);
  w.key("swaps").value(swaps_.load(std::memory_order_relaxed));
  w.key("queries_served")
      .value(queries_served_.load(std::memory_order_relaxed));
  w.key("open_connections")
      .value(static_cast<std::uint64_t>(open_connections()));
  w.key("cache_entries")
      .value(static_cast<std::uint64_t>(cache_.size()));
  w.end_object();
  return Response::one_line(std::move(w).str());
}

Response Daemon::swap_response(const Request& request) {
  try {
    const std::uint64_t generation = swap_from_path(request.args[0]);
    const auto snapshot = current_snapshot();
    return Response::one_line(
        "generation " + std::to_string(generation) + " vertices " +
        std::to_string(snapshot->engine->num_vertices()));
  } catch (const std::exception& e) {
    return Response::err(std::string("swap failed: ") + e.what());
  }
}

}  // namespace parahash::serve
