#include "serve/daemon.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/json.h"
#include "util/telemetry.h"

namespace parahash::serve {

namespace {

/// Writes the whole buffer, riding out short writes and EINTR.
bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool parse_int(const std::string& s, int& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Daemon::Daemon(std::unique_ptr<QueryEngine> engine, ServeOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {
  PARAHASH_CHECK_MSG(engine_ != nullptr, "daemon needs a query engine");
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_batch < 1) options_.max_batch = 1;
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  PARAHASH_CHECK_MSG(!running(), "daemon already started");
  const std::string& path = options_.socket_path;
  PARAHASH_CHECK_MSG(!path.empty(), "empty socket path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PARAHASH_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                     "socket path too long for AF_UNIX");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("serve: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: cannot listen on " + path + ": " + why);
  }

  running_.store(true, std::memory_order_release);
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Daemon::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // Unblock accept(): shutdown() wakes it on Linux; close finishes it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Unblock connection readers; their loops exit on EOF.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();

  // Workers: wake everyone; the loop exits once the queue is dry. Any
  // jobs still queued are answered (their connections already closed,
  // the write just fails quietly).
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();

  ::unlink(options_.socket_path.c_str());
}

void Daemon::accept_loop() {
  while (running()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    if (!running()) {
      ::close(fd);
      break;
    }
    telemetry::counter("serve.connections").add(1);
    telemetry::gauge("serve.active_connections").add(1);
    std::lock_guard<std::mutex> lock(conn_mutex_);
    client_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Daemon::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Pull the next complete line (requests are tiny; the buffer only
    // grows past one chunk if a client pipelines).
    std::size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        open = false;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (!open) break;
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    const auto started = std::chrono::steady_clock::now();
    const Request request = parse_request(line);
    Response response;
    switch (request.verb) {
      case Verb::kInvalid:
        response = Response::err(request.error);
        break;
      case Verb::kPing:
        response = Response::one_line("pong");
        break;
      case Verb::kQuit:
        response = Response::one_line("bye");
        break;
      case Verb::kStats:
        response = stats_response();
        break;
      default: {
        // Table/traversal work goes through the shared queue so the
        // workers can batch it across connections.
        std::future<Response> future;
        {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          Job job;
          job.request = request;
          job.enqueued = started;
          future = job.promise.get_future();
          queue_.push_back(std::move(job));
          telemetry::gauge("serve.queue_depth")
              .set(static_cast<std::int64_t>(queue_.size()));
        }
        queue_cv_.notify_one();
        response = future.get();
        break;
      }
    }
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    telemetry::counter("serve.queries").add(1);
    if (!response.ok) telemetry::counter("serve.errors").add(1);
    telemetry::histogram("serve.query_ns").record(ns_since(started));
    if (!write_all(fd, response.to_wire())) break;
    if (request.verb == Verb::kQuit) break;
  }
  ::close(fd);
  telemetry::gauge("serve.active_connections").add(-1);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  std::erase(client_fds_, fd);
}

void Daemon::worker_loop() {
  while (true) {
    std::vector<Job> jobs;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || !running();
      });
      if (queue_.empty()) {
        if (!running()) return;
        continue;
      }
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(options_.max_batch), queue_.size());
      jobs.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        jobs.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      telemetry::gauge("serve.queue_depth")
          .set(static_cast<std::int64_t>(queue_.size()));
    }
    telemetry::histogram("serve.batch_size").record(jobs.size());
    process_batch(jobs);
  }
}

void Daemon::process_batch(std::vector<Job>& jobs) {
  // Merge every membership lookup in the popped batch into one
  // find_many pass: keys from all FIND/MFIND jobs concatenate, probe
  // together through the prefetch front-end, then slice back per job.
  std::vector<std::string> keys;
  struct SliceRef {
    std::size_t job;
    std::size_t begin;
    std::size_t count;
  };
  std::vector<SliceRef> slices;
  std::vector<Response> responses(jobs.size());
  std::vector<bool> answered(jobs.size(), false);

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Request& request = jobs[j].request;
    if (request.verb != Verb::kFind && request.verb != Verb::kMfind) {
      continue;
    }
    bool valid = true;
    for (const std::string& kmer : request.args) {
      if (!engine_->valid_kmer(kmer)) {
        responses[j] = Response::err("invalid kmer '" + kmer + "'");
        answered[j] = true;
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    slices.push_back(SliceRef{j, keys.size(), request.args.size()});
    keys.insert(keys.end(), request.args.begin(), request.args.end());
  }

  if (!keys.empty()) {
    std::vector<QueryEngine::FindResult> results;
    engine_->find_many(keys, results);
    for (const SliceRef& slice : slices) {
      const Request& request = jobs[slice.job].request;
      if (request.verb == Verb::kFind) {
        const auto& r = results[slice.begin];
        if (r.found) {
          std::string line = "1 " + std::to_string(r.coverage);
          for (int e = 0; e < 8; ++e) {
            line += ' ';
            line += std::to_string(r.edges[static_cast<std::size_t>(e)]);
          }
          responses[slice.job] = Response::one_line(std::move(line));
        } else {
          responses[slice.job] = Response::one_line("0");
        }
      } else {
        std::string bits;
        for (std::size_t i = 0; i < slice.count; ++i) {
          if (i > 0) bits += ' ';
          bits += results[slice.begin + i].found ? '1' : '0';
        }
        responses[slice.job] = Response::one_line(std::move(bits));
      }
      answered[slice.job] = true;
    }
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!answered[j]) responses[j] = handle_traversal(jobs[j].request);
    jobs[j].promise.set_value(std::move(responses[j]));
  }
}

Response Daemon::handle_traversal(const Request& request) {
  try {
    switch (request.verb) {
      case Verb::kNeigh: {
        std::uint32_t min_weight = options_.min_edge_weight;
        if (request.args.size() > 1 &&
            !parse_u32(request.args[1], min_weight)) {
          return Response::err("bad min_weight");
        }
        return Response::success(
            engine_->neighbors(request.args[0], min_weight));
      }
      case Verb::kBfs:
      case Verb::kGfa: {
        int radius = 0;
        if (!parse_int(request.args[1], radius) || radius < 0) {
          return Response::err("bad radius");
        }
        if (radius > options_.max_bfs_radius) {
          return Response::err("radius exceeds server limit " +
                               std::to_string(options_.max_bfs_radius));
        }
        std::uint32_t min_weight = options_.min_edge_weight;
        if (request.args.size() > 2 &&
            !parse_u32(request.args[2], min_weight)) {
          return Response::err("bad min_weight");
        }
        if (request.verb == Verb::kBfs) {
          const auto rows =
              engine_->bfs(request.args[0], radius, min_weight,
                           options_.max_bfs_vertices);
          std::vector<std::string> lines;
          lines.reserve(rows.size());
          for (const auto& row : rows) {
            lines.push_back(row.kmer + ' ' + std::to_string(row.depth) +
                            ' ' + std::to_string(row.coverage));
          }
          return Response::success(std::move(lines));
        }
        const std::string text =
            engine_->gfa(request.args[0], radius, min_weight,
                         options_.max_bfs_vertices);
        std::vector<std::string> lines;
        std::istringstream stream(text);
        for (std::string line; std::getline(stream, line);) {
          lines.push_back(std::move(line));
        }
        return Response::success(std::move(lines));
      }
      default:
        return Response::err("verb not handled");
    }
  } catch (const Error& e) {
    return Response::err(e.what());
  }
}

Response Daemon::stats_response() const {
  JsonWriter w;
  w.begin_object();
  w.key("k").value(engine_->k());
  w.key("p").value(engine_->p());
  w.key("partitions").value(engine_->num_partitions());
  w.key("vertices").value(engine_->num_vertices());
  w.key("memory_bytes").value(engine_->memory_bytes());
  w.key("queries_served")
      .value(queries_served_.load(std::memory_order_relaxed));
  w.end_object();
  return Response::one_line(std::move(w).str());
}

}  // namespace parahash::serve
