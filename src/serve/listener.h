// One listening endpoint for the query daemon, abstracting the two
// transports behind a single bind/accept/close surface:
//
//   Listener::bind_unix("parahash.sock", backlog)   AF_UNIX stream
//   Listener::bind_tcp("127.0.0.1:4100", backlog)   TCP (IPv4)
//
// Both speak the exact same protocol.h byte stream once accepted — the
// daemon runs one accept loop per listener and every connection joins
// the same shared batching queue, so the transport choice is invisible
// past accept(). TCP binds parse "host:port" ("" or "0.0.0.0" host =
// any interface, "localhost" = loopback); port 0 picks an ephemeral
// port, readable back via bound_port() for tests and the bench.
//
// Accept failures are classified by is_transient_accept_error(): a
// client that aborted its connect (ECONNABORTED), fd exhaustion
// (EMFILE/ENFILE) or transient kernel memory pressure must NOT stop
// the accept loop — the daemon backs off and keeps accepting, exiting
// only on shutdown.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "util/error.h"

namespace parahash::serve {

/// True for accept() errnos that a server must ride out rather than
/// treat as a dead listen socket: connection aborts, fd exhaustion and
/// kernel buffer pressure all clear on their own (or when a client
/// disconnects), while e.g. EBADF/EINVAL mean the socket is gone.
inline bool is_transient_accept_error(int err) noexcept {
  switch (err) {
    case ECONNABORTED:  // client gave up between SYN and accept
    case EMFILE:        // per-process fd limit (load shed, retry)
    case ENFILE:        // system-wide fd limit
    case ENOBUFS:       // transient kernel buffer exhaustion
    case ENOMEM:
    case EPERM:         // firewall rules can bounce single accepts
#ifdef EPROTO
    case EPROTO:        // protocol error on one incoming connection
#endif
      return true;
    default:
      return false;
  }
}

class Listener {
 public:
  Listener() = default;
  ~Listener() { close_and_cleanup(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept { *this = std::move(other); }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      close_and_cleanup();
      fd_ = std::exchange(other.fd_, -1);
      is_unix_ = other.is_unix_;
      address_ = std::move(other.address_);
      unlink_path_ = std::move(other.unlink_path_);
      bound_port_ = other.bound_port_;
    }
    return *this;
  }

  /// Binds an AF_UNIX stream socket, unlinking a stale socket file
  /// from a previous run first. Throws IoError.
  static Listener bind_unix(const std::string& path, int backlog) {
    PARAHASH_CHECK_MSG(!path.empty(), "empty socket path");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    PARAHASH_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                       "socket path too long for AF_UNIX");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Listener listener;
    listener.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener.fd_ < 0) {
      throw IoError("serve: socket() failed: " +
                    std::string(std::strerror(errno)));
    }
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener.fd_, backlog) != 0) {
      const std::string why = std::strerror(errno);
      ::close(listener.fd_);
      listener.fd_ = -1;
      throw IoError("serve: cannot listen on " + path + ": " + why);
    }
    listener.is_unix_ = true;
    listener.address_ = path;
    listener.unlink_path_ = path;
    return listener;
  }

  /// Binds a TCP (IPv4) socket from a "host:port" spec. Host "" or
  /// "0.0.0.0" binds every interface, "localhost" the loopback; port 0
  /// picks an ephemeral port (see bound_port()). Throws IoError /
  /// InvalidArgumentError.
  static Listener bind_tcp(const std::string& host_port, int backlog) {
    const auto [host, port] = parse_host_port(host_port);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty() || host == "0.0.0.0") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else {
      const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
      if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
        throw InvalidArgumentError("serve: bad listen host '" + host +
                                   "' (IPv4 dotted quad or localhost)");
      }
    }

    Listener listener;
    listener.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener.fd_ < 0) {
      throw IoError("serve: socket() failed: " +
                    std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener.fd_, backlog) != 0) {
      const std::string why = std::strerror(errno);
      ::close(listener.fd_);
      listener.fd_ = -1;
      throw IoError("serve: cannot listen on " + host_port + ": " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listener.fd_,
                      reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      listener.bound_port_ = ntohs(bound.sin_port);
    }
    listener.is_unix_ = false;
    listener.address_ =
        (host.empty() ? "0.0.0.0" : host) + ':' +
        std::to_string(listener.bound_port_);
    return listener;
  }

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  bool is_unix() const noexcept { return is_unix_; }
  /// Human-readable endpoint ("path" or "host:port" after resolution).
  const std::string& address() const noexcept { return address_; }
  /// The kernel-assigned port for TCP binds (equals the requested port
  /// unless it was 0); 0 for AF_UNIX.
  std::uint16_t bound_port() const noexcept { return bound_port_; }

  /// Accepts one connection and applies per-connection socket options:
  /// TCP_NODELAY (the protocol is lockstep request/response — Nagle
  /// would serialize it at RTT granularity) and an SO_RCVTIMEO idle
  /// timeout when one is configured. Returns -1 with errno set on
  /// failure, exactly like accept(2).
  int accept_client(double idle_timeout_seconds) const {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) return fd;
    if (!is_unix_) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (idle_timeout_seconds > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(idle_timeout_seconds);
      tv.tv_usec = static_cast<suseconds_t>(
          (idle_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    return fd;
  }

  /// Wakes a blocked accept() so its loop can observe shutdown.
  void interrupt() const noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  /// Closes the socket and removes the AF_UNIX socket file.
  void close_and_cleanup() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (!unlink_path_.empty()) {
      ::unlink(unlink_path_.c_str());
      unlink_path_.clear();
    }
  }

  /// Splits "host:port" on the last colon ("4100" alone means every
  /// interface on that port). Throws InvalidArgumentError.
  static std::pair<std::string, std::uint16_t> parse_host_port(
      const std::string& spec) {
    const std::size_t colon = spec.rfind(':');
    const std::string host =
        colon == std::string::npos ? std::string() : spec.substr(0, colon);
    const std::string port_str =
        colon == std::string::npos ? spec : spec.substr(colon + 1);
    if (port_str.empty()) {
      throw InvalidArgumentError("serve: listen spec '" + spec +
                                 "' has no port");
    }
    unsigned long port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') {
        throw InvalidArgumentError("serve: bad port in listen spec '" +
                                   spec + "'");
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) {
        throw InvalidArgumentError("serve: port out of range in '" +
                                   spec + "'");
      }
    }
    return {host, static_cast<std::uint16_t>(port)};
  }

 private:
  int fd_ = -1;
  bool is_unix_ = true;
  std::string address_;
  std::string unlink_path_;  ///< socket file to remove on close
  std::uint16_t bound_port_ = 0;
};

}  // namespace parahash::serve
