// The graph-query daemon: a local-socket server answering the
// protocol.h verbs against one frozen snapshot.
//
// Threading model — thread-per-connection readers, shared batching
// workers:
//
//   accept thread ──> connection threads (parse, enqueue, write reply)
//                         │ Job{Request, promise<Response>}
//                         v
//                   shared request queue  (serve.queue_depth gauge)
//                         │ pop up to max_batch
//                         v
//                   worker threads: all FIND/MFIND kmers in the popped
//                   batch merge into ONE engine->find_many() pass —
//                   cross-client lookups drain through the snapshot's
//                   group-probe/prefetch front-end together — while
//                   traversal verbs (NEIGH/BFS/GFA) run per job.
//
// A connection is strict request-response lockstep: the reader blocks
// on the job's future before reading the next line, so per-connection
// ordering is trivial and backpressure is the client's own pipeline
// depth. PING/QUIT/STATS short-circuit in the connection thread (no
// table work to batch).
//
// Telemetry (all under serve.*, exported like every other subsystem):
// queries/errors/connections counters, queue_depth + active_connections
// gauges, batch_size and query_ns histograms (the bench's p50/p99
// source).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/serve_options.h"

namespace parahash::serve {

class Daemon {
 public:
  Daemon(std::unique_ptr<QueryEngine> engine, ServeOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, starts workers and the accept loop. Returns
  /// once the daemon is accepting connections (callers print their
  /// readiness line after this).
  void start();

  /// Stops accepting, drains in-flight requests, joins every thread
  /// and removes the socket file. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  const QueryEngine& engine() const noexcept { return *engine_; }
  std::uint64_t queries_served() const noexcept {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void accept_loop();
  void connection_loop(int fd);
  void worker_loop();
  /// Answers one popped batch: merged membership pass + per-job
  /// traversals.
  void process_batch(std::vector<Job>& jobs);
  Response handle_traversal(const Request& request);
  Response stats_response() const;

  std::unique_ptr<QueryEngine> engine_;
  ServeOptions options_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex conn_mutex_;
  std::vector<int> client_fds_;  ///< open connections (for shutdown)
  std::vector<std::thread> conn_threads_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::atomic<std::uint64_t> queries_served_{0};
};

}  // namespace parahash::serve
