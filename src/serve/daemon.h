// The graph-query daemon: a multi-transport server answering the
// protocol.h verbs against a swappable frozen snapshot.
//
// Threading model — thread-per-connection readers, shared batching
// workers, one accept loop per listener:
//
//   accept threads ──> connection threads (parse, cache fast path,
//    (unix + tcp)       enqueue, write reply)
//                         │ Job{Request, promise<Response>}
//                         v
//                   shared request queue  (serve.queue_depth gauge)
//                         │ pop up to max_batch
//                         v
//                   worker threads: all FIND/MFIND kmers in the popped
//                   batch merge into ONE engine->find_many() pass —
//                   cross-client lookups drain through the snapshot's
//                   group-probe/prefetch front-end together — while
//                   traversal verbs (NEIGH/BFS/GFA) run per job and
//                   land in the hot-result cache.
//
// Snapshot hot-swap: the engine lives behind a generation-tagged
// shared snapshot. Workers pin the snapshot once per batch, so a
// swap_engine() (the SWAP verb, or `parahash serve --watch`) publishes
// generation N+1 between batches — queries in flight finish on N, no
// request is dropped, and every individual answer is computed against
// exactly one generation. The hot-result cache keys on the generation
// and is additionally cleared at swap time, so a stale result can
// never be served.
//
// Crash-proofing (each has a regression test in serve_test.cpp):
//   - responses go out via send(MSG_NOSIGNAL); a client that
//     disconnects mid-response is a clean close, not a fatal SIGPIPE;
//   - the accept loops ride out transient errnos (ECONNABORTED,
//     EMFILE, ...) with a short backoff and a serve.accept_errors
//     count instead of silently never accepting again;
//   - finished connection threads are reaped as new connections
//     arrive, so a long-lived daemon does not leak one thread handle
//     per connection ever served;
//   - any throw escaping a worker batch (std::bad_alloc included) is
//     caught at the batch boundary; every affected job is answered
//     `ERR internal ...` and every promise is always fulfilled.
//
// A connection is strict request-response lockstep: the reader blocks
// on the job's future before reading the next line, so per-connection
// ordering is trivial and backpressure is the client's own pipeline
// depth. PING/QUIT/STATS/SWAP and cache hits short-circuit in the
// connection thread (no table work to batch).
//
// Telemetry (all under serve.*, exported like every other subsystem):
// queries/errors/connections counters, accept_errors /
// rejected_connections / idle_timeouts counters, swap.{count,errors} +
// swap.load_ns, cache.{hits,misses,evictions}, queue_depth +
// active_connections gauges, batch_size and query_ns histograms.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/listener.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/serve_options.h"

namespace parahash::serve {

class Daemon {
 public:
  Daemon(std::unique_ptr<QueryEngine> engine, ServeOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds every configured listener (AF_UNIX socket_path, TCP
  /// listen), starts workers and the accept loops. Returns once the
  /// daemon is accepting connections (callers print their readiness
  /// line after this).
  void start();

  /// Stops accepting, drains in-flight requests, joins every thread
  /// and removes the socket file. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  /// The TCP port actually bound (resolves a requested port 0); 0 when
  /// no TCP listener is configured or the daemon is not started.
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  std::uint64_t queries_served() const noexcept {
    return queries_served_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------- hot swap
  /// Publishes a new snapshot as generation N+1 and invalidates the
  /// hot-result cache. In-flight batches finish on the old generation;
  /// the old engine is released when the last batch pinning it
  /// completes. Returns the new generation. Thread-safe.
  std::uint64_t swap_engine(std::unique_ptr<QueryEngine> engine);

  /// Loads a .phdg graph file (serve::load_engine_from_graph) and
  /// swaps to it. The load runs on the calling thread — the SWAP verb
  /// executes it on the requesting connection's thread, never a query
  /// worker, so serving continues throughout. Throws on load failure
  /// (the current snapshot stays live).
  std::uint64_t swap_from_path(const std::string& path);

  /// Load factor for snapshots rebuilt by swap_from_path.
  void set_swap_alpha(double alpha) noexcept { swap_alpha_ = alpha; }

  std::uint64_t generation() const;
  std::uint64_t swaps() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------- observability hooks
  /// Open connections right now (test + STATS surface).
  std::size_t open_connections() const;
  /// Connection-thread handles currently tracked (the reaping
  /// regression test asserts this does not grow with served-and-gone
  /// connections).
  std::size_t tracked_connection_threads() const;
  std::uint64_t accept_errors() const noexcept {
    return accept_errors_.load(std::memory_order_relaxed);
  }

 private:
  /// One immutable generation of the serving state. Workers pin it
  /// (shared_ptr copy) for the duration of a batch.
  struct Snapshot {
    std::shared_ptr<QueryEngine> engine;
    std::uint64_t generation = 1;
  };

  struct Job {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  std::shared_ptr<const Snapshot> current_snapshot() const;
  std::uint64_t publish_snapshot(std::shared_ptr<QueryEngine> engine);

  void accept_loop(std::size_t listener_index);
  /// Registers fd and spawns its reader; enforces max_connections.
  void adopt_connection(int fd);
  /// Joins connection threads whose loops have finished.
  void reap_finished_locked();
  void connection_loop(std::uint64_t id, int fd);
  void worker_loop();
  /// Answers one popped batch: merged membership pass + per-job
  /// traversals, against one pinned snapshot. Never throws; every
  /// job's promise is fulfilled.
  void process_batch(std::vector<Job>& jobs);
  Response handle_traversal(const QueryEngine& engine,
                            const Request& request);
  Response stats_response() const;
  Response swap_response(const Request& request);

  ServeOptions options_;
  double swap_alpha_ = 0.7;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;
  ResultCache cache_;

  std::atomic<bool> running_{false};
  std::vector<Listener> listeners_;
  std::size_t tcp_listener_ = SIZE_MAX;  ///< index into listeners_
  std::uint16_t tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex conn_mutex_;
  std::uint64_t next_conn_id_ = 0;
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::vector<std::uint64_t> finished_;  ///< ids ready to reap

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
};

}  // namespace parahash::serve
