// The daemon's wire protocol: newline-delimited text over a local
// stream socket, strict request-response lockstep per connection.
//
// Requests are one line: a verb plus space-separated operands.
//
//   PING
//   FIND  <kmer>                       point membership + entry
//   MFIND <kmer> [<kmer> ...]          batched membership bits
//   NEIGH <kmer> [min_weight]          one-step neighbours
//   BFS   <kmer> <radius> [min_weight] bounded-radius neighbourhood
//   GFA   <kmer> <radius> [min_weight] neighbourhood as GFA1 text
//   STATS                              snapshot + serving counters
//   SWAP  <path>                       hot-swap to a new .phdg snapshot
//   QUIT                               close this connection
//
// Every response has a uniform shape, so one client loop handles all
// verbs:
//
//   OK <n>\n        followed by exactly n payload lines, or
//   ERR <message>\n with no payload.
//
// Payloads: FIND returns `1 <coverage> <e0> ... <e7>` or `0`; MFIND
// one line of space-separated 0/1 bits in operand order; NEIGH one
// canonical kmer per line; BFS `<kmer> <depth> <coverage>` rows; GFA
// raw GFA1 lines; STATS a single JSON object; SWAP one line
// `generation <g> vertices <n>` once the new snapshot is live. Kmers
// are plain ACGT strings of the snapshot's k; anything else is an ERR,
// never a crash.
//
// SWAP is the hot-swap admin verb: the daemon loads the named .phdg
// file into a generation-N+1 snapshot while generation N keeps
// serving, then publishes it between batches — in-flight queries
// finish on N, no request is dropped, and the hot-result cache is
// invalidated wholesale. There is no authentication: the verb is meant
// for the daemon's own --watch poller and trusted local operators
// (same trust model as the socket itself).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace parahash::serve {

enum class Verb {
  kPing,
  kFind,
  kMfind,
  kNeigh,
  kBfs,
  kGfa,
  kStats,
  kSwap,
  kQuit,
  kInvalid,
};

struct Request {
  Verb verb = Verb::kInvalid;
  std::vector<std::string> args;  ///< operands after the verb
  std::string error;              ///< set when verb == kInvalid
};

inline Request parse_request(std::string_view line) {
  Request req;
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') {
      ++end;
    }
    if (end > pos) tokens.emplace_back(line.substr(pos, end - pos));
    pos = end;
  }
  if (tokens.empty()) {
    req.error = "empty request";
    return req;
  }
  const std::string& verb = tokens[0];
  const std::size_t n_args = tokens.size() - 1;
  const auto want = [&](Verb v, std::size_t min_args,
                        std::size_t max_args) {
    if (n_args < min_args || n_args > max_args) {
      req.error = "wrong operand count for " + verb;
      return;
    }
    req.verb = v;
    req.args.assign(tokens.begin() + 1, tokens.end());
  };
  if (verb == "PING") want(Verb::kPing, 0, 0);
  else if (verb == "FIND") want(Verb::kFind, 1, 1);
  else if (verb == "MFIND") want(Verb::kMfind, 1, 4096);
  else if (verb == "NEIGH") want(Verb::kNeigh, 1, 2);
  else if (verb == "BFS") want(Verb::kBfs, 2, 3);
  else if (verb == "GFA") want(Verb::kGfa, 2, 3);
  else if (verb == "STATS") want(Verb::kStats, 0, 0);
  else if (verb == "SWAP") want(Verb::kSwap, 1, 1);
  else if (verb == "QUIT") want(Verb::kQuit, 0, 0);
  else req.error = "unknown verb '" + verb + "'";
  return req;
}

/// A fully formed reply: the header line plus payload lines.
struct Response {
  bool ok = false;
  std::string error;               ///< ERR payload when !ok
  std::vector<std::string> lines;  ///< payload when ok

  static Response err(std::string message) {
    Response r;
    r.error = std::move(message);
    return r;
  }
  static Response success(std::vector<std::string> lines) {
    Response r;
    r.ok = true;
    r.lines = std::move(lines);
    return r;
  }
  static Response one_line(std::string line) {
    return success({std::move(line)});
  }

  /// Serialises to the wire form (header + payload, each \n-terminated).
  std::string to_wire() const {
    std::string out;
    if (!ok) {
      out = "ERR " + error + "\n";
      return out;
    }
    out = "OK " + std::to_string(lines.size()) + "\n";
    for (const std::string& line : lines) {
      out += line;
      out += '\n';
    }
    return out;
  }
};

}  // namespace parahash::serve
