#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <utility>

#include "serve/listener.h"
#include "util/error.h"

namespace parahash::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::connect(const std::string& target) {
  // "tcp:host:port" dials the TCP listener; anything else is a path.
  if (target.rfind("tcp:", 0) == 0) {
    const auto [host, port] =
        Listener::parse_host_port(target.substr(4));
    connect_tcp(host.empty() ? "127.0.0.1" : host, port);
    return;
  }
  const std::string& socket_path = target;
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgumentError("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError("client: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw IoError("client: cannot connect to " + socket_path + ": " + why);
  }
}

void Client::connect_tcp(const std::string& host, std::uint16_t port) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgumentError("client: bad host '" + host +
                               "' (IPv4 dotted quad or localhost)");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError("client: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw IoError("client: cannot connect to " + host + ':' +
                  std::to_string(port) + ": " + why);
  }
  // Lockstep request/response: Nagle would add an RTT per request.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::string Client::read_line() {
  char chunk[4096];
  std::size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("client: connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  return line;
}

ClientReply Client::request(std::string_view line) {
  if (fd_ < 0) throw IoError("client: not connected");
  std::string wire(line);
  wire += '\n';
  std::size_t off = 0;
  while (off < wire.size()) {
    // MSG_NOSIGNAL: a daemon that closed this connection (shutdown,
    // idle timeout) must surface as a thrown IoError, not SIGPIPE
    // killing the calling process.
    const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("client: write failed: " +
                    std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }

  ClientReply reply;
  const std::string header = read_line();
  if (header.rfind("ERR ", 0) == 0) {
    reply.error = header.substr(4);
    return reply;
  }
  if (header.rfind("OK ", 0) != 0) {
    throw IoError("client: malformed response header '" + header + "'");
  }
  std::size_t count = 0;
  const std::string count_str = header.substr(3);
  const auto [ptr, ec] = std::from_chars(
      count_str.data(), count_str.data() + count_str.size(), count);
  if (ec != std::errc() || ptr != count_str.data() + count_str.size()) {
    throw IoError("client: malformed payload count '" + header + "'");
  }
  reply.ok = true;
  reply.lines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    reply.lines.push_back(read_line());
  }
  return reply;
}

namespace {
[[noreturn]] void throw_err(const char* verb, const ClientReply& reply) {
  throw Error(std::string("client: ") + verb + " failed: " + reply.error);
}
}  // namespace

bool Client::ping() {
  const ClientReply reply = request("PING");
  return reply.ok && !reply.lines.empty() && reply.lines[0] == "pong";
}

bool Client::find(const std::string& kmer) {
  const ClientReply reply = request("FIND " + kmer);
  if (!reply.ok) throw_err("FIND", reply);
  return !reply.lines.empty() && !reply.lines[0].empty() &&
         reply.lines[0][0] == '1';
}

std::vector<bool> Client::find_many(
    const std::vector<std::string>& kmers) {
  std::string line = "MFIND";
  for (const std::string& kmer : kmers) {
    line += ' ';
    line += kmer;
  }
  const ClientReply reply = request(line);
  if (!reply.ok) throw_err("MFIND", reply);
  std::vector<bool> out;
  out.reserve(kmers.size());
  if (!reply.lines.empty()) {
    for (char c : reply.lines[0]) {
      if (c == '0' || c == '1') out.push_back(c == '1');
    }
  }
  return out;
}

std::vector<std::string> Client::neighbors(const std::string& kmer) {
  const ClientReply reply = request("NEIGH " + kmer);
  if (!reply.ok) throw_err("NEIGH", reply);
  return reply.lines;
}

std::vector<std::string> Client::bfs(const std::string& kmer, int radius) {
  const ClientReply reply =
      request("BFS " + kmer + ' ' + std::to_string(radius));
  if (!reply.ok) throw_err("BFS", reply);
  return reply.lines;
}

std::string Client::gfa(const std::string& kmer, int radius) {
  const ClientReply reply =
      request("GFA " + kmer + ' ' + std::to_string(radius));
  if (!reply.ok) throw_err("GFA", reply);
  std::string out;
  for (const std::string& line : reply.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t Client::swap(const std::string& path) {
  const ClientReply reply = request("SWAP " + path);
  if (!reply.ok) throw_err("SWAP", reply);
  // Payload: `generation <g> vertices <n>`.
  std::uint64_t generation = 0;
  if (!reply.lines.empty()) {
    const std::string& line = reply.lines[0];
    const std::size_t sp1 = line.find(' ');
    if (sp1 != std::string::npos) {
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      const std::string g = line.substr(
          sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                            : sp2 - sp1 - 1);
      std::from_chars(g.data(), g.data() + g.size(), generation);
    }
  }
  return generation;
}

}  // namespace parahash::serve
