// Options for the graph-query daemon (src/serve/daemon.h). Kept in a
// dependency-free header so the unified Config aggregate
// (pipeline/config.h) can embed them without pulling socket code into
// every translation unit.
#pragma once

#include <cstdint>
#include <string>

namespace parahash::serve {

struct ServeOptions {
  /// AF_UNIX socket path the daemon listens on ("" = no unix
  /// listener). The daemon unlinks a stale socket file at bind time
  /// and removes its own on shutdown.
  std::string socket_path = "parahash.sock";

  /// TCP "host:port" to additionally listen on ("" = no TCP listener;
  /// port 0 = kernel-assigned ephemeral port, see
  /// Daemon::tcp_port()). Both transports speak the same protocol
  /// through one shared accept/connection/worker path.
  std::string listen;

  /// Ceiling on simultaneously open connections across both
  /// transports; one past the ceiling is answered `ERR server busy`
  /// and closed (0 = unlimited).
  int max_connections = 256;

  /// Per-connection idle timeout: a connection that sends no request
  /// for this long is closed (0 = never). Enforced with SO_RCVTIMEO,
  /// so fractions of a second work.
  double idle_timeout_seconds = 0;

  /// Hot-result LRU over rendered NEIGH/BFS/GFA responses, keyed on
  /// (snapshot generation, verb, args): total entries across
  /// `cache_shards` independently locked shards (0 entries = cache
  /// off). Invalidated wholesale on snapshot swap.
  int cache_entries = 0;
  int cache_shards = 8;

  /// Worker threads draining the shared request queue. Each worker
  /// pops up to `max_batch` requests at once and routes every
  /// membership lookup in the batch through the snapshot's prefetch
  /// front-end — cross-client batching is what turns many small
  /// queries into table-friendly probe streams.
  int worker_threads = 2;
  int max_batch = 64;

  /// Ceilings a single query may claim (DoS guard, not tuning):
  /// BFS radius and result-set size per request.
  int max_bfs_radius = 16;
  std::uint64_t max_bfs_vertices = 4096;

  /// Edge-weight threshold applied to traversal queries that do not
  /// specify their own.
  std::uint32_t min_edge_weight = 1;

  /// Listen backlog; connections beyond it queue in the kernel.
  int backlog = 64;

  friend bool operator==(const ServeOptions&,
                         const ServeOptions&) = default;
};

}  // namespace parahash::serve
