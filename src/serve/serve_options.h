// Options for the graph-query daemon (src/serve/daemon.h). Kept in a
// dependency-free header so the unified Config aggregate
// (pipeline/config.h) can embed them without pulling socket code into
// every translation unit.
#pragma once

#include <cstdint>
#include <string>

namespace parahash::serve {

struct ServeOptions {
  /// AF_UNIX socket path the daemon listens on. The daemon unlinks a
  /// stale socket file at bind time and removes its own on shutdown.
  std::string socket_path = "parahash.sock";

  /// Worker threads draining the shared request queue. Each worker
  /// pops up to `max_batch` requests at once and routes every
  /// membership lookup in the batch through the snapshot's prefetch
  /// front-end — cross-client batching is what turns many small
  /// queries into table-friendly probe streams.
  int worker_threads = 2;
  int max_batch = 64;

  /// Ceilings a single query may claim (DoS guard, not tuning):
  /// BFS radius and result-set size per request.
  int max_bfs_radius = 16;
  std::uint64_t max_bfs_vertices = 4096;

  /// Edge-weight threshold applied to traversal queries that do not
  /// specify their own.
  std::uint32_t min_edge_weight = 1;

  /// Listen backlog; connections beyond it queue in the kernel.
  int backlog = 64;

  friend bool operator==(const ServeOptions&,
                         const ServeOptions&) = default;
};

}  // namespace parahash::serve
