// Heterogeneous processor abstraction.
//
// ParaHash co-processes both steps on CPUs and GPUs (paper Sec. III-D/E).
// A Device executes the two step kernels — MSP scanning and hash-based
// subgraph construction — and keeps per-device statistics (items, compute
// seconds, transfer seconds) that the workload-distribution experiments
// (Fig. 11) read.
//
// Two implementations:
//  * CpuDevice — a thread pool over large contiguous chunks ("one CPU
//    thread accesses a group of data elements located nearby in memory").
//  * SimGpuDevice — the CUDA substitution (see DESIGN.md): its own
//    bounded pool dispatching warp-sized item groups, an explicit device
//    memory capacity that the staged partition plus its hash table must
//    fit in, and a metered host<->device transfer channel. It produces
//    bit-identical results; what it simulates is the *cost structure*
//    (transfer time proportional to bytes moved, fixed launch latency,
//    capacity rejection) that drives the paper's scheduling results.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "concurrent/thread_pool.h"
#include "core/msp.h"
#include "core/simplify.h"
#include "core/subgraph.h"
#include "io/fastx.h"
#include "io/partition_file.h"
#include "util/error.h"
#include "util/timer.h"

namespace parahash::device {

enum class DeviceKind { kCpu, kGpu };

const char* device_kind_name(DeviceKind kind);

/// Cumulative per-device counters. Readable while idle; updated by the
/// device's worker between items.
struct DeviceStats {
  std::uint64_t msp_batches = 0;
  std::uint64_t msp_reads = 0;        ///< Fig. 11's Step-1 workload unit
  std::uint64_t hash_partitions = 0;
  std::uint64_t hash_kmers = 0;
  std::uint64_t hash_vertices = 0;    ///< Fig. 11's Step-2 workload unit
  std::uint64_t compact_partitions = 0;
  std::uint64_t compact_vertices = 0;  ///< Step-3 workload unit
  double msp_compute_seconds = 0;
  double hash_compute_seconds = 0;
  double compact_compute_seconds = 0;
  double transfer_seconds = 0;        ///< simulated host<->device time
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;

  /// Counter-wise difference (for per-step deltas of cumulative stats).
  friend DeviceStats operator-(DeviceStats a, const DeviceStats& b) {
    a.msp_batches -= b.msp_batches;
    a.msp_reads -= b.msp_reads;
    a.hash_partitions -= b.hash_partitions;
    a.hash_kmers -= b.hash_kmers;
    a.hash_vertices -= b.hash_vertices;
    a.compact_partitions -= b.compact_partitions;
    a.compact_vertices -= b.compact_vertices;
    a.msp_compute_seconds -= b.msp_compute_seconds;
    a.hash_compute_seconds -= b.hash_compute_seconds;
    a.compact_compute_seconds -= b.compact_compute_seconds;
    a.transfer_seconds -= b.transfer_seconds;
    a.bytes_h2d -= b.bytes_h2d;
    a.bytes_d2h -= b.bytes_d2h;
    return a;
  }
};

template <int W>
class Device {
 public:
  virtual ~Device() = default;

  virtual const std::string& name() const = 0;
  virtual DeviceKind kind() const = 0;

  /// Exclusive-use lease for fused runs. When the Step-1 and Step-2
  /// executors share one device set, each worker locks the lease around
  /// a kernel call, so a device only serves the other step while it is
  /// idle in this one (the fused scheduler's idle-handoff). Also makes
  /// the device's stats counters safe to update from both steps'
  /// workers. Uncontended (single-executor runs) it costs one atomic op.
  std::mutex& lease() { return lease_mutex_; }

  /// Step-1 kernel: scan a read batch into per-partition superkmers.
  virtual core::MspBatchOutput run_msp(const io::ReadBatch& batch,
                                       const core::MspConfig& config) = 0;

  /// Step-2 kernel: build one partition's subgraph.
  /// Throws DeviceCapacityError if the device cannot hold the partition
  /// plus its hash table (simulated GPUs only).
  virtual core::SubgraphBuildResult<W> run_hash(
      const io::PartitionBlob& blob, const core::HashConfig& config) = 0;

  /// Step-3 kernel: compact-scan one published subgraph (branch seeds +
  /// boundary vertices for the stitch phase). Throws
  /// DeviceCapacityError if the partition's entry array does not fit
  /// device memory (simulated GPUs only).
  virtual core::CompactScanResult<W> run_compact(
      std::uint32_t partition_id,
      const std::vector<concurrent::VertexEntry<W>>& entries,
      const core::CompactScanConfig& config) = 0;

  virtual DeviceStats stats() const = 0;

 private:
  std::mutex lease_mutex_;
};

template <int W>
class CpuDevice final : public Device<W> {
 public:
  explicit CpuDevice(int threads, std::string name = "cpu")
      : name_(std::move(name)), pool_(threads) {}

  const std::string& name() const override { return name_; }
  DeviceKind kind() const override { return DeviceKind::kCpu; }
  int threads() const { return pool_.size(); }

  core::MspBatchOutput run_msp(const io::ReadBatch& batch,
                               const core::MspConfig& config) override {
    WallTimer timer;
    core::MspBatchOutput merged(config.num_partitions);
    if (pool_.size() == 1) {
      core::msp_process_range(batch, config, 0, batch.size(), merged);
    } else {
      std::mutex merge_mutex;
      pool_.parallel_for(
          batch.size(), /*grain=*/0,
          [&](std::uint64_t begin, std::uint64_t end) {
            core::MspBatchOutput local(config.num_partitions);
            core::msp_process_range(batch, config, begin, end, local);
            std::lock_guard<std::mutex> lock(merge_mutex);
            merged.merge(std::move(local));
          });
    }
    stats_.msp_compute_seconds += timer.seconds();
    ++stats_.msp_batches;
    stats_.msp_reads += merged.reads_processed;
    return merged;
  }

  core::SubgraphBuildResult<W> run_hash(
      const io::PartitionBlob& blob,
      const core::HashConfig& config) override {
    WallTimer timer;
    auto result = core::build_subgraph<W>(
        blob, config, pool_.size() == 1 ? nullptr : &pool_);
    stats_.hash_compute_seconds += timer.seconds();
    ++stats_.hash_partitions;
    stats_.hash_kmers += result.kmers_processed;
    stats_.hash_vertices += result.table->size();
    return result;
  }

  core::CompactScanResult<W> run_compact(
      std::uint32_t partition_id,
      const std::vector<concurrent::VertexEntry<W>>& entries,
      const core::CompactScanConfig& config) override {
    WallTimer timer;
    core::CompactScanResult<W> merged;
    merged.partition_id = partition_id;
    if (pool_.size() == 1) {
      core::compact_scan_range(entries, config, 0, entries.size(),
                               merged);
    } else {
      std::mutex merge_mutex;
      pool_.parallel_for(
          entries.size(), /*grain=*/0,
          [&](std::uint64_t begin, std::uint64_t end) {
            core::CompactScanResult<W> local;
            local.partition_id = partition_id;
            core::compact_scan_range(entries, config, begin, end, local);
            std::lock_guard<std::mutex> lock(merge_mutex);
            merged.merge(std::move(local));
          });
    }
    stats_.compact_compute_seconds += timer.seconds();
    ++stats_.compact_partitions;
    stats_.compact_vertices += merged.vertices_scanned;
    return merged;
  }

  DeviceStats stats() const override { return stats_; }

 private:
  std::string name_;
  concurrent::ThreadPool pool_;
  DeviceStats stats_;
};

/// Simulated GPU parameters (defaults loosely shaped on a K40m-class
/// part scaled to this host; see DESIGN.md substitution table).
struct SimGpuConfig {
  int threads = 2;            ///< SM-pool width of the simulated device
  int warp = 32;              ///< SIMT work-item granularity
  double h2d_bytes_per_sec = 6e9;
  double d2h_bytes_per_sec = 6e9;
  double launch_latency_seconds = 20e-6;
  std::uint64_t device_memory_bytes = 2ull << 30;
  std::string name = "sim-gpu";
};

template <int W>
class SimGpuDevice final : public Device<W> {
 public:
  explicit SimGpuDevice(const SimGpuConfig& config)
      : config_(config), pool_(config.threads) {
    PARAHASH_CHECK_MSG(config.warp >= 1, "warp must be >= 1");
  }

  const std::string& name() const override { return config_.name; }
  DeviceKind kind() const override { return DeviceKind::kGpu; }
  const SimGpuConfig& config() const { return config_; }

  core::MspBatchOutput run_msp(const io::ReadBatch& batch,
                               const core::MspConfig& config) override {
    // MSP on the GPU works on encoded reads (Sec. III-D); the staged
    // input is the packed batch. Output superkmers come back encoded.
    require_memory(batch.byte_size() * 4, "read batch");
    transfer(batch.byte_size(), config_.h2d_bytes_per_sec,
             stats_.bytes_h2d);

    WallTimer timer;
    core::MspBatchOutput merged(config.num_partitions);
    std::mutex merge_mutex;
    pool_.parallel_for(
        batch.size(), static_cast<std::uint64_t>(config_.warp),
        [&](std::uint64_t begin, std::uint64_t end) {
          core::MspBatchOutput local(config.num_partitions);
          core::msp_process_range(batch, config, begin, end, local);
          std::lock_guard<std::mutex> lock(merge_mutex);
          merged.merge(std::move(local));
        });
    stats_.msp_compute_seconds += timer.seconds();

    transfer(merged.byte_size(), config_.d2h_bytes_per_sec,
             stats_.bytes_d2h);
    ++stats_.msp_batches;
    stats_.msp_reads += merged.reads_processed;
    return merged;
  }

  core::SubgraphBuildResult<W> run_hash(
      const io::PartitionBlob& blob,
      const core::HashConfig& config) override {
    // The partition and its full hash table live in device memory for
    // the whole build (the paper does not page tables in and out).
    const std::uint64_t slots =
        config.slots_override != 0
            ? config.slots_override
            : core::hash_table_slots(blob.header().kmer_count,
                                     config.lambda, config.alpha, 0,
                                     config.min_slots);
    const std::uint64_t table_bytes =
        slots * concurrent::ConcurrentKmerTable<W>::bytes_per_slot();
    require_memory(blob.byte_size() + table_bytes, "partition + hash table");

    transfer(blob.byte_size(), config_.h2d_bytes_per_sec, stats_.bytes_h2d);

    WallTimer timer;
    auto result = core::build_subgraph<W>(blob, config, &pool_,
                                          static_cast<std::uint64_t>(
                                              config_.warp));
    stats_.hash_compute_seconds += timer.seconds();

    // Result transfer: the distinct vertices (32 bytes per entry, the
    // figure the paper uses for <vertex, list of edges>).
    const std::uint64_t out_bytes = result.table->size() * 32;
    transfer(out_bytes, config_.d2h_bytes_per_sec, stats_.bytes_d2h);

    ++stats_.hash_partitions;
    stats_.hash_kmers += result.kmers_processed;
    stats_.hash_vertices += result.table->size();
    return result;
  }

  core::CompactScanResult<W> run_compact(
      std::uint32_t partition_id,
      const std::vector<concurrent::VertexEntry<W>>& entries,
      const core::CompactScanConfig& config) override {
    // The staged input is the partition's full entry array.
    const std::uint64_t entry_bytes =
        entries.size() * sizeof(concurrent::VertexEntry<W>);
    require_memory(entry_bytes, "subgraph entries");
    transfer(entry_bytes, config_.h2d_bytes_per_sec, stats_.bytes_h2d);

    WallTimer timer;
    core::CompactScanResult<W> merged;
    merged.partition_id = partition_id;
    std::mutex merge_mutex;
    pool_.parallel_for(
        entries.size(), static_cast<std::uint64_t>(config_.warp),
        [&](std::uint64_t begin, std::uint64_t end) {
          core::CompactScanResult<W> local;
          local.partition_id = partition_id;
          core::compact_scan_range(entries, config, begin, end, local);
          std::lock_guard<std::mutex> lock(merge_mutex);
          merged.merge(std::move(local));
        });
    stats_.compact_compute_seconds += timer.seconds();

    // Result transfer: the exchanged seed + boundary kmer lists.
    const std::uint64_t out_bytes =
        (merged.branch_seeds.size() + merged.boundary.size()) *
        sizeof(Kmer<W>);
    transfer(out_bytes, config_.d2h_bytes_per_sec, stats_.bytes_d2h);

    ++stats_.compact_partitions;
    stats_.compact_vertices += merged.vertices_scanned;
    return merged;
  }

  DeviceStats stats() const override { return stats_; }

 private:
  void require_memory(std::uint64_t bytes, const char* what) const {
    if (bytes > config_.device_memory_bytes) {
      throw DeviceCapacityError(
          config_.name + ": " + what + " needs " + std::to_string(bytes) +
          " bytes, device memory is " +
          std::to_string(config_.device_memory_bytes));
    }
  }

  /// Charges a host<->device transfer: launch latency plus bytes over
  /// the channel bandwidth, spent as real wall-clock time.
  void transfer(std::uint64_t bytes, double bytes_per_sec,
                std::uint64_t& byte_counter) {
    const double seconds =
        config_.launch_latency_seconds +
        (bytes_per_sec > 0 ? static_cast<double>(bytes) / bytes_per_sec
                           : 0.0);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stats_.transfer_seconds += seconds;
    byte_counter += bytes;
  }

  SimGpuConfig config_;
  concurrent::ThreadPool pool_;
  DeviceStats stats_;
};

}  // namespace parahash::device
