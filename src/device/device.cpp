#include "device/device.h"

namespace parahash::device {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu: return "CPU";
    case DeviceKind::kGpu: return "GPU";
  }
  return "?";
}

// Anchor the common instantiations in one translation unit.
template class CpuDevice<1>;
template class CpuDevice<2>;
template class SimGpuDevice<1>;
template class SimGpuDevice<2>;

}  // namespace parahash::device
