// Warp-synchronous (SIMT-style) Step-2 kernel, with divergence
// accounting.
//
// The paper's GPU analysis (Sec. III-D) observes that hashing suffers on
// SIMT hardware because "different threads assigned with different kmers
// within a warp diverge to different walk length when visiting the hash
// table slots", and the scattered slots cannot be coalesced. This kernel
// reproduces that execution model in software: a warp of W_SIZE lanes
// holds one kmer each and probes in lockstep rounds — every round, all
// still-active lanes take exactly one GROUP step (one metadata-block
// scan via ConcurrentKmerTable::probe_group_step, resolving inside the
// group or advancing a whole group); the warp retires only when its
// slowest lane finishes. The number of rounds a warp executes is
// therefore max(lane step counts), and
//
//     divergence factor = sum over warps of (rounds * active lanes)
//                         / total useful probes
//
// directly measures the SIMT penalty the paper describes (1.0 = no
// divergence; `useful_probes` counts group scans, the unit of probing
// work a lane issues per round). Results are bit-identical to the
// scalar kernel; only the execution order and the accounting differ.
//
// Unwind guarantee: a lane that exhausts the table marks itself failed
// and the warp DRAINS its sibling lanes to done-or-failed before
// TableFullError propagates. Claims are published within the same group
// step that wins them, so no slot is ever left in the transient
// `locked` state by a kernel unwind (regression-tested via
// ConcurrentKmerTable::locked_slots()).
//
// Growth tables: a lane that exhausts the DISPLACEMENT BOUND (rather
// than the whole table) hands its upsert to the overflow region instead
// of failing — the kernel never throws on a growth table. Because a
// migration (triggered by any thread, including a sibling warp) moves
// every key, the warp snapshots the table generation and passes it to
// each probe_group_step; a step that answers kRestart, an
// overflow_upsert that answers false, or a generation change observed
// between rounds all mean the same thing: re-home the unfinished lanes
// against the new geometry and keep going.
#pragma once

#include <cstdint>
#include <vector>

#include "concurrent/kmer_table.h"
#include "io/partition_file.h"
#include "util/dna.h"
#include "util/kmer.h"

namespace parahash::device {

struct SimtStats {
  std::uint64_t warps = 0;
  std::uint64_t rounds = 0;         ///< lockstep probe rounds executed
  std::uint64_t lane_slots = 0;     ///< rounds * lanes (work issued)
  std::uint64_t useful_probes = 0;  ///< group scans lanes actually needed
  std::uint64_t kmers = 0;

  /// SIMT penalty: issued lane-slots per useful probe (>= 1).
  double divergence_factor() const {
    return useful_probes == 0
               ? 1.0
               : static_cast<double>(lane_slots) /
                     static_cast<double>(useful_probes);
  }

  void merge(const SimtStats& other) {
    warps += other.warps;
    rounds += other.rounds;
    lane_slots += other.lane_slots;
    useful_probes += other.useful_probes;
    kmers += other.kmers;
  }
};

/// One lane's pending upsert.
template <int W>
struct SimtWorkItem {
  Kmer<W> canon;
  std::int8_t edge_out = -1;
  std::int8_t edge_in = -1;
};

/// Executes a warp of upserts in lockstep rounds against the shared
/// table. Each round every unfinished lane takes one GROUP step: one
/// metadata-block scan that either resolves the upsert inside the group
/// (CAS-claim + publish, or counter bump — the same state-transfer
/// protocol as ConcurrentKmerTable::add) or advances the lane by the
/// scanned group width. A lane blocked on a locked slot retries the
/// same group next round instead of stalling the warp.
///
/// A lane that scans the whole table without resolving marks itself
/// failed; the warp keeps stepping its sibling lanes until every lane
/// is done or failed, and only then throws TableFullError — the unwind
/// abandons no sibling mid-flight and leaves no slot `locked`.
///
/// Software prefetch (`prefetch_ahead`, on by default): whenever a
/// lane's NEXT probe address becomes known — initial homing, a group
/// advance, a post-migration re-home — its metadata/payload lines are
/// prefetched immediately, a full warp round before the
/// probe_group_step that reads them. The sibling lanes' scans are the
/// independent work that overlaps the miss, which is exactly how a GPU
/// warp scheduler hides its threads' scattered table loads; here the
/// hardware prefetcher cannot help (the addresses are hash-scattered),
/// so the kernel issues the hints itself. Off switches to the PR 3
/// behaviour for the ablation bench.
template <int W>
void simt_warp_upsert(concurrent::ConcurrentKmerTable<W>& table,
                      const std::vector<SimtWorkItem<W>>& warp,
                      SimtStats& stats, bool prefetch_ahead = true) {
  const std::size_t lanes = warp.size();
  if (lanes == 0) return;

  struct Lane {
    std::uint64_t index = 0;    // current probe group base
    std::uint64_t scanned = 0;  // slots covered so far (full-table guard)
    bool done = false;
    bool failed = false;
  };
  std::vector<Lane> state(lanes);
  std::uint64_t warp_gen = table.generation();
  std::uint64_t mask = table.home_mask();
  std::uint64_t bound = table.displacement_bound();
  for (std::size_t l = 0; l < lanes; ++l) {
    state[l].index = warp[l].canon.hash() & mask;
    if (prefetch_ahead) table.prefetch_index(state[l].index);
  }

  std::size_t remaining = lanes;
  bool table_full = false;
  ++stats.warps;
  stats.kmers += lanes;

  while (remaining > 0) {
    const std::uint64_t gen = table.generation();
    if (gen != warp_gen) {
      // The table migrated under the warp: every unfinished lane's probe
      // position is meaningless in the new geometry, so re-home them.
      warp_gen = gen;
      mask = table.home_mask();
      bound = table.displacement_bound();
      std::uint64_t restarted = 0;
      for (std::size_t l = 0; l < lanes; ++l) {
        Lane& lane = state[l];
        if (lane.done || lane.failed) continue;
        lane.index = warp[l].canon.hash() & mask;
        lane.scanned = 0;
        if (prefetch_ahead) table.prefetch_index(lane.index);
        ++restarted;
      }
      static telemetry::Counter& lane_restarts =
          telemetry::counter("simt.lane_restarts");
      lane_restarts.add(restarted);
      PARAHASH_TRACE_INSTANT("simt", "lane.restart", "lanes", restarted);
    }
    ++stats.rounds;
    stats.lane_slots += lanes;  // SIMT: the whole warp issues the round
    for (std::size_t l = 0; l < lanes; ++l) {
      Lane& lane = state[l];
      if (lane.done || lane.failed) continue;
      ++stats.useful_probes;  // one group scan of probing work
      concurrent::AddResult lane_result;
      const auto step = table.probe_group_step(
          lane.index, warp[l].canon, warp[l].edge_out, warp[l].edge_in,
          lane_result, warp_gen);
      if (step.outcome == concurrent::ProbeOutcome::kDone) {
        lane.done = true;
        --remaining;
      } else if (step.outcome == concurrent::ProbeOutcome::kAdvance) {
        lane.index =
            (lane.index + static_cast<std::uint64_t>(step.width)) & mask;
        lane.scanned += static_cast<std::uint64_t>(step.width);
        // Issue the next group's lines now; the remaining lanes of this
        // round (and the round bookkeeping) overlap the miss.
        if (prefetch_ahead) table.prefetch_index(lane.index);
        if (lane.scanned >= bound) {
          // Displacement bound exhausted (= every slot, on a plain
          // table): hand off to the overflow region, or defer the
          // throw until sibling lanes in flight have resolved.
          if (table.growth_enabled()) {
            if (table.overflow_upsert(warp[l].canon, warp[l].edge_out,
                                      warp[l].edge_in, lane_result,
                                      warp_gen)) {
              lane.done = true;
              --remaining;
            }
            // else: a migration intervened (possibly performed by that
            // very call) — the generation check at the top of the next
            // round re-homes this lane.
          } else {
            lane.failed = true;
            table_full = true;
            --remaining;
          }
        }
      }
      // kRetry: rescan the same group next round (a lane was locked or
      // a claim race was lost). kRestart: the table migrated mid-round;
      // the next round's generation check re-homes every live lane.
    }
  }
  if (table_full) {
    throw TableFullError(
        "SIMT kernel: table full (a lane scanned every slot)");
  }
}

/// Step-2 over a whole partition with warp-synchronous execution.
/// Produces exactly the same table contents as the scalar kernel.
template <int W>
SimtStats simt_process_partition(const io::PartitionBlob& blob,
                                 concurrent::ConcurrentKmerTable<W>& table,
                                 int warp_size = 32,
                                 bool prefetch_ahead = true) {
  const int k = static_cast<int>(blob.header().k);
  SimtStats stats;
  std::vector<SimtWorkItem<W>> warp;
  warp.reserve(static_cast<std::size_t>(warp_size));
  std::vector<std::uint8_t> seq;

  auto flush = [&] {
    simt_warp_upsert(table, warp, stats, prefetch_ahead);
    warp.clear();
  };

  for (const auto offset : io::record_offsets(blob)) {
    const auto view = io::record_at(blob, offset);
    const int n = view.n_bases;
    view.decode_bases(seq);

    const int core_begin = view.core_begin();
    Kmer<W> fwd(k);
    for (int i = 0; i < k; ++i) fwd.roll_append(seq[core_begin + i]);
    Kmer<W> rc = fwd.reverse_complement();

    const int n_kmers = view.kmer_count(k);
    for (int j = 0; j < n_kmers; ++j) {
      const int pos = core_begin + j;
      if (j > 0) {
        const std::uint8_t b = seq[pos + k - 1];
        fwd.roll_append(b);
        rc.roll_prepend(complement(b));
      }
      const int left = pos > 0 ? seq[pos - 1] : -1;
      const int right = pos + k < n ? seq[pos + k] : -1;

      SimtWorkItem<W> item;
      const bool flipped = rc < fwd;
      item.canon = flipped ? rc : fwd;
      if (!flipped) {
        item.edge_out = static_cast<std::int8_t>(right);
        item.edge_in = static_cast<std::int8_t>(left);
      } else {
        item.edge_out = static_cast<std::int8_t>(
            left >= 0 ? complement(static_cast<std::uint8_t>(left)) : -1);
        item.edge_in = static_cast<std::int8_t>(
            right >= 0 ? complement(static_cast<std::uint8_t>(right)) : -1);
      }
      warp.push_back(item);
      if (warp.size() == static_cast<std::size_t>(warp_size)) flush();
    }
  }
  flush();
  return stats;
}

}  // namespace parahash::device
