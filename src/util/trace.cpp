#include "util/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.h"

namespace parahash::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}

namespace {

struct Event {
  enum class Type : std::uint8_t {
    kComplete,
    kInstant,
    kCounter,
    kThreadName,
  };
  Type type = Type::kInstant;
  const char* cat = "";
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* arg_key = nullptr;
  std::uint64_t arg_value = 0;
  CounterSeries series;
  int tid = 0;
};

/// Per-thread event buffer. Appends lock the buffer's own mutex (only
/// ever contended against a concurrent to_json()); on thread exit the
/// events move into the session's orphan store so nothing is lost.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  int tid = 0;
};

struct Session {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<Event> orphaned;
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<int> next_tid{1};
};

Session& session() {
  static Session* s = new Session;  // leaked: outlives exiting threads
  return *s;
}

ThreadBuffer& thread_buffer() {
  struct Registration {
    std::shared_ptr<ThreadBuffer> buffer;
    Registration() : buffer(std::make_shared<ThreadBuffer>()) {
      Session& s = session();
      std::lock_guard<std::mutex> lock(s.mutex);
      buffer->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
      s.buffers.push_back(buffer);
    }
    ~Registration() {
      // Move this thread's events into the orphan store; the buffer
      // object itself stays alive through the shared_ptr in `buffers`
      // until the next start() prunes it.
      Session& s = session();
      std::lock_guard<std::mutex> session_lock(s.mutex);
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      for (Event& e : buffer->events) {
        s.orphaned.push_back(std::move(e));
      }
      buffer->events.clear();
      for (std::size_t i = 0; i < s.buffers.size(); ++i) {
        if (s.buffers[i] == buffer) {
          s.buffers.erase(s.buffers.begin() + i);
          break;
        }
      }
    }
  };
  thread_local Registration reg;
  return *reg.buffer;
}

void push_event(Event e) {
  ThreadBuffer& buf = thread_buffer();
  e.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(e));
}

void append_json(JsonWriter& w, const Event& e, std::uint64_t t0) {
  const double ts_us =
      static_cast<double>(e.ts_ns - t0) / 1000.0;
  w.begin_object();
  switch (e.type) {
    case Event::Type::kComplete:
      w.key("ph").value("X");
      w.key("name").value(e.name);
      w.key("cat").value(e.cat);
      w.key("ts").value(ts_us);
      w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
      break;
    case Event::Type::kInstant:
      w.key("ph").value("i");
      w.key("s").value("t");
      w.key("name").value(e.name);
      w.key("cat").value(e.cat);
      w.key("ts").value(ts_us);
      if (e.arg_key != nullptr) {
        w.key("args").begin_object();
        w.key(e.arg_key).value(e.arg_value);
        w.end_object();
      }
      break;
    case Event::Type::kCounter:
      w.key("ph").value("C");
      w.key("name").value(e.name);
      w.key("cat").value(e.cat);
      w.key("ts").value(ts_us);
      w.key("args").begin_object();
      for (int i = 0; i < e.series.n; ++i) {
        w.key(e.series.keys[i]).value(e.series.values[i]);
      }
      w.end_object();
      break;
    case Event::Type::kThreadName:
      w.key("ph").value("M");
      w.key("name").value("thread_name");
      w.key("args").begin_object();
      w.key("name").value(e.name);
      w.end_object();
      break;
  }
  w.key("pid").value(1);
  w.key("tid").value(static_cast<std::int64_t>(e.tid));
  w.end_object();
}

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void start() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Drop timed events from any previous session but keep thread-name
  // metadata: threads named before start() keep their track labels.
  auto prune = [](std::vector<Event>& events) {
    std::erase_if(events, [](const Event& e) {
      return e.type != Event::Type::kThreadName;
    });
  };
  prune(s.orphaned);
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buf->mutex);
    prune(buf->events);
  }
  s.t0_ns.store(now_ns(), std::memory_order_relaxed);
  internal::g_enabled.store(true, std::memory_order_release);
}

void stop() {
  internal::g_enabled.store(false, std::memory_order_release);
}

void set_thread_name(std::string name) {
  // Thread-name metadata is kept even while disabled so tracks are
  // named no matter when the session starts relative to thread launch.
  Event e;
  e.type = Event::Type::kThreadName;
  e.name = std::move(name);
  e.ts_ns = now_ns();
  push_event(std::move(e));
}

void emit_complete(const char* cat, std::string name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns) {
  if (!enabled()) return;
  Event e;
  e.type = Event::Type::kComplete;
  e.cat = cat;
  e.name = std::move(name);
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  push_event(std::move(e));
}

void emit_instant(const char* cat, std::string name) {
  if (!enabled()) return;
  Event e;
  e.type = Event::Type::kInstant;
  e.cat = cat;
  e.name = std::move(name);
  e.ts_ns = now_ns();
  push_event(std::move(e));
}

void emit_instant(const char* cat, std::string name, const char* arg_key,
                  std::uint64_t arg_value) {
  if (!enabled()) return;
  Event e;
  e.type = Event::Type::kInstant;
  e.cat = cat;
  e.name = std::move(name);
  e.ts_ns = now_ns();
  e.arg_key = arg_key;
  e.arg_value = arg_value;
  push_event(std::move(e));
}

void emit_counter(const char* cat, const char* name,
                  const CounterSeries& series) {
  if (!enabled()) return;
  Event e;
  e.type = Event::Type::kCounter;
  e.cat = cat;
  e.name = name;
  e.ts_ns = now_ns();
  e.series = series;
  push_event(std::move(e));
}

std::string to_json() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::uint64_t t0 = s.t0_ns.load(std::memory_order_relaxed);

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  auto emit_all = [&](const std::vector<Event>& events) {
    for (const Event& e : events) {
      // Thread-name metadata always passes; timed events from before
      // start() (a previous session, or pre-start warmup) are dropped.
      if (e.type != Event::Type::kThreadName && e.ts_ns < t0) continue;
      append_json(w, e, t0);
    }
  };
  emit_all(s.orphaned);
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buf->mutex);
    emit_all(buf->events);
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool write(const std::string& path) {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace parahash::trace
