#include "util/dna.h"

namespace parahash {

std::string encode_bases(std::string_view chars) {
  std::string out(chars.size(), '\0');
  for (std::size_t i = 0; i < chars.size(); ++i) {
    out[i] = static_cast<char>(encode_base(chars[i]));
  }
  return out;
}

std::string decode_bases(std::string_view codes) {
  std::string out(codes.size(), '\0');
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = decode_base(static_cast<std::uint8_t>(codes[i]));
  }
  return out;
}

std::string reverse_complement_str(std::string_view chars) {
  std::string out(chars.size(), '\0');
  for (std::size_t i = 0; i < chars.size(); ++i) {
    const std::uint8_t b = encode_base(chars[chars.size() - 1 - i]);
    out[i] = decode_base(complement(b));
  }
  return out;
}

}  // namespace parahash
