// Minimal leveled logger. Serialised to stderr; off by default above INFO.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace parahash {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that gets printed (default: kWarn, so library
/// code is quiet unless something is wrong; tools raise it to kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_line(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: PARAHASH_LOG(kInfo) << "built " << n;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() {
    if (level_ >= log_level()) internal::log_line(level_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace parahash

// The level check happens BEFORE the LogMessage temporary exists, so a
// filtered statement never constructs the stream or formats its
// operands — a disabled kDebug log in a probe loop costs one atomic
// load and a branch. The if/else shape (rather than a bare if) keeps
// the macro safe inside un-braced if/else chains at call sites.
#define PARAHASH_LOG(level)                                          \
  if (::parahash::LogLevel::level < ::parahash::log_level()) {       \
  } else                                                             \
    ::parahash::LogMessage(::parahash::LogLevel::level)
