#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace parahash {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace internal {

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[parahash %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace internal
}  // namespace parahash
