#include "util/mem.h"

#include <cstdio>
#include <cstring>

namespace parahash {
namespace {

std::uint64_t read_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len, " %llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM:") * 1024; }

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS:") * 1024; }

}  // namespace parahash
