// Runtime metrics: named counters, gauges and log2-bucketed histograms
// behind a process-global registry.
//
// Counters and histograms are lock-free and sharded: each recording
// thread lands on one of kShards cache-line-padded cells (stable
// per-thread assignment), so hot-path recording is a TLS read plus a
// relaxed fetch_add with no sharing between concurrent writers.
// Snapshots merge the shards; because every cell is monotone, repeated
// snapshots of a counter or histogram are monotone too, even while
// other threads keep recording.
//
// Hot paths that would pay per-operation (the per-upsert probe-length
// histogram) are gated on telemetry::enabled(), which the CLI flips on
// when any of --trace-out/--metrics-out/--report-json is given.
// Everything recorded at partition/batch granularity is always on —
// a handful of relaxed adds per partition is free.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parahash::telemetry {

namespace internal {

inline constexpr std::size_t kShards = 16;  // power of two

/// Stable per-thread shard index in [0, kShards).
inline std::size_t shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id & (kShards - 1);
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace internal

/// Global cheap gate for per-operation instruments (see file comment).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[internal::shard_index()].v.fetch_add(n,
                                                std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<internal::PaddedU64, internal::kShards> cells_;
};

/// Last-write-wins instantaneous value (queue depths, ledger counters).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (probe
/// lengths, wait nanoseconds). Bucket 0 holds the value 0; bucket b>0
/// holds [2^(b-1), 2^b - 1], i.e. boundaries at every power of two.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // 0 plus bit widths 1..64

  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value bucket `b` counts.
  static constexpr std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value bucket `b` counts (inclusive).
  static constexpr std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b == 0 ? 0
           : b >= 64
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[internal::shard_index()];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }
    /// Upper bound of the bucket containing the p-quantile (p in [0,1]).
    std::uint64_t quantile_bound(double p) const;
  };

  Snapshot snapshot() const noexcept {
    Snapshot s;
    for (const auto& shard : shards_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n =
            shard.buckets[b].load(std::memory_order_relaxed);
        s.buckets[b] += n;
        s.count += n;
      }
      s.sum += shard.sum.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, internal::kShards> shards_;
};

/// Process-global instrument registry. Lookup by name takes a mutex;
/// hot paths cache the returned reference (instrument addresses are
/// stable for the process lifetime).
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Merged snapshot of every instrument as a JSON object:
  /// {"counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:{"count":..,"sum":..,"mean":..,"p50":..,
  ///                      "p99":..,"buckets":{"lo":count,...}},...}}
  std::string snapshot_json() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// Shorthands for call sites: cache the reference in a static local.
inline Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

}  // namespace parahash::telemetry
