// Non-cryptographic mixing hashes used for kmer hashing, minimizer routing
// and the concurrent hash tables.
#pragma once

#include <cstdint>

namespace parahash {

/// SplitMix64 finaliser: a strong 64-bit bit mixer. Cheap, statistically
/// well distributed, and invertible (so it never loses entropy).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combines a running hash with the next 64-bit lane.
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                       (seed >> 2)));
}

/// Hashes an array of 64-bit words (e.g. a multi-word kmer).
constexpr std::uint64_t hash_words(const std::uint64_t* words,
                                   int count) noexcept {
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  for (int i = 0; i < count; ++i) h = hash_combine(h, words[i]);
  return h;
}

/// Rounds `x` up to the next power of two (returns 1 for x == 0).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;  x |= x >> 2;  x |= x >> 4;
  x |= x >> 8;  x |= x >> 16; x |= x >> 32;
  return x + 1;
}

}  // namespace parahash
