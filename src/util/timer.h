// Wall-clock timers and per-stage time accounting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace parahash {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds its lifetime (in seconds) to a double on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) noexcept : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  WallTimer timer_;
};

/// Thread-safe accumulator of seconds, usable from many workers at once.
class AtomicSeconds {
 public:
  /// Negative and NaN inputs (a misused sink, a clock that stepped
  /// backwards) are clamped to zero instead of silently corrupting the
  /// accumulator; casting NaN to an integer is UB, and a negative delta
  /// would subtract time that other workers legitimately measured.
  /// Written as !(s > 0) so NaN takes the clamp branch too.
  void add(double s) noexcept {
    if (!(s > 0.0)) return;
    ns_.fetch_add(static_cast<std::int64_t>(s * 1e9),
                  std::memory_order_relaxed);
  }
  double seconds() const noexcept {
    return static_cast<double>(ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  std::atomic<std::int64_t> ns_{0};
};

/// Adds its lifetime to an AtomicSeconds on destruction.
class ScopedAtomicTimer {
 public:
  explicit ScopedAtomicTimer(AtomicSeconds& sink) noexcept : sink_(sink) {}
  ScopedAtomicTimer(const ScopedAtomicTimer&) = delete;
  ScopedAtomicTimer& operator=(const ScopedAtomicTimer&) = delete;
  ~ScopedAtomicTimer() { sink_.add(timer_.seconds()); }

 private:
  AtomicSeconds& sink_;
  WallTimer timer_;
};

}  // namespace parahash
