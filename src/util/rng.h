// Deterministic pseudo-random number generation for simulators and tests.
//
// Xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 with std::distributions — bit-reproducible across standard
// library implementations, so synthetic datasets are stable everywhere.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace parahash {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    // SplitMix64 stream to fill the state; never all-zero.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift.
  std::uint64_t below(std::uint64_t bound) noexcept {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// One random DNA base code.
  std::uint8_t base() noexcept {
    return static_cast<std::uint8_t>(next() >> 62);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal sample (Marsaglia polar method).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u;
    double v;
    double s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Poisson sample with mean lambda (Knuth's method; lambda is small in
  /// sequencing models, typically 1-2 errors per read).
  int poisson(double lambda) noexcept {
    const double limit = std::exp(-lambda);
    double prod = 1.0;
    int n = -1;
    do {
      ++n;
      prod *= uniform();
    } while (prod > limit);
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  }

  std::array<std::uint64_t, 4> state_;
  double spare_ = 0;
  bool have_spare_ = false;
};

}  // namespace parahash
