// 2-bit packed DNA sequences of arbitrary length.
//
// ParaHash encodes reads and superkmers with 2 bits per base to cut the
// partition files (and host<->device transfers) to ~1/4 of a byte-per-base
// encoding (paper Sec. III-B). PackedSeq is that container: an appendable
// 2-bit vector with random access, slicing, kmer extraction and a compact
// byte serialisation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/dna.h"
#include "util/error.h"
#include "util/kmer.h"

namespace parahash {

class PackedSeq {
 public:
  PackedSeq() = default;

  /// Builds from base characters; unknown characters read as 'A'.
  static PackedSeq from_string(std::string_view chars) {
    PackedSeq s;
    s.reserve(chars.size());
    for (char c : chars) s.push_back(encode_base(c));
    return s;
  }

  /// Builds from 2-bit codes (one code per byte).
  static PackedSeq from_codes(std::span<const std::uint8_t> codes) {
    PackedSeq s;
    s.reserve(codes.size());
    for (std::uint8_t b : codes) s.push_back(b);
    return s;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  void reserve(std::size_t bases) { words_.reserve((bases + 31) / 32); }

  /// Appends one 2-bit base code.
  void push_back(std::uint8_t b) {
    const std::size_t word = size_ / 32;
    const int off = static_cast<int>(size_ % 32) * 2;
    if (word == words_.size()) words_.push_back(0);
    words_[word] |= static_cast<std::uint64_t>(b & 3u) << off;
    ++size_;
  }

  /// Base code at position i (0-based, left to right).
  std::uint8_t operator[](std::size_t i) const noexcept {
    return static_cast<std::uint8_t>(
        (words_[i / 32] >> ((i % 32) * 2)) & 3u);
  }

  /// Extracts the length-k kmer starting at position `pos`.
  template <int W>
  Kmer<W> kmer_at(std::size_t pos, int k) const {
    PARAHASH_DCHECK(pos + static_cast<std::size_t>(k) <= size_);
    Kmer<W> out;
    for (int i = 0; i < k; ++i) out.push_back((*this)[pos + i]);
    return out;
  }

  /// Copies bases [pos, pos+len) into a new sequence.
  PackedSeq substr(std::size_t pos, std::size_t len) const {
    PARAHASH_DCHECK(pos + len <= size_);
    PackedSeq out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) out.push_back((*this)[pos + i]);
    return out;
  }

  std::string to_string() const {
    std::string s(size_, 'A');
    for (std::size_t i = 0; i < size_; ++i) s[i] = decode_base((*this)[i]);
    return s;
  }

  /// Number of bytes `write_bytes` produces for `bases` bases.
  static std::size_t packed_bytes(std::size_t bases) noexcept {
    return (bases + 3) / 4;
  }

  /// Serialises the bases into `out` (must hold packed_bytes(size())).
  void write_bytes(std::uint8_t* out) const;

  /// Deserialises `bases` bases from a packed byte buffer.
  static PackedSeq from_bytes(const std::uint8_t* in, std::size_t bases);

  friend bool operator==(const PackedSeq& a, const PackedSeq& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.words_.size(); ++i)
      if (a.words_[i] != b.words_[i]) return false;
    return true;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace parahash
