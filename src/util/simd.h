// Runtime CPU dispatch for the SIMD metadata-scan backends.
//
// The group-probing engine (concurrent/probe_group.h) has three
// implementations of the same scan — portable scalar, SSE2 (16 lanes)
// and AVX2 (32 lanes) — and picks one per process at runtime:
//
//     level = min(compiled ceiling, CPU capability, env override)
//
// The compiled ceiling exists so a build can guarantee the scalar
// fallback stays exercised: configuring with -DPARAHASH_FORCE_SCALAR=ON
// defines the PARAHASH_FORCE_SCALAR macro and no intrinsic code is even
// compiled (the `ci-scalar` workflow preset builds and tests this leg).
// ThreadSanitizer builds also pin the ceiling to scalar: the wide loads
// the SIMD backends issue over the atomic metadata bytes are exactly
// the kind of access tsan must flag, while the scalar backend's
// per-byte acquire loads are the formally correct protocol the
// sanitizer verifies.
//
// Environment overrides (read once, first use):
//     PARAHASH_FORCE_SCALAR=1   force the scalar backend
//     PARAHASH_SIMD=scalar|sse2|avx2
//                               cap the level (never raises it above
//                               what the build/CPU supports)
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace parahash::simd {

enum class Level : int {
  kScalar = 0,  ///< per-byte atomic loads, no vector instructions
  kSse2 = 1,    ///< 16-byte pcmpeqb metadata scan
  kAvx2 = 2,    ///< 32-byte vpcmpeqb metadata scan
};

inline const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

// True when this build contains the x86 intrinsic backends at all.
#if (defined(__x86_64__) || defined(__i386__)) &&       \
    !defined(PARAHASH_FORCE_SCALAR) &&                  \
    !defined(__SANITIZE_THREAD__) && !defined(PARAHASH_HAS_TSAN_FEATURE)
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARAHASH_SIMD_X86 0
#else
#define PARAHASH_SIMD_X86 1
#endif
#else
#define PARAHASH_SIMD_X86 1
#endif
#else
#define PARAHASH_SIMD_X86 0
#endif

/// Highest level this binary could ever run (macro / sanitizer gate).
inline constexpr Level compiled_ceiling() noexcept {
#if PARAHASH_SIMD_X86
  return Level::kAvx2;
#else
  return Level::kScalar;
#endif
}

/// Highest level the build AND the executing CPU support. SSE2 is
/// architectural on x86-64, so only AVX2 needs a CPUID probe.
inline Level detect() noexcept {
#if PARAHASH_SIMD_X86
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kSse2;
#else
  return Level::kScalar;
#endif
}

/// Applies the override strings to a detected level. Pure (testable
/// without mutating the process environment): `force_scalar` and
/// `simd_name` are the raw values of PARAHASH_FORCE_SCALAR and
/// PARAHASH_SIMD (nullptr = unset). An override can only lower the
/// level — asking for avx2 on an sse2-only build/CPU stays at sse2 —
/// and unknown names are ignored.
inline Level resolve(const char* force_scalar, const char* simd_name,
                     Level detected) noexcept {
  if (force_scalar != nullptr && force_scalar[0] != '\0' &&
      std::strcmp(force_scalar, "0") != 0) {
    return Level::kScalar;
  }
  if (simd_name == nullptr) return detected;
  Level requested = detected;
  if (std::strcmp(simd_name, "scalar") == 0 ||
      std::strcmp(simd_name, "off") == 0 ||
      std::strcmp(simd_name, "0") == 0) {
    requested = Level::kScalar;
  } else if (std::strcmp(simd_name, "sse2") == 0) {
    requested = Level::kSse2;
  } else if (std::strcmp(simd_name, "avx2") == 0) {
    requested = Level::kAvx2;
  }
  return static_cast<int>(requested) < static_cast<int>(detected)
             ? requested
             : detected;
}

/// Reads the environment and resolves the level to use right now.
/// Uncached — the dispatch unit test calls this around setenv().
inline Level level_from_environment() noexcept {
  return resolve(std::getenv("PARAHASH_FORCE_SCALAR"),
                 std::getenv("PARAHASH_SIMD"), detect());
}

/// The process-wide dispatch decision, made once on first use. Tables
/// snapshot this at construction (and tests may override per table).
inline Level active() noexcept {
  static const Level level = level_from_environment();
  return level;
}

}  // namespace parahash::simd
