#include "util/packed_seq.h"

namespace parahash {

void PackedSeq::write_bytes(std::uint8_t* out) const {
  const std::size_t nbytes = packed_bytes(size_);
  std::memset(out, 0, nbytes);
  for (std::size_t i = 0; i < size_; ++i) {
    out[i / 4] |= static_cast<std::uint8_t>((*this)[i] << ((i % 4) * 2));
  }
}

PackedSeq PackedSeq::from_bytes(const std::uint8_t* in, std::size_t bases) {
  PackedSeq s;
  s.reserve(bases);
  for (std::size_t i = 0; i < bases; ++i) {
    s.push_back(static_cast<std::uint8_t>((in[i / 4] >> ((i % 4) * 2)) & 3u));
  }
  return s;
}

}  // namespace parahash
