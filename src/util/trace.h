// Scoped event tracer emitting Chrome trace_event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Events buffer per thread (one mutex-protected vector per thread,
// uncontended except while a snapshot is being written) and merge at
// write time into one process-wide timeline: one track (tid) per
// registered thread, named via set_thread_name() — the executor names
// its input thread and one worker thread per device, which is what
// makes pipeline occupancy visible.
//
// Cost model: every emit first checks trace::enabled() (one relaxed
// atomic load); with tracing off an instant event is a test-and-branch
// and a ScopedEvent is two of them. Compiling with
// PARAHASH_NO_TRACING removes the macros entirely for zero-cost
// builds. Events are coarse by design (per batch, per partition, per
// migration) — nothing in a probe loop ever emits.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

namespace parahash::trace {

namespace internal {
extern std::atomic<bool> g_enabled;
}

/// True between start() and stop().
inline bool enabled() noexcept {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Begins a trace session: timestamps are reported relative to this
/// call. Events emitted before start() (or after stop()) are dropped.
void start();
void stop();

/// Steady-clock nanoseconds (the tracer's time base).
std::uint64_t now_ns() noexcept;

/// Names the calling thread's track in the trace viewer.
void set_thread_name(std::string name);

// --- Low-level emit API (no-ops unless enabled()) -------------------

/// Complete event ("ph":"X"): a [ts, ts+dur] span on this thread's
/// track. Prefer ScopedEvent / PARAHASH_TRACE_SCOPE.
void emit_complete(const char* cat, std::string name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns);

/// Instant event ("ph":"i"), optionally with one integer arg (e.g. a
/// partition id).
void emit_instant(const char* cat, std::string name);
void emit_instant(const char* cat, std::string name, const char* arg_key,
                  std::uint64_t arg_value);

/// Counter event ("ph":"C"): up to four named series sampled at one
/// instant — renders as a stacked area chart (ledger occupancy).
struct CounterSeries {
  const char* keys[4] = {nullptr, nullptr, nullptr, nullptr};
  double values[4] = {0, 0, 0, 0};
  int n = 0;
  void push(const char* key, double value) {
    if (n < 4) {
      keys[n] = key;
      values[n] = value;
      ++n;
    }
  }
};
void emit_counter(const char* cat, const char* name,
                  const CounterSeries& series);

/// Serialises every event recorded since start() as
/// {"traceEvents":[...]}. write() returns false on IO failure.
std::string to_json();
bool write(const std::string& path);

/// RAII span: records construction..destruction as a complete event on
/// the calling thread's track.
class ScopedEvent {
 public:
  ScopedEvent(const char* cat, const char* name) noexcept
      : active_(enabled()), cat_(cat), name_(name) {
    if (active_) start_ns_ = now_ns();
  }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;
  ~ScopedEvent() {
    if (active_) {
      emit_complete(cat_, name_, start_ns_, now_ns() - start_ns_);
    }
  }

 private:
  bool active_;
  const char* cat_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace parahash::trace

#if defined(PARAHASH_NO_TRACING)
#define PARAHASH_TRACE_SCOPE(cat, name) \
  do {                                  \
  } while (0)
#define PARAHASH_TRACE_INSTANT(cat, ...) \
  do {                                   \
  } while (0)
#else
#define PARAHASH_TRACE_CONCAT2(a, b) a##b
#define PARAHASH_TRACE_CONCAT(a, b) PARAHASH_TRACE_CONCAT2(a, b)
/// Traces the enclosing scope as a span named `name` in category `cat`
/// (both string literals).
#define PARAHASH_TRACE_SCOPE(cat, name)                    \
  ::parahash::trace::ScopedEvent PARAHASH_TRACE_CONCAT(    \
      parahash_trace_scope_, __LINE__)(cat, name)
/// Emits an instant event; extra args forward to emit_instant
/// (name [, arg_key, arg_value]).
#define PARAHASH_TRACE_INSTANT(cat, ...)                   \
  do {                                                     \
    if (::parahash::trace::enabled()) {                    \
      ::parahash::trace::emit_instant(cat, __VA_ARGS__);   \
    }                                                      \
  } while (0)
#endif
