// Process memory probes (used for the peak-memory columns of Table III).
#pragma once

#include <cstdint>

namespace parahash {

/// Peak resident set size of this process in bytes (VmHWM), or 0 if the
/// platform does not expose it.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS), or 0 if unavailable.
std::uint64_t current_rss_bytes();

}  // namespace parahash
