// Minimal command-line flag parsing for the tools and examples.
//
// Supports --name=value, --name value, and bare --bool flags, plus
// positional arguments. No global state: a Flags object is built from
// argv and queried.
//
// Ambiguity rule: in the `--name value` form the next token is consumed
// as the value whenever it does not itself start with `--`. Boolean
// flags followed by a positional argument must therefore use the
// `--name=true` spelling (or come after the positionals).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"

namespace parahash {

class Flags {
 public:
  Flags(int argc, const char* const* argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      const std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                     0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "";  // bare boolean flag
      }
    }
  }

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return values_.contains(name); }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (...) {
      throw InvalidArgumentError("flag --" + name +
                                 " expects an integer, got '" + it->second +
                                 "'");
    }
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      throw InvalidArgumentError("flag --" + name +
                                 " expects a number, got '" + it->second +
                                 "'");
    }
  }

  bool get_bool(const std::string& name, bool fallback = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
    if (v == "false" || v == "0" || v == "no") return false;
    throw InvalidArgumentError("flag --" + name +
                               " expects a boolean, got '" + v + "'");
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace parahash
