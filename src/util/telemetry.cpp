#include "util/telemetry.h"

#include <map>
#include <memory>
#include <mutex>

#include "util/json.h"

namespace parahash::telemetry {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Histogram::Snapshot::quantile_bound(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target && buckets[b] != 0) {
      return bucket_hi(b);
    }
  }
  return bucket_hi(kBuckets - 1);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: stable addresses across inserts, deterministic JSON order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

namespace {
template <typename Map, typename T>
T& find_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  return find_or_create<decltype(i.counters), Counter>(i.mutex, i.counters,
                                                       name);
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& i = impl();
  return find_or_create<decltype(i.gauges), Gauge>(i.mutex, i.gauges, name);
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  return find_or_create<decltype(i.histograms), Histogram>(
      i.mutex, i.histograms, name);
}

std::string Registry::snapshot_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : i.counters) {
    w.key(name).value(c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : i.gauges) {
    w.key(name).value(g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : i.histograms) {
    const Histogram::Snapshot s = h->snapshot();
    w.key(name).begin_object();
    w.key("count").value(s.count);
    w.key("sum").value(s.sum);
    w.key("mean").value(s.mean());
    w.key("p50").value(s.quantile_bound(0.50));
    w.key("p99").value(s.quantile_bound(0.99));
    w.key("buckets").begin_object();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      w.key(std::to_string(Histogram::bucket_lo(b))).value(s.buckets[b]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace parahash::telemetry
