// Error types and checking macros for the parahash library.
//
// The library reports unrecoverable misuse and environment failures with
// exceptions derived from parahash::Error; hot paths use PARAHASH_DCHECK
// (compiled out in release builds) for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace parahash {

/// Base class of all parahash exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid configuration or argument (e.g. even k, P > K).
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// Filesystem / stream failure.
class IoError : public Error {
 public:
  using Error::Error;
};

/// A fixed-capacity concurrent hash table ran out of slots and resizing
/// was disabled (ParaHash sizes tables up front to avoid resizing).
class TableFullError : public Error {
 public:
  using Error::Error;
};

/// A device could not accept a work item (e.g. the simulated GPU's device
/// memory cannot hold the partition plus its hash table).
class DeviceCapacityError : public Error {
 public:
  using Error::Error;
};

namespace internal {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace internal

}  // namespace parahash

/// Always-on invariant check; throws parahash::Error on failure.
#define PARAHASH_CHECK(expr)                                               \
  do {                                                                     \
    if (!(expr))                                                           \
      ::parahash::internal::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define PARAHASH_CHECK_MSG(expr, msg)                                      \
  do {                                                                     \
    if (!(expr))                                                           \
      ::parahash::internal::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PARAHASH_DCHECK(expr) ((void)0)
#else
#define PARAHASH_DCHECK(expr) PARAHASH_CHECK(expr)
#endif
