// DNA alphabet: 2-bit base codes, complements, and character conversion.
//
// The De Bruijn graph alphabet is Sigma = {A, C, G, T}, encoded as
// A=0, C=1, G=2, T=3. The encoding is chosen so that
//   * integer order equals lexicographic order of the characters, and
//   * complement(b) == b ^ 3 (A<->T, C<->G).
// Unknown input characters (e.g. 'N') map to 'A', matching the convention
// used by most assemblers and by the ParaHash paper (Sec. II-A).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace parahash {

/// Number of symbols in the DNA alphabet.
inline constexpr int kAlphabetSize = 4;

/// Decoding table from 2-bit code to character.
inline constexpr std::array<char, 4> kBaseChars = {'A', 'C', 'G', 'T'};

/// Encodes one character to its 2-bit base code; unknown characters
/// (including 'N') become A (code 0).
constexpr std::uint8_t encode_base(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return 0;
  }
}

/// Returns true iff `c` is one of ACGT (either case).
constexpr bool is_acgt(char c) noexcept {
  switch (c) {
    case 'A': case 'a': case 'C': case 'c':
    case 'G': case 'g': case 'T': case 't': return true;
    default: return false;
  }
}

/// Decodes a 2-bit base code to its uppercase character.
constexpr char decode_base(std::uint8_t b) noexcept { return kBaseChars[b & 3u]; }

/// Watson-Crick complement of a 2-bit base code (A<->T, C<->G).
constexpr std::uint8_t complement(std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(b ^ 3u);
}

/// Encodes a string of base characters into a vector of 2-bit codes.
std::string encode_bases(std::string_view chars);

/// Decodes a string of 2-bit codes (one per byte) back to characters.
std::string decode_bases(std::string_view codes);

/// Reverse complement of a character sequence (ACGT; others read as A).
std::string reverse_complement_str(std::string_view chars);

}  // namespace parahash
