// Minimal JSON writer: enough to emit metrics snapshots, trace events
// and run reports without a third-party dependency. Commas are managed
// by a nesting stack; non-finite doubles are emitted as null so the
// output always parses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

namespace parahash {

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes).
inline void json_escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Streaming JSON builder. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("vertices").value(std::uint64_t{42});
///   w.key("devices").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string json = std::move(w).str();
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name) {
    comma();
    out_ += '"';
    json_escape_to(out_, name);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    comma();
    out_ += '"';
    json_escape_to(out_, s);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    comma();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    comma();
    if (!std::isfinite(d)) {
      out_ += "null";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.12g", d);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }

  /// Splices a pre-rendered JSON fragment in value position.
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    need_comma_.push_back(false);
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    need_comma_.pop_back();
    return *this;
  }
  void comma() {
    if (pending_value_) {
      // A key was just written; this token is its value.
      pending_value_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

}  // namespace parahash
