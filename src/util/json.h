// Minimal JSON writer + parser: enough to emit metrics snapshots,
// trace events and run reports — and to read them (and `--config`
// files) back — without a third-party dependency. Commas are managed
// by a nesting stack; non-finite doubles are emitted as null so the
// output always parses. The parser is the writer's inverse: a small
// recursive-descent reader producing a JsonValue tree, accepting
// exactly RFC 8259 JSON (no comments, no trailing commas) so config
// files stay interchangeable with any other tooling.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace parahash {

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes).
inline void json_escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Streaming JSON builder. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("vertices").value(std::uint64_t{42});
///   w.key("devices").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string json = std::move(w).str();
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name) {
    comma();
    out_ += '"';
    json_escape_to(out_, name);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    comma();
    out_ += '"';
    json_escape_to(out_, s);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    comma();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    comma();
    if (!std::isfinite(d)) {
      out_ += "null";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.12g", d);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }

  /// Splices a pre-rendered JSON fragment in value position.
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    need_comma_.push_back(false);
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    need_comma_.pop_back();
    return *this;
  }
  void comma() {
    if (pending_value_) {
      // A key was just written; this token is its value.
      pending_value_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

/// Thrown by JsonValue::parse on malformed input; carries a byte
/// offset so a bad config file points at the offending character.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// A parsed JSON document: one tagged value, with typed accessors that
/// throw JsonParseError-free std::runtime_error on kind mismatch (a
/// config reader wants loud failures, not silent defaults). Object
/// member order is not preserved (std::map) — round-trip identity is
/// defined over re-serialisation through the same writer, which emits
/// keys in a fixed schema order anyway.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const {
    require(Kind::kBool, "bool");
    return bool_;
  }
  double as_double() const {
    require(Kind::kNumber, "number");
    return number_;
  }
  std::int64_t as_int() const {
    require(Kind::kNumber, "number");
    return static_cast<std::int64_t>(number_);
  }
  std::uint64_t as_uint() const {
    require(Kind::kNumber, "number");
    if (number_ < 0) throw std::runtime_error("JSON number is negative");
    return static_cast<std::uint64_t>(number_);
  }
  const std::string& as_string() const {
    require(Kind::kString, "string");
    return string_;
  }
  const std::vector<JsonValue>& as_array() const {
    require(Kind::kArray, "array");
    return array_;
  }
  const std::map<std::string, JsonValue>& as_object() const {
    require(Kind::kObject, "object");
    return object_;
  }

  bool has(std::string_view key) const {
    return kind_ == Kind::kObject &&
           object_.find(std::string(key)) != object_.end();
  }
  /// Member access; throws if absent (use get() for optional members).
  const JsonValue& at(std::string_view key) const {
    require(Kind::kObject, "object");
    auto it = object_.find(std::string(key));
    if (it == object_.end()) {
      throw std::runtime_error("JSON object has no member '" +
                               std::string(key) + "'");
    }
    return it->second;
  }
  /// Member access; nullptr if absent or not an object.
  const JsonValue* get(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    auto it = object_.find(std::string(key));
    return it == object_.end() ? nullptr : &it->second;
  }

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Throws JsonParseError.
  static JsonValue parse(std::string_view text) {
    Parser p{text, 0};
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos != text.size()) {
      throw JsonParseError("trailing characters after JSON value", p.pos);
    }
    return v;
  }

 private:
  void require(Kind want, const char* name) const {
    if (kind_ != want) {
      throw std::runtime_error(std::string("JSON value is not a ") + name);
    }
  }

  struct Parser {
    std::string_view text;
    std::size_t pos;

    [[noreturn]] void fail(const char* what) const {
      throw JsonParseError(what, pos);
    }
    void skip_ws() {
      while (pos < text.size() &&
             (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
              text[pos] == '\r')) {
        ++pos;
      }
    }
    char peek() {
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }
    void expect(char c) {
      if (peek() != c) fail("unexpected character");
      ++pos;
    }
    bool consume_literal(std::string_view lit) {
      if (text.substr(pos, lit.size()) != lit) return false;
      pos += lit.size();
      return true;
    }

    JsonValue value() {
      skip_ws();
      switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return string_value();
        case 't':
          if (!consume_literal("true")) fail("bad literal");
          return make_bool(true);
        case 'f':
          if (!consume_literal("false")) fail("bad literal");
          return make_bool(false);
        case 'n':
          if (!consume_literal("null")) fail("bad literal");
          return JsonValue{};
        default: return number();
      }
    }

    JsonValue object() {
      expect('{');
      JsonValue v;
      v.kind_ = Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object_.emplace(std::move(key), value());
        skip_ws();
        const char c = peek();
        ++pos;
        if (c == '}') return v;
        if (c != ',') fail("expected ',' or '}' in object");
      }
    }

    JsonValue array() {
      expect('[');
      JsonValue v;
      v.kind_ = Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      for (;;) {
        v.array_.push_back(value());
        skip_ws();
        const char c = peek();
        ++pos;
        if (c == ']') return v;
        if (c != ',') fail("expected ',' or ']' in array");
      }
    }

    JsonValue string_value() {
      JsonValue v;
      v.kind_ = Kind::kString;
      v.string_ = parse_string();
      return v;
    }

    std::string parse_string() {
      expect('"');
      std::string out;
      for (;;) {
        if (pos >= text.size()) fail("unterminated string");
        const char c = text[pos++];
        if (c == '"') return out;
        if (c != '\\') {
          out += c;
          continue;
        }
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // UTF-8 encode the code point (the writer only ever emits
            // \u00xx for control bytes, but accept the full BMP).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      }
    }

    JsonValue number() {
      const std::size_t start = pos;
      if (pos < text.size() && text[pos] == '-') ++pos;
      while (pos < text.size() &&
             ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
              text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
              text[pos] == '-')) {
        ++pos;
      }
      if (pos == start) fail("expected a JSON value");
      const std::string token(text.substr(start, pos - start));
      char* end = nullptr;
      const double d = std::strtod(token.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        throw JsonParseError("malformed number", start);
      }
      JsonValue v;
      v.kind_ = Kind::kNumber;
      v.number_ = d;
      return v;
    }

    static JsonValue make_bool(bool b) {
      JsonValue v;
      v.kind_ = Kind::kBool;
      v.bool_ = b;
      return v;
    }
  };

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace parahash
