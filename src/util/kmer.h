// Fixed-capacity, multi-word kmer values.
//
// A Kmer<W> stores up to 32*W bases in W 64-bit words, packed so that the
// kmer's bases form one big-endian 2k-bit integer: the leftmost (first)
// base occupies the most significant 2 bits of the used range. With that
// layout, integer comparison of two equal-length kmers equals
// lexicographic comparison of their strings, which is what minimizers and
// canonical kmers are defined on (paper Sec. II-A).
//
// The ParaHash paper stresses that hash entries must support keys wider
// than one machine word (Sec. II, "multi-words hashing"); Kmer<2> covers
// k up to 64 and the concurrent table (concurrent/kmer_table.h) stores the
// raw words of any W.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/dna.h"
#include "util/error.h"
#include "util/hash.h"

namespace parahash {

template <int W>
class Kmer {
  static_assert(W >= 1 && W <= 8, "1..8 words supported");

 public:
  static constexpr int kWords = W;
  static constexpr int kMaxK = 32 * W;

  /// Empty kmer (k == 0).
  constexpr Kmer() noexcept : words_{}, k_(0) {}

  /// All-A kmer of length k.
  constexpr explicit Kmer(int k) : words_{}, k_(k) {
    PARAHASH_CHECK_MSG(k >= 0 && k <= kMaxK, "kmer length out of range");
  }

  /// Parses a kmer from base characters; unknown characters read as 'A'.
  static Kmer from_string(std::string_view s) {
    PARAHASH_CHECK_MSG(static_cast<int>(s.size()) <= kMaxK,
                       "string longer than kmer capacity");
    Kmer out;
    for (char c : s) out.push_back(encode_base(c));
    return out;
  }

  /// Reconstructs a kmer from raw words (as stored in a hash table slot).
  static Kmer from_words(std::span<const std::uint64_t> w, int k) {
    PARAHASH_CHECK(static_cast<int>(w.size()) == W && k >= 0 && k <= kMaxK);
    Kmer out;
    out.k_ = k;
    for (int i = 0; i < W; ++i) out.words_[i] = w[i];
    return out;
  }

  constexpr int k() const noexcept { return k_; }
  constexpr bool empty() const noexcept { return k_ == 0; }

  /// Raw packed words; valid bits are the low 2k bits, higher bits zero.
  constexpr std::span<const std::uint64_t, W> words() const noexcept {
    return std::span<const std::uint64_t, W>(words_);
  }

  /// Returns base i, where i == 0 is the leftmost base.
  constexpr std::uint8_t base(int i) const noexcept {
    const int pos = 2 * (k_ - 1 - i);
    return static_cast<std::uint8_t>((words_[pos >> 6] >> (pos & 63)) & 3u);
  }

  /// Appends a base on the right, growing the kmer by one (k < kMaxK).
  constexpr void push_back(std::uint8_t b) {
    PARAHASH_DCHECK(k_ < kMaxK);
    shift_left2();
    words_[0] |= (b & 3u);
    ++k_;
  }

  /// Slides the window right: drops the leftmost base, appends `b`.
  /// The length k stays fixed. This is the rolling-kmer step used when
  /// scanning reads and superkmers.
  constexpr void roll_append(std::uint8_t b) noexcept {
    shift_left2();
    words_[0] |= (b & 3u);
    mask_top();
  }

  /// Slides the window left: drops the rightmost base, prepends `b`.
  /// Used to roll the reverse complement in lockstep with roll_append.
  constexpr void roll_prepend(std::uint8_t b) noexcept {
    shift_right2();
    const int pos = 2 * (k_ - 1);
    words_[pos >> 6] |= static_cast<std::uint64_t>(b & 3u) << (pos & 63);
  }

  /// The kmer one step to the right in the graph: suffix(k-1) + b.
  constexpr Kmer successor(std::uint8_t b) const noexcept {
    Kmer out = *this;
    out.roll_append(b);
    return out;
  }

  /// The kmer one step to the left in the graph: b + prefix(k-1).
  constexpr Kmer predecessor(std::uint8_t b) const noexcept {
    Kmer out = *this;
    out.roll_prepend(b);
    return out;
  }

  /// Reverse complement (same k).
  Kmer reverse_complement() const {
    Kmer out;
    for (int i = k_ - 1; i >= 0; --i) out.push_back(complement(base(i)));
    return out;
  }

  /// Canonical form: the lexicographically smaller of the kmer and its
  /// reverse complement. Graph vertices are canonical kmers (Sec. II-A).
  Kmer canonical() const {
    Kmer rc = reverse_complement();
    return (*this <= rc) ? *this : rc;
  }

  /// True iff the kmer is its own canonical form.
  bool is_canonical() const { return *this <= reverse_complement(); }

  std::string to_string() const {
    std::string s(static_cast<std::size_t>(k_), 'A');
    for (int i = 0; i < k_; ++i) s[i] = decode_base(base(i));
    return s;
  }

  /// Mixing hash over all words (used for table placement).
  constexpr std::uint64_t hash() const noexcept {
    return hash_words(words_.data(), W);
  }

  friend constexpr bool operator==(const Kmer& a, const Kmer& b) noexcept {
    return a.k_ == b.k_ && a.words_ == b.words_;
  }

  /// Lexicographic order; only meaningful for kmers of equal length.
  friend constexpr std::strong_ordering operator<=>(const Kmer& a,
                                                    const Kmer& b) noexcept {
    for (int i = W - 1; i >= 0; --i) {
      if (a.words_[i] != b.words_[i])
        return a.words_[i] <=> b.words_[i];
    }
    return a.k_ <=> b.k_;
  }

 private:
  constexpr void shift_left2() noexcept {
    for (int i = W - 1; i > 0; --i) {
      words_[i] = (words_[i] << 2) | (words_[i - 1] >> 62);
    }
    words_[0] <<= 2;
  }

  constexpr void shift_right2() noexcept {
    for (int i = 0; i < W - 1; ++i) {
      words_[i] = (words_[i] >> 2) | (words_[i + 1] << 62);
    }
    words_[W - 1] >>= 2;
  }

  /// Clears bits above the used 2k range.
  constexpr void mask_top() noexcept {
    const int used = 2 * k_;
    for (int i = 0; i < W; ++i) {
      const int lo = 64 * i;
      if (used <= lo) {
        words_[i] = 0;
      } else if (used - lo < 64) {
        words_[i] &= (std::uint64_t{1} << (used - lo)) - 1;
      }
    }
  }

  std::array<std::uint64_t, W> words_;
  std::int32_t k_;
};

using Kmer32 = Kmer<1>;  ///< k <= 32 (covers the paper's k = 27)
using Kmer64 = Kmer<2>;  ///< k <= 64 (multi-word keys)

/// Runs `fn.template operator()<W>()` with the smallest word count that
/// fits kmers of length k. Lets runtime code pick Kmer32 vs Kmer64.
template <typename Fn>
decltype(auto) with_kmer_words(int k, Fn&& fn) {
  PARAHASH_CHECK_MSG(k >= 1 && k <= 64, "k must be in [1, 64]");
  if (k <= 32) return fn.template operator()<1>();
  return fn.template operator()<2>();
}

}  // namespace parahash
