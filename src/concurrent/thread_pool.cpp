#include "concurrent/thread_pool.h"

#include <atomic>
#include <string>

#include "util/error.h"
#include "util/trace.h"

namespace parahash::concurrent {

ThreadPool::ThreadPool(int threads) {
  PARAHASH_CHECK_MSG(threads >= 1, "pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      trace::set_thread_name("pool#" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::uint64_t n, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (n == 0) return;
  if (grain == 0) {
    grain = n / (4 * static_cast<std::uint64_t>(size()));
    if (grain == 0) grain = 1;
  }
  const std::uint64_t chunks = (n + grain - 1) / grain;

  // Completion state lives on this stack frame and is shared with the
  // chunk tasks, so the LAST access by any task must happen-before the
  // waiter's return. Everything — the countdown AND the error slot — is
  // therefore guarded by the one mutex, and a task decrements only
  // while holding it. The previous scheme (atomic countdown outside the
  // mutex, notify under it) let the waiter's predicate observe zero
  // from a spurious wakeup and return, destroying the mutex and
  // condition variable while the final task was still about to lock
  // them: a use-after-scope on this frame. It also meant the rethrow
  // below could race a still-draining task — callers destroy resources
  // the body captured by reference (e.g. the hash table a failed
  // subgraph attempt abandons) as soon as parallel_for throws.
  std::mutex mutex;
  std::condition_variable done_cv;
  std::uint64_t remaining = chunks;
  std::exception_ptr first_error;

  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t begin = c * grain;
    const std::uint64_t end = begin + grain < n ? begin + grain : n;
    submit([&, begin, end] {
      std::exception_ptr error;
      try {
        body(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (error && !first_error) first_error = std::move(error);
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace parahash::concurrent
