// Lock-per-access baseline table (ablation for the state-transfer design).
//
// The paper motivates the state-transfer protocol by contrast with the
// naive scheme where "the memory should be locked each time a read or
// write occurs" on a multi-word entry (Sec. III-C3). MutexShardTable is
// that scheme: every slot visit — probe reads, key compares, counter
// updates — happens under the slot's stripe mutex. Same layout, same
// results; bench_ablation_locking measures what the paper's protocol
// saves.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "concurrent/kmer_table.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"

namespace parahash::concurrent {

template <int W>
class MutexShardTable {
 public:
  struct Slot {
    bool occupied = false;
    std::array<std::uint64_t, W> key{};
    std::uint32_t coverage = 0;
    std::array<std::uint32_t, 8> edges{};
  };

  MutexShardTable(std::uint64_t min_slots, int k, int stripes = 1024)
      : k_(k),
        slots_(next_pow2(min_slots < 2 ? 2 : min_slots)),
        mutexes_(next_pow2(static_cast<std::uint64_t>(stripes))) {
    mask_ = slots_.size() - 1;
    stripe_mask_ = mutexes_.size() - 1;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  AddResult add(const Kmer<W>& canon, int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      ++result.probes;
      Slot& slot = slots_[idx];
      std::lock_guard<std::mutex> lock(mutexes_[idx & stripe_mask_]);
      if (!slot.occupied) {
        for (int w = 0; w < W; ++w) slot.key[w] = words[w];
        slot.occupied = true;
        bump(slot, edge_out, edge_in);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        result.inserted = true;
        return result;
      }
      if (key_equals(slot, words)) {
        bump(slot, edge_out, edge_in);
        return result;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("mutex shard table is full");
  }

  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      const Slot& slot = slots_[idx];
      std::lock_guard<std::mutex> lock(mutexes_[idx & stripe_mask_]);
      if (!slot.occupied) return std::nullopt;
      if (key_equals(slot, words)) return snapshot(slot);
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) fn(snapshot(slot));
    }
  }

 private:
  static void bump(Slot& slot, int edge_out, int edge_in) noexcept {
    ++slot.coverage;
    if (edge_out >= 0) ++slot.edges[kEdgeOut + edge_out];
    if (edge_in >= 0) ++slot.edges[kEdgeIn + edge_in];
  }

  bool key_equals(const Slot& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w] != words[w]) return false;
    }
    return true;
  }

  VertexEntry<W> snapshot(const Slot& slot) const {
    VertexEntry<W> entry;
    entry.kmer = Kmer<W>::from_words(slot.key, k_);
    entry.coverage = slot.coverage;
    entry.edges = slot.edges;
    return entry;
  }

  int k_;
  std::uint64_t mask_ = 0;
  std::uint64_t stripe_mask_ = 0;
  std::vector<Slot> slots_;
  mutable std::vector<std::mutex> mutexes_;
  std::atomic<std::uint64_t> distinct_{0};
};

static_assert(GraphKmerTableLike<MutexShardTable<1>>,
              "the lock-per-access baseline must satisfy the shared concept");

}  // namespace parahash::concurrent
