// First-touch-initialised flat array for hash-table backing storage.
//
// On NUMA systems (and, less visibly, under transparent huge pages)
// physical pages are bound to the node of the thread that FIRST WRITES
// them, not the thread that malloc'd them. std::vector value-constructs
// its elements on the allocating thread, so a multi-gigabyte k-mer
// table built on the orchestration thread lands every page on one node
// and all other workers pay remote-access latency for the whole run.
// FirstTouchArray zero-constructs its elements through the device's own
// ThreadPool instead: each worker touches a contiguous chunk, spreading
// pages across the nodes the probing threads actually run on — the CPU
// analogue of the paper's device-local table placement.
//
// Only the operations the table needs are provided (sized construction,
// data/size/index/iterate/swap); elements must be trivially
// destructible because destruction is a single aligned deallocation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "concurrent/thread_pool.h"

namespace parahash::concurrent {

template <typename T>
class FirstTouchArray {
  static_assert(std::is_trivially_destructible_v<T>,
                "FirstTouchArray skips element destructors");

 public:
  /// How the first-touch pass distributes pages across workers.
  ///
  /// kChunked gives each task ~1 MiB of CONTIGUOUS elements: a worker's
  /// pages cluster, so an array probed mostly by the thread that built
  /// its region (payloads, per-partition data) keeps its accesses
  /// node-local.
  ///
  /// kInterleaved hands out small (~256 KiB) stripes instead, so
  /// adjacent stripes fault on different workers and physical pages
  /// alternate across the nodes the pool runs on. That is the right
  /// placement for an array EVERY worker hammers uniformly at random —
  /// the table's metadata bytes, where one probe touches one byte and
  /// chunked placement would put half of all probes on a remote node
  /// for every thread.
  enum class Placement { kChunked, kInterleaved };

  /// Arrays below this size are touched inline: the parallel_for
  /// hand-off costs more than faulting a few pages.
  static constexpr std::size_t kParallelMinBytes = std::size_t{4} << 20;
  /// Chunk elements so each task is a few pages, not a few cache lines.
  static constexpr std::size_t kInitGrainBytes = std::size_t{1} << 20;
  /// Interleave stripe: a handful of pages, small enough that the
  /// pool's dynamic chunk pickup alternates neighbouring stripes
  /// across workers.
  static constexpr std::size_t kInterleaveStripeBytes =
      std::size_t{256} << 10;

  FirstTouchArray() = default;

  /// Allocates `n` value-initialised (zeroed) elements, touching them
  /// through `init_pool` when one is given and the array is large
  /// enough to matter. Must not be called FROM a worker of `init_pool`
  /// (parallel_for would deadlock); pass nullptr there.
  explicit FirstTouchArray(std::size_t n, ThreadPool* init_pool = nullptr,
                           Placement placement = Placement::kChunked)
      : size_(n) {
    if (n == 0) return;
    data_ = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{64}));
    const std::size_t bytes = n * sizeof(T);
    if (init_pool != nullptr && init_pool->size() > 1 &&
        bytes >= kParallelMinBytes) {
      const std::size_t grain_bytes = placement == Placement::kInterleaved
                                          ? kInterleaveStripeBytes
                                          : kInitGrainBytes;
      const std::size_t grain = (grain_bytes + sizeof(T) - 1) / sizeof(T);
      T* base = data_;
      init_pool->parallel_for(
          n, grain, [base](std::uint64_t begin, std::uint64_t end) {
            std::uninitialized_value_construct_n(base + begin,
                                                 end - begin);
          });
    } else {
      std::uninitialized_value_construct_n(data_, n);
    }
  }

  FirstTouchArray(FirstTouchArray&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  FirstTouchArray& operator=(FirstTouchArray&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  FirstTouchArray(const FirstTouchArray&) = delete;
  FirstTouchArray& operator=(const FirstTouchArray&) = delete;

  ~FirstTouchArray() { release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  void swap(FirstTouchArray& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{64});
      data_ = nullptr;
    }
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace parahash::concurrent
