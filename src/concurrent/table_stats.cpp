#include "concurrent/table_concept.h"

#include "util/telemetry.h"

namespace parahash::concurrent {

void TableStats::publish_telemetry() const {
  // Static references: one registry lookup per process, then plain
  // relaxed adds per published aggregate.
  static telemetry::Counter& upserts = telemetry::counter("table.upserts");
  static telemetry::Counter& inserts_c =
      telemetry::counter("table.inserts");
  static telemetry::Counter& probes_c = telemetry::counter("probe.probes");
  static telemetry::Counter& tag_rejects_c =
      telemetry::counter("probe.tag_rejects");
  static telemetry::Counter& key_compares_c =
      telemetry::counter("probe.key_compares");
  static telemetry::Counter& group_scans_c =
      telemetry::counter("probe.group_scans");
  static telemetry::Counter& lanes_rejected_c =
      telemetry::counter("probe.lanes_rejected");
  static telemetry::Counter& lock_waits_c =
      telemetry::counter("table.lock_waits");
  static telemetry::Counter& overflow_hits_c =
      telemetry::counter("table.overflow_hits");
  static telemetry::Counter& migrations_c =
      telemetry::counter("table.migrations");

  upserts.add(adds);
  inserts_c.add(inserts);
  probes_c.add(probes);
  tag_rejects_c.add(tag_rejects);
  key_compares_c.add(key_compares);
  group_scans_c.add(group_scans);
  lanes_rejected_c.add(lanes_rejected);
  lock_waits_c.add(lock_waits);
  overflow_hits_c.add(overflow_hits);
  migrations_c.add(migrations);
}

}  // namespace parahash::concurrent
