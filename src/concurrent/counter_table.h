// Counting-only concurrent kmer table.
//
// The paper distinguishes De Bruijn graph *construction* (vertices plus
// weighted adjacency lists) from plain kmer *counting* (Jellyfish, the
// MSP counter, KMC-class tools), which "do not generate the complete De
// Bruijn graph in the output" (Sec. V-A). This table is that counting
// mode: the same state-transfer protocol, but slots hold only a key and
// one counter — about a third of the full slot — for workloads that only
// need the kmer spectrum.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "concurrent/kmer_table.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"

namespace parahash::concurrent {

template <int W>
class ConcurrentCounterTable {
 public:
  enum State : std::uint8_t { kEmpty = 0, kLocked = 1, kOccupied = 2 };

  struct Slot {
    std::atomic<std::uint8_t> state{kEmpty};
    std::atomic<std::uint32_t> count{0};
    std::array<std::atomic<std::uint64_t>, W> key{};
  };

  struct Entry {
    Kmer<W> kmer;
    std::uint32_t count = 0;
  };

  ConcurrentCounterTable(std::uint64_t min_slots, int k)
      : k_(k), slots_(next_pow2(min_slots < 2 ? 2 : min_slots)) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK, "k out of range");
    mask_ = slots_.size() - 1;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  /// Counts one occurrence of the canonical kmer. Same state-transfer
  /// protocol as the full table.
  AddResult add(const Kmer<W>& canon) {
    AddResult result;
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      Slot& slot = slots_[idx];
      std::uint8_t st = slot.state.load(std::memory_order_acquire);
      ++result.probes;

      if (st == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (slot.state.compare_exchange_strong(expected, kLocked,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          for (int w = 0; w < W; ++w) {
            slot.key[w].store(words[w], std::memory_order_relaxed);
          }
          slot.state.store(kOccupied, std::memory_order_release);
          distinct_.fetch_add(1, std::memory_order_relaxed);
          slot.count.fetch_add(1, std::memory_order_relaxed);
          result.inserted = true;
          return result;
        }
        st = expected;
      }
      if (st == kLocked) {
        result.waited_on_lock = true;
        do {
          cpu_relax();
          st = slot.state.load(std::memory_order_acquire);
        } while (st == kLocked);
      }
      if (key_equals(slot, words)) {
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return result;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("counter table is full");
  }

  /// KmerTableLike-conforming add: counting tables have no edge
  /// counters, so the edge arguments are accepted and dropped. This is
  /// what lets the shared drive_ops() replay one workload through every
  /// table variant, this one included.
  AddResult add(const Kmer<W>& canon, int /*edge_out*/, int /*edge_in*/) {
    return add(canon);
  }

  std::optional<Entry> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      const Slot& slot = slots_[idx];
      std::uint8_t st = slot.state.load(std::memory_order_acquire);
      if (st == kEmpty) return std::nullopt;
      while (st == kLocked) {
        cpu_relax();
        st = slot.state.load(std::memory_order_acquire);
      }
      if (key_equals(slot, words)) {
        return Entry{Kmer<W>::from_words(load_key(slot), k_),
                     slot.count.load(std::memory_order_relaxed)};
      }
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == kOccupied) {
        fn(Entry{Kmer<W>::from_words(load_key(slot), k_),
                 slot.count.load(std::memory_order_relaxed)});
      }
    }
  }

 private:
  bool key_equals(const Slot& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w].load(std::memory_order_relaxed) != words[w]) {
        return false;
      }
    }
    return true;
  }

  std::array<std::uint64_t, W> load_key(const Slot& slot) const {
    std::array<std::uint64_t, W> words;
    for (int w = 0; w < W; ++w) {
      words[w] = slot.key[w].load(std::memory_order_relaxed);
    }
    return words;
  }

  int k_;
  std::uint64_t mask_ = 0;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> distinct_{0};
};

static_assert(KmerTableLike<ConcurrentCounterTable<1>>,
              "the counting table must satisfy the shared concept");

}  // namespace parahash::concurrent
