// Group-prefetched upsert front-end for ConcurrentKmerTable.
//
// A single table upsert is a chain of dependent random loads (hash ->
// metadata group -> payload), so a scalar upsert loop stalls on memory
// latency — the very cost the paper hides with GPU thread parallelism
// (Sec. III-D). On the CPU side the same latency can be overlapped in
// software: buffer a window of pending upserts, issue a prefetch for
// each one's home GROUP as it is enqueued (the whole metadata block a
// scan will load, plus the home payload slot), and only when the window
// is full walk it and run the actual probes. By drain time the first
// window entries' cache lines are (usually) resident, in the style of
// classic group-prefetching hash joins. Results are bit-identical to
// calling add() directly — only the memory-access schedule changes;
// per-thread upsert ORDER within a window does change, which is fine
// because distinct-key upserts are independent and same-key updates are
// commutative atomics.
//
// The window size is a POLICY, not a constant: UpsertWindow is either a
// fixed N (the PR 1 behaviour; 1 = the scalar path) or `auto`, which
// re-tunes the window at flush time from the measured mean probe length
// of the partition so far — longer probe sequences mean more latency to
// hide per upsert, so the window widens with load factor.
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "concurrent/kmer_table.h"
#include "util/kmer.h"

namespace parahash::concurrent {

/// Upsert-window sizing policy for BatchedUpserter (and HashConfig).
struct UpsertWindow {
  static constexpr int kDefault = 16;
  static constexpr int kMax = 64;
  /// Auto mode never shrinks below this — even an empty table benefits
  /// from a few overlapped group loads.
  static constexpr int kAutoMin = 8;
  /// Auto window = mean probe length x this factor (clamped). A probe
  /// length of ~2 reproduces the default window of 16.
  static constexpr int kAutoFactor = 8;
  /// Auto mode holds the default until this many upserts are measured.
  static constexpr std::uint64_t kAutoWarmup = 256;

  enum class Mode { kFixed, kAuto, kTuned };

  Mode mode = Mode::kFixed;
  int fixed = kDefault;

  static constexpr UpsertWindow fixed_window(int n) noexcept {
    return UpsertWindow{Mode::kFixed, clamp(n)};
  }
  static constexpr UpsertWindow auto_window() noexcept {
    return UpsertWindow{Mode::kAuto, kDefault};
  }
  /// Externally tuned mode: the window comes from the process-global
  /// slot (set_tuned_window), which the pipeline autotuner refreshes
  /// from the cross-partition probe-length telemetry — instead of each
  /// upserter's local per-partition estimate (kAuto).
  static constexpr UpsertWindow tuned_window() noexcept {
    return UpsertWindow{Mode::kTuned, kDefault};
  }
  /// Parses a CLI-style spec: "auto", "tuned", or an integer window
  /// size. Anything unparseable falls back to the default fixed window.
  static UpsertWindow parse(std::string_view text) noexcept {
    if (text == "auto") return auto_window();
    if (text == "tuned") return tuned_window();
    char* end = nullptr;
    const std::string copy(text);
    const long n = std::strtol(copy.c_str(), &end, 10);
    if (end == copy.c_str() || *end != '\0') return UpsertWindow{};
    return fixed_window(static_cast<int>(n));
  }

  static constexpr int clamp(int n) noexcept {
    return n < 1 ? 1 : (n > kMax ? kMax : n);
  }

  bool is_auto() const noexcept { return mode == Mode::kAuto; }
  bool is_tuned() const noexcept { return mode == Mode::kTuned; }
  /// True when this policy degenerates to the unbatched scalar path.
  bool is_scalar() const noexcept {
    return mode == Mode::kFixed && fixed <= 1;
  }
  /// The window to start a partition with.
  int initial() const noexcept;  // defined after the tuned-window slot
  std::string to_string() const {
    if (mode == Mode::kAuto) return "auto";
    if (mode == Mode::kTuned) return "tuned";
    return std::to_string(fixed);
  }

  /// The tuning rule: pick a window for an observed mean probe length.
  /// Pure and separate from the upserter so tests can pin its shape.
  static int tuned_for(double mean_probe_length) noexcept {
    const double target = mean_probe_length * kAutoFactor;
    if (target <= kAutoMin) return kAutoMin;
    if (target >= kMax) return kMax;
    return static_cast<int>(target);
  }
};

/// The process-global window slot for UpsertWindow::Mode::kTuned.
/// Written by the pipeline autotuner's control thread, read by every
/// upserter at construction and at each flush (one relaxed load per
/// window drain — noise next to the probes themselves).
inline std::atomic<int>& tuned_window_slot() noexcept {
  static std::atomic<int> slot{UpsertWindow::kDefault};
  return slot;
}

inline void set_tuned_window(int window) noexcept {
  tuned_window_slot().store(UpsertWindow::clamp(window),
                            std::memory_order_relaxed);
}

inline int current_tuned_window() noexcept {
  return tuned_window_slot().load(std::memory_order_relaxed);
}

inline int UpsertWindow::initial() const noexcept {
  if (mode == Mode::kTuned) return current_tuned_window();
  return mode == Mode::kAuto ? kDefault : fixed;
}

/// Buffers up to `window` upserts, prefetching each home group at push
/// time and probing at flush time. window == 1 degenerates to the
/// scalar path (prefetch immediately followed by the probe).
template <int W>
class BatchedUpserter {
 public:
  static constexpr int kDefaultWindow = UpsertWindow::kDefault;
  static constexpr int kMaxWindow = UpsertWindow::kMax;

  BatchedUpserter(ConcurrentKmerTable<W>& table, TableStats& stats,
                  UpsertWindow policy)
      : table_(table),
        stats_(stats),
        policy_(policy),
        window_(policy.initial()) {}

  /// Fixed-N convenience constructor (the PR 1 interface).
  BatchedUpserter(ConcurrentKmerTable<W>& table, TableStats& stats,
                  int window = kDefaultWindow)
      : BatchedUpserter(table, stats, UpsertWindow::fixed_window(window)) {}

  BatchedUpserter(const BatchedUpserter&) = delete;
  BatchedUpserter& operator=(const BatchedUpserter&) = delete;

  ~BatchedUpserter() { flush(); }

  int window() const noexcept { return window_; }

  /// Enqueues one upsert and prefetches its probe group. Flushes
  /// automatically when the window fills.
  void push(const Kmer<W>& canon, int edge_out, int edge_in) {
    Pending& p = items_[static_cast<std::size_t>(count_)];
    p.canon = canon;
    p.hash = canon.hash();
    p.edge_out = static_cast<std::int8_t>(edge_out);
    p.edge_in = static_cast<std::int8_t>(edge_in);
    table_.prefetch_group(p.hash);
    if (++count_ >= window_) flush();
  }

  /// Drains every pending upsert through the table. Call after the last
  /// push (the destructor also flushes). On a growth table add_hashed
  /// never throws — bounded probes resolve in the overflow region and
  /// the table migrates itself (the prefetched group may go stale
  /// across a migration; that costs the hint, nothing else). On a plain
  /// table, if an add throws TableFullError the remaining window is
  /// abandoned — the caller's recovery path (kRestart/kFail) discards
  /// the whole attempt, and keeping stale entries queued would make the
  /// destructor throw during unwinding. An `auto` policy re-tunes the
  /// window here, from the stats measured so far.
  void flush() {
    int i = 0;
    try {
      for (; i < count_; ++i) {
        const Pending& p = items_[static_cast<std::size_t>(i)];
        const AddResult r = table_.add_hashed(p.canon, p.hash, p.edge_out,
                                              p.edge_in);
        stats_.absorb(r);
        if (probe_hist_ != nullptr) probe_hist_->record(r.probes);
      }
    } catch (...) {
      count_ = 0;
      throw;
    }
    count_ = 0;
    if (policy_.is_auto() && stats_.adds >= UpsertWindow::kAutoWarmup) {
      window_ = UpsertWindow::tuned_for(stats_.mean_probe_length());
    } else if (policy_.is_tuned()) {
      window_ = current_tuned_window();
    }
  }

 private:
  struct Pending {
    Kmer<W> canon;
    std::uint64_t hash = 0;
    std::int8_t edge_out = -1;
    std::int8_t edge_in = -1;
  };

  ConcurrentKmerTable<W>& table_;
  TableStats& stats_;
  UpsertWindow policy_;
  int window_;
  int count_ = 0;
  /// Per-upsert probe-length distribution; sampled only when telemetry
  /// was enabled at construction so the bare-throughput path stays an
  /// untouched absorb loop (the upserter is built per work chunk, which
  /// is a fine granularity for flipping the gate).
  telemetry::Histogram* probe_hist_ =
      telemetry::enabled() ? &telemetry::histogram("probe.length")
                           : nullptr;
  std::array<Pending, kMaxWindow> items_;
};

}  // namespace parahash::concurrent
