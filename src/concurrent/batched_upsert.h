// Group-prefetched upsert front-end for ConcurrentKmerTable.
//
// A single table upsert is a chain of dependent random loads (hash ->
// metadata byte -> payload), so a scalar upsert loop stalls on memory
// latency — the very cost the paper hides with GPU thread parallelism
// (Sec. III-D). On the CPU side the same latency can be overlapped in
// software: buffer a window of pending upserts, issue a prefetch for
// each one's home slot as it is enqueued, and only when the window is
// full walk it and run the actual probes. By drain time the first
// window entries' cache lines are (usually) resident, in the style of
// classic group-prefetching hash joins. Results are bit-identical to
// calling add() directly — only the memory-access schedule changes;
// per-thread upsert ORDER within a window does change, which is fine
// because distinct-key upserts are independent and same-key updates are
// commutative atomics.
#pragma once

#include <array>
#include <cstdint>

#include "concurrent/kmer_table.h"
#include "util/kmer.h"

namespace parahash::concurrent {

/// Buffers up to `window` upserts, prefetching each home slot at push
/// time and probing at flush time. window == 1 degenerates to the
/// scalar path (prefetch immediately followed by the probe).
template <int W>
class BatchedUpserter {
 public:
  static constexpr int kDefaultWindow = 16;
  static constexpr int kMaxWindow = 64;

  BatchedUpserter(ConcurrentKmerTable<W>& table, TableStats& stats,
                  int window = kDefaultWindow)
      : table_(table), stats_(stats),
        window_(window < 1 ? 1 : (window > kMaxWindow ? kMaxWindow
                                                      : window)) {}

  BatchedUpserter(const BatchedUpserter&) = delete;
  BatchedUpserter& operator=(const BatchedUpserter&) = delete;

  ~BatchedUpserter() { flush(); }

  int window() const noexcept { return window_; }

  /// Enqueues one upsert and prefetches its home slot. Flushes
  /// automatically when the window fills.
  void push(const Kmer<W>& canon, int edge_out, int edge_in) {
    Pending& p = items_[static_cast<std::size_t>(count_)];
    p.canon = canon;
    p.hash = canon.hash();
    p.edge_out = static_cast<std::int8_t>(edge_out);
    p.edge_in = static_cast<std::int8_t>(edge_in);
    table_.prefetch(p.hash);
    if (++count_ == window_) flush();
  }

  /// Drains every pending upsert through the table. Call after the last
  /// push (the destructor also flushes). If an add throws (TableFullError),
  /// the remaining window is abandoned — the caller's recovery path is a
  /// rebuild with a bigger table, and keeping stale entries queued would
  /// make the destructor throw during unwinding.
  void flush() {
    int i = 0;
    try {
      for (; i < count_; ++i) {
        const Pending& p = items_[static_cast<std::size_t>(i)];
        stats_.absorb(table_.add_hashed(p.canon, p.hash, p.edge_out,
                                        p.edge_in));
      }
    } catch (...) {
      count_ = 0;
      throw;
    }
    count_ = 0;
  }

 private:
  struct Pending {
    Kmer<W> canon;
    std::uint64_t hash = 0;
    std::int8_t edge_out = -1;
    std::int8_t edge_in = -1;
  };

  ConcurrentKmerTable<W>& table_;
  TableStats& stats_;
  int window_;
  int count_ = 0;
  std::array<Pending, kMaxWindow> items_;
};

}  // namespace parahash::concurrent
