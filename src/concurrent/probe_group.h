// Group-probing primitives: wide scans over the table's metadata bytes.
//
// The split-layout table (concurrent/kmer_table.h) keeps one byte per
// slot — state + 6-bit key fingerprint — in a dense array precisely so
// that a probe cluster can be tested in ONE compare: load 16 (SSE2) or
// 32 (AVX2) consecutive metadata bytes and match them against
// `occupied|tag`, `empty` and `locked` simultaneously, the F14 /
// Swiss-table trick applied to a concurrent table. A GroupScan answers
// "which lanes may hold my key, which are claimable, which are mid-
// insertion" as bitmasks; the caller then touches only the interesting
// lanes, in probe order, so results stay bit-identical to per-slot
// linear probing — the scan changes how slots are *examined*, never
// which slot a key lands in.
//
// Memory-model note. The SIMD backends read the atomic metadata bytes
// with one plain vector load followed by an acquire fence. A plain load
// racing atomic stores is formally undefined in the C++ model, but it
// is the established practice for concurrent SIMD probing on x86
// (byte-sized loads cannot tear, and the fence orders the subsequent
// payload reads after the scan). Two guards keep the formal protocol
// honest: ThreadSanitizer builds and PARAHASH_FORCE_SCALAR builds
// compile the vector backends out entirely (util/simd.h), so the
// machine-checked and fallback configurations use only the scalar
// backend's per-byte acquire loads — and every value a scan reports is
// a *hint* that the acting code re-validates through a real atomic
// (the claim CAS, or the immutability of occupied bytes).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

#include "util/simd.h"

#if PARAHASH_SIMD_X86
#include <immintrin.h>
#endif

namespace parahash::concurrent::probe {

/// Lanes a single scan covers, per backend. The scalar backend uses the
/// SSE2 width so a forced-scalar run probes in the same group strides
/// as the production path (and the oracle tests compare like for like).
inline constexpr int kGroupWidth = 16;
inline constexpr int kAvx2GroupWidth = 32;
inline constexpr int kMaxGroupWidth = kAvx2GroupWidth;

inline constexpr int group_width(simd::Level level) noexcept {
  return level == simd::Level::kAvx2 ? kAvx2GroupWidth : kGroupWidth;
}

/// One metadata-block scan: per-lane classification of `width`
/// consecutive slots starting at the probed base index. Lane i is bit i
/// (lane 0 = the base slot, i.e. probe order == bit order).
struct GroupScan {
  std::uint32_t match = 0;   ///< byte == occupied|tag of the probing key
  std::uint32_t empty = 0;   ///< byte == kEmpty (claimable)
  std::uint32_t locked = 0;  ///< byte == kLocked (insertion in flight)
  int width = 0;             ///< lanes scanned (16/32, clamped to capacity)

  std::uint32_t lane_mask() const noexcept {
    return width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
  }
  /// Occupied lanes whose fingerprint differs from the probing key's —
  /// rejected wholesale, without a payload read.
  std::uint32_t mismatch() const noexcept {
    return lane_mask() & ~(match | empty | locked);
  }
  /// Lanes that need per-lane work, in probe (bit) order.
  std::uint32_t interesting() const noexcept {
    return match | empty | locked;
  }
};

namespace detail {

// Metadata byte states, mirrored from ConcurrentKmerTable (probe_group
// is the lower layer, so the constants live here too).
inline constexpr std::uint8_t kEmptyByte = 0x00;
inline constexpr std::uint8_t kLockedByte = 0x01;

inline GroupScan scan_scalar(const std::atomic<std::uint8_t>* meta,
                             std::uint64_t mask, std::uint64_t base,
                             std::uint8_t occupied, int width) noexcept {
  GroupScan scan;
  scan.width = width;
  for (int lane = 0; lane < width; ++lane) {
    const std::uint8_t st =
        meta[(base + static_cast<std::uint64_t>(lane)) & mask].load(
            std::memory_order_acquire);
    const std::uint32_t bit = 1u << lane;
    if (st == occupied) {
      scan.match |= bit;
    } else if (st == kEmptyByte) {
      scan.empty |= bit;
    } else if (st == kLockedByte) {
      scan.locked |= bit;
    }
  }
  return scan;
}

#if PARAHASH_SIMD_X86

static_assert(sizeof(std::atomic<std::uint8_t>) == 1,
              "SIMD metadata scans assume a packed byte array");

inline GroupScan scan_sse2(const std::atomic<std::uint8_t>* meta,
                           std::uint64_t base,
                           std::uint8_t occupied) noexcept {
  const __m128i block = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(meta + base));
  // Order every later payload read after this scan (see header note).
  std::atomic_thread_fence(std::memory_order_acquire);
  GroupScan scan;
  scan.width = kGroupWidth;
  scan.match = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(block, _mm_set1_epi8(static_cast<char>(occupied)))));
  scan.empty = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(block, _mm_setzero_si128())));
  // The occupied flag is the byte's sign bit, so movemask(block) IS the
  // occupied-lane mask: locked = not occupied, not empty.
  const auto occupied_lanes =
      static_cast<std::uint32_t>(_mm_movemask_epi8(block));
  scan.locked = 0xffffu & ~occupied_lanes & ~scan.empty;
  return scan;
}

__attribute__((target("avx2"))) inline GroupScan scan_avx2(
    const std::atomic<std::uint8_t>* meta, std::uint64_t base,
    std::uint8_t occupied) noexcept {
  const __m256i block = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(meta + base));
  std::atomic_thread_fence(std::memory_order_acquire);
  GroupScan scan;
  scan.width = kAvx2GroupWidth;
  scan.match = static_cast<std::uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(block,
                        _mm256_set1_epi8(static_cast<char>(occupied)))));
  scan.empty = static_cast<std::uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(block, _mm256_setzero_si256())));
  const auto occupied_lanes =
      static_cast<std::uint32_t>(_mm256_movemask_epi8(block));
  scan.locked = ~occupied_lanes & ~scan.empty;
  return scan;
}

#endif  // PARAHASH_SIMD_X86

}  // namespace detail

/// Scans the group of slots starting at `base` (0 <= base <= mask) in a
/// metadata array of `mask + 1` slots. The group width is the backend's
/// (16/32), clamped to the capacity for tiny tables; a group that would
/// run past the array end wraps to slot 0 and is gathered by the scalar
/// path (vector loads need the block contiguous). All three backends
/// classify identically — the oracle test checks them lane for lane.
inline GroupScan scan_group(const std::atomic<std::uint8_t>* meta,
                            std::uint64_t mask, std::uint64_t base,
                            std::uint8_t occupied,
                            simd::Level level) noexcept {
  const std::uint64_t capacity = mask + 1;
  int width = group_width(level);
  if (static_cast<std::uint64_t>(width) > capacity) {
    width = static_cast<int>(capacity);
  }
#if PARAHASH_SIMD_X86
  if (base + static_cast<std::uint64_t>(width) <= capacity) {
    if (level == simd::Level::kAvx2 && width == kAvx2GroupWidth) {
      return detail::scan_avx2(meta, base, occupied);
    }
    if (level >= simd::Level::kSse2 && width == kGroupWidth) {
      return detail::scan_sse2(meta, base, occupied);
    }
  }
#endif
  return detail::scan_scalar(meta, mask, base, occupied, width);
}

}  // namespace parahash::concurrent::probe
