// Fixed-size worker pool with a blocking parallel_for.
//
// Devices own a pool each (the CPU device a chunk-granular one, the
// simulated GPU a warp-granular one), so "co-processing" really is two
// independent executors pulling work concurrently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parahash::concurrent {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not submit to the same pool and block on
  /// the result (classic pool deadlock).
  void submit(std::function<void()> task);

  /// Runs body(begin, end) over chunks of [0, n) across the pool and
  /// blocks until all chunks finished. The first exception thrown by
  /// any chunk is rethrown here — but only after EVERY chunk has fully
  /// completed (body returned or threw), so state the body captured by
  /// reference is safe to destroy the moment this returns or throws.
  /// `grain` bounds the chunk size; grain == 0 picks n / (4 * threads),
  /// clamped to >= 1.
  void parallel_for(std::uint64_t n, std::uint64_t grain,
                    const std::function<void(std::uint64_t, std::uint64_t)>&
                        body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace parahash::concurrent
