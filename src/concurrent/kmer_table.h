// Concurrent open-addressing hash table for De Bruijn graph vertices.
//
// This is the paper's core data structure (Sec. III-C): ONE table shared
// by all threads, entries of the form <vertex, list of edge counts>, with
// multi-word keys (wider than a machine word, unlike CAS-per-entry GPU
// tables). Concurrency follows the paper's two observations:
//
//  1. The number of distinct vertices is predictable (Property 1), so the
//     table is allocated once at full size and never resized mid-build.
//  2. Each bucket sees a one-insertion / many-updates pattern, so only
//     the insertion of the multi-word key needs mutual exclusion. A
//     3-state flag per slot implements that *state transfer*:
//
//        empty --CAS--> locked --release-store--> occupied
//
//     The winner of the CAS writes the key while the slot is `locked`;
//     everyone else spins only for that short window. Once `occupied`,
//     the key is immutable and read lock-free; all counter updates are
//     plain atomic increments. This confines locking to one event per
//     distinct vertex — with ~5x duplication that removes ~80% of the
//     key locking a lock-per-access scheme would do (paper Sec. III-A).
//
// Memory ordering: the key words are stored relaxed *before* the release
// store of `occupied`; readers acquire-load the state before touching the
// key, which transfers visibility of the key words (happens-before via
// the state flag).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"

namespace parahash::concurrent {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Indices into a slot's 8 edge counters. Counters 0..3 are outgoing
/// edges (next base, relative to the canonical orientation), 4..7 are
/// incoming edges (previous base). With (K-1) bases shared between
/// adjacent vertices, one base identifies the neighbour (Sec. III-C2).
inline constexpr int kEdgeOut = 0;
inline constexpr int kEdgeIn = 4;

/// A decoded snapshot of one occupied slot.
template <int W>
struct VertexEntry {
  Kmer<W> kmer;                        ///< canonical vertex
  std::uint32_t coverage = 0;          ///< number of kmer occurrences
  std::array<std::uint32_t, 8> edges{};  ///< out[0..3], in[4..7] weights

  std::uint32_t out_weight(int base) const { return edges[kEdgeOut + base]; }
  std::uint32_t in_weight(int base) const { return edges[kEdgeIn + base]; }
  int out_degree() const {
    int d = 0;
    for (int b = 0; b < 4; ++b) d += edges[kEdgeOut + b] > 0;
    return d;
  }
  int in_degree() const {
    int d = 0;
    for (int b = 0; b < 4; ++b) d += edges[kEdgeIn + b] > 0;
    return d;
  }
};

/// Result of a single add(): number of slots probed and whether the call
/// inserted a new vertex. Callers accumulate these into build statistics
/// without putting extra atomics on the hot path.
struct AddResult {
  std::uint32_t probes = 0;
  bool inserted = false;
  bool waited_on_lock = false;
};

/// Aggregate statistics a builder can accumulate from AddResults.
struct TableStats {
  std::uint64_t adds = 0;
  std::uint64_t inserts = 0;
  std::uint64_t probes = 0;
  std::uint64_t lock_waits = 0;

  void absorb(const AddResult& r) noexcept {
    ++adds;
    inserts += r.inserted ? 1 : 0;
    probes += r.probes;
    lock_waits += r.waited_on_lock ? 1 : 0;
  }
  void merge(const TableStats& other) noexcept {
    adds += other.adds;
    inserts += other.inserts;
    probes += other.probes;
    lock_waits += other.lock_waits;
  }
};

template <int W>
class ConcurrentKmerTable {
 public:
  enum State : std::uint8_t { kEmpty = 0, kLocked = 1, kOccupied = 2 };

  struct Slot {
    std::atomic<std::uint8_t> state{kEmpty};
    std::array<std::atomic<std::uint32_t>, 8> edges{};
    std::atomic<std::uint32_t> coverage{0};
    std::array<std::atomic<std::uint64_t>, W> key{};
  };

  /// Allocates a table with at least `min_slots` slots (rounded up to a
  /// power of two) for kmers of length k.
  ConcurrentKmerTable(std::uint64_t min_slots, int k)
      : k_(k), slots_(next_pow2(min_slots < 2 ? 2 : min_slots)) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK,
                       "k out of range for this word count");
    mask_ = slots_.size() - 1;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

  /// Number of distinct vertices inserted so far.
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  double load_factor() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  /// Records one occurrence of canonical kmer `canon`, bumping the
  /// outgoing edge counter `edge_out` and/or incoming counter `edge_in`
  /// (base codes 0..3; pass -1 for none). Thread-safe; wait-free except
  /// while another thread holds a slot in the `locked` state.
  ///
  /// Throws TableFullError when every slot is occupied by other keys.
  AddResult add(const Kmer<W>& canon, int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      Slot& slot = slots_[idx];
      std::uint8_t st = slot.state.load(std::memory_order_acquire);
      ++result.probes;

      if (st == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (slot.state.compare_exchange_strong(expected, kLocked,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          for (int w = 0; w < W; ++w) {
            slot.key[w].store(words[w], std::memory_order_relaxed);
          }
          slot.state.store(kOccupied, std::memory_order_release);
          distinct_.fetch_add(1, std::memory_order_relaxed);
          bump(slot, edge_out, edge_in);
          result.inserted = true;
          return result;
        }
        st = expected;  // lost the race; fall through with the new state
      }

      if (st == kLocked) {
        result.waited_on_lock = true;
        do {
          cpu_relax();
          st = slot.state.load(std::memory_order_acquire);
        } while (st == kLocked);
      }

      // st == kOccupied: the key is immutable, compare lock-free.
      if (key_equals(slot, words)) {
        bump(slot, edge_out, edge_in);
        return result;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("concurrent kmer table is full (capacity " +
                         std::to_string(capacity()) + ")");
  }

  /// Result of one probe step (see probe_step).
  enum class ProbeOutcome {
    kDone,     ///< inserted or updated here
    kAdvance,  ///< slot holds a different key: move to the next slot
    kRetry,    ///< slot is locked by another thread: retry this slot
  };

  /// One step of add() at slot `index` — the building block of the
  /// warp-synchronous SIMT kernel (device/simt_kernel.h), which needs
  /// to interleave many probes in lockstep. Semantics match one
  /// iteration of add()'s probe loop, except a locked slot returns
  /// kRetry instead of spinning.
  ProbeOutcome probe_step(std::uint64_t index, const Kmer<W>& canon,
                          int edge_out, int edge_in) {
    Slot& slot = slots_[index & mask_];
    std::uint8_t st = slot.state.load(std::memory_order_acquire);
    if (st == kEmpty) {
      std::uint8_t expected = kEmpty;
      if (slot.state.compare_exchange_strong(expected, kLocked,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        const auto words = canon.words();
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        slot.state.store(kOccupied, std::memory_order_release);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        bump(slot, edge_out, edge_in);
        return ProbeOutcome::kDone;
      }
      st = expected;
    }
    if (st == kLocked) return ProbeOutcome::kRetry;
    if (key_equals(slot, canon.words())) {
      bump(slot, edge_out, edge_in);
      return ProbeOutcome::kDone;
    }
    return ProbeOutcome::kAdvance;
  }

  /// Looks up a canonical kmer. Thread-safe against concurrent adds; the
  /// returned snapshot is a consistent-enough view for queries/tests.
  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      const Slot& slot = slots_[idx];
      std::uint8_t st = slot.state.load(std::memory_order_acquire);
      if (st == kEmpty) return std::nullopt;
      if (st == kLocked) {
        do {
          cpu_relax();
          st = slot.state.load(std::memory_order_acquire);
        } while (st == kLocked);
      }
      if (key_equals(slot, words)) return snapshot(slot);
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  /// Visits every occupied slot. Call only after all writers finished.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == kOccupied) {
        fn(snapshot(slot));
      }
    }
  }

  /// Rebuilds this table's contents into a table twice the capacity and
  /// returns it. Single-threaded; exists as the *fallback* path whose
  /// cost the ablation bench measures — ParaHash's Property-1 sizing is
  /// designed to make this never run. (Slots hold atomics, so the table
  /// itself is neither copyable nor movable; hand back a unique_ptr.)
  std::unique_ptr<ConcurrentKmerTable> grown() const {
    auto bigger = std::make_unique<ConcurrentKmerTable>(capacity() * 2, k_);
    for (const Slot& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) != kOccupied) continue;
      VertexEntry<W> e = snapshot(slot);
      Slot& dst = bigger->locate_for_insert(e.kmer);
      for (int i = 0; i < 8; ++i) {
        dst.edges[i].store(e.edges[i], std::memory_order_relaxed);
      }
      dst.coverage.store(e.coverage, std::memory_order_relaxed);
    }
    return bigger;
  }

 private:
  static void bump(Slot& slot, int edge_out, int edge_in) noexcept {
    slot.coverage.fetch_add(1, std::memory_order_relaxed);
    if (edge_out >= 0) {
      slot.edges[kEdgeOut + edge_out].fetch_add(1, std::memory_order_relaxed);
    }
    if (edge_in >= 0) {
      slot.edges[kEdgeIn + edge_in].fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool key_equals(const Slot& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w].load(std::memory_order_relaxed) != words[w]) {
        return false;
      }
    }
    return true;
  }

  VertexEntry<W> snapshot(const Slot& slot) const {
    VertexEntry<W> entry;
    std::array<std::uint64_t, W> words;
    for (int w = 0; w < W; ++w) {
      words[w] = slot.key[w].load(std::memory_order_relaxed);
    }
    entry.kmer = Kmer<W>::from_words(words, k_);
    entry.coverage = slot.coverage.load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      entry.edges[i] = slot.edges[i].load(std::memory_order_relaxed);
    }
    return entry;
  }

  /// Insert-only probe used by grown(); the key must not exist yet.
  Slot& locate_for_insert(const Kmer<W>& kmer) {
    const auto words = kmer.words();
    std::uint64_t idx = kmer.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      Slot& slot = slots_[idx];
      if (slot.state.load(std::memory_order_relaxed) == kEmpty) {
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        slot.state.store(kOccupied, std::memory_order_relaxed);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("grown table full — should be unreachable");
  }

  int k_;
  std::uint64_t mask_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> distinct_{0};
};

}  // namespace parahash::concurrent
