// Concurrent open-addressing hash table for De Bruijn graph vertices.
//
// This is the paper's core data structure (Sec. III-C): ONE table shared
// by all threads, entries of the form <vertex, list of edge counts>, with
// multi-word keys (wider than a machine word, unlike CAS-per-entry GPU
// tables). Concurrency follows the paper's two observations:
//
//  1. The number of distinct vertices is predictable (Property 1), so the
//     table is allocated once at full size and never resized mid-build.
//  2. Each bucket sees a one-insertion / many-updates pattern, so only
//     the insertion of the multi-word key needs mutual exclusion. A
//     3-state flag per slot implements that *state transfer*:
//
//        empty --CAS--> locked --release-store--> occupied
//
//     The winner of the CAS writes the key while the slot is `locked`;
//     everyone else spins only for that short window. Once `occupied`,
//     the key is immutable and read lock-free; all counter updates are
//     plain atomic increments. This confines locking to one event per
//     distinct vertex — with ~5x duplication that removes ~80% of the
//     key locking a lock-per-access scheme would do (paper Sec. III-A).
//
// Cache-conscious layout: the state byte doubles as a key fingerprint
// and lives in its own dense metadata array, separate from the fat
// payload (key words + 9 counters):
//
//     metadata byte     0x00 = empty
//                       0x01 = locked (key words being written)
//                       0b10tttttt = occupied, t = 6-bit key tag
//
// Group probing: because the metadata bytes are dense, a probe cluster
// is tested as a GROUP — one 16/32-byte SIMD compare classifies every
// lane of the cluster against `occupied|tag`, `empty` and `locked` at
// once (concurrent/probe_group.h; backend picked by runtime dispatch,
// util/simd.h). The probe loop walks only the interesting lanes of each
// scan, in probe order, so foreign slots are rejected wholesale without
// per-byte loads or branches and the table contents stay bit-identical
// to per-slot linear probing (kept as add_hashed_slotwise — the oracle
// path the equivalence tests and the ablation bench compare against).
//
// Memory ordering: the key words are stored relaxed *before* the release
// store of `occupied|tag` on the metadata byte; readers acquire-load the
// metadata before touching the key, which transfers visibility of the
// key words (happens-before via the metadata byte). Group scans observe
// the bytes through an acquire fence (or per-byte acquire loads in the
// scalar backend) and re-validate every action through a real atomic —
// the claim CAS, or the immutability of occupied bytes. Tag-mismatch
// skips never read the payload, so they need no ordering at all.
//
// Bounded growth (GrowthConfig, off by default): when enabled, a probe
// never walks more than `max_displacement` slots. Past that bound the
// key goes to a small lock-protected OVERFLOW region, and when overflow
// occupancy crosses `migration_threshold` the table migrates itself to
// double the capacity — incrementally, with every inserting thread
// claiming fixed-size slot chunks to copy — instead of throwing
// TableFullError and forcing the builder to restart the partition. The
// state machine and its invariants are documented above the migration
// gate below and in docs/INTERNALS.md.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "concurrent/first_touch.h"
#include "concurrent/probe_group.h"
#include "concurrent/table_concept.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"
#include "util/simd.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace parahash::concurrent {

namespace internal {

/// Records how long the calling thread was stalled by a table
/// migration (helping copy chunks or waiting out the gate) into the
/// `table.migration_pause_ns` histogram. Instantiated only on the cold
/// gate-closed paths; costs nothing when telemetry is off.
class MigrationPauseTimer {
 public:
  MigrationPauseTimer() noexcept
      : t0_ns_(telemetry::enabled() ? trace::now_ns() : 0) {}
  MigrationPauseTimer(const MigrationPauseTimer&) = delete;
  MigrationPauseTimer& operator=(const MigrationPauseTimer&) = delete;
  ~MigrationPauseTimer() {
    if (t0_ns_ == 0) return;
    static telemetry::Histogram& pause_ns =
        telemetry::histogram("table.migration_pause_ns");
    pause_ns.record(trace::now_ns() - t0_ns_);
  }

 private:
  std::uint64_t t0_ns_;
};

}  // namespace internal

/// Bounded-growth policy for ConcurrentKmerTable. Disabled by default:
/// a plain table probes the full capacity and throws TableFullError
/// when exhausted (the paper's never-resize contract). Enabled, the
/// table absorbs estimate misses itself: probes stop at the
/// displacement bound, spill into the overflow region, and the table
/// doubles in place (incremental, cooperative migration) when the
/// overflow region fills past the threshold — so add() never throws and
/// finished upsert work is never redone.
struct GrowthConfig {
  bool enabled = false;
  /// Max slots one probe may walk in the main table before the key is
  /// routed to the overflow region. A multiple of the widest group scan
  /// (32) keeps the bound identical across SIMD backends; other values
  /// are rounded up to whole groups per backend. 0 = full capacity.
  std::uint32_t max_displacement = 128;
  /// Overflow slots as a fraction of main capacity (floored at 16).
  double overflow_fraction = 1.0 / 16;
  /// Overflow occupancy (fraction of overflow slots) that triggers an
  /// incremental doubling of the main table.
  double migration_threshold = 0.5;
};

template <int W>
class ConcurrentKmerTable {
 public:
  /// Metadata byte states; any byte with kOccupiedBit set is occupied
  /// and carries the 6-bit tag in its low bits.
  static constexpr std::uint8_t kEmpty = 0x00;
  static constexpr std::uint8_t kLocked = 0x01;
  static constexpr std::uint8_t kOccupiedBit = 0x80;
  static constexpr std::uint8_t kTagMask = 0x3F;

  /// The fat per-slot payload, touched only when the metadata byte says
  /// this slot may hold the probing key.
  struct Payload {
    std::array<std::atomic<std::uint64_t>, W> key{};
    std::array<std::atomic<std::uint32_t>, 8> edges{};
    std::atomic<std::uint32_t> coverage{0};
  };

  /// One group-granular probing step (see probe_group_step).
  struct GroupStep {
    ProbeOutcome outcome = ProbeOutcome::kAdvance;
    int width = 0;  ///< lanes the scan covered; advance by this on kAdvance
  };

  /// Bytes one slot occupies across both arrays (metadata + payload);
  /// device-memory sizing and the Table-II bench use this.
  static constexpr std::uint64_t bytes_per_slot() noexcept {
    return sizeof(Payload) + sizeof(std::atomic<std::uint8_t>);
  }

  /// The occupied metadata byte for a key with this hash. The tag comes
  /// from the hash's TOP bits so it stays independent of the slot index
  /// (low bits) at any realistic capacity.
  static constexpr std::uint8_t occupied_byte(std::uint64_t hash) noexcept {
    return static_cast<std::uint8_t>(kOccupiedBit |
                                     ((hash >> 58) & kTagMask));
  }

  /// Sentinel for probe_group_step's expected-generation parameter:
  /// skip the migration check (non-growth tables, or callers that
  /// revalidate placement themselves).
  static constexpr std::uint64_t kIgnoreGeneration = ~0ull;

  /// Allocates a table with at least `min_slots` slots (rounded up to a
  /// power of two) for kmers of length k. `growth` opts into the
  /// bounded-displacement overflow region + incremental migration; the
  /// default keeps the classic fixed-capacity table. `init_pool`, when
  /// given, first-touches the slot arrays across that pool's workers
  /// (see first_touch.h) — pass the pool that will PROBE the table, and
  /// never a pool this constructor itself runs on (parallel_for from a
  /// worker deadlocks; mid-insert migrations therefore pass nullptr).
  ConcurrentKmerTable(std::uint64_t min_slots, int k,
                      GrowthConfig growth = {},
                      ThreadPool* init_pool = nullptr)
      : k_(k),
        simd_level_(simd::active()),
        growth_(growth),
        // The metadata bytes are probed uniformly by every worker, so
        // their pages interleave across nodes; the payloads keep the
        // chunked default (a probe only touches a payload on a tag
        // match, and the SIMD group scan reads metadata exclusively).
        meta_(next_pow2(min_slots < 2 ? 2 : min_slots), init_pool,
              FirstTouchArray<std::atomic<std::uint8_t>>::Placement::
                  kInterleaved),
        payload_(meta_.size(), init_pool) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK,
                       "k out of range for this word count");
    mask_ = meta_.size() - 1;
    if (growth_.enabled) init_growth_arrays();
    update_probe_shadow();
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return meta_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return meta_.size() * sizeof(std::atomic<std::uint8_t>) +
           payload_.size() * sizeof(Payload) +
           ovf_meta_.size() * sizeof(std::atomic<std::uint8_t>) +
           ovf_payload_.size() * sizeof(Payload);
  }

  bool growth_enabled() const noexcept { return growth_.enabled; }

  /// Incremental doublings performed so far (0 for non-growth tables).
  std::uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

  /// Monotonic geometry version: bumped by every migration. Lockstep
  /// probers (the SIMT kernel) snapshot it with home_mask() and pass it
  /// back to probe_group_step(), which answers kRestart if the table
  /// moved under them.
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_seq_cst);
  }

  /// The current home-index mask (capacity - 1), readable concurrently
  /// with a migration (unlike capacity(), which touches vector
  /// internals the migration swaps).
  std::uint64_t home_mask() const noexcept {
    return shadow_mask_.load(std::memory_order_acquire);
  }

  /// Slots a probe walks in the main table before giving up on it: the
  /// displacement bound rounded up to whole groups of this table's scan
  /// backend (full capacity for non-growth tables). Insert and lookup
  /// both stop exactly here, which is what confines a key to main XOR
  /// overflow. Readable concurrently with a migration on growth tables
  /// (plain atomic; no vector internals touched).
  std::uint64_t displacement_bound() const noexcept {
    if (!growth_.enabled) return capacity();
    return bound_.load(std::memory_order_acquire);
  }

  /// Keys currently living in the overflow region. Safe against a
  /// concurrent migration (the finalize swap holds ovf_mutex_ too).
  std::uint64_t overflow_size() const {
    if (!growth_.enabled) return 0;
    std::lock_guard<std::mutex> lock(ovf_mutex_);
    return ovf_size_;
  }
  /// Overflow slot count. Quiescent introspection only on growth tables
  /// (reads vector internals a migration swaps), like memory_bytes().
  std::uint64_t overflow_capacity() const noexcept {
    return ovf_meta_.size();
  }

  /// Number of distinct vertices inserted so far.
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  double load_factor() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  /// The scan backend this table probes with. Snapshotted from the
  /// process-wide dispatch at construction; the setter (clamped to what
  /// the build and CPU support) exists for the backend-equivalence
  /// tests and the ablation benches.
  simd::Level simd_level() const noexcept { return simd_level_; }
  void set_simd_level(simd::Level level) noexcept {
    const simd::Level ceiling = simd::detect();
    simd_level_ = static_cast<int>(level) < static_cast<int>(ceiling)
                      ? level
                      : ceiling;
    // The effective displacement bound is rounded to this backend's
    // group width; recompute it. (Quiescent, like the setter itself.)
    if (growth_.enabled) bound_.store(effective_bound(),
                                      std::memory_order_release);
  }

  /// Prefetches the probe GROUP for a key with this hash: the metadata
  /// block a scan will load (which may straddle two cache lines) plus
  /// the home payload slot. The batched upsert front-end issues these a
  /// window ahead of the matching add_hashed() calls so the dependent
  /// loads overlap. Reads the atomic shadow of the array pointers, not
  /// the vectors, so it stays race-free against a concurrent migration;
  /// a stale address only wastes the hint (prefetch never faults).
  void prefetch_group(std::uint64_t hash) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t mask = shadow_mask_.load(std::memory_order_acquire);
    const auto* meta = shadow_meta_.load(std::memory_order_acquire);
    const auto* payload =
        shadow_payload_.load(std::memory_order_acquire);
    const std::uint64_t idx = hash & mask;
    const std::uint64_t last_lane =
        static_cast<std::uint64_t>(probe::group_width(simd_level_)) - 1;
    __builtin_prefetch(meta + idx, 1, 3);
    __builtin_prefetch(meta + ((idx + last_lane) & mask), 1, 3);
    __builtin_prefetch(payload + idx, 1, 3);
#endif
  }

  /// Prefetches the metadata + payload at a known slot INDEX (already
  /// masked). The SIMT kernel uses this to issue each lane's next probe
  /// address one warp round ahead of the probe_group_step that reads
  /// it, overlapping the lanes' independent cache misses the way a
  /// GPU's warp scheduler overlaps its threads' loads. Same shadow
  /// discipline as prefetch_group(): migration-safe, hint-only.
  void prefetch_index(std::uint64_t index) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t mask = shadow_mask_.load(std::memory_order_acquire);
    const auto* meta = shadow_meta_.load(std::memory_order_acquire);
    const auto* payload =
        shadow_payload_.load(std::memory_order_acquire);
    const std::uint64_t idx = index & mask;
    __builtin_prefetch(meta + idx, 1, 3);
    __builtin_prefetch(payload + idx, 1, 3);
#endif
  }

  /// Records one occurrence of canonical kmer `canon`, bumping the
  /// outgoing edge counter `edge_out` and/or incoming counter `edge_in`
  /// (base codes 0..3; pass -1 for none). Thread-safe; wait-free except
  /// while another thread holds a slot in the `locked` state.
  ///
  /// Throws TableFullError when every slot is occupied by other keys —
  /// unless growth is enabled, in which case the upsert always resolves
  /// (overflow region, migrating the table to double capacity if need
  /// be) and never throws.
  AddResult add(const Kmer<W>& canon, int edge_out, int edge_in) {
    return add_hashed(canon, canon.hash(), edge_out, edge_in);
  }

  /// add() with the key hash precomputed (the batched front-end hashes
  /// at prefetch time and reuses the value here). Group-probing engine:
  /// each iteration scans one metadata block and resolves inside it or
  /// advances a whole group.
  AddResult add_hashed(const Kmer<W>& canon, std::uint64_t hash,
                       int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    const std::uint8_t occupied = occupied_byte(hash);
    if (!growth_.enabled) {
      std::uint64_t base = hash & mask_;
      std::uint64_t scanned = 0;
      do {
        const GroupStep step = walk_group</*kSpinOnLocked=*/true>(
            base, words, occupied, edge_out, edge_in, result);
        if (step.outcome == ProbeOutcome::kDone) return result;
        base = (base + static_cast<std::uint64_t>(step.width)) & mask_;
        scanned += static_cast<std::uint64_t>(step.width);
      } while (scanned <= mask_);
      throw TableFullError("concurrent kmer table is full (capacity " +
                           std::to_string(capacity()) + ")");
    }

    // Bounded-displacement path. Each round holds one gate ticket: probe
    // the main table for at most the displacement bound, else resolve in
    // the overflow region. Migration (if the overflow threshold was
    // crossed, or the overflow region itself is full) happens with the
    // ticket RELEASED — the migrator waits for every ticket to drain, so
    // initiating while holding one would deadlock on ourselves.
    for (;;) {
      enter_op();
      const std::uint64_t gen =
          generation_.load(std::memory_order_relaxed);
      const std::uint64_t bound = displacement_bound();
      std::uint64_t base = hash & mask_;
      std::uint64_t scanned = 0;
      bool resolved = false;
      while (scanned < bound) {
        const GroupStep step = walk_group</*kSpinOnLocked=*/true>(
            base, words, occupied, edge_out, edge_in, result);
        if (step.outcome == ProbeOutcome::kDone) {
          resolved = true;
          break;
        }
        base = (base + static_cast<std::uint64_t>(step.width)) & mask_;
        scanned += static_cast<std::uint64_t>(step.width);
      }
      bool want_migration = false;
      if (!resolved) {
        std::lock_guard<std::mutex> lock(ovf_mutex_);
        resolved = overflow_upsert_locked(words, occupied, hash, edge_out,
                                          edge_in, result, want_migration);
      }
      exit_op();
      if (want_migration) maybe_migrate(gen);
      if (resolved) return result;
      // Overflow was full of other keys: the table just doubled (here or
      // on a sibling thread) — retry against the new geometry.
    }
  }

  /// The PR-1 per-slot probe loop, kept verbatim as the reference path:
  /// the equivalence tests pit every scan backend against it, and the
  /// group-scan microbench measures what block probing buys over it.
  /// Identical results to add_hashed(); only the probing differs.
  /// Growth-unaware (no bound, no overflow): valid on plain tables only.
  AddResult add_hashed_slotwise(const Kmer<W>& canon, std::uint64_t hash,
                                int edge_out, int edge_in) {
    PARAHASH_DCHECK(!growth_.enabled);
    AddResult result;
    const auto words = canon.words();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      std::atomic<std::uint8_t>& meta = meta_[idx];
      std::uint8_t st = meta.load(std::memory_order_acquire);
      ++result.probes;

      if (st == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (meta.compare_exchange_strong(expected, kLocked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          publish_claimed_words(idx, words, occupied, edge_out, edge_in);
          result.inserted = true;
          return result;
        }
        st = expected;  // lost the race; fall through with the new state
      }

      if (st == kLocked) {
        result.waited_on_lock = true;
        do {
          cpu_relax();
          st = meta.load(std::memory_order_acquire);
        } while (st == kLocked);
      }

      // st is occupied: a tag mismatch proves a different key without
      // reading the payload; a tag match falls back to the full compare.
      if (st != occupied) {
        ++result.tag_rejects;
      } else {
        ++result.key_compares;
        if (key_equals(payload_[idx], words)) {
          bump(payload_[idx], edge_out, edge_in);
          return result;
        }
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("concurrent kmer table is full (capacity " +
                         std::to_string(capacity()) + ")");
  }

  // ---- The group-oriented probe API ---------------------------------
  //
  // Three callers consume it: add_hashed() above, the BatchedUpserter
  // prefetch window (whole-group prefetches), and the warp-synchronous
  // SIMT kernel (device/simt_kernel.h), which takes one group scan per
  // lane step via probe_group_step().

  /// Scans the metadata group starting at probe index `index` and
  /// classifies every lane against `occupied` (= occupied_byte(hash) of
  /// the probing key). Lane 0 is the slot at `index`; bit order is
  /// probe order.
  probe::GroupScan probe_group(std::uint64_t index,
                               std::uint8_t occupied) const noexcept {
    return probe::scan_group(meta_.data(), mask_, index & mask_, occupied,
                             simd_level_);
  }

  /// The CAS step of the state-transfer protocol: tries to move the
  /// slot empty -> locked. On success the caller OWNS the slot and must
  /// publish_claimed() it immediately — a locked slot blocks every
  /// other prober walking past it.
  bool claim_lane(std::uint64_t slot) noexcept {
    std::uint8_t expected = kEmpty;
    return meta_[slot & mask_].compare_exchange_strong(
        expected, kLocked, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Completes a successful claim_lane(): writes the key words while
  /// the slot is locked, release-publishes `occupied|tag`, and records
  /// the first occurrence.
  void publish_claimed(std::uint64_t slot, const Kmer<W>& canon,
                       std::uint64_t hash, int edge_out, int edge_in) {
    publish_claimed_words(slot & mask_, canon.words(), occupied_byte(hash),
                          edge_out, edge_in);
  }

  /// Acquire-loads one slot's metadata byte (for re-resolving a lane
  /// whose scanned state went stale, e.g. after a lost claim race).
  std::uint8_t lane_state(std::uint64_t slot) const noexcept {
    return meta_[slot & mask_].load(std::memory_order_acquire);
  }

  /// One group-granular step of add() — the building block of the
  /// warp-synchronous SIMT kernel, which interleaves many probes in
  /// lockstep. Scans the group at `index` and tries to resolve the
  /// upsert inside it; a locked lane (or a lost claim race) returns
  /// kRetry instead of spinning, so the warp can advance its other
  /// lanes and rescan this group next round. On kAdvance the caller
  /// moves `index` forward by the returned width.
  ///
  /// On a growth table the caller's `index` is only meaningful for the
  /// geometry it was computed against, so it passes the generation it
  /// snapshotted (via generation()/home_mask()); if the table migrated
  /// since, the step answers kRestart and the caller re-homes. The
  /// default sentinel skips the check (plain tables, probe unit tests).
  GroupStep probe_group_step(
      std::uint64_t index, const Kmer<W>& canon, int edge_out, int edge_in,
      AddResult& stats,
      std::uint64_t expected_generation = kIgnoreGeneration) {
    enter_op();
    if (growth_.enabled && expected_generation != kIgnoreGeneration &&
        generation_.load(std::memory_order_relaxed) !=
            expected_generation) {
      exit_op();
      return {ProbeOutcome::kRestart, 0};
    }
    const auto words = canon.words();
    const GroupStep step = walk_group</*kSpinOnLocked=*/false>(
        index & mask_, words, occupied_byte(canon.hash()), edge_out,
        edge_in, stats);
    exit_op();
    return step;
  }

  /// SIMT hand-off: resolves an upsert in the overflow region after a
  /// lane exhausted its displacement bound at generation
  /// `expected_generation`. Returns true when resolved (the lane is
  /// done; a threshold-triggered migration may still have run before
  /// returning). Returns false when the table's generation no longer
  /// matches — including the overflow-full case, where this call itself
  /// migrates the table first — and the lane must re-home and re-probe
  /// against the new geometry. Growth tables only.
  bool overflow_upsert(const Kmer<W>& canon, int edge_out, int edge_in,
                       AddResult& stats,
                       std::uint64_t expected_generation) {
    PARAHASH_DCHECK(growth_.enabled);
    enter_op();
    if (generation_.load(std::memory_order_relaxed) !=
        expected_generation) {
      exit_op();
      return false;
    }
    const auto words = canon.words();
    const std::uint64_t hash = canon.hash();
    bool want_migration = false;
    bool resolved;
    {
      std::lock_guard<std::mutex> lock(ovf_mutex_);
      resolved =
          overflow_upsert_locked(words, occupied_byte(hash), hash,
                                 edge_out, edge_in, stats, want_migration);
    }
    exit_op();
    if (want_migration) maybe_migrate(expected_generation);
    return resolved;
  }

  /// Number of slots currently in the transient `locked` state. Zero
  /// whenever no insertion is mid-flight — in particular after any
  /// kernel unwinds, even via TableFullError (regression-tested).
  /// Overflow slots are never locked (mutex-protected inserts) but are
  /// scanned anyway so the invariant covers the whole table. Quiescent
  /// introspection only on growth tables (walks vector internals a
  /// migration swaps).
  std::uint64_t locked_slots() const noexcept {
    std::uint64_t n = 0;
    for (const auto& m : meta_) {
      n += m.load(std::memory_order_acquire) == kLocked;
    }
    for (const auto& m : ovf_meta_) {
      n += m.load(std::memory_order_acquire) == kLocked;
    }
    return n;
  }

  /// Looks up a canonical kmer. Thread-safe against concurrent adds; the
  /// returned snapshot is a consistent-enough view for queries/tests.
  /// On a growth table the main-table probe stops at the displacement
  /// bound (inserts do too, so a key past it can only be in overflow),
  /// and the overflow region is checked under its lock.
  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    const std::uint64_t hash = canon.hash();
    const std::uint8_t occupied = occupied_byte(hash);
    if (!growth_.enabled) {
      bool hit_empty = false;
      return find_in_main(words, hash, occupied, capacity(), hit_empty);
    }
    enter_op_reader();
    bool hit_empty = false;
    std::optional<VertexEntry<W>> found = find_in_main(
        words, hash, occupied, displacement_bound(), hit_empty);
    if (!found && !hit_empty) {
      // The whole bound window is occupied by other keys — exactly the
      // condition under which the insert went to overflow. (An empty
      // slot inside the window proves the key was never displaced out:
      // slots never return to empty within a generation, so the empty
      // existed at insert time too and the insert would have used it.)
      std::lock_guard<std::mutex> lock(ovf_mutex_);
      std::uint64_t idx = hash & ovf_mask_;
      for (std::uint64_t attempt = 0; attempt <= ovf_mask_; ++attempt) {
        const std::uint8_t st =
            ovf_meta_[idx].load(std::memory_order_acquire);
        if (st == kEmpty) break;
        if (st == occupied && key_equals(ovf_payload_[idx], words)) {
          found = snapshot_payload(ovf_payload_[idx]);
          break;
        }
        idx = (idx + 1) & ovf_mask_;
      }
    }
    exit_op();
    return found;
  }

  /// Visits every occupied slot — main table first, then the overflow
  /// region, so growth tables present one unified view. Call only after
  /// all writers finished.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t idx = 0; idx < meta_.size(); ++idx) {
      if ((meta_[idx].load(std::memory_order_acquire) & kOccupiedBit) !=
          0) {
        fn(snapshot(idx));
      }
    }
    for (std::uint64_t idx = 0; idx < ovf_meta_.size(); ++idx) {
      if ((ovf_meta_[idx].load(std::memory_order_acquire) &
           kOccupiedBit) != 0) {
        fn(snapshot_payload(ovf_payload_[idx]));
      }
    }
  }

  /// Rebuilds this table's contents into a table twice the capacity and
  /// returns it. Single-threaded; exists as the *fallback* path whose
  /// cost the ablation bench measures — ParaHash's Property-1 sizing is
  /// designed to make this never run, and growth tables replace it with
  /// in-place incremental migration. (Slots hold atomics, so the table
  /// itself is neither copyable nor movable; hand back a unique_ptr.)
  std::unique_ptr<ConcurrentKmerTable> grown() const {
    auto bigger = std::make_unique<ConcurrentKmerTable>(capacity() * 2, k_);
    bigger->set_simd_level(simd_level_);
    for_each([&](const VertexEntry<W>& e) { bigger->migrate_entry(e); });
    return bigger;
  }

 private:
  static void bump(Payload& slot, int edge_out, int edge_in) noexcept {
    slot.coverage.fetch_add(1, std::memory_order_relaxed);
    if (edge_out >= 0) {
      slot.edges[kEdgeOut + edge_out].fetch_add(1, std::memory_order_relaxed);
    }
    if (edge_in >= 0) {
      slot.edges[kEdgeIn + edge_in].fetch_add(1, std::memory_order_relaxed);
    }
  }

  void publish_claimed_words(std::uint64_t idx,
                             std::span<const std::uint64_t, W> words,
                             std::uint8_t occupied, int edge_out,
                             int edge_in) {
    Payload& slot = payload_[idx];
    for (int w = 0; w < W; ++w) {
      slot.key[w].store(words[w], std::memory_order_relaxed);
    }
    meta_[idx].store(occupied, std::memory_order_release);
    distinct_.fetch_add(1, std::memory_order_relaxed);
    bump(slot, edge_out, edge_in);
  }

  /// The heart of the engine: scan one group, then walk only its
  /// interesting lanes in probe order. Mismatched occupied lanes are
  /// never touched individually — they are counted wholesale from the
  /// scan mask when the walk resolves or exhausts the group. Probe
  /// order is preserved exactly (first empty-or-matching lane wins), so
  /// contents match the slotwise path bit for bit; an empty lane
  /// observed mid-group proves the key lives at no later lane, because
  /// slots never return to empty.
  template <bool kSpinOnLocked>
  GroupStep walk_group(std::uint64_t base,
                       std::span<const std::uint64_t, W> words,
                       std::uint8_t occupied, int edge_out, int edge_in,
                       AddResult& r) {
    const probe::GroupScan g = probe_group(base, occupied);
    ++r.group_scans;
    const std::uint32_t mismatch = g.mismatch();
    std::uint32_t interesting = g.interesting();

    // Counts the mismatch lanes the walk skipped over before resolving
    // at `lane` (or the whole group on exhaustion).
    const auto skip_mismatches = [&](std::uint32_t upto_mask) {
      const int skipped =
          std::popcount(mismatch & upto_mask);
      r.tag_rejects += static_cast<std::uint32_t>(skipped);
      r.lanes_rejected += static_cast<std::uint32_t>(skipped);
      r.probes += static_cast<std::uint32_t>(skipped);
    };
    const auto below = [](int lane) -> std::uint32_t {
      return lane >= 32 ? 0xffffffffu : ((1u << lane) - 1u);
    };

    while (interesting != 0) {
      const int lane = std::countr_zero(interesting);
      interesting &= interesting - 1;
      const std::uint64_t slot =
          (base + static_cast<std::uint64_t>(lane)) & mask_;
      std::uint8_t st;
      if ((g.empty >> lane) & 1u) {
        if (claim_lane(slot)) {
          publish_claimed_words(slot, words, occupied, edge_out, edge_in);
          ++r.probes;
          r.inserted = true;
          skip_mismatches(below(lane));
          return {ProbeOutcome::kDone, g.width};
        }
        // Lost the claim race: the lane changed under us; re-read it.
        st = lane_state(slot);
      } else if ((g.locked >> lane) & 1u) {
        st = kLocked;
      } else {
        // Match lane. Occupied bytes are immutable, so the scanned
        // value needs no re-read before the payload compare.
        st = occupied;
      }

      if (st == kLocked) {
        if constexpr (!kSpinOnLocked) {
          // SIMT semantics: never stall the warp on one lane. Stats for
          // the skipped prefix are deferred to the resolving rescan.
          return {ProbeOutcome::kRetry, g.width};
        }
        r.waited_on_lock = true;
        do {
          cpu_relax();
          st = lane_state(slot);
        } while (st == kLocked);
      }

      // st is occupied here (locked only resolves forward).
      if (st != occupied) {
        ++r.tag_rejects;
        ++r.probes;
        continue;
      }
      ++r.key_compares;
      ++r.probes;
      if (key_equals(payload_[slot], words)) {
        bump(payload_[slot], edge_out, edge_in);
        skip_mismatches(below(lane));
        return {ProbeOutcome::kDone, g.width};
      }
    }
    skip_mismatches(g.lane_mask());
    return {ProbeOutcome::kAdvance, g.width};
  }

  bool key_equals(const Payload& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w].load(std::memory_order_relaxed) != words[w]) {
        return false;
      }
    }
    return true;
  }

  VertexEntry<W> snapshot_payload(const Payload& slot) const {
    VertexEntry<W> entry;
    std::array<std::uint64_t, W> words;
    for (int w = 0; w < W; ++w) {
      words[w] = slot.key[w].load(std::memory_order_relaxed);
    }
    entry.kmer = Kmer<W>::from_words(words, k_);
    entry.coverage = slot.coverage.load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      entry.edges[i] = slot.edges[i].load(std::memory_order_relaxed);
    }
    return entry;
  }
  VertexEntry<W> snapshot(std::uint64_t idx) const {
    return snapshot_payload(payload_[idx]);
  }

  /// Slotwise lookup in the main table, stopping after `limit` slots or
  /// at the first empty (reported through `hit_empty`).
  std::optional<VertexEntry<W>> find_in_main(
      std::span<const std::uint64_t, W> words, std::uint64_t hash,
      std::uint8_t occupied, std::uint64_t limit, bool& hit_empty) const {
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt < limit; ++attempt) {
      std::uint8_t st = meta_[idx].load(std::memory_order_acquire);
      if (st == kEmpty) {
        hit_empty = true;
        return std::nullopt;
      }
      if (st == kLocked) {
        do {
          cpu_relax();
          st = meta_[idx].load(std::memory_order_acquire);
        } while (st == kLocked);
      }
      if (st == occupied && key_equals(payload_[idx], words)) {
        return snapshot(idx);
      }
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  /// Concurrent insert of a key known to be absent from this table —
  /// the unit of work of migration (and of the single-threaded grown()
  /// rebuild, which is why it replaces the old relaxed-store
  /// locate_for_insert: this one uses the full claim/publish protocol,
  /// so concurrent migrators are safe). Never waits on a locked slot:
  /// during a migration a locked slot belongs to a sibling migrator
  /// inserting a DIFFERENT key (source entries are distinct), so
  /// probing past it is correct.
  ///
  /// Honors this table's bounded-probe protocol: on a growth table the
  /// main probe stops at the displacement bound and a key whose whole
  /// bound window is taken goes to the overflow region — placing it
  /// past the bound would make it invisible to every reader (they stop
  /// at the bound and fall back to overflow only), breaking the
  /// main-XOR-overflow invariant and splitting later upserts of the
  /// same key into a silent duplicate. On a plain table the bound is
  /// the full capacity, i.e. the classic unbounded probe.
  void migrate_entry(const VertexEntry<W>& e) {
    const auto words = e.kmer.words();
    const std::uint64_t hash = e.kmer.hash();
    const std::uint8_t occupied = occupied_byte(hash);
    const std::uint64_t bound = displacement_bound();
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt < bound; ++attempt) {
      if (meta_[idx].load(std::memory_order_relaxed) == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (meta_[idx].compare_exchange_strong(
                expected, kLocked, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          Payload& slot = payload_[idx];
          for (int w = 0; w < W; ++w) {
            slot.key[w].store(words[w], std::memory_order_relaxed);
          }
          for (int i = 0; i < 8; ++i) {
            slot.edges[i].store(e.edges[i], std::memory_order_relaxed);
          }
          slot.coverage.store(e.coverage, std::memory_order_relaxed);
          meta_[idx].store(occupied, std::memory_order_release);
          distinct_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      idx = (idx + 1) & mask_;
    }
    if (growth_.enabled) {
      std::lock_guard<std::mutex> lock(ovf_mutex_);
      if (migrate_into_overflow_locked(e, words, occupied, hash)) return;
      // The doubled table's overflow region filled during the copy —
      // only reachable with an adversarial hash that saturates bound
      // windows across a 2x-capacity table. Unwinding here is the safe
      // failure: the gate never reopens on the torn target.
      throw TableFullError(
          "migration target overflow region full (capacity " +
          std::to_string(ovf_meta_.size()) + ")");
    }
    throw TableFullError("migration target table full — unreachable: the "
                         "target has double the source capacity");
  }

  // ---- Migration gate ------------------------------------------------
  //
  // Growth tables guard every main-array access with a ticket (ops_):
  //
  //   Normal --CAS by initiator--> Draining --ops_ == 0--> Migrating
  //     ^                                                       |
  //     +---------------- last chunk copied, arrays swapped ----+
  //
  // Writers/readers: fetch_add ops_, THEN check state_ — back off (and
  // help) unless Normal. Migrator: store Draining, THEN wait for
  // ops_ == 0. Both orders are seq_cst: with anything weaker the
  // store-buffer interleaving lets a writer read the stale Normal while
  // the migrator reads a stale zero ticket count, and both proceed.
  // With seq_cst one of the two observes the other in the single total
  // order. x86 makes this free (atomic RMW is already a full barrier).
  //
  // During Migrating the arrays are read-only sources; every
  // participating thread claims fixed-size slot chunks via
  // migrate_cursor_ and copies occupied entries into next_ with
  // migrate_entry(). The thread that completes the LAST chunk swaps the
  // arrays in, bumps generation_, and reopens the gate. The migrators_
  // count exists for one corner: a helper that observed Migrating and
  // then stalled must not claim a chunk of a LATER migration while it
  // drains — prepare_migration() waits for migrators_ to hit zero
  // before resetting the cursor, and a stalled claimer can only see the
  // exhausted old cursor until then.

  static constexpr int kStateNormal = 0;
  static constexpr int kStateDraining = 1;
  static constexpr int kStateMigrating = 2;
  static constexpr std::uint64_t kMigrateChunkSlots = 4096;

  /// Takes a gate ticket for one mutating op; helps any in-flight
  /// migration to completion before retrying.
  void enter_op() {
    if (!growth_.enabled) return;
    for (;;) {
      ops_.fetch_add(1, std::memory_order_seq_cst);
      if (growth_state_.load(std::memory_order_seq_cst) == kStateNormal) {
        return;
      }
      ops_.fetch_sub(1, std::memory_order_seq_cst);
      help_copy();
    }
  }

  /// Reader flavour (const paths): waits out a migration instead of
  /// helping with it.
  void enter_op_reader() const {
    for (;;) {
      ops_.fetch_add(1, std::memory_order_seq_cst);
      if (growth_state_.load(std::memory_order_seq_cst) == kStateNormal) {
        return;
      }
      ops_.fetch_sub(1, std::memory_order_seq_cst);
      internal::MigrationPauseTimer pause;
      while (growth_state_.load(std::memory_order_seq_cst) !=
             kStateNormal) {
        cpu_relax();
      }
    }
  }

  void exit_op() const noexcept {
    if (!growth_.enabled) return;
    ops_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Initiates (or helps finish) a doubling decided while the table was
  /// at `observed_generation`. A no-op if the table already moved past
  /// that generation — this is what collapses a thundering herd of
  /// threshold observers into one migration. Call WITHOUT a ticket.
  void maybe_migrate(std::uint64_t observed_generation) {
    for (;;) {
      if (generation_.load(std::memory_order_seq_cst) !=
          observed_generation) {
        return;
      }
      int expected = kStateNormal;
      if (growth_state_.compare_exchange_strong(
              expected, kStateDraining, std::memory_order_seq_cst)) {
        PARAHASH_TRACE_INSTANT("table", "migration.drain", "generation",
                               observed_generation);
        prepare_migration();
        while (ops_.load(std::memory_order_seq_cst) != 0) cpu_relax();
        growth_state_.store(kStateMigrating, std::memory_order_seq_cst);
        PARAHASH_TRACE_INSTANT("table", "migration.copy", "generation",
                               observed_generation);
        help_copy();
        return;
      }
      // A sibling holds the migration; chip in, then re-check whether it
      // was the doubling we wanted.
      help_copy();
    }
  }

  /// Allocates the doubled table and resets the chunk cursor. Runs in
  /// the Draining state, concurrently with the last ticketed ops. The
  /// target carries the same GrowthConfig as this table: migrate_entry
  /// must insert via the SAME bounded protocol live upserts use, so a
  /// key whose bound window is saturated in the doubled table lands in
  /// the target's overflow region (which finalize adopts), never past
  /// the bound where no reader probes.
  void prepare_migration() {
    while (migrators_.load(std::memory_order_seq_cst) != 0) cpu_relax();
    next_ = std::make_unique<ConcurrentKmerTable>(capacity() * 2, k_,
                                                  growth_);
    next_->set_simd_level(simd_level_);
    const std::uint64_t total_slots = meta_.size() + ovf_meta_.size();
    chunks_total_ =
        (total_slots + kMigrateChunkSlots - 1) / kMigrateChunkSlots;
    migrate_cursor_.store(0, std::memory_order_seq_cst);
    chunks_done_.store(0, std::memory_order_seq_cst);
  }

  /// Cooperates on the current migration until the gate reopens.
  void help_copy() {
    if (growth_state_.load(std::memory_order_seq_cst) == kStateNormal) {
      return;
    }
    internal::MigrationPauseTimer pause;
    for (;;) {
      const int state = growth_state_.load(std::memory_order_seq_cst);
      if (state == kStateNormal) return;
      if (state == kStateDraining) {
        cpu_relax();
        continue;
      }
      // Migrating: register, re-validate, then grab chunks. If the
      // re-check fails (or this migration's cursor is already
      // exhausted) the claim loop touches nothing — see the gate note.
      migrators_.fetch_add(1, std::memory_order_seq_cst);
      if (growth_state_.load(std::memory_order_seq_cst) !=
          kStateMigrating) {
        migrators_.fetch_sub(1, std::memory_order_seq_cst);
        continue;
      }
      bool finalized = false;
      for (;;) {
        const std::uint64_t chunk =
            migrate_cursor_.fetch_add(1, std::memory_order_seq_cst);
        if (chunk >= chunks_total_) break;
        copy_chunk(chunk);
        if (chunks_done_.fetch_add(1, std::memory_order_seq_cst) + 1 ==
            chunks_total_) {
          finalize_migration();
          finalized = true;
          break;
        }
      }
      migrators_.fetch_sub(1, std::memory_order_seq_cst);
      if (finalized) return;
      while (growth_state_.load(std::memory_order_seq_cst) ==
             kStateMigrating) {
        cpu_relax();
      }
    }
  }

  /// Copies one chunk of source slots (main array first, then the
  /// overflow region) into next_.
  void copy_chunk(std::uint64_t chunk) {
    const std::uint64_t main_cap = meta_.size();
    const std::uint64_t total = main_cap + ovf_meta_.size();
    const std::uint64_t begin = chunk * kMigrateChunkSlots;
    const std::uint64_t end =
        std::min(begin + kMigrateChunkSlots, total);
    for (std::uint64_t i = begin; i < end; ++i) {
      const bool in_main = i < main_cap;
      const std::uint64_t idx = in_main ? i : i - main_cap;
      const auto& meta = in_main ? meta_[idx] : ovf_meta_[idx];
      if ((meta.load(std::memory_order_acquire) & kOccupiedBit) == 0) {
        continue;
      }
      next_->migrate_entry(in_main
                               ? snapshot(idx)
                               : snapshot_payload(ovf_payload_[idx]));
    }
  }

  /// Last chunk done: steal the doubled table's arrays (main AND
  /// overflow — bound-saturated keys migrated into the target's
  /// overflow region, which stays live), publish the new geometry,
  /// retire the old arrays, reopen the gate (strictly last). The
  /// overflow swap holds ovf_mutex_ so the ungated overflow_size()
  /// never races the vector swap, and the probe shadow is republished
  /// BEFORE next_.reset() so an ungated prefetch_group can never read a
  /// shadow pointer into just-freed memory.
  void finalize_migration() {
    PARAHASH_DCHECK(distinct_.load(std::memory_order_relaxed) ==
                    next_->distinct_.load(std::memory_order_relaxed));
    meta_.swap(next_->meta_);
    payload_.swap(next_->payload_);
    mask_ = meta_.size() - 1;
    {
      std::lock_guard<std::mutex> lock(ovf_mutex_);
      ovf_meta_.swap(next_->ovf_meta_);
      ovf_payload_.swap(next_->ovf_payload_);
      ovf_mask_ = next_->ovf_mask_;
      ovf_size_ = next_->ovf_size_;
      ovf_threshold_ = next_->ovf_threshold_;
      shrink_overflow_locked();
    }
    bound_.store(effective_bound(), std::memory_order_release);
    update_probe_shadow();
    next_.reset();
    migrations_.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t new_generation =
        generation_.fetch_add(1, std::memory_order_seq_cst) + 1;
    growth_state_.store(kStateNormal, std::memory_order_seq_cst);
    PARAHASH_TRACE_INSTANT("table", "migration.finalize", "generation",
                           new_generation);
  }

  // ---- Overflow region -----------------------------------------------

  /// Right-sizes the just-adopted overflow region. The doubled main
  /// array absorbs nearly every key the old overflow held, yet the
  /// target's region was allocated at the NEW capacity's overflow
  /// fraction — carrying those near-empty slots to the next doubling
  /// wastes resident memory for no displacement headroom. Rehash the
  /// survivors into a region a few times their population (floor 16
  /// slots) whenever that halves the allocation or better. Pre:
  /// ovf_mutex_ held and the growth gate still closed (migration
  /// finalizing), so no other thread probes the region.
  void shrink_overflow_locked() {
    const std::uint64_t cap = ovf_meta_.size();
    const std::uint64_t want = next_pow2(
        ovf_size_ < 4 ? 16 : 4 * ovf_size_);
    if (want >= cap) return;
    std::vector<std::atomic<std::uint8_t>> meta(want);
    std::vector<Payload> payload(want);
    const std::uint64_t mask = want - 1;
    for (std::uint64_t i = 0; i < cap; ++i) {
      const std::uint8_t st = ovf_meta_[i].load(std::memory_order_relaxed);
      if ((st & kOccupiedBit) == 0) continue;
      std::array<std::uint64_t, W> words;
      for (int w = 0; w < W; ++w) {
        words[w] = ovf_payload_[i].key[w].load(std::memory_order_relaxed);
      }
      std::uint64_t idx = hash_words(words.data(), W) & mask;
      while (meta[idx].load(std::memory_order_relaxed) != kEmpty) {
        idx = (idx + 1) & mask;
      }
      Payload& dst = payload[idx];
      for (int w = 0; w < W; ++w) {
        dst.key[w].store(words[w], std::memory_order_relaxed);
      }
      for (int e = 0; e < 8; ++e) {
        dst.edges[e].store(
            ovf_payload_[i].edges[e].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      dst.coverage.store(
          ovf_payload_[i].coverage.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      meta[idx].store(st, std::memory_order_relaxed);
    }
    ovf_meta_.swap(meta);
    ovf_payload_.swap(payload);
    ovf_mask_ = mask;
    ovf_threshold_ = static_cast<std::uint64_t>(
        growth_.migration_threshold * static_cast<double>(want));
    if (ovf_threshold_ < 1) ovf_threshold_ = 1;
    if (ovf_threshold_ > want) ovf_threshold_ = want;
    PARAHASH_TRACE_INSTANT("table", "overflow.shrink", "slots", want);
  }

  /// Upserts into the overflow region. Pre: ovf_mutex_ held, gate
  /// ticket held. Returns false when every overflow slot holds another
  /// key — the caller must migrate and retry. Sets `want_migration`
  /// when occupancy crossed the threshold (or on the full case). Probe
  /// accounting mirrors the main path so the
  /// probes == inserts + tag_rejects + key_compares identity holds.
  bool overflow_upsert_locked(std::span<const std::uint64_t, W> words,
                              std::uint8_t occupied, std::uint64_t hash,
                              int edge_out, int edge_in, AddResult& r,
                              bool& want_migration) {
    std::uint64_t idx = hash & ovf_mask_;
    for (std::uint64_t attempt = 0; attempt <= ovf_mask_; ++attempt) {
      std::atomic<std::uint8_t>& meta = ovf_meta_[idx];
      const std::uint8_t st = meta.load(std::memory_order_relaxed);
      if (st == kEmpty) {
        Payload& slot = ovf_payload_[idx];
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        meta.store(occupied, std::memory_order_release);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        bump(slot, edge_out, edge_in);
        ++r.probes;
        r.inserted = true;
        r.overflow_hit = true;
        ++ovf_size_;
        want_migration = ovf_size_ >= ovf_threshold_;
        return true;
      }
      ++r.probes;
      if (st != occupied) {
        ++r.tag_rejects;
      } else {
        ++r.key_compares;
        if (key_equals(ovf_payload_[idx], words)) {
          bump(ovf_payload_[idx], edge_out, edge_in);
          r.overflow_hit = true;
          return true;
        }
      }
      idx = (idx + 1) & ovf_mask_;
    }
    want_migration = true;
    return false;
  }

  /// Migration flavour of the overflow insert: places a full entry
  /// (key + counters), known absent, into the overflow region. Pre:
  /// ovf_mutex_ held. Returns false when every overflow slot holds
  /// another key. No threshold accounting — the adopted ovf_size_ is
  /// re-checked against the threshold by the first post-swap overflow
  /// upsert, which re-triggers a doubling if migration left the region
  /// past it.
  bool migrate_into_overflow_locked(const VertexEntry<W>& e,
                                    std::span<const std::uint64_t, W> words,
                                    std::uint8_t occupied,
                                    std::uint64_t hash) {
    std::uint64_t idx = hash & ovf_mask_;
    for (std::uint64_t attempt = 0; attempt <= ovf_mask_; ++attempt) {
      if (ovf_meta_[idx].load(std::memory_order_relaxed) == kEmpty) {
        Payload& slot = ovf_payload_[idx];
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        for (int i = 0; i < 8; ++i) {
          slot.edges[i].store(e.edges[i], std::memory_order_relaxed);
        }
        slot.coverage.store(e.coverage, std::memory_order_relaxed);
        ovf_meta_[idx].store(occupied, std::memory_order_release);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        ++ovf_size_;
        return true;
      }
      idx = (idx + 1) & ovf_mask_;
    }
    return false;
  }

  /// (Re)sizes the overflow region and displacement bound for the
  /// current main capacity. Constructor only — finalize_migration
  /// adopts the target's already-populated overflow region instead.
  void init_growth_arrays() {
    bound_.store(effective_bound(), std::memory_order_release);
    const auto want = static_cast<std::uint64_t>(
        growth_.overflow_fraction * static_cast<double>(capacity()));
    std::uint64_t ovf = next_pow2(want < 16 ? 16 : want);
    if (ovf > capacity()) ovf = capacity();
    ovf_meta_ = std::vector<std::atomic<std::uint8_t>>(ovf);
    ovf_payload_ = std::vector<Payload>(ovf);
    ovf_mask_ = ovf - 1;
    ovf_size_ = 0;
    ovf_threshold_ = static_cast<std::uint64_t>(
        growth_.migration_threshold * static_cast<double>(ovf));
    if (ovf_threshold_ < 1) ovf_threshold_ = 1;
    if (ovf_threshold_ > ovf) ovf_threshold_ = ovf;
  }

  /// The configured displacement bound rounded up to whole groups of
  /// the current backend and clamped to capacity. Insert, lookup and
  /// the SIMT kernel all stop exactly here — the XOR invariant (a key
  /// lives in main within the bound, or in overflow, never both) needs
  /// the boundary to be the same for every prober of this table.
  std::uint64_t effective_bound() const noexcept {
    const std::uint64_t cap = capacity();
    const std::uint64_t gw = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(probe::group_width(simd_level_)), cap);
    const std::uint64_t raw =
        growth_.max_displacement == 0
            ? cap
            : static_cast<std::uint64_t>(growth_.max_displacement);
    return std::min(cap, (std::min(raw, cap) + gw - 1) / gw * gw);
  }

  /// Publishes the array pointers + mask for the ungated readers
  /// (prefetch_group, home_mask) that must not touch vector internals
  /// a migration swaps.
  void update_probe_shadow() noexcept {
    shadow_meta_.store(meta_.data(), std::memory_order_release);
    shadow_payload_.store(payload_.data(), std::memory_order_release);
    shadow_mask_.store(mask_, std::memory_order_release);
  }

  int k_;
  std::uint64_t mask_;
  simd::Level simd_level_;
  GrowthConfig growth_;
  FirstTouchArray<std::atomic<std::uint8_t>> meta_;
  FirstTouchArray<Payload> payload_;
  std::atomic<std::uint64_t> distinct_{0};

  // Race-free views of the main-array geometry for ungated readers.
  std::atomic<const std::atomic<std::uint8_t>*> shadow_meta_{nullptr};
  std::atomic<const Payload*> shadow_payload_{nullptr};
  std::atomic<std::uint64_t> shadow_mask_{0};

  // Bounded-growth state (growth_.enabled only).
  std::atomic<std::uint64_t> bound_{0};
  std::vector<std::atomic<std::uint8_t>> ovf_meta_;
  std::vector<Payload> ovf_payload_;
  std::uint64_t ovf_mask_ = 0;
  std::uint64_t ovf_size_ = 0;       // guarded by ovf_mutex_
  std::uint64_t ovf_threshold_ = 0;  // occupancy that triggers doubling
  mutable std::mutex ovf_mutex_;

  // Migration machinery (see the gate note above).
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<int> growth_state_{kStateNormal};
  mutable std::atomic<std::int64_t> ops_{0};
  std::atomic<int> migrators_{0};
  std::unique_ptr<ConcurrentKmerTable> next_;
  std::atomic<std::uint64_t> migrate_cursor_{0};
  std::atomic<std::uint64_t> chunks_done_{0};
  std::uint64_t chunks_total_ = 0;
};

static_assert(GraphKmerTableLike<ConcurrentKmerTable<1>>,
              "the production table must satisfy the shared concept");

}  // namespace parahash::concurrent
