// Concurrent open-addressing hash table for De Bruijn graph vertices.
//
// This is the paper's core data structure (Sec. III-C): ONE table shared
// by all threads, entries of the form <vertex, list of edge counts>, with
// multi-word keys (wider than a machine word, unlike CAS-per-entry GPU
// tables). Concurrency follows the paper's two observations:
//
//  1. The number of distinct vertices is predictable (Property 1), so the
//     table is allocated once at full size and never resized mid-build.
//  2. Each bucket sees a one-insertion / many-updates pattern, so only
//     the insertion of the multi-word key needs mutual exclusion. A
//     3-state flag per slot implements that *state transfer*:
//
//        empty --CAS--> locked --release-store--> occupied
//
//     The winner of the CAS writes the key while the slot is `locked`;
//     everyone else spins only for that short window. Once `occupied`,
//     the key is immutable and read lock-free; all counter updates are
//     plain atomic increments. This confines locking to one event per
//     distinct vertex — with ~5x duplication that removes ~80% of the
//     key locking a lock-per-access scheme would do (paper Sec. III-A).
//
// Cache-conscious layout: the state byte doubles as a key fingerprint
// and lives in its own dense metadata array, separate from the fat
// payload (key words + 9 counters):
//
//     metadata byte     0x00 = empty
//                       0x01 = locked (key words being written)
//                       0b10tttttt = occupied, t = 6-bit key tag
//
// A probe that walks over slots held by OTHER keys usually resolves from
// the metadata byte alone: an occupied byte whose tag differs from the
// probing key's tag cannot hold that key, so the probe advances without
// touching the payload. With one byte per slot, a 64-byte cache line
// answers 64 probe steps, versus ~1 for the fat-slot layout
// (concurrent/fatslot_table.h keeps the old layout for the ablation
// bench). Tag collisions between distinct keys are resolved by the full
// key compare, so the table stays exact.
//
// Memory ordering: the key words are stored relaxed *before* the release
// store of `occupied|tag` on the metadata byte; readers acquire-load the
// metadata before touching the key, which transfers visibility of the
// key words (happens-before via the metadata byte). Tag-mismatch skips
// never read the payload, so they need no ordering at all.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"

namespace parahash::concurrent {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Indices into a slot's 8 edge counters. Counters 0..3 are outgoing
/// edges (next base, relative to the canonical orientation), 4..7 are
/// incoming edges (previous base). With (K-1) bases shared between
/// adjacent vertices, one base identifies the neighbour (Sec. III-C2).
inline constexpr int kEdgeOut = 0;
inline constexpr int kEdgeIn = 4;

/// A decoded snapshot of one occupied slot.
template <int W>
struct VertexEntry {
  Kmer<W> kmer;                        ///< canonical vertex
  std::uint32_t coverage = 0;          ///< number of kmer occurrences
  std::array<std::uint32_t, 8> edges{};  ///< out[0..3], in[4..7] weights

  std::uint32_t out_weight(int base) const { return edges[kEdgeOut + base]; }
  std::uint32_t in_weight(int base) const { return edges[kEdgeIn + base]; }
  int out_degree() const {
    int d = 0;
    for (int b = 0; b < 4; ++b) d += edges[kEdgeOut + b] > 0;
    return d;
  }
  int in_degree() const {
    int d = 0;
    for (int b = 0; b < 4; ++b) d += edges[kEdgeIn + b] > 0;
    return d;
  }
};

/// Result of a single add(): probe counts and whether the call inserted
/// a new vertex. Callers accumulate these into build statistics without
/// putting extra atomics on the hot path. Probes over foreign slots
/// split into tag rejects (resolved from the metadata byte alone) and
/// full multi-word key compares (tag matched, payload read).
struct AddResult {
  std::uint32_t probes = 0;
  std::uint32_t tag_rejects = 0;   ///< occupied slots skipped by tag alone
  std::uint32_t key_compares = 0;  ///< full key compares (incl. final hit)
  bool inserted = false;
  bool waited_on_lock = false;
};

/// Aggregate statistics a builder can accumulate from AddResults.
struct TableStats {
  std::uint64_t adds = 0;
  std::uint64_t inserts = 0;
  std::uint64_t probes = 0;
  std::uint64_t tag_rejects = 0;
  std::uint64_t key_compares = 0;
  std::uint64_t lock_waits = 0;

  void absorb(const AddResult& r) noexcept {
    ++adds;
    inserts += r.inserted ? 1 : 0;
    probes += r.probes;
    tag_rejects += r.tag_rejects;
    key_compares += r.key_compares;
    lock_waits += r.waited_on_lock ? 1 : 0;
  }
  void merge(const TableStats& other) noexcept {
    adds += other.adds;
    inserts += other.inserts;
    probes += other.probes;
    tag_rejects += other.tag_rejects;
    key_compares += other.key_compares;
    lock_waits += other.lock_waits;
  }

  /// Share of foreign-slot probes the 6-bit tag resolved without a
  /// payload read. The denominator is every probe step that had to
  /// disambiguate an occupied slot (tag reject or full compare).
  double tag_filter_rate() const noexcept {
    const std::uint64_t decided = tag_rejects + key_compares;
    return decided == 0
               ? 0.0
               : static_cast<double>(tag_rejects) /
                     static_cast<double>(decided);
  }
};

template <int W>
class ConcurrentKmerTable {
 public:
  /// Metadata byte states; any byte with kOccupiedBit set is occupied
  /// and carries the 6-bit tag in its low bits.
  static constexpr std::uint8_t kEmpty = 0x00;
  static constexpr std::uint8_t kLocked = 0x01;
  static constexpr std::uint8_t kOccupiedBit = 0x80;
  static constexpr std::uint8_t kTagMask = 0x3F;

  /// The fat per-slot payload, touched only when the metadata byte says
  /// this slot may hold the probing key.
  struct Payload {
    std::array<std::atomic<std::uint64_t>, W> key{};
    std::array<std::atomic<std::uint32_t>, 8> edges{};
    std::atomic<std::uint32_t> coverage{0};
  };

  /// Bytes one slot occupies across both arrays (metadata + payload);
  /// device-memory sizing and the Table-II bench use this.
  static constexpr std::uint64_t bytes_per_slot() noexcept {
    return sizeof(Payload) + sizeof(std::atomic<std::uint8_t>);
  }

  /// The occupied metadata byte for a key with this hash. The tag comes
  /// from the hash's TOP bits so it stays independent of the slot index
  /// (low bits) at any realistic capacity.
  static constexpr std::uint8_t occupied_byte(std::uint64_t hash) noexcept {
    return static_cast<std::uint8_t>(kOccupiedBit |
                                     ((hash >> 58) & kTagMask));
  }

  /// Allocates a table with at least `min_slots` slots (rounded up to a
  /// power of two) for kmers of length k.
  ConcurrentKmerTable(std::uint64_t min_slots, int k)
      : k_(k),
        meta_(next_pow2(min_slots < 2 ? 2 : min_slots)),
        payload_(meta_.size()) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK,
                       "k out of range for this word count");
    mask_ = meta_.size() - 1;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return meta_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return meta_.size() * sizeof(std::atomic<std::uint8_t>) +
           payload_.size() * sizeof(Payload);
  }

  /// Number of distinct vertices inserted so far.
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  double load_factor() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  /// Prefetches the home slot (metadata byte and payload) for a key with
  /// this hash. The batched upsert front-end issues these a window ahead
  /// of the matching add_hashed() calls so the dependent loads overlap.
  void prefetch(std::uint64_t hash) const noexcept {
    const std::uint64_t idx = hash & mask_;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&meta_[idx], 1, 3);
    __builtin_prefetch(&payload_[idx], 1, 3);
#endif
  }

  /// Records one occurrence of canonical kmer `canon`, bumping the
  /// outgoing edge counter `edge_out` and/or incoming counter `edge_in`
  /// (base codes 0..3; pass -1 for none). Thread-safe; wait-free except
  /// while another thread holds a slot in the `locked` state.
  ///
  /// Throws TableFullError when every slot is occupied by other keys.
  AddResult add(const Kmer<W>& canon, int edge_out, int edge_in) {
    return add_hashed(canon, canon.hash(), edge_out, edge_in);
  }

  /// add() with the key hash precomputed (the batched front-end hashes
  /// at prefetch time and reuses the value here).
  AddResult add_hashed(const Kmer<W>& canon, std::uint64_t hash,
                       int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      std::atomic<std::uint8_t>& meta = meta_[idx];
      std::uint8_t st = meta.load(std::memory_order_acquire);
      ++result.probes;

      if (st == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (meta.compare_exchange_strong(expected, kLocked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          Payload& slot = payload_[idx];
          for (int w = 0; w < W; ++w) {
            slot.key[w].store(words[w], std::memory_order_relaxed);
          }
          meta.store(occupied, std::memory_order_release);
          distinct_.fetch_add(1, std::memory_order_relaxed);
          bump(slot, edge_out, edge_in);
          result.inserted = true;
          return result;
        }
        st = expected;  // lost the race; fall through with the new state
      }

      if (st == kLocked) {
        result.waited_on_lock = true;
        do {
          cpu_relax();
          st = meta.load(std::memory_order_acquire);
        } while (st == kLocked);
      }

      // st is occupied: a tag mismatch proves a different key without
      // reading the payload; a tag match falls back to the full compare.
      if (st != occupied) {
        ++result.tag_rejects;
      } else {
        ++result.key_compares;
        if (key_equals(payload_[idx], words)) {
          bump(payload_[idx], edge_out, edge_in);
          return result;
        }
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("concurrent kmer table is full (capacity " +
                         std::to_string(capacity()) + ")");
  }

  /// Result of one probe step (see probe_step).
  enum class ProbeOutcome {
    kDone,     ///< inserted or updated here
    kAdvance,  ///< slot holds a different key: move to the next slot
    kRetry,    ///< slot is locked by another thread: retry this slot
  };

  /// One step of add() at slot `index` — the building block of the
  /// warp-synchronous SIMT kernel (device/simt_kernel.h), which needs
  /// to interleave many probes in lockstep. Semantics match one
  /// iteration of add()'s probe loop, except a locked slot returns
  /// kRetry instead of spinning. A tag mismatch advances without a
  /// payload read, exactly like the scalar path.
  ProbeOutcome probe_step(std::uint64_t index, const Kmer<W>& canon,
                          int edge_out, int edge_in) {
    const std::uint64_t idx = index & mask_;
    std::atomic<std::uint8_t>& meta = meta_[idx];
    std::uint8_t st = meta.load(std::memory_order_acquire);
    if (st == kEmpty) {
      std::uint8_t expected = kEmpty;
      if (meta.compare_exchange_strong(expected, kLocked,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        Payload& slot = payload_[idx];
        const auto words = canon.words();
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        meta.store(occupied_byte(canon.hash()), std::memory_order_release);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        bump(slot, edge_out, edge_in);
        return ProbeOutcome::kDone;
      }
      st = expected;
    }
    if (st == kLocked) return ProbeOutcome::kRetry;
    if (st == occupied_byte(canon.hash()) &&
        key_equals(payload_[idx], canon.words())) {
      bump(payload_[idx], edge_out, edge_in);
      return ProbeOutcome::kDone;
    }
    return ProbeOutcome::kAdvance;
  }

  /// Looks up a canonical kmer. Thread-safe against concurrent adds; the
  /// returned snapshot is a consistent-enough view for queries/tests.
  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    const std::uint64_t hash = canon.hash();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      std::uint8_t st = meta_[idx].load(std::memory_order_acquire);
      if (st == kEmpty) return std::nullopt;
      if (st == kLocked) {
        do {
          cpu_relax();
          st = meta_[idx].load(std::memory_order_acquire);
        } while (st == kLocked);
      }
      if (st == occupied && key_equals(payload_[idx], words)) {
        return snapshot(idx);
      }
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  /// Visits every occupied slot. Call only after all writers finished.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t idx = 0; idx < meta_.size(); ++idx) {
      if ((meta_[idx].load(std::memory_order_acquire) & kOccupiedBit) !=
          0) {
        fn(snapshot(idx));
      }
    }
  }

  /// Rebuilds this table's contents into a table twice the capacity and
  /// returns it. Single-threaded; exists as the *fallback* path whose
  /// cost the ablation bench measures — ParaHash's Property-1 sizing is
  /// designed to make this never run. (Slots hold atomics, so the table
  /// itself is neither copyable nor movable; hand back a unique_ptr.)
  std::unique_ptr<ConcurrentKmerTable> grown() const {
    auto bigger = std::make_unique<ConcurrentKmerTable>(capacity() * 2, k_);
    for (std::uint64_t idx = 0; idx < meta_.size(); ++idx) {
      if ((meta_[idx].load(std::memory_order_acquire) & kOccupiedBit) ==
          0) {
        continue;
      }
      VertexEntry<W> e = snapshot(idx);
      Payload& dst = bigger->locate_for_insert(e.kmer);
      for (int i = 0; i < 8; ++i) {
        dst.edges[i].store(e.edges[i], std::memory_order_relaxed);
      }
      dst.coverage.store(e.coverage, std::memory_order_relaxed);
    }
    return bigger;
  }

 private:
  static void bump(Payload& slot, int edge_out, int edge_in) noexcept {
    slot.coverage.fetch_add(1, std::memory_order_relaxed);
    if (edge_out >= 0) {
      slot.edges[kEdgeOut + edge_out].fetch_add(1, std::memory_order_relaxed);
    }
    if (edge_in >= 0) {
      slot.edges[kEdgeIn + edge_in].fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool key_equals(const Payload& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w].load(std::memory_order_relaxed) != words[w]) {
        return false;
      }
    }
    return true;
  }

  VertexEntry<W> snapshot(std::uint64_t idx) const {
    const Payload& slot = payload_[idx];
    VertexEntry<W> entry;
    std::array<std::uint64_t, W> words;
    for (int w = 0; w < W; ++w) {
      words[w] = slot.key[w].load(std::memory_order_relaxed);
    }
    entry.kmer = Kmer<W>::from_words(words, k_);
    entry.coverage = slot.coverage.load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      entry.edges[i] = slot.edges[i].load(std::memory_order_relaxed);
    }
    return entry;
  }

  /// Insert-only probe used by grown(); the key must not exist yet.
  Payload& locate_for_insert(const Kmer<W>& kmer) {
    const auto words = kmer.words();
    const std::uint64_t hash = kmer.hash();
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      if (meta_[idx].load(std::memory_order_relaxed) == kEmpty) {
        Payload& slot = payload_[idx];
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        meta_[idx].store(occupied_byte(hash), std::memory_order_relaxed);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("grown table full — should be unreachable");
  }

  int k_;
  std::uint64_t mask_;
  std::vector<std::atomic<std::uint8_t>> meta_;
  std::vector<Payload> payload_;
  std::atomic<std::uint64_t> distinct_{0};
};

}  // namespace parahash::concurrent
