// Concurrent open-addressing hash table for De Bruijn graph vertices.
//
// This is the paper's core data structure (Sec. III-C): ONE table shared
// by all threads, entries of the form <vertex, list of edge counts>, with
// multi-word keys (wider than a machine word, unlike CAS-per-entry GPU
// tables). Concurrency follows the paper's two observations:
//
//  1. The number of distinct vertices is predictable (Property 1), so the
//     table is allocated once at full size and never resized mid-build.
//  2. Each bucket sees a one-insertion / many-updates pattern, so only
//     the insertion of the multi-word key needs mutual exclusion. A
//     3-state flag per slot implements that *state transfer*:
//
//        empty --CAS--> locked --release-store--> occupied
//
//     The winner of the CAS writes the key while the slot is `locked`;
//     everyone else spins only for that short window. Once `occupied`,
//     the key is immutable and read lock-free; all counter updates are
//     plain atomic increments. This confines locking to one event per
//     distinct vertex — with ~5x duplication that removes ~80% of the
//     key locking a lock-per-access scheme would do (paper Sec. III-A).
//
// Cache-conscious layout: the state byte doubles as a key fingerprint
// and lives in its own dense metadata array, separate from the fat
// payload (key words + 9 counters):
//
//     metadata byte     0x00 = empty
//                       0x01 = locked (key words being written)
//                       0b10tttttt = occupied, t = 6-bit key tag
//
// Group probing: because the metadata bytes are dense, a probe cluster
// is tested as a GROUP — one 16/32-byte SIMD compare classifies every
// lane of the cluster against `occupied|tag`, `empty` and `locked` at
// once (concurrent/probe_group.h; backend picked by runtime dispatch,
// util/simd.h). The probe loop walks only the interesting lanes of each
// scan, in probe order, so foreign slots are rejected wholesale without
// per-byte loads or branches and the table contents stay bit-identical
// to per-slot linear probing (kept as add_hashed_slotwise — the oracle
// path the equivalence tests and the ablation bench compare against).
//
// Memory ordering: the key words are stored relaxed *before* the release
// store of `occupied|tag` on the metadata byte; readers acquire-load the
// metadata before touching the key, which transfers visibility of the
// key words (happens-before via the metadata byte). Group scans observe
// the bytes through an acquire fence (or per-byte acquire loads in the
// scalar backend) and re-validate every action through a real atomic —
// the claim CAS, or the immutability of occupied bytes. Tag-mismatch
// skips never read the payload, so they need no ordering at all.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "concurrent/probe_group.h"
#include "concurrent/table_concept.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"
#include "util/simd.h"

namespace parahash::concurrent {

template <int W>
class ConcurrentKmerTable {
 public:
  /// Metadata byte states; any byte with kOccupiedBit set is occupied
  /// and carries the 6-bit tag in its low bits.
  static constexpr std::uint8_t kEmpty = 0x00;
  static constexpr std::uint8_t kLocked = 0x01;
  static constexpr std::uint8_t kOccupiedBit = 0x80;
  static constexpr std::uint8_t kTagMask = 0x3F;

  /// The fat per-slot payload, touched only when the metadata byte says
  /// this slot may hold the probing key.
  struct Payload {
    std::array<std::atomic<std::uint64_t>, W> key{};
    std::array<std::atomic<std::uint32_t>, 8> edges{};
    std::atomic<std::uint32_t> coverage{0};
  };

  /// One group-granular probing step (see probe_group_step).
  struct GroupStep {
    ProbeOutcome outcome = ProbeOutcome::kAdvance;
    int width = 0;  ///< lanes the scan covered; advance by this on kAdvance
  };

  /// Bytes one slot occupies across both arrays (metadata + payload);
  /// device-memory sizing and the Table-II bench use this.
  static constexpr std::uint64_t bytes_per_slot() noexcept {
    return sizeof(Payload) + sizeof(std::atomic<std::uint8_t>);
  }

  /// The occupied metadata byte for a key with this hash. The tag comes
  /// from the hash's TOP bits so it stays independent of the slot index
  /// (low bits) at any realistic capacity.
  static constexpr std::uint8_t occupied_byte(std::uint64_t hash) noexcept {
    return static_cast<std::uint8_t>(kOccupiedBit |
                                     ((hash >> 58) & kTagMask));
  }

  /// Allocates a table with at least `min_slots` slots (rounded up to a
  /// power of two) for kmers of length k.
  ConcurrentKmerTable(std::uint64_t min_slots, int k)
      : k_(k),
        simd_level_(simd::active()),
        meta_(next_pow2(min_slots < 2 ? 2 : min_slots)),
        payload_(meta_.size()) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK,
                       "k out of range for this word count");
    mask_ = meta_.size() - 1;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return meta_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return meta_.size() * sizeof(std::atomic<std::uint8_t>) +
           payload_.size() * sizeof(Payload);
  }

  /// Number of distinct vertices inserted so far.
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  double load_factor() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  /// The scan backend this table probes with. Snapshotted from the
  /// process-wide dispatch at construction; the setter (clamped to what
  /// the build and CPU support) exists for the backend-equivalence
  /// tests and the ablation benches.
  simd::Level simd_level() const noexcept { return simd_level_; }
  void set_simd_level(simd::Level level) noexcept {
    const simd::Level ceiling = simd::detect();
    simd_level_ = static_cast<int>(level) < static_cast<int>(ceiling)
                      ? level
                      : ceiling;
  }

  /// Prefetches the probe GROUP for a key with this hash: the metadata
  /// block a scan will load (which may straddle two cache lines) plus
  /// the home payload slot. The batched upsert front-end issues these a
  /// window ahead of the matching add_hashed() calls so the dependent
  /// loads overlap.
  void prefetch_group(std::uint64_t hash) const noexcept {
    const std::uint64_t idx = hash & mask_;
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t last_lane =
        static_cast<std::uint64_t>(probe::group_width(simd_level_)) - 1;
    __builtin_prefetch(&meta_[idx], 1, 3);
    __builtin_prefetch(&meta_[(idx + last_lane) & mask_], 1, 3);
    __builtin_prefetch(&payload_[idx], 1, 3);
#endif
  }

  /// Records one occurrence of canonical kmer `canon`, bumping the
  /// outgoing edge counter `edge_out` and/or incoming counter `edge_in`
  /// (base codes 0..3; pass -1 for none). Thread-safe; wait-free except
  /// while another thread holds a slot in the `locked` state.
  ///
  /// Throws TableFullError when every slot is occupied by other keys.
  AddResult add(const Kmer<W>& canon, int edge_out, int edge_in) {
    return add_hashed(canon, canon.hash(), edge_out, edge_in);
  }

  /// add() with the key hash precomputed (the batched front-end hashes
  /// at prefetch time and reuses the value here). Group-probing engine:
  /// each iteration scans one metadata block and resolves inside it or
  /// advances a whole group.
  AddResult add_hashed(const Kmer<W>& canon, std::uint64_t hash,
                       int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t base = hash & mask_;
    std::uint64_t scanned = 0;
    do {
      const GroupStep step = walk_group</*kSpinOnLocked=*/true>(
          base, words, occupied, edge_out, edge_in, result);
      if (step.outcome == ProbeOutcome::kDone) return result;
      base = (base + static_cast<std::uint64_t>(step.width)) & mask_;
      scanned += static_cast<std::uint64_t>(step.width);
    } while (scanned <= mask_);
    throw TableFullError("concurrent kmer table is full (capacity " +
                         std::to_string(capacity()) + ")");
  }

  /// The PR-1 per-slot probe loop, kept verbatim as the reference path:
  /// the equivalence tests pit every scan backend against it, and the
  /// group-scan microbench measures what block probing buys over it.
  /// Identical results to add_hashed(); only the probing differs.
  AddResult add_hashed_slotwise(const Kmer<W>& canon, std::uint64_t hash,
                                int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      std::atomic<std::uint8_t>& meta = meta_[idx];
      std::uint8_t st = meta.load(std::memory_order_acquire);
      ++result.probes;

      if (st == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (meta.compare_exchange_strong(expected, kLocked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          publish_claimed_words(idx, words, occupied, edge_out, edge_in);
          result.inserted = true;
          return result;
        }
        st = expected;  // lost the race; fall through with the new state
      }

      if (st == kLocked) {
        result.waited_on_lock = true;
        do {
          cpu_relax();
          st = meta.load(std::memory_order_acquire);
        } while (st == kLocked);
      }

      // st is occupied: a tag mismatch proves a different key without
      // reading the payload; a tag match falls back to the full compare.
      if (st != occupied) {
        ++result.tag_rejects;
      } else {
        ++result.key_compares;
        if (key_equals(payload_[idx], words)) {
          bump(payload_[idx], edge_out, edge_in);
          return result;
        }
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("concurrent kmer table is full (capacity " +
                         std::to_string(capacity()) + ")");
  }

  // ---- The group-oriented probe API ---------------------------------
  //
  // Three callers consume it: add_hashed() above, the BatchedUpserter
  // prefetch window (whole-group prefetches), and the warp-synchronous
  // SIMT kernel (device/simt_kernel.h), which takes one group scan per
  // lane step via probe_group_step().

  /// Scans the metadata group starting at probe index `index` and
  /// classifies every lane against `occupied` (= occupied_byte(hash) of
  /// the probing key). Lane 0 is the slot at `index`; bit order is
  /// probe order.
  probe::GroupScan probe_group(std::uint64_t index,
                               std::uint8_t occupied) const noexcept {
    return probe::scan_group(meta_.data(), mask_, index & mask_, occupied,
                             simd_level_);
  }

  /// The CAS step of the state-transfer protocol: tries to move the
  /// slot empty -> locked. On success the caller OWNS the slot and must
  /// publish_claimed() it immediately — a locked slot blocks every
  /// other prober walking past it.
  bool claim_lane(std::uint64_t slot) noexcept {
    std::uint8_t expected = kEmpty;
    return meta_[slot & mask_].compare_exchange_strong(
        expected, kLocked, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Completes a successful claim_lane(): writes the key words while
  /// the slot is locked, release-publishes `occupied|tag`, and records
  /// the first occurrence.
  void publish_claimed(std::uint64_t slot, const Kmer<W>& canon,
                       std::uint64_t hash, int edge_out, int edge_in) {
    publish_claimed_words(slot & mask_, canon.words(), occupied_byte(hash),
                          edge_out, edge_in);
  }

  /// Acquire-loads one slot's metadata byte (for re-resolving a lane
  /// whose scanned state went stale, e.g. after a lost claim race).
  std::uint8_t lane_state(std::uint64_t slot) const noexcept {
    return meta_[slot & mask_].load(std::memory_order_acquire);
  }

  /// One group-granular step of add() — the building block of the
  /// warp-synchronous SIMT kernel, which interleaves many probes in
  /// lockstep. Scans the group at `index` and tries to resolve the
  /// upsert inside it; a locked lane (or a lost claim race) returns
  /// kRetry instead of spinning, so the warp can advance its other
  /// lanes and rescan this group next round. On kAdvance the caller
  /// moves `index` forward by the returned width.
  GroupStep probe_group_step(std::uint64_t index, const Kmer<W>& canon,
                             int edge_out, int edge_in, AddResult& stats) {
    const auto words = canon.words();
    return walk_group</*kSpinOnLocked=*/false>(
        index & mask_, words, occupied_byte(canon.hash()), edge_out,
        edge_in, stats);
  }

  /// Number of slots currently in the transient `locked` state. Zero
  /// whenever no insertion is mid-flight — in particular after any
  /// kernel unwinds, even via TableFullError (regression-tested).
  std::uint64_t locked_slots() const noexcept {
    std::uint64_t n = 0;
    for (const auto& m : meta_) {
      n += m.load(std::memory_order_acquire) == kLocked;
    }
    return n;
  }

  /// Looks up a canonical kmer. Thread-safe against concurrent adds; the
  /// returned snapshot is a consistent-enough view for queries/tests.
  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    const std::uint64_t hash = canon.hash();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      std::uint8_t st = meta_[idx].load(std::memory_order_acquire);
      if (st == kEmpty) return std::nullopt;
      if (st == kLocked) {
        do {
          cpu_relax();
          st = meta_[idx].load(std::memory_order_acquire);
        } while (st == kLocked);
      }
      if (st == occupied && key_equals(payload_[idx], words)) {
        return snapshot(idx);
      }
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  /// Visits every occupied slot. Call only after all writers finished.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t idx = 0; idx < meta_.size(); ++idx) {
      if ((meta_[idx].load(std::memory_order_acquire) & kOccupiedBit) !=
          0) {
        fn(snapshot(idx));
      }
    }
  }

  /// Rebuilds this table's contents into a table twice the capacity and
  /// returns it. Single-threaded; exists as the *fallback* path whose
  /// cost the ablation bench measures — ParaHash's Property-1 sizing is
  /// designed to make this never run. (Slots hold atomics, so the table
  /// itself is neither copyable nor movable; hand back a unique_ptr.)
  std::unique_ptr<ConcurrentKmerTable> grown() const {
    auto bigger = std::make_unique<ConcurrentKmerTable>(capacity() * 2, k_);
    for (std::uint64_t idx = 0; idx < meta_.size(); ++idx) {
      if ((meta_[idx].load(std::memory_order_acquire) & kOccupiedBit) ==
          0) {
        continue;
      }
      VertexEntry<W> e = snapshot(idx);
      Payload& dst = bigger->locate_for_insert(e.kmer);
      for (int i = 0; i < 8; ++i) {
        dst.edges[i].store(e.edges[i], std::memory_order_relaxed);
      }
      dst.coverage.store(e.coverage, std::memory_order_relaxed);
    }
    return bigger;
  }

 private:
  static void bump(Payload& slot, int edge_out, int edge_in) noexcept {
    slot.coverage.fetch_add(1, std::memory_order_relaxed);
    if (edge_out >= 0) {
      slot.edges[kEdgeOut + edge_out].fetch_add(1, std::memory_order_relaxed);
    }
    if (edge_in >= 0) {
      slot.edges[kEdgeIn + edge_in].fetch_add(1, std::memory_order_relaxed);
    }
  }

  void publish_claimed_words(std::uint64_t idx,
                             std::span<const std::uint64_t, W> words,
                             std::uint8_t occupied, int edge_out,
                             int edge_in) {
    Payload& slot = payload_[idx];
    for (int w = 0; w < W; ++w) {
      slot.key[w].store(words[w], std::memory_order_relaxed);
    }
    meta_[idx].store(occupied, std::memory_order_release);
    distinct_.fetch_add(1, std::memory_order_relaxed);
    bump(slot, edge_out, edge_in);
  }

  /// The heart of the engine: scan one group, then walk only its
  /// interesting lanes in probe order. Mismatched occupied lanes are
  /// never touched individually — they are counted wholesale from the
  /// scan mask when the walk resolves or exhausts the group. Probe
  /// order is preserved exactly (first empty-or-matching lane wins), so
  /// contents match the slotwise path bit for bit; an empty lane
  /// observed mid-group proves the key lives at no later lane, because
  /// slots never return to empty.
  template <bool kSpinOnLocked>
  GroupStep walk_group(std::uint64_t base,
                       std::span<const std::uint64_t, W> words,
                       std::uint8_t occupied, int edge_out, int edge_in,
                       AddResult& r) {
    const probe::GroupScan g = probe_group(base, occupied);
    ++r.group_scans;
    const std::uint32_t mismatch = g.mismatch();
    std::uint32_t interesting = g.interesting();

    // Counts the mismatch lanes the walk skipped over before resolving
    // at `lane` (or the whole group on exhaustion).
    const auto skip_mismatches = [&](std::uint32_t upto_mask) {
      const int skipped =
          std::popcount(mismatch & upto_mask);
      r.tag_rejects += static_cast<std::uint32_t>(skipped);
      r.lanes_rejected += static_cast<std::uint32_t>(skipped);
      r.probes += static_cast<std::uint32_t>(skipped);
    };
    const auto below = [](int lane) -> std::uint32_t {
      return lane >= 32 ? 0xffffffffu : ((1u << lane) - 1u);
    };

    while (interesting != 0) {
      const int lane = std::countr_zero(interesting);
      interesting &= interesting - 1;
      const std::uint64_t slot =
          (base + static_cast<std::uint64_t>(lane)) & mask_;
      std::uint8_t st;
      if ((g.empty >> lane) & 1u) {
        if (claim_lane(slot)) {
          publish_claimed_words(slot, words, occupied, edge_out, edge_in);
          ++r.probes;
          r.inserted = true;
          skip_mismatches(below(lane));
          return {ProbeOutcome::kDone, g.width};
        }
        // Lost the claim race: the lane changed under us; re-read it.
        st = lane_state(slot);
      } else if ((g.locked >> lane) & 1u) {
        st = kLocked;
      } else {
        // Match lane. Occupied bytes are immutable, so the scanned
        // value needs no re-read before the payload compare.
        st = occupied;
      }

      if (st == kLocked) {
        if constexpr (!kSpinOnLocked) {
          // SIMT semantics: never stall the warp on one lane. Stats for
          // the skipped prefix are deferred to the resolving rescan.
          return {ProbeOutcome::kRetry, g.width};
        }
        r.waited_on_lock = true;
        do {
          cpu_relax();
          st = lane_state(slot);
        } while (st == kLocked);
      }

      // st is occupied here (locked only resolves forward).
      if (st != occupied) {
        ++r.tag_rejects;
        ++r.probes;
        continue;
      }
      ++r.key_compares;
      ++r.probes;
      if (key_equals(payload_[slot], words)) {
        bump(payload_[slot], edge_out, edge_in);
        skip_mismatches(below(lane));
        return {ProbeOutcome::kDone, g.width};
      }
    }
    skip_mismatches(g.lane_mask());
    return {ProbeOutcome::kAdvance, g.width};
  }

  bool key_equals(const Payload& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w].load(std::memory_order_relaxed) != words[w]) {
        return false;
      }
    }
    return true;
  }

  VertexEntry<W> snapshot(std::uint64_t idx) const {
    const Payload& slot = payload_[idx];
    VertexEntry<W> entry;
    std::array<std::uint64_t, W> words;
    for (int w = 0; w < W; ++w) {
      words[w] = slot.key[w].load(std::memory_order_relaxed);
    }
    entry.kmer = Kmer<W>::from_words(words, k_);
    entry.coverage = slot.coverage.load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      entry.edges[i] = slot.edges[i].load(std::memory_order_relaxed);
    }
    return entry;
  }

  /// Insert-only probe used by grown(); the key must not exist yet.
  Payload& locate_for_insert(const Kmer<W>& kmer) {
    const auto words = kmer.words();
    const std::uint64_t hash = kmer.hash();
    std::uint64_t idx = hash & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      if (meta_[idx].load(std::memory_order_relaxed) == kEmpty) {
        Payload& slot = payload_[idx];
        for (int w = 0; w < W; ++w) {
          slot.key[w].store(words[w], std::memory_order_relaxed);
        }
        meta_[idx].store(occupied_byte(hash), std::memory_order_relaxed);
        distinct_.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("grown table full — should be unreachable");
  }

  int k_;
  std::uint64_t mask_;
  simd::Level simd_level_;
  std::vector<std::atomic<std::uint8_t>> meta_;
  std::vector<Payload> payload_;
  std::atomic<std::uint64_t> distinct_{0};
};

static_assert(GraphKmerTableLike<ConcurrentKmerTable<1>>,
              "the production table must satisfy the shared concept");

}  // namespace parahash::concurrent
