// FrozenTableView: a read-optimized, immutable snapshot of one
// partition's k-mer table, built for the serving tier.
//
// The live ConcurrentKmerTable pays for write concurrency on every
// probe: the gate ticket, the generation check, the displacement bound,
// the locked-lane spin, and the main-XOR-overflow split. A query daemon
// answering millions of point lookups needs none of that — once Step 2
// publishes a partition the contents never change. Freezing re-packs
// the table for probe-only scans:
//
//   * main table and adopted overflow region are COMPACTED into one
//     open-addressed array (the overflow keys re-home by plain linear
//     probing, so a lookup is a single probe walk — no second region,
//     no mutex);
//   * metadata bytes are re-written with only two states, empty and
//     occupied|tag — the locked state and the migration generation
//     cannot occur, so the probe loop has no claim/retry/restart
//     branches at all;
//   * the load factor is chosen at freeze time (default 0.7), so a
//     table that grew past its Property-1 estimate is re-sized to its
//     REAL population, not the estimate.
//
// Probing reuses the same SIMD group-scan engine as the live table
// (concurrent/probe_group.h): one 16/32-byte compare classifies a whole
// cluster, and the first empty lane proves absence. The metadata array
// keeps the std::atomic<uint8_t> element type purely so scan_group can
// be shared; after the build (relaxed stores, single or externally
// synchronised writers) every access is a read.
//
// FrozenTableView satisfies GraphKmerTableLike so generic graph code
// (stats, conformance tests, drive_ops readers) treats it like any
// other table; add() on a frozen view throws Error — immutability is
// the contract, not a convention.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "concurrent/probe_group.h"
#include "concurrent/table_concept.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"
#include "util/simd.h"

namespace parahash::concurrent {

template <int W>
class FrozenTableView {
 public:
  static constexpr std::uint8_t kEmpty = 0x00;
  static constexpr std::uint8_t kOccupiedBit = 0x80;
  static constexpr std::uint8_t kTagMask = 0x3F;

  /// Same tag derivation as the live table (hash TOP bits), so a key's
  /// occupied byte is identical in both — parity tests compare probe
  /// behaviour like for like.
  static constexpr std::uint8_t occupied_byte(std::uint64_t hash) noexcept {
    return static_cast<std::uint8_t>(kOccupiedBit |
                                     ((hash >> 58) & kTagMask));
  }

  /// Non-atomic payload: key words plus the 9 counters, packed plain —
  /// a frozen slot is never written concurrently with a read.
  struct Slot {
    std::array<std::uint64_t, W> key{};
    std::uint32_t coverage = 0;
    std::array<std::uint32_t, 8> edges{};
  };

  /// An empty view sized for `expected` entries at load factor `alpha`.
  /// Fill with insert() (build phase, single writer or externally
  /// synchronised), then treat as immutable.
  explicit FrozenTableView(int k, std::uint64_t expected = 0,
                           double alpha = 0.7)
      : k_(k), simd_level_(simd::active()) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK,
                       "k out of range for this word count");
    PARAHASH_CHECK_MSG(alpha > 0.0 && alpha <= 1.0,
                       "freeze load factor must be in (0, 1]");
    std::uint64_t want = static_cast<std::uint64_t>(
        static_cast<double>(expected) / alpha);
    if (want < 2) want = 2;
    const std::uint64_t cap = std::bit_ceil(want);
    meta_ = std::vector<std::atomic<std::uint8_t>>(cap);
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  /// Freezes any table variant that exposes k()/size()/for_each —
  /// ConcurrentKmerTable's unified main+overflow view compacts into one
  /// array here. The source must be quiescent (all writers finished).
  template <typename Table>
  static FrozenTableView freeze(const Table& table, double alpha = 0.7) {
    FrozenTableView view(table.k(), table.size(), alpha);
    table.for_each(
        [&](const VertexEntry<W>& e) { view.insert(e); });
    return view;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return meta_.size(); }
  std::uint64_t size() const noexcept { return size_; }
  double load_factor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(capacity());
  }
  std::uint64_t memory_bytes() const noexcept {
    return meta_.size() * sizeof(std::atomic<std::uint8_t>) +
           slots_.size() * sizeof(Slot);
  }

  simd::Level simd_level() const noexcept { return simd_level_; }
  /// Backend override for the scalar/SSE2/AVX2 parity tests; clamped to
  /// what the build and CPU support.
  void set_simd_level(simd::Level level) noexcept {
    const simd::Level ceiling = simd::detect();
    simd_level_ = static_cast<int>(level) < static_cast<int>(ceiling)
                      ? level
                      : ceiling;
  }

  /// Build-phase insert (linear probing, no displacement bound). The
  /// view is sized for its population, so exhaustion means caller error.
  void insert(const VertexEntry<W>& e) {
    PARAHASH_CHECK_MSG(size_ < capacity(), "frozen view over-filled");
    const auto words = e.kmer.words();
    const std::uint64_t hash = e.kmer.hash();
    std::uint64_t idx = hash & mask_;
    while (meta_[idx].load(std::memory_order_relaxed) != kEmpty) {
      idx = (idx + 1) & mask_;
    }
    Slot& slot = slots_[idx];
    for (int w = 0; w < W; ++w) slot.key[w] = words[w];
    slot.coverage = e.coverage;
    slot.edges = e.edges;
    meta_[idx].store(occupied_byte(hash), std::memory_order_relaxed);
    ++size_;
  }

  /// KmerTableLike surface — a frozen view is immutable by contract.
  AddResult add(const Kmer<W>&, int, int) {
    throw Error("FrozenTableView is immutable: add() is not supported");
  }

  /// Point lookup via group scans: classify a whole metadata block,
  /// compare keys only on tag-match lanes, stop at the first empty lane
  /// (slots never empty out, so an empty proves absence). No locked
  /// lanes, no generation check, no overflow fallback.
  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    return find_hashed(canon, canon.hash());
  }

  /// find() with the hash precomputed — the batched front-end hashes at
  /// prefetch time and reuses the value here.
  std::optional<VertexEntry<W>> find_hashed(const Kmer<W>& canon,
                                            std::uint64_t hash) const {
    const auto words = canon.words();
    const std::uint8_t occupied = occupied_byte(hash);
    std::uint64_t base = hash & mask_;
    std::uint64_t scanned = 0;
    do {
      const probe::GroupScan g =
          probe::scan_group(meta_.data(), mask_, base, occupied,
                            simd_level_);
      // Walk interesting lanes in probe order; first empty or matching
      // key resolves. Locked lanes cannot exist in a frozen view.
      std::uint32_t interesting = g.match | g.empty;
      while (interesting != 0) {
        const int lane = std::countr_zero(interesting);
        interesting &= interesting - 1;
        if ((g.empty >> lane) & 1u) return std::nullopt;
        const std::uint64_t idx =
            (base + static_cast<std::uint64_t>(lane)) & mask_;
        if (key_equals(slots_[idx], words)) return snapshot(idx);
      }
      base = (base + static_cast<std::uint64_t>(g.width)) & mask_;
      scanned += static_cast<std::uint64_t>(g.width);
    } while (scanned <= mask_);
    return std::nullopt;
  }

  /// Membership without decoding the entry (the daemon's cheapest path).
  bool contains(const Kmer<W>& canon) const {
    return find_hashed(canon, canon.hash()).has_value();
  }

  /// Prefetches the probe group for a key with this hash — the batched
  /// query front-end issues these a window ahead so independent lookup
  /// misses overlap, the read-side twin of the upsert prefetch window.
  void prefetch(std::uint64_t hash) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t idx = hash & mask_;
    const std::uint64_t last_lane =
        static_cast<std::uint64_t>(probe::group_width(simd_level_)) - 1;
    __builtin_prefetch(meta_.data() + idx, 0, 3);
    __builtin_prefetch(meta_.data() + ((idx + last_lane) & mask_), 0, 3);
    __builtin_prefetch(slots_.data() + idx, 0, 3);
#endif
  }

  /// Batched lookup: hash everything, prefetch a window ahead, then
  /// resolve — the group-probe/prefetch front-end the request queue
  /// drains query batches through. `out` is resized to match `keys`.
  void find_many(std::span<const Kmer<W>> keys,
                 std::vector<std::optional<VertexEntry<W>>>& out,
                 int window = 16) const {
    const std::size_t n = keys.size();
    out.assign(n, std::nullopt);
    if (window < 1) window = 1;
    std::vector<std::uint64_t> hashes(n);
    const std::size_t ahead = std::min<std::size_t>(
        static_cast<std::size_t>(window), n);
    for (std::size_t i = 0; i < ahead; ++i) {
      hashes[i] = keys[i].hash();
      prefetch(hashes[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t next = i + ahead;
      if (next < n) {
        hashes[next] = keys[next].hash();
        prefetch(hashes[next]);
      }
      out[i] = find_hashed(keys[i], hashes[i]);
    }
  }

  /// Visits every entry (arbitrary order, like the live table's scan).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t idx = 0; idx < meta_.size(); ++idx) {
      if ((meta_[idx].load(std::memory_order_relaxed) & kOccupiedBit) !=
          0) {
        fn(snapshot(idx));
      }
    }
  }

 private:
  bool key_equals(const Slot& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w] != words[w]) return false;
    }
    return true;
  }

  VertexEntry<W> snapshot(std::uint64_t idx) const {
    const Slot& slot = slots_[idx];
    VertexEntry<W> entry;
    entry.kmer = Kmer<W>::from_words(slot.key, k_);
    entry.coverage = slot.coverage;
    entry.edges = slot.edges;
    return entry;
  }

  int k_;
  simd::Level simd_level_;
  std::uint64_t mask_ = 0;
  std::uint64_t size_ = 0;
  // Atomic element type solely to share probe::scan_group with the live
  // table; all post-build accesses are reads (relaxed build stores).
  std::vector<std::atomic<std::uint8_t>> meta_;
  std::vector<Slot> slots_;
};

static_assert(GraphKmerTableLike<FrozenTableView<1>>,
              "frozen views must satisfy the shared table concept");
static_assert(GraphKmerTableLike<FrozenTableView<2>, 2>,
              "frozen views must satisfy the shared table concept");

}  // namespace parahash::concurrent
