// Ablation baseline: the fat-slot variant of the state-transfer table.
//
// This is the ORIGINAL single-array layout of ConcurrentKmerTable, kept
// verbatim so the layout ablation (bench_micro_concurrent,
// bench_ablation_locking) measures what the split metadata/payload
// redesign in concurrent/kmer_table.h buys, instead of asserting it.
// One slot bundles the state byte, the 9 counters and the key words
// (~48 bytes for W=1), so every probe step — even one that immediately
// moves on — pulls a full cache line of payload. The concurrency
// protocol (3-state transfer, release/acquire publication of the key)
// is identical to the production table; only the memory layout differs.
// Like mutex_table.h, this exists for measurement, not production use.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "concurrent/kmer_table.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/kmer.h"

namespace parahash::concurrent {

template <int W>
class FatSlotKmerTable {
 public:
  enum State : std::uint8_t { kEmpty = 0, kLocked = 1, kOccupied = 2 };

  struct Slot {
    std::atomic<std::uint8_t> state{kEmpty};
    std::array<std::atomic<std::uint32_t>, 8> edges{};
    std::atomic<std::uint32_t> coverage{0};
    std::array<std::atomic<std::uint64_t>, W> key{};
  };

  FatSlotKmerTable(std::uint64_t min_slots, int k)
      : k_(k), slots_(next_pow2(min_slots < 2 ? 2 : min_slots)) {
    PARAHASH_CHECK_MSG(k >= 1 && k <= Kmer<W>::kMaxK,
                       "k out of range for this word count");
    mask_ = slots_.size() - 1;
  }

  int k() const noexcept { return k_; }
  std::uint64_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }
  std::uint64_t size() const noexcept {
    return distinct_.load(std::memory_order_relaxed);
  }

  AddResult add(const Kmer<W>& canon, int edge_out, int edge_in) {
    AddResult result;
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      Slot& slot = slots_[idx];
      std::uint8_t st = slot.state.load(std::memory_order_acquire);
      ++result.probes;

      if (st == kEmpty) {
        std::uint8_t expected = kEmpty;
        if (slot.state.compare_exchange_strong(expected, kLocked,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          for (int w = 0; w < W; ++w) {
            slot.key[w].store(words[w], std::memory_order_relaxed);
          }
          slot.state.store(kOccupied, std::memory_order_release);
          distinct_.fetch_add(1, std::memory_order_relaxed);
          bump(slot, edge_out, edge_in);
          result.inserted = true;
          return result;
        }
        st = expected;
      }

      if (st == kLocked) {
        result.waited_on_lock = true;
        do {
          cpu_relax();
          st = slot.state.load(std::memory_order_acquire);
        } while (st == kLocked);
      }

      // st == kOccupied: no fingerprint here — every foreign slot costs
      // a full multi-word key compare (and its payload cache line).
      ++result.key_compares;
      if (key_equals(slot, words)) {
        bump(slot, edge_out, edge_in);
        return result;
      }
      idx = (idx + 1) & mask_;
    }
    throw TableFullError("fat-slot kmer table is full (capacity " +
                         std::to_string(capacity()) + ")");
  }

  std::optional<VertexEntry<W>> find(const Kmer<W>& canon) const {
    const auto words = canon.words();
    std::uint64_t idx = canon.hash() & mask_;
    for (std::uint64_t attempt = 0; attempt <= mask_; ++attempt) {
      const Slot& slot = slots_[idx];
      std::uint8_t st = slot.state.load(std::memory_order_acquire);
      if (st == kEmpty) return std::nullopt;
      if (st == kLocked) {
        do {
          cpu_relax();
          st = slot.state.load(std::memory_order_acquire);
        } while (st == kLocked);
      }
      if (key_equals(slot, words)) return snapshot(slot);
      idx = (idx + 1) & mask_;
    }
    return std::nullopt;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == kOccupied) {
        fn(snapshot(slot));
      }
    }
  }

 private:
  static void bump(Slot& slot, int edge_out, int edge_in) noexcept {
    slot.coverage.fetch_add(1, std::memory_order_relaxed);
    if (edge_out >= 0) {
      slot.edges[kEdgeOut + edge_out].fetch_add(1, std::memory_order_relaxed);
    }
    if (edge_in >= 0) {
      slot.edges[kEdgeIn + edge_in].fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool key_equals(const Slot& slot,
                  std::span<const std::uint64_t, W> words) const noexcept {
    for (int w = 0; w < W; ++w) {
      if (slot.key[w].load(std::memory_order_relaxed) != words[w]) {
        return false;
      }
    }
    return true;
  }

  VertexEntry<W> snapshot(const Slot& slot) const {
    VertexEntry<W> entry;
    std::array<std::uint64_t, W> words;
    for (int w = 0; w < W; ++w) {
      words[w] = slot.key[w].load(std::memory_order_relaxed);
    }
    entry.kmer = Kmer<W>::from_words(words, k_);
    entry.coverage = slot.coverage.load(std::memory_order_relaxed);
    for (int i = 0; i < 8; ++i) {
      entry.edges[i] = slot.edges[i].load(std::memory_order_relaxed);
    }
    return entry;
  }

  int k_;
  std::uint64_t mask_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> distinct_{0};
};

static_assert(GraphKmerTableLike<FatSlotKmerTable<1>>,
              "the fat-slot baseline must satisfy the shared concept");

}  // namespace parahash::concurrent
