// The shared vocabulary of the four concurrent k-mer table variants.
//
// Four tables implement the same upsert contract with different
// trade-offs: the production split-layout table (kmer_table.h), the
// seed fat-slot layout (fatslot_table.h), the lock-per-access ablation
// baseline (mutex_table.h) and the counting-only table
// (counter_table.h). This header is the one place their common surface
// is defined, so the ablation benches and the conformance tests can
// iterate over implementations through a single template driver instead
// of copy-pasting a loop per table:
//
//   * ProbeOutcome — the result of one probing step, shared by every
//     stepwise prober (the group-probing engine and the SIMT kernel);
//   * AddResult / TableStats — per-upsert and aggregate probe
//     accounting, including the group-scan counters;
//   * VertexEntry — the decoded snapshot of one occupied slot;
//   * the KmerTableLike / GraphKmerTableLike concepts, the `upsert`
//     adapter (counting tables ignore the edge arguments) and the
//     `drive_ops` workload driver.
#pragma once

#include <array>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <span>
#include <thread>

#include "util/kmer.h"

namespace parahash::concurrent {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Result of one probing step against a slot or a slot group.
enum class ProbeOutcome {
  kDone,     ///< inserted or updated
  kAdvance,  ///< examined slots hold other keys: move along the probe
             ///< sequence (by one slot, or by the scanned group width)
  kRetry,    ///< a locked slot (insertion in flight elsewhere) blocks
             ///< resolution: probe the same position again
  kRestart,  ///< the table migrated to a new capacity since the caller
             ///< computed its probe position: recompute the home index
             ///< against the current geometry and start over
};

/// Indices into a slot's 8 edge counters. Counters 0..3 are outgoing
/// edges (next base, relative to the canonical orientation), 4..7 are
/// incoming edges (previous base). With (K-1) bases shared between
/// adjacent vertices, one base identifies the neighbour (Sec. III-C2).
inline constexpr int kEdgeOut = 0;
inline constexpr int kEdgeIn = 4;

/// A decoded snapshot of one occupied slot.
template <int W>
struct VertexEntry {
  Kmer<W> kmer;                        ///< canonical vertex
  std::uint32_t coverage = 0;          ///< number of kmer occurrences
  std::array<std::uint32_t, 8> edges{};  ///< out[0..3], in[4..7] weights

  std::uint32_t out_weight(int base) const { return edges[kEdgeOut + base]; }
  std::uint32_t in_weight(int base) const { return edges[kEdgeIn + base]; }
  int out_degree() const {
    int d = 0;
    for (int b = 0; b < 4; ++b) d += edges[kEdgeOut + b] > 0;
    return d;
  }
  int in_degree() const {
    int d = 0;
    for (int b = 0; b < 4; ++b) d += edges[kEdgeIn + b] > 0;
    return d;
  }
};

/// Result of a single add(): probe counts and whether the call inserted
/// a new vertex. Callers accumulate these into build statistics without
/// putting extra atomics on the hot path. Probes over foreign slots
/// split into tag rejects (resolved from the metadata byte alone) and
/// full multi-word key compares (tag matched, payload read); the
/// group-probing engine additionally reports how many metadata-block
/// scans it issued and how many lanes those scans rejected wholesale.
struct AddResult {
  std::uint32_t probes = 0;
  std::uint32_t tag_rejects = 0;   ///< occupied slots skipped by tag alone
  std::uint32_t key_compares = 0;  ///< full key compares (incl. final hit)
  std::uint32_t group_scans = 0;   ///< metadata-block scans issued
  std::uint32_t lanes_rejected = 0;  ///< lanes filtered by group scans
  bool inserted = false;
  bool waited_on_lock = false;
  bool overflow_hit = false;  ///< resolved in the overflow region (the
                              ///< probe exceeded the displacement bound)
};

/// Aggregate statistics a builder can accumulate from AddResults.
struct TableStats {
  std::uint64_t adds = 0;
  std::uint64_t inserts = 0;
  std::uint64_t probes = 0;
  std::uint64_t tag_rejects = 0;
  std::uint64_t key_compares = 0;
  std::uint64_t group_scans = 0;
  std::uint64_t lanes_rejected = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t overflow_hits = 0;  ///< upserts resolved in the overflow
                                    ///< region past the displacement bound
  std::uint64_t migrations = 0;  ///< incremental table doublings (a table-
                                 ///< level event; builders stamp it from
                                 ///< ConcurrentKmerTable::migrations())

  void absorb(const AddResult& r) noexcept {
    ++adds;
    inserts += r.inserted ? 1 : 0;
    probes += r.probes;
    tag_rejects += r.tag_rejects;
    key_compares += r.key_compares;
    group_scans += r.group_scans;
    lanes_rejected += r.lanes_rejected;
    lock_waits += r.waited_on_lock ? 1 : 0;
    overflow_hits += r.overflow_hit ? 1 : 0;
  }
  void merge(const TableStats& other) noexcept {
    adds += other.adds;
    inserts += other.inserts;
    probes += other.probes;
    tag_rejects += other.tag_rejects;
    key_compares += other.key_compares;
    group_scans += other.group_scans;
    lanes_rejected += other.lanes_rejected;
    lock_waits += other.lock_waits;
    overflow_hits += other.overflow_hits;
    migrations += other.migrations;
  }

  /// Share of foreign-slot probes the 6-bit tag resolved without a
  /// payload read. The denominator is every probe step that had to
  /// disambiguate an occupied slot (tag reject or full compare).
  double tag_filter_rate() const noexcept {
    const std::uint64_t decided = tag_rejects + key_compares;
    return decided == 0
               ? 0.0
               : static_cast<double>(tag_rejects) /
                     static_cast<double>(decided);
  }

  /// Mean probe length per upsert — what the adaptive upsert window
  /// tunes from (longer probes = more latency to hide per upsert).
  double mean_probe_length() const noexcept {
    return adds == 0 ? 0.0
                     : static_cast<double>(probes) /
                           static_cast<double>(adds);
  }

  /// Adds this aggregate to the named telemetry instruments. Called at
  /// merge points (one call per finished partition build, never inside
  /// the probe loop), so the registry sees the same totals as the
  /// threaded struct without hot-path atomics.
  void publish_telemetry() const;
};

/// The common surface every table variant exposes: capacity/size
/// introspection, an occurrence-recording add, point lookup and a full
/// scan. `find` and `for_each` traffic in entry types that carry at
/// least the canonical kmer and a coverage/count field.
template <typename T, int W = 1>
concept KmerTableLike = requires(T table, const T const_table,
                                 const Kmer<W>& kmer) {
  { const_table.k() } -> std::convertible_to<int>;
  { const_table.capacity() } -> std::convertible_to<std::uint64_t>;
  { const_table.size() } -> std::convertible_to<std::uint64_t>;
  { table.add(kmer, -1, -1) } -> std::same_as<AddResult>;
  { const_table.find(kmer).has_value() } -> std::convertible_to<bool>;
  const_table.for_each([](const auto&) {});
};

/// A table whose entries carry the 8 bidirected edge counters (every
/// variant except the counting-only table).
template <typename T, int W = 1>
concept GraphKmerTableLike =
    KmerTableLike<T, W> && requires(const T table, const Kmer<W>& kmer) {
      { table.find(kmer)->edges } -> std::convertible_to<
          std::array<std::uint32_t, 8>>;
    };

/// One upsert of a canonical-kmer workload (the unit the shared driver
/// and the conformance tests replay against every table variant).
template <int W>
struct UpsertOp {
  Kmer<W> canon;
  std::int8_t edge_out = -1;
  std::int8_t edge_in = -1;
};

/// Records one kmer occurrence in any table variant. Graph tables take
/// the edge pair; counting-only tables drop it (their add ignores the
/// edge arguments — see counter_table.h).
template <typename Table, int W>
AddResult upsert(Table& table, const Kmer<W>& canon, int edge_out,
                 int edge_in) {
  return table.add(canon, edge_out, edge_in);
}

/// Replays a workload through a table and returns the aggregate stats —
/// the single driver the ablation bench and the conformance tests use
/// for every variant.
template <typename Table, int W>
TableStats drive_ops(Table& table, std::span<const UpsertOp<W>> ops) {
  TableStats stats;
  for (const auto& op : ops) {
    stats.absorb(upsert<Table, W>(table, op.canon, op.edge_out, op.edge_in));
  }
  return stats;
}

}  // namespace parahash::concurrent
