// Concurrent counting Bloom filter for singleton pre-filtering.
//
// Most erroneous kmers occur exactly once (Property 1's error model), so
// a BFCounter-style pre-filter — admit a kmer into the main hash table
// only on its SECOND sighting — shrinks the table by roughly the
// erroneous fraction, at the cost of approximation: a small Bloom
// false-positive rate admits some singletons, and each admitted kmer's
// first sighting is absorbed by the filter (counts start at the second
// occurrence). This implements the idea the paper cites as Melsted &
// Pritchard's bloom-filter kmer counting [10], as an optional mode.
//
// Counters are 4-bit saturating, packed two per byte, updated with CAS.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/hash.h"

namespace parahash::concurrent {

class CountingBloom {
 public:
  /// `cells` is rounded up to a power of two; each cell is a 4-bit
  /// saturating counter. `hashes` probes per item (2-4 typical).
  explicit CountingBloom(std::uint64_t cells, int hashes = 3)
      : hashes_(hashes), bytes_(next_pow2(cells < 16 ? 16 : cells) / 2) {
    PARAHASH_CHECK_MSG(hashes >= 1 && hashes <= 8, "1..8 hashes");
    mask_ = bytes_.size() * 2 - 1;
  }

  std::uint64_t cells() const noexcept { return bytes_.size() * 2; }
  std::uint64_t memory_bytes() const noexcept { return bytes_.size(); }

  /// Increments the item's counters and returns its (approximate) count
  /// AFTER the increment: the minimum over the item's cells, saturating
  /// at 15. Thread-safe; counts are never under-reported.
  int increment_and_count(std::uint64_t item_hash) {
    int min_count = 15;
    std::uint64_t h = item_hash;
    for (int i = 0; i < hashes_; ++i) {
      h = mix64(h + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull);
      min_count = std::min(min_count, bump(h & mask_));
    }
    return min_count;
  }

  /// Read-only count estimate (minimum over cells).
  int count(std::uint64_t item_hash) const {
    int min_count = 15;
    std::uint64_t h = item_hash;
    for (int i = 0; i < hashes_; ++i) {
      h = mix64(h + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull);
      min_count = std::min(min_count, read(h & mask_));
    }
    return min_count;
  }

 private:
  /// Saturating-increments cell `idx`, returns the value after.
  int bump(std::uint64_t idx) {
    std::atomic<std::uint8_t>& byte = bytes_[idx / 2];
    const int shift = (idx & 1) ? 4 : 0;
    std::uint8_t current = byte.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint8_t cell = (current >> shift) & 0xF;
      if (cell == 15) return 15;  // saturated
      const std::uint8_t updated = static_cast<std::uint8_t>(
          (current & ~(0xF << shift)) | ((cell + 1) << shift));
      if (byte.compare_exchange_weak(current, updated,
                                     std::memory_order_relaxed)) {
        return cell + 1;
      }
      // current reloaded by the failed CAS; retry.
    }
  }

  int read(std::uint64_t idx) const {
    const std::uint8_t byte =
        bytes_[idx / 2].load(std::memory_order_relaxed);
    return (byte >> ((idx & 1) ? 4 : 0)) & 0xF;
  }

  int hashes_;
  std::vector<std::atomic<std::uint8_t>> bytes_;
  std::uint64_t mask_;
};

}  // namespace parahash::concurrent
