// Machine-readable run reports: serialises a RunReport to JSON so
// scripted experiments (and the ci-trace leg) can consume the same
// numbers `parahash build` prints, without scraping stdout. Every stat
// the CLI report prints appears as a key here; derived ratios
// (tag_filter_rate, mean_probe_length) are precomputed so downstream
// tooling does not re-implement them.
#pragma once

#include <string>

#include "pipeline/parahash.h"

namespace parahash::pipeline {

/// JSON object for one RunReport. `simd_level` / `upsert_window` /
/// `inflight_budget` are run configuration the report struct does not
/// carry; the CLI passes them so the JSON is self-describing. Pass
/// empty / 0 when unknown. `config_json` — a pre-rendered
/// parahash::Config::to_json() object — is spliced verbatim under the
/// "config" key when non-empty, so a report carries the full recipe to
/// reproduce its run (`parahash report --extract-config`).
std::string run_report_json(const RunReport& report,
                            const std::string& simd_level = "",
                            const std::string& upsert_window = "",
                            std::uint64_t inflight_budget = 0,
                            const std::string& config_json = "");

}  // namespace parahash::pipeline
