// Step 2 — hash-based subgraph construction over a stream of sealed
// partitions: a three-stage pipeline (partition blob load → device hash
// build → adopt/serialise). The stream may still be growing (fused
// runs claim from the partition ledger while Step 1 writes); the
// classic path-vector API wraps its completed list in a
// VectorPartitionStream.
#include "pipeline/parahash.h"

#include <fstream>

#include "io/partition_file.h"
#include "pipeline/partition_ledger.h"

namespace parahash::pipeline {

template <int W>
core::DeBruijnGraph<W> ParaHash<W>::run_hashing(
    const std::vector<std::string>& partition_paths, StepReport& report) {
  PARAHASH_CHECK(partition_paths.size() == options_.msp.num_partitions);
  VectorPartitionStream stream(partition_paths);
  core::DeBruijnGraph<W> graph(options_.msp.k, options_.msp.p,
                               options_.msp.num_partitions);
  run_hashing_impl(stream, report, /*device_reports=*/true,
                   /*exclusive_devices=*/false, /*downstream=*/nullptr,
                   graph);
  return graph;
}

template <int W>
core::DeBruijnGraph<W> ParaHash<W>::run_hashing(PartitionStream& stream,
                                                StepReport& report) {
  core::DeBruijnGraph<W> graph(options_.msp.k, options_.msp.p,
                               options_.msp.num_partitions);
  run_hashing_impl(stream, report, /*device_reports=*/true,
                   /*exclusive_devices=*/false, /*downstream=*/nullptr,
                   graph);
  return graph;
}

template <int W>
void ParaHash<W>::run_hashing_impl(PartitionStream& stream,
                                   StepReport& report, bool device_reports,
                                   bool exclusive_devices,
                                   PartitionLedger* downstream,
                                   core::DeBruijnGraph<W>& graph) {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  resizes_ = 0;
  table_stats_ = concurrent::TableStats{};
  streamed_filtered_ = 0;
  streamed_stats_ = core::GraphStats{};

  StepCallbacks<io::PartitionBlob, core::SubgraphBuildResult<W>, W>
      callbacks;
  callbacks.produce = [&](io::PartitionBlob& blob) {
    io::SealedPartition part;
    if (!stream.next(part)) return false;
    blob = io::PartitionBlob::read_file(part.path);
    input_throttle_.consume(blob.byte_size());
    bytes_in += blob.byte_size();
    return true;
  };
  callbacks.compute = [&](device::Device<W>& dev,
                          const io::PartitionBlob& blob) {
    auto result = dev.run_hash(blob, options_.hash);
    stream.built(result.partition_id);  // ledger: advance prd
    return result;
  };
  callbacks.consume = [&](core::SubgraphBuildResult<W> result) {
    const std::uint32_t partition_id = result.partition_id;
    resizes_ += result.resizes;
    table_stats_.merge(result.stats);
    result.stats.publish_telemetry();
    if (options_.accumulate_graph) {
      graph.adopt_table(partition_id, *result.table,
                        /*min_coverage=*/0);
      if (downstream != nullptr) {
        // Chain hand-off: serve the adopted subgraph to Step 3. The
        // unit has no file behind it — Step 3 reads the in-memory
        // partition — so the path stays empty and bytes/kmers carry
        // the entry-array sizing.
        const auto& entries = graph.partition(partition_id);
        io::SealedPartition built;
        built.id = partition_id;
        built.bytes =
            entries.size() * sizeof(concurrent::VertexEntry<W>);
        built.kmers = entries.size();
        downstream->publish(std::move(built));
      }
    } else {
      // Streamed mode: fold this subgraph into the aggregate statistics
      // and let the table go (the paper's big-genome protocol).
      result.table->for_each([&](const concurrent::VertexEntry<W>& e) {
        if (options_.min_coverage > 1 &&
            e.coverage < options_.min_coverage) {
          ++streamed_filtered_;
          return;
        }
        ++streamed_stats_.vertices;
        streamed_stats_.total_coverage += e.coverage;
        for (int i = 0; i < 8; ++i) {
          streamed_stats_.edge_counter_total += e.edges[i];
        }
        for (int b = 0; b < 4; ++b) {
          streamed_stats_.distinct_edges +=
              e.edges[concurrent::kEdgeOut + b] > 0;
        }
        if (e.out_degree() > 1 || e.in_degree() > 1) {
          ++streamed_stats_.branching_vertices;
        }
      });
    }
    if (options_.write_subgraphs) {
      // The Step-2 output stage: serialise this subgraph to disk
      // (~32 bytes per vertex, the paper's <vertex, list of edges>
      // sizing) and charge the output channel.
      const std::string path = subgraph_path(partition_id);
      std::ofstream file(path, std::ios::binary);
      if (!file) throw IoError("parahash: cannot open " + path);
      const std::uint32_t k32 = static_cast<std::uint32_t>(options_.msp.k);
      const std::uint64_t count = result.table->size();
      file.write(reinterpret_cast<const char*>(&k32), sizeof(k32));
      file.write(reinterpret_cast<const char*>(&partition_id),
                 sizeof(partition_id));
      file.write(reinterpret_cast<const char*>(&count), sizeof(count));
      std::uint64_t bytes = sizeof(k32) + sizeof(partition_id) +
                            sizeof(count);
      result.table->for_each([&](const concurrent::VertexEntry<W>& e) {
        const auto words = e.kmer.words();
        file.write(reinterpret_cast<const char*>(words.data()),
                   W * sizeof(std::uint64_t));
        file.write(reinterpret_cast<const char*>(&e.coverage),
                   sizeof(e.coverage));
        file.write(reinterpret_cast<const char*>(e.edges.data()),
                   8 * sizeof(std::uint32_t));
        bytes += W * sizeof(std::uint64_t) + 9 * sizeof(std::uint32_t);
      });
      file.close();
      if (file.fail()) throw IoError("parahash: write failure on " + path);
      output_throttle_.consume(bytes);
      bytes_out += bytes;
    }
    // Drop the table before retiring so the ledger's in-flight memory
    // budget reflects what is actually resident.
    result.table.reset();
    stream.retire(partition_id);  // ledger: advance wrt, free budget
  };

  StepDescriptor<io::PartitionBlob, core::SubgraphBuildResult<W>, W>
      step;
  step.label = "step2";
  step.devices = devices();
  step.callbacks = std::move(callbacks);
  step.pipelined = options_.pipelined;
  step.options.queue_depth = options_.queue_depth;
  step.options.exclusive_devices = exclusive_devices;
  if (!lease_ptrs_.empty()) {
    // Autotuned run: a second (initially parked) lane per device that
    // the control thread can admit, and a lease it can zero to park a
    // mis-modelled device.
    step.options.max_lanes = 2;
    step.options.lane_leases = &lease_ptrs_;
  }
  std::vector<device::DeviceStats> before;
  if (device_reports) {
    for (auto* dev : step.devices) before.push_back(dev->stats());
  }
  const auto devs = step.devices;
  try {
    report.times = run_step(std::move(step));
  } catch (...) {
    // A dead consumer must not leave the upstream publisher feeding a
    // stream nobody drains — nor the downstream claimant waiting on a
    // boundary nobody will ever close.
    stream.abort();
    if (downstream != nullptr) downstream->abort();
    throw;
  }
  if (downstream != nullptr) downstream->close();
  report.bytes_in = bytes_in;
  report.bytes_out = bytes_out;
  if (device_reports) {
    for (std::size_t i = 0; i < devs.size(); ++i) {
      report.devices.push_back(DeviceReport{
          devs[i]->name(), devs[i]->kind(), devs[i]->stats() - before[i]});
    }
  }
}

template core::DeBruijnGraph<1> ParaHash<1>::run_hashing(
    const std::vector<std::string>&, StepReport&);
template core::DeBruijnGraph<2> ParaHash<2>::run_hashing(
    const std::vector<std::string>&, StepReport&);
template core::DeBruijnGraph<1> ParaHash<1>::run_hashing(PartitionStream&,
                                                         StepReport&);
template core::DeBruijnGraph<2> ParaHash<2>::run_hashing(PartitionStream&,
                                                         StepReport&);
template void ParaHash<1>::run_hashing_impl(PartitionStream&, StepReport&,
                                            bool, bool, PartitionLedger*,
                                            core::DeBruijnGraph<1>&);
template void ParaHash<2>::run_hashing_impl(PartitionStream&, StepReport&,
                                            bool, bool, PartitionLedger*,
                                            core::DeBruijnGraph<2>&);

}  // namespace parahash::pipeline
