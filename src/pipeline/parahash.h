// ParaHash — the end-to-end De Bruijn graph construction system.
//
// Step 1 (MSP graph partitioning) and Step 2 (hash-based subgraph
// construction), each executed as a three-stage pipeline over a set of
// heterogeneous devices, with metered input/output channels to model the
// paper's fast-IO and disk-bound regimes. This is the public entry point
// a downstream user calls:
//
//   pipeline::Options options;
//   options.msp.k = 27;
//   options.msp.p = 11;
//   options.msp.num_partitions = 64;
//   auto [graph, report] = pipeline::ParaHash<1>(options).construct(fastq);
//
// Measurement protocol follows Sec. V-A: a run's reported time starts at
// reading the input file and ends when all subgraphs are constructed in
// main memory; it includes writing and re-reading the superkmer
// partitions, and excludes writing the final graph to disk.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/frozen_graph.h"
#include "core/graph.h"
#include "core/msp.h"
#include "core/perf_model.h"
#include "core/simplify.h"
#include "core/subgraph.h"
#include "core/unitig.h"
#include "device/device.h"
#include "io/throttle.h"
#include "pipeline/autotune.h"
#include "pipeline/executor.h"
#include "pipeline/partition_ledger.h"
#include "pipeline/partition_stream.h"

namespace parahash::pipeline {

/// Full system configuration.
struct Options {
  core::MspConfig msp;    ///< k, P, number of superkmer partitions
  core::HashConfig hash;  ///< lambda, alpha, resize policy

  /// Directory for superkmer partition files. Empty = a fresh temp dir
  /// removed after the run.
  std::string work_dir;
  bool keep_partitions = false;

  // --- Devices -----------------------------------------------------
  bool use_cpu = true;
  int cpu_threads = 0;  ///< 0 = hardware concurrency
  int num_gpus = 0;     ///< simulated GPUs (see DESIGN.md substitution)
  device::SimGpuConfig gpu;

  // --- Pipeline ----------------------------------------------------
  bool pipelined = true;
  std::size_t queue_depth = 3;
  std::size_t batch_bases = 4u << 20;  ///< Step-1 input batch size

  /// Phred threshold for 3'-tail quality trimming at input (0 = off).
  int quality_trim_phred = 0;

  /// Maximum partition files open at once in Step 1 (0 = no limit).
  /// When the partition count exceeds this budget — the paper's platform
  /// capped it at 1000 file handles — Step 1 re-reads the input once per
  /// id range, the classic multi-pass MSP trade of extra input scans for
  /// bounded file handles.
  std::uint32_t max_open_partitions = 0;

  // --- Step fusion -------------------------------------------------
  /// Overlap Step 2 with Step 1 through the partition ledger: as soon
  /// as Step 1 seals a partition file, an idle device may start hashing
  /// it while Step 1 is still writing later partitions or later
  /// multi-pass id ranges. Fused and unfused runs produce bit-identical
  /// graphs; the win is wall-clock in disk-bound regimes, reported as
  /// RunReport::step_overlap_seconds.
  bool fuse_steps = false;

  /// Upper bound (bytes) on the estimated size of all Step-2 hash
  /// tables in flight at once during a fused run; claims past the
  /// budget wait until earlier subgraphs retire, so peak RSS stays at a
  /// few tables however far Step 1 runs ahead. 0 = no explicit budget
  /// (the executor's queue depth still bounds the count).
  std::uint64_t inflight_table_budget_bytes = 0;

  /// Period (seconds) of the ledger sampler during fused runs: a
  /// background thread snapshots the srv/cns/prd/wrt counters into
  /// RunReport::ledger_samples (and, when tracing, into "ledger"
  /// counter events) so pipeline occupancy over time can be
  /// reconstructed. 0 disables sampling.
  double ledger_sample_period = 1e-3;

  // --- Autotuning --------------------------------------------------
  /// Model-driven self-tuning (see pipeline/autotune.h): a calibration
  /// pre-pass picks the partition count, in-flight budget and upsert
  /// window before Step 1 commits, and a control thread keeps retuning
  /// them (plus per-device leases) during the fused run. Knobs set
  /// explicitly on the CLI are pinned and never overridden.
  AutotuneOptions autotune;

  // --- IO regime ---------------------------------------------------
  double input_bytes_per_sec = 0;   ///< 0 = memory-cached file (Case 1)
  double output_bytes_per_sec = 0;  ///< 0 = unmetered
  bool write_subgraphs = false;     ///< Step-2 output stage writes to disk

  /// Directory for Step-2 subgraph files (write_subgraphs). Empty = the
  /// partition directory; an owned temp partition directory then
  /// survives the run so the subgraph outputs do too (only the
  /// superkmer partition files are cleaned up).
  std::string subgraph_dir;

  // --- Step 3: simplification + contig extraction ------------------
  /// Run Step 3 after Step 2 (or fused with it, see fuse_steps):
  /// per-partition compact scans on the devices gather branch seeds and
  /// boundary vertices, then a stitch phase clips tips, pops simple
  /// bubbles and extracts unitigs across partition boundaries.
  /// Requires accumulate_graph (the stitch walks the whole graph).
  bool step3 = false;

  /// Dead-end arms of at most this many kmers are clipped (0 = 2k).
  std::uint32_t min_tip_len = 0;

  /// Bubble arms longer than this many kmers are kept (0 = 2k).
  std::uint32_t bubble_max_len = 0;

  /// Minimum edge-counter weight an edge needs to be walked during
  /// simplification and contig extraction.
  std::uint32_t min_edge_weight = 1;

  /// Contig FASTA / assembly-graph GFA output paths (empty = not
  /// written; the contig set is still built and reported).
  std::string contigs_out;
  std::string gfa_out;

  // --- Serving snapshot --------------------------------------------
  /// Publish a read-optimized FrozenGraph snapshot (core/frozen_graph.h)
  /// of the final graph at the end of construct(): the serving tier's
  /// input, reported under RunReport::frozen and retrievable via
  /// ParaHash::frozen(). Requires accumulate_graph.
  bool publish_frozen = false;

  /// Load factor of the frozen snapshot's probe-only tables.
  double frozen_alpha = 0.7;

  // --- Result ------------------------------------------------------
  std::uint32_t min_coverage = 0;  ///< filter threshold for final graph

  /// When false, subgraphs are NOT retained in memory after the Step-2
  /// output stage: the returned graph is empty and only the run report
  /// (with aggregate graph statistics) is populated. This matches the
  /// paper's measurement protocol for big genomes — a 5-billion-vertex
  /// graph is streamed to disk, never held whole — and keeps peak RSS
  /// at a few in-flight hash tables.
  bool accumulate_graph = true;
};

struct DeviceReport {
  std::string name;
  device::DeviceKind kind = device::DeviceKind::kCpu;
  device::DeviceStats stats;
};

struct StepReport {
  StageTimes times;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::vector<DeviceReport> devices;

  /// Plugs the measured components into the paper's Eq. (1) inputs.
  core::StepTimes model_times() const {
    core::StepTimes t;
    for (const auto& d : devices) {
      const double compute = d.stats.msp_compute_seconds +
                             d.stats.hash_compute_seconds +
                             d.stats.compact_compute_seconds;
      if (d.kind == device::DeviceKind::kCpu) {
        t.cpu_compute += compute;
      } else {
        t.gpu_compute = std::max(t.gpu_compute, compute);
        t.dh_transfer =
            std::max(t.dh_transfer, d.stats.transfer_seconds);
      }
    }
    t.input = times.input_seconds;
    t.output = times.output_seconds;
    t.partitions = times.items < 1 ? 1 : times.items;
    return t;
  }
};

/// Step-3 outcome counters (beyond the executor timing that lives in
/// RunReport::step3 like any other step).
struct Step3Stats {
  core::SimplifyStats simplify;
  std::uint64_t branch_seed_vertices = 0;  ///< pre-dedup, scan output
  std::uint64_t boundary_vertices = 0;
  std::uint64_t contigs = 0;
  std::uint64_t contig_bases = 0;
  std::uint64_t cross_partition_contigs = 0;
  std::uint64_t gfa_segments = 0;
  std::uint64_t gfa_links = 0;
};

/// Snapshot-publication outcome (Options::publish_frozen).
struct FrozenReport {
  bool published = false;
  std::uint64_t vertices = 0;
  std::uint32_t partitions = 0;
  std::uint64_t memory_bytes = 0;
  double build_seconds = 0;
};

struct RunReport {
  StepReport step1;
  StepReport step2;
  /// Step-3 executor timing and device deltas (empty unless
  /// Options::step3).
  StepReport step3;
  Step3Stats step3_stats;
  /// Aggregate hash-table upsert statistics across every Step-2
  /// partition build (probe counts, tag-reject vs full-key-compare
  /// split, lock waits).
  concurrent::TableStats step2_table;
  core::GraphStats graph;
  std::uint64_t filtered_vertices = 0;
  std::uint64_t partition_bytes = 0;  ///< total superkmer partition size
  int resizes = 0;
  double total_elapsed_seconds = 0;
  std::uint64_t peak_rss_bytes = 0;

  /// Seconds Step 1 and Step 2 were concurrently active. Zero for
  /// unfused runs (the steps execute back-to-back); for fused runs this
  /// is the wall-clock the fusion reclaimed from the hard barrier.
  double step_overlap_seconds = 0;

  /// Seconds Step 2 and Step 3 were concurrently active (three-stage
  /// fused runs only): the second band of the Fig.-12 timeline.
  double step23_overlap_seconds = 0;

  /// Ledger-counter timeline of a fused run (empty for unfused runs or
  /// ledger_sample_period == 0): the direct evidence of Step 1 ∥ Step 2
  /// overlap and the data behind the paper's Fig. 12 occupancy view.
  std::vector<LedgerSample> ledger_samples;

  /// Autotuner state: the fitted calibration model and every decision
  /// the controller took, with the model inputs that motivated it
  /// (enabled == false on runs without --autotune).
  TunerReport tuner;

  /// Serving-snapshot publication (Options::publish_frozen).
  FrozenReport frozen;
};

/// The system, fixed to kmers of W 64-bit words (W=1 covers k <= 32).
template <int W>
class ParaHash {
 public:
  explicit ParaHash(Options options);
  ~ParaHash();

  ParaHash(const ParaHash&) = delete;
  ParaHash& operator=(const ParaHash&) = delete;

  /// Runs both steps on one or several FASTA/FASTQ(.gz) files and
  /// returns the graph plus the run report.
  std::pair<core::DeBruijnGraph<W>, RunReport> construct(
      const std::string& input_path);
  std::pair<core::DeBruijnGraph<W>, RunReport> construct(
      const std::vector<std::string>& input_paths);

  /// Step 1 only: writes superkmer partitions, returns their paths.
  std::vector<std::string> run_partitioning(const std::string& input_path,
                                            StepReport& report);
  std::vector<std::string> run_partitioning(
      const std::vector<std::string>& input_paths, StepReport& report);

  /// Step 2 only: builds the graph from existing partition files.
  core::DeBruijnGraph<W> run_hashing(
      const std::vector<std::string>& partition_paths, StepReport& report);

  /// Step 2 over a stream of sealed partitions (possibly still growing
  /// — this is the fused scheduler's entry point, but any
  /// PartitionStream works).
  core::DeBruijnGraph<W> run_hashing(PartitionStream& stream,
                                     StepReport& report);

  const Options& options() const { return options_; }

  /// The contig set the last Step-3 run extracted (empty unless
  /// Options::step3), in canonical order: longest first, ties by
  /// sequence.
  const std::vector<core::Unitig>& contigs() const { return contigs_; }

  /// The frozen snapshot the last construct() published (nullptr unless
  /// Options::publish_frozen). Shared ownership: a serving tier may
  /// outlive the builder.
  std::shared_ptr<const core::FrozenGraph<W>> frozen() const {
    return frozen_;
  }

  /// Where partition files (and, by default, subgraph files) live.
  const std::string& partition_dir() const { return partition_dir_; }

  /// The devices, in scheduling order (for tests and benches).
  std::vector<device::Device<W>*> devices();

 private:
  // Step implementations shared by the fused and unfused drivers. A
  // non-null `ledger` publishes each partition into it the moment the
  // partition seals; `device_reports=false` skips per-step device stat
  // deltas (the fused driver snapshots devices around both steps,
  // since they run concurrently); `exclusive_devices` routes through
  // the per-device lease (see ExecutorOptions).
  std::vector<std::string> run_partitioning_impl(
      const std::vector<std::string>& input_paths, StepReport& report,
      PartitionLedger* ledger, bool device_reports,
      bool exclusive_devices);
  /// Builds into a caller-owned `graph` (pre-sized to the run's
  /// partition count) so a chained Step 3 can read adopted partitions
  /// while this step is still running. A non-null `downstream` boundary
  /// receives each partition the moment its subgraph is adopted, and is
  /// closed when the step ends.
  void run_hashing_impl(PartitionStream& stream, StepReport& report,
                        bool device_reports, bool exclusive_devices,
                        PartitionLedger* downstream,
                        core::DeBruijnGraph<W>& graph);
  /// Step 3: compact-scans each built partition the stream yields (the
  /// fused chain's second boundary, or a synthetic stream after an
  /// unfused Step 2), then runs the stitch phase over the whole graph
  /// and fills contigs_.
  void run_compaction_impl(PartitionStream& stream,
                           const core::DeBruijnGraph<W>& graph,
                           StepReport& report, Step3Stats& stats,
                           bool device_reports, bool exclusive_devices);
  std::pair<core::DeBruijnGraph<W>, RunReport> construct_fused(
      const std::vector<std::string>& input_paths);
  /// Runs the calibration pre-pass and applies its choices to the
  /// still-uncommitted options (respecting pins); creates tuner_.
  void apply_autotune(const std::vector<std::string>& input_paths);
  void finalize_report(core::DeBruijnGraph<W>& graph, RunReport& report);
  std::string subgraph_path(std::uint32_t partition_id) const;
  /// True when subgraph outputs live inside the partition directory and
  /// must survive partition cleanup.
  bool subgraphs_in_partition_dir() const {
    return options_.write_subgraphs && options_.subgraph_dir.empty();
  }
  /// Removes the run's superkmer partition files but never the subgraph
  /// outputs that may share the directory.
  void cleanup_partition_files() noexcept;

  Options options_;
  std::string partition_dir_;
  bool own_partition_dir_ = false;
  std::unique_ptr<device::CpuDevice<W>> cpu_;
  std::vector<std::unique_ptr<device::SimGpuDevice<W>>> gpus_;
  std::unique_ptr<Autotuner> tuner_;
  /// Per-device adjustable leases, parallel to devices(); non-empty
  /// only on autotuned runs (Step-2 executor runs max_lanes = 2 then).
  std::vector<std::unique_ptr<LaneLease>> lane_leases_;
  std::vector<LaneLease*> lease_ptrs_;
  io::Throttle input_throttle_;
  io::Throttle output_throttle_;
  int resizes_ = 0;
  concurrent::TableStats table_stats_;   // aggregated over Step-2 builds
  core::GraphStats streamed_stats_;      // accumulate_graph == false
  std::uint64_t streamed_filtered_ = 0;  // accumulate_graph == false
  std::vector<core::Unitig> contigs_;    // Step-3 output
  std::shared_ptr<const core::FrozenGraph<W>> frozen_;  // publish_frozen
};

/// Convenience: build with runtime k dispatch (k <= 32 uses one-word
/// kmers, k <= 64 two words), write the graph if `graph_path` non-empty,
/// and return the report.
RunReport construct_graph(const Options& options,
                          const std::string& input_path,
                          const std::string& graph_path = "");

}  // namespace parahash::pipeline
