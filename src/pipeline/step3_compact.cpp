// Step 3 — parallel graph simplification + contig extraction over a
// stream of BUILT partitions: per-partition compact scans run on the
// devices (pipelined against Step 2 in fused runs, claiming from the
// chain's second boundary as soon as Step 2 adopts a subgraph), then a
// single-threaded stitch phase clips tips, pops simple bubbles and
// extracts unitigs whose paths cross partition boundaries through the
// graph's global read path. The stitch is deterministic by
// construction (sorted, deduped seeds; decisions against the frozen
// graph; canonically ordered output), so the contig set is
// byte-identical across execution modes and partition counts.
#include "pipeline/parahash.h"

#include <unordered_map>

#include "core/gfa.h"
#include "pipeline/partition_ledger.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace parahash::pipeline {

template <int W>
void ParaHash<W>::run_compaction_impl(PartitionStream& stream,
                                      const core::DeBruijnGraph<W>& graph,
                                      StepReport& report,
                                      Step3Stats& stats,
                                      bool device_reports,
                                      bool exclusive_devices) {
  PARAHASH_CHECK_MSG(options_.accumulate_graph,
                     "step3 requires accumulate_graph: the stitch phase "
                     "walks the whole in-memory graph");
  contigs_.clear();

  core::CompactScanConfig scan;
  scan.k = options_.msp.k;
  scan.p = options_.msp.p;
  scan.num_partitions = options_.msp.num_partitions;
  scan.min_coverage = options_.min_coverage;
  scan.min_edge_weight = options_.min_edge_weight;

  std::uint64_t bytes_in = 0;
  std::vector<Kmer<W>> branch_seeds;
  std::unordered_map<std::string, std::uint32_t> boundary_partition;

  StepCallbacks<io::SealedPartition, core::CompactScanResult<W>, W>
      callbacks;
  callbacks.produce = [&](io::SealedPartition& part) {
    if (!stream.next(part)) return false;
    bytes_in += part.bytes;
    return true;
  };
  callbacks.compute = [&](device::Device<W>& dev,
                          const io::SealedPartition& part) {
    auto result = dev.run_compact(part.id, graph.partition(part.id),
                                  scan);
    stream.built(part.id);  // ledger: advance the boundary's prd
    return result;
  };
  callbacks.consume = [&](core::CompactScanResult<W> result) {
    stats.branch_seed_vertices += result.branch_seeds.size();
    branch_seeds.insert(branch_seeds.end(), result.branch_seeds.begin(),
                        result.branch_seeds.end());
    for (const auto& kmer : result.boundary) {
      boundary_partition.emplace(kmer.to_string(), result.partition_id);
    }
    stream.retire(result.partition_id);
  };

  StepDescriptor<io::SealedPartition, core::CompactScanResult<W>, W>
      step;
  step.label = "step3";
  step.devices = devices();
  step.callbacks = std::move(callbacks);
  step.pipelined = options_.pipelined;
  step.options.queue_depth = options_.queue_depth;
  step.options.exclusive_devices = exclusive_devices;
  if (!lease_ptrs_.empty()) {
    // The leases are shared with the Step-2 executor: the tuner's
    // widen/park decisions act on every consumer of a device at once.
    step.options.max_lanes = 2;
    step.options.lane_leases = &lease_ptrs_;
  }
  std::vector<device::DeviceStats> before;
  if (device_reports) {
    for (auto* dev : step.devices) before.push_back(dev->stats());
  }
  const auto devs = step.devices;
  try {
    report.times = run_step(std::move(step));
  } catch (...) {
    stream.abort();
    throw;
  }
  report.bytes_in = bytes_in;

  // ---- Stitch phase: whole-graph, single-threaded, deterministic ----
  {
    PARAHASH_TRACE_SCOPE("step3", "stitch");
    core::SimplifyConfig config;
    config.min_coverage = options_.min_coverage;
    config.min_edge_weight = options_.min_edge_weight;
    config.min_tip_len = options_.min_tip_len;
    config.bubble_max_len = options_.bubble_max_len;

    core::GraphSimplifier<W> simplifier(graph, config);
    stats.simplify = simplifier.run(std::move(branch_seeds));
    stats.boundary_vertices = boundary_partition.size();

    contigs_ = core::extract_contigs(graph, config,
                                     &simplifier.removed());
    stats.contigs = contigs_.size();
    for (const auto& contig : contigs_) {
      stats.contig_bases += contig.bases.size();
    }
    stats.cross_partition_contigs = core::count_cross_partition<W>(
        contigs_, boundary_partition, options_.msp.k);

    if (!options_.contigs_out.empty()) {
      const std::uint64_t bytes =
          core::write_contigs_fasta(options_.contigs_out, contigs_);
      output_throttle_.consume(bytes);
      report.bytes_out += bytes;
    }
    if (!options_.gfa_out.empty()) {
      core::GfaExporter<W> exporter(
          graph, contigs_, options_.min_coverage,
          options_.min_edge_weight == 0 ? 1 : options_.min_edge_weight);
      const auto [segments, links] = exporter.write(options_.gfa_out);
      stats.gfa_segments = segments;
      stats.gfa_links = links;
    }
  }

  telemetry::counter("step3.tips_clipped")
      .add(stats.simplify.tips_clipped);
  telemetry::counter("step3.bubbles_popped")
      .add(stats.simplify.bubbles_popped);
  telemetry::counter("step3.contigs").add(stats.contigs);
  telemetry::counter("step3.boundary_vertices")
      .add(stats.boundary_vertices);
  PARAHASH_TRACE_INSTANT("step3", "stitch.done", "contigs",
                         stats.contigs);

  if (device_reports) {
    for (std::size_t i = 0; i < devs.size(); ++i) {
      report.devices.push_back(DeviceReport{
          devs[i]->name(), devs[i]->kind(), devs[i]->stats() - before[i]});
    }
  }
}

template void ParaHash<1>::run_compaction_impl(PartitionStream&,
                                               const core::DeBruijnGraph<1>&,
                                               StepReport&, Step3Stats&,
                                               bool, bool);
template void ParaHash<2>::run_compaction_impl(PartitionStream&,
                                               const core::DeBruijnGraph<2>&,
                                               StepReport&, Step3Stats&,
                                               bool, bool);

}  // namespace parahash::pipeline
