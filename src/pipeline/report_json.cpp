#include "pipeline/report_json.h"

#include "device/device.h"
#include "util/json.h"

namespace parahash::pipeline {

namespace {

void write_device(JsonWriter& w, const DeviceReport& d) {
  w.begin_object();
  w.key("name");
  w.value(d.name);
  w.key("kind");
  w.value(device::device_kind_name(d.kind));
  w.key("msp_batches");
  w.value(d.stats.msp_batches);
  w.key("msp_reads");
  w.value(d.stats.msp_reads);
  w.key("hash_partitions");
  w.value(d.stats.hash_partitions);
  w.key("hash_kmers");
  w.value(d.stats.hash_kmers);
  w.key("hash_vertices");
  w.value(d.stats.hash_vertices);
  w.key("msp_compute_seconds");
  w.value(d.stats.msp_compute_seconds);
  w.key("hash_compute_seconds");
  w.value(d.stats.hash_compute_seconds);
  w.key("compact_partitions");
  w.value(d.stats.compact_partitions);
  w.key("compact_vertices");
  w.value(d.stats.compact_vertices);
  w.key("compact_compute_seconds");
  w.value(d.stats.compact_compute_seconds);
  w.key("transfer_seconds");
  w.value(d.stats.transfer_seconds);
  w.key("bytes_h2d");
  w.value(d.stats.bytes_h2d);
  w.key("bytes_d2h");
  w.value(d.stats.bytes_d2h);
  w.end_object();
}

void write_step(JsonWriter& w, const StepReport& step) {
  w.begin_object();
  w.key("elapsed_seconds");
  w.value(step.times.elapsed_seconds);
  w.key("input_seconds");
  w.value(step.times.input_seconds);
  w.key("compute_seconds");
  w.value(step.times.compute_seconds);
  w.key("output_seconds");
  w.value(step.times.output_seconds);
  w.key("items");
  w.value(step.times.items);
  w.key("bytes_in");
  w.value(step.bytes_in);
  w.key("bytes_out");
  w.value(step.bytes_out);
  w.key("devices");
  w.begin_array();
  for (const auto& d : step.devices) write_device(w, d);
  w.end_array();
  w.end_object();
}

void write_table(JsonWriter& w, const concurrent::TableStats& t) {
  w.begin_object();
  w.key("adds");
  w.value(t.adds);
  w.key("inserts");
  w.value(t.inserts);
  w.key("probes");
  w.value(t.probes);
  w.key("tag_rejects");
  w.value(t.tag_rejects);
  w.key("key_compares");
  w.value(t.key_compares);
  w.key("group_scans");
  w.value(t.group_scans);
  w.key("lanes_rejected");
  w.value(t.lanes_rejected);
  w.key("lock_waits");
  w.value(t.lock_waits);
  w.key("overflow_hits");
  w.value(t.overflow_hits);
  w.key("migrations");
  w.value(t.migrations);
  w.key("mean_probe_length");
  w.value(t.adds == 0 ? 0.0
                      : static_cast<double>(t.probes) /
                            static_cast<double>(t.adds));
  // Of the probes that did not match on the 8-bit tag, how many were
  // rejected without touching the full key (the CLI's tag_filter_rate).
  const std::uint64_t misses = t.tag_rejects + t.key_compares;
  w.key("tag_filter_rate");
  w.value(misses == 0 ? 0.0
                      : static_cast<double>(t.tag_rejects) /
                            static_cast<double>(misses));
  w.end_object();
}

void write_tuner(JsonWriter& w, const TunerReport& t) {
  w.begin_object();
  w.key("enabled");
  w.value(t.enabled);
  w.key("calibration");
  w.begin_object();
  w.key("ran");
  w.value(t.calibration.ran);
  w.key("sampled_bases");
  w.value(t.calibration.sampled_bases);
  w.key("input_bytes");
  w.value(t.calibration.input_bytes);
  w.key("est_total_bases");
  w.value(t.calibration.est_total_bases);
  w.key("est_total_kmers");
  w.value(t.calibration.est_total_kmers);
  w.key("kmers_per_base");
  w.value(t.calibration.kmers_per_base);
  w.key("partition_bytes_per_base");
  w.value(t.calibration.partition_bytes_per_base);
  w.key("input_bytes_per_sec");
  w.value(t.calibration.input_bytes_per_sec);
  w.key("chosen_partitions");
  w.value(t.calibration.chosen_partitions);
  w.key("chosen_inflight_budget");
  w.value(t.calibration.chosen_inflight_budget);
  w.key("chosen_upsert_window");
  w.value(static_cast<std::int64_t>(t.calibration.chosen_upsert_window));
  w.key("predicted_step1_seconds");
  w.value(t.calibration.predicted_step1_seconds);
  w.key("predicted_step2_seconds");
  w.value(t.calibration.predicted_step2_seconds);
  w.key("predicted_step3_seconds");
  w.value(t.calibration.predicted_step3_seconds);
  w.key("devices");
  w.begin_array();
  for (const auto& d : t.calibration.devices) {
    w.begin_object();
    w.key("name");
    w.value(d.name);
    w.key("is_gpu");
    w.value(d.is_gpu);
    w.key("bases_per_second");
    w.value(d.bases_per_second);
    w.key("seconds_per_partition");
    w.value(d.seconds_per_partition);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("decisions");
  w.begin_array();
  for (const auto& d : t.decisions) {
    w.begin_object();
    w.key("t_seconds");
    w.value(d.t_seconds);
    w.key("knob");
    w.value(d.knob);
    w.key("old");
    w.value(d.old_value);
    w.key("new");
    w.value(d.new_value);
    w.key("model");
    w.value(d.model_value);
    w.key("measured");
    w.value(d.measured_value);
    w.key("reason");
    w.value(d.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string run_report_json(const RunReport& report,
                            const std::string& simd_level,
                            const std::string& upsert_window,
                            std::uint64_t inflight_budget,
                            const std::string& config_json) {
  JsonWriter w;
  w.begin_object();
  if (!config_json.empty()) {
    w.key("config");
    w.raw(config_json);
  }
  w.key("step1");
  write_step(w, report.step1);
  w.key("step2");
  write_step(w, report.step2);
  w.key("step2_table");
  write_table(w, report.step2_table);
  w.key("step3");
  write_step(w, report.step3);
  w.key("step3_stats");
  w.begin_object();
  w.key("branch_seed_vertices");
  w.value(report.step3_stats.branch_seed_vertices);
  w.key("boundary_vertices");
  w.value(report.step3_stats.boundary_vertices);
  w.key("tips_clipped");
  w.value(report.step3_stats.simplify.tips_clipped);
  w.key("tip_kmers");
  w.value(report.step3_stats.simplify.tip_kmers);
  w.key("bubbles_popped");
  w.value(report.step3_stats.simplify.bubbles_popped);
  w.key("bubble_kmers");
  w.value(report.step3_stats.simplify.bubble_kmers);
  w.key("removed_vertices");
  w.value(report.step3_stats.simplify.removed_vertices);
  w.key("contigs");
  w.value(report.step3_stats.contigs);
  w.key("contig_bases");
  w.value(report.step3_stats.contig_bases);
  w.key("cross_partition_contigs");
  w.value(report.step3_stats.cross_partition_contigs);
  w.key("gfa_segments");
  w.value(report.step3_stats.gfa_segments);
  w.key("gfa_links");
  w.value(report.step3_stats.gfa_links);
  w.end_object();
  w.key("graph");
  w.begin_object();
  w.key("vertices");
  w.value(report.graph.vertices);
  w.key("total_coverage");
  w.value(report.graph.total_coverage);
  w.key("edge_counter_total");
  w.value(report.graph.edge_counter_total);
  w.key("distinct_edges");
  w.value(report.graph.distinct_edges);
  w.key("branching_vertices");
  w.value(report.graph.branching_vertices);
  w.end_object();
  w.key("filtered_vertices");
  w.value(report.filtered_vertices);
  w.key("partition_bytes");
  w.value(report.partition_bytes);
  w.key("resizes");
  w.value(report.resizes);
  w.key("total_elapsed_seconds");
  w.value(report.total_elapsed_seconds);
  w.key("peak_rss_bytes");
  w.value(report.peak_rss_bytes);
  w.key("step_overlap_seconds");
  w.value(report.step_overlap_seconds);
  w.key("step23_overlap_seconds");
  w.value(report.step23_overlap_seconds);
  if (!simd_level.empty()) {
    w.key("simd_level");
    w.value(simd_level);
  }
  if (!upsert_window.empty()) {
    w.key("upsert_window");
    w.value(upsert_window);
  }
  if (inflight_budget > 0) {
    w.key("inflight_budget");
    w.value(inflight_budget);
  }
  if (report.tuner.enabled) {
    w.key("tuner");
    write_tuner(w, report.tuner);
  }
  if (report.frozen.published) {
    w.key("frozen");
    w.begin_object();
    w.key("published");
    w.value(report.frozen.published);
    w.key("vertices");
    w.value(report.frozen.vertices);
    w.key("partitions");
    w.value(report.frozen.partitions);
    w.key("memory_bytes");
    w.value(report.frozen.memory_bytes);
    w.key("build_seconds");
    w.value(report.frozen.build_seconds);
    w.end_object();
  }
  w.key("ledger_samples");
  w.begin_array();
  for (const auto& s : report.ledger_samples) {
    w.begin_object();
    w.key("t_seconds");
    w.value(s.t_seconds);
    w.key("srv");
    w.value(s.counters.srv);
    w.key("cns");
    w.value(s.counters.cns);
    w.key("prd");
    w.value(s.counters.prd);
    w.key("wrt");
    w.value(s.counters.wrt);
    if (s.bands.size() > 1) {
      // Second chain boundary (Step 2 → Step 3) in a three-band run:
      // flat keys so a sample row stays a single timeline point.
      w.key("srv2");
      w.value(s.bands[1].srv);
      w.key("cns2");
      w.value(s.bands[1].cns);
      w.key("prd2");
      w.value(s.bands[1].prd);
      w.key("wrt2");
      w.value(s.bands[1].wrt);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace parahash::pipeline
