// The partition-lifecycle ledger — the paper's Sec. III-E dispatch
// protocol (four shared counters) as a first-class, test-able type.
//
// Every partition moves through the same life:
//
//   writing --seal--> sealed --claim--> claimed --build--> built
//                                                  --retire--> retired
//
// and the ledger's counters are exactly the paper's shared variables:
//
//   srv  partitions Step 1 has sealed and served to the scheduler
//   cns  partitions a Step-2 device has claimed for hashing
//   prd  subgraphs produced (hash table fully populated)
//   wrt  subgraphs written/consumed and their tables released
//
// with the standing invariant srv >= cns >= prd >= wrt.
//
// The ledger is the hand-off point of the fused Step-1 → Step-2
// pipeline: Step 1 publishes sealed partitions as it finishes them
// (including mid-run, between multi-pass id ranges) and Step-2 workers
// claim them immediately instead of waiting for the whole partitioning
// step. Claims are additionally gated by an in-flight table memory
// budget: a claim waits until the estimated bytes of all
// claimed-but-not-retired hash tables fit the budget (at least one
// claim is always admitted so progress is guaranteed), which keeps a
// fused run's peak RSS at a few tables no matter how far Step 1 runs
// ahead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pipeline/partition_stream.h"

namespace parahash::pipeline {

/// Lifecycle states a partition id can be in (kWriting is implicit: a
/// partition the ledger has not heard of yet is still being written).
enum class PartitionState : std::uint8_t {
  kWriting = 0,  ///< not yet published
  kSealed,       ///< published by Step 1, waiting for a device
  kClaimed,      ///< a Step-2 device is hashing it
  kBuilt,        ///< subgraph produced, not yet consumed
  kRetired,      ///< consumed; table memory released
};

const char* partition_state_name(PartitionState state);

class PartitionLedger {
 public:
  /// Snapshot of the four shared counters.
  struct Counters {
    std::uint64_t srv = 0;
    std::uint64_t cns = 0;
    std::uint64_t prd = 0;
    std::uint64_t wrt = 0;
  };

  /// Estimates the Step-2 memory cost (bytes) of a sealed partition —
  /// in practice its hash table, sized by the Property-1 rule from
  /// `kmers`. Unset (or returning 0) means the partition is free.
  using CostFn = std::function<std::uint64_t(const io::SealedPartition&)>;

  /// `inflight_budget_bytes` == 0 disables the budget gate (claims are
  /// then bounded only by the executor's queue depth).
  explicit PartitionLedger(std::uint64_t inflight_budget_bytes = 0,
                           CostFn cost = {});

  // --- Step-1 (producer) side --------------------------------------

  /// Serves a sealed partition to the scheduler (advances srv). A
  /// publish after abort() is dropped silently so a failing consumer
  /// does not take the producer down with it.
  void publish(io::SealedPartition part);

  /// No more partitions will be published.
  void close();

  /// Emergency stop: unblocks every waiter; claims return nullopt and
  /// publishes become no-ops.
  void abort();

  // --- Step-2 (consumer) side --------------------------------------

  /// Claims the next sealed partition in seal order (advances cns),
  /// blocking until one is available AND the in-flight budget admits
  /// it. Returns nullopt once the ledger is closed and drained, or
  /// aborted.
  std::optional<io::SealedPartition> claim();

  /// The claimed partition's subgraph is fully built (advances prd).
  void mark_built(std::uint32_t partition_id);

  /// The subgraph has been consumed and its table released (advances
  /// wrt and returns the partition's bytes to the budget).
  void retire(std::uint32_t partition_id);

  // --- Budget re-negotiation (autotuner hook) ----------------------

  /// Replaces the in-flight budget mid-run. Raising it wakes claims
  /// blocked on the old bound; lowering it never evicts tables already
  /// admitted — the tighter bound simply gates the NEXT claim. 0
  /// disables the gate.
  void set_budget(std::uint64_t budget_bytes);
  std::uint64_t budget() const;

  // --- Introspection -----------------------------------------------

  Counters counters() const;
  PartitionState state(std::uint32_t partition_id) const;
  std::uint64_t inflight_bytes() const;
  bool aborted() const;

 private:
  struct Entry {
    io::SealedPartition part;
    std::uint64_t cost = 0;
  };
  struct Tracked {
    PartitionState state = PartitionState::kSealed;
    std::uint64_t cost = 0;
  };

  std::uint64_t budget_;
  CostFn cost_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Entry> sealed_queue_;
  std::unordered_map<std::uint32_t, Tracked> tracked_;
  Counters counters_;
  std::uint64_t inflight_bytes_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
};

/// The generalized form of the fused scheduler's hand-off state: one
/// PartitionLedger per STAGE BOUNDARY of an N-stage pipeline. A
/// two-step fused run owns a single boundary ("step1-step2"); adding
/// Step 3 appends a second ("step2-step3") whose publisher is Step 2's
/// consume stage and whose claimants are Step-3 workers — the same
/// srv/cns/prd/wrt protocol, instantiated once per hand-off instead of
/// hard-coded for one.
class LedgerChain {
 public:
  /// Appends a boundary and returns its ledger. The label names the
  /// boundary in telemetry gauges, trace counter tracks and the run
  /// report's timeline bands.
  PartitionLedger& add_boundary(std::string label,
                                std::uint64_t inflight_budget_bytes = 0,
                                PartitionLedger::CostFn cost = {}) {
    boundaries_.push_back(Boundary{
        std::move(label),
        std::make_unique<PartitionLedger>(inflight_budget_bytes,
                                          std::move(cost))});
    return *boundaries_.back().ledger;
  }

  std::size_t size() const { return boundaries_.size(); }
  PartitionLedger& at(std::size_t i) { return *boundaries_[i].ledger; }
  const PartitionLedger& at(std::size_t i) const {
    return *boundaries_[i].ledger;
  }
  const std::string& label(std::size_t i) const {
    return boundaries_[i].label;
  }

  /// Emergency stop across every boundary: a stage dying mid-chain must
  /// unblock both its upstream publisher and its downstream claimants.
  void abort_all() {
    for (auto& b : boundaries_) b.ledger->abort();
  }

 private:
  struct Boundary {
    std::string label;
    std::unique_ptr<PartitionLedger> ledger;
  };
  std::vector<Boundary> boundaries_;
};

/// One timestamped snapshot of the shared counters — `counters` is the
/// first boundary (the classic Step-1→Step-2 band); `bands` holds every
/// boundary of a chained run in order, so a three-stage timeline
/// carries two bands per sample.
struct LedgerSample {
  double t_seconds = 0;  ///< since the sampler started
  PartitionLedger::Counters counters;
  std::vector<PartitionLedger::Counters> bands;
};

/// Background thread that snapshots a ledger's counters at a fixed
/// period — the paper's Fig. 12 occupancy data, reconstructed from the
/// Sec. III-E shared variables instead of inferred from step end
/// times. Each tick also refreshes the `ledger.{srv,cns,prd,wrt}`
/// telemetry gauges and, when a trace session is live, emits a
/// "ledger" counter event so pipeline occupancy renders as a stacked
/// chart over the worker tracks.
///
/// The timeline is the direct evidence of Step 1 ∥ Step 2 overlap: a
/// sample with cns > 0 while srv is still short of the partition count
/// means a device was hashing while Step 1 was still serving.
class LedgerSampler {
 public:
  LedgerSampler(const PartitionLedger& ledger, double period_seconds);
  /// Samples every boundary of a chain each tick (band i of each
  /// sample is boundary i; band 0 doubles as the legacy `counters`).
  /// The chain must not gain boundaries while the sampler runs.
  LedgerSampler(const LedgerChain& chain, double period_seconds);
  ~LedgerSampler();

  LedgerSampler(const LedgerSampler&) = delete;
  LedgerSampler& operator=(const LedgerSampler&) = delete;

  /// Takes one final sample and joins the thread. Idempotent; called by
  /// the destructor if not called explicitly.
  void stop();

  /// The recorded timeline (stable only after stop()).
  const std::vector<LedgerSample>& samples() const { return samples_; }

 private:
  struct Band {
    std::string label;
    const PartitionLedger* ledger = nullptr;
  };

  void start();
  void sample_once(double t_seconds);

  std::vector<Band> bands_;
  double period_seconds_;
  std::vector<LedgerSample> samples_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Stream view of a ledger: the produce stage of the Step-2 executor
/// pulls from here, which is how one step's consume stage publishes
/// into the next step's produce stage.
class LedgerPartitionStream final : public PartitionStream {
 public:
  explicit LedgerPartitionStream(PartitionLedger& ledger)
      : ledger_(ledger) {}

  bool next(io::SealedPartition& out) override {
    auto part = ledger_.claim();
    if (!part) return false;
    out = std::move(*part);
    return true;
  }
  void built(std::uint32_t partition_id) override {
    ledger_.mark_built(partition_id);
  }
  void retire(std::uint32_t partition_id) override {
    ledger_.retire(partition_id);
  }
  void abort() override { ledger_.abort(); }

 private:
  PartitionLedger& ledger_;
};

}  // namespace parahash::pipeline
