// ParaHash driver: construction of the device set, the unfused
// (Step 1 then Step 2) and fused (Step 1 ∥ Step 2 through the partition
// ledger) orchestration, and report finalisation. The step bodies live
// in step1_partition.cpp and step2_hash.cpp.
#include "pipeline/parahash.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "concurrent/batched_upsert.h"
#include "core/properties.h"
#include "pipeline/partition_ledger.h"
#include "util/log.h"
#include "util/mem.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace parahash::pipeline {

namespace {

std::string make_partition_dir(const std::string& requested, bool* owned) {
  namespace fs = std::filesystem;
  if (!requested.empty()) {
    fs::create_directories(requested);
    *owned = false;
    return requested;
  }
  // A uniquely named directory we own and remove in the destructor.
  Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate =
        fs::temp_directory_path() /
        ("parahash_parts." + std::to_string(rng.next() & 0xFFFFFFFFull));
    std::error_code ec;
    if (fs::create_directory(candidate, ec)) {
      *owned = true;
      return candidate.string();
    }
  }
  throw IoError("parahash: could not create a partition directory");
}

/// Splits a fused run's whole-run device-stat delta into per-step
/// shares: the MSP counters can only have moved in Step 1, the hashing
/// counters only in Step 2, the compact counters only in Step 3.
/// Transfer time and bytes are charged to the Step-2 share (hash
/// staging dominates them; with several steps live on the device
/// concurrently a finer split would be fiction).
device::DeviceStats msp_share(device::DeviceStats d) {
  d.hash_partitions = 0;
  d.hash_kmers = 0;
  d.hash_vertices = 0;
  d.hash_compute_seconds = 0;
  d.compact_partitions = 0;
  d.compact_vertices = 0;
  d.compact_compute_seconds = 0;
  d.transfer_seconds = 0;
  d.bytes_h2d = 0;
  d.bytes_d2h = 0;
  return d;
}

device::DeviceStats hash_share(device::DeviceStats d) {
  d.msp_batches = 0;
  d.msp_reads = 0;
  d.msp_compute_seconds = 0;
  d.compact_partitions = 0;
  d.compact_vertices = 0;
  d.compact_compute_seconds = 0;
  return d;
}

device::DeviceStats compact_share(device::DeviceStats d) {
  d.msp_batches = 0;
  d.msp_reads = 0;
  d.msp_compute_seconds = 0;
  d.hash_partitions = 0;
  d.hash_kmers = 0;
  d.hash_vertices = 0;
  d.hash_compute_seconds = 0;
  d.transfer_seconds = 0;
  d.bytes_h2d = 0;
  d.bytes_d2h = 0;
  return d;
}

}  // namespace

template <int W>
ParaHash<W>::ParaHash(Options options)
    : options_(std::move(options)),
      input_throttle_(options_.input_bytes_per_sec),
      output_throttle_(options_.output_bytes_per_sec) {
  options_.msp.validate();
  PARAHASH_CHECK_MSG(options_.msp.k <= Kmer<W>::kMaxK,
                     "k too large for this kmer word count");
  PARAHASH_CHECK_MSG(options_.use_cpu || options_.num_gpus > 0,
                     "at least one device required");
  PARAHASH_CHECK_MSG(!options_.step3 || options_.accumulate_graph,
                     "step3 requires accumulate_graph: the stitch phase "
                     "walks the whole in-memory graph");

  partition_dir_ = make_partition_dir(options_.work_dir,
                                      &own_partition_dir_);
  if (!options_.subgraph_dir.empty()) {
    std::filesystem::create_directories(options_.subgraph_dir);
  }

  if (options_.use_cpu) {
    int threads = options_.cpu_threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    cpu_ = std::make_unique<device::CpuDevice<W>>(threads);
  }
  for (int g = 0; g < options_.num_gpus; ++g) {
    device::SimGpuConfig config = options_.gpu;
    config.name = config.name + "-" + std::to_string(g);
    gpus_.push_back(std::make_unique<device::SimGpuDevice<W>>(config));
  }
}

template <int W>
ParaHash<W>::~ParaHash() {
  if (own_partition_dir_ && !options_.keep_partitions) {
    if (subgraphs_in_partition_dir()) {
      // The directory now holds the run's subgraph outputs; remove only
      // our partition files and leave the outputs for the caller
      // (regression: remove_all here used to delete the subgraphs the
      // run had just written).
      cleanup_partition_files();
    } else {
      std::error_code ec;
      std::filesystem::remove_all(partition_dir_, ec);  // best effort
    }
  }
}

template <int W>
void ParaHash<W>::cleanup_partition_files() noexcept {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::directory_iterator it(partition_dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".phsk") {
      std::error_code remove_ec;
      fs::remove(it->path(), remove_ec);
    }
  }
}

template <int W>
std::string ParaHash<W>::subgraph_path(std::uint32_t partition_id) const {
  const std::string& dir = options_.subgraph_dir.empty()
                               ? partition_dir_
                               : options_.subgraph_dir;
  return dir + "/subgraph_" + std::to_string(partition_id) + ".bin";
}

template <int W>
std::vector<device::Device<W>*> ParaHash<W>::devices() {
  std::vector<device::Device<W>*> devs;
  if (cpu_) devs.push_back(cpu_.get());
  for (auto& g : gpus_) devs.push_back(g.get());
  return devs;
}

template <int W>
void ParaHash<W>::finalize_report(core::DeBruijnGraph<W>& graph,
                                  RunReport& report) {
  report.partition_bytes = report.step1.bytes_out;
  report.resizes = resizes_;
  report.step2_table = table_stats_;
  if (options_.accumulate_graph) {
    if (options_.min_coverage > 1) {
      report.filtered_vertices =
          graph.filter_min_coverage(options_.min_coverage);
    }
    report.graph = graph.stats();
  } else {
    report.filtered_vertices = streamed_filtered_;
    report.graph = streamed_stats_;
  }
  report.peak_rss_bytes = peak_rss_bytes();
  if (tuner_) {
    report.tuner.enabled = true;
    report.tuner.calibration = tuner_->calibration();
    report.tuner.decisions = tuner_->decisions();
  }

  if (options_.publish_frozen && options_.accumulate_graph) {
    // Publish the serving snapshot: every partition re-packed into a
    // probe-only frozen table (after the min-coverage filter above, so
    // the snapshot answers like the final graph).
    WallTimer freeze_timer;
    auto frozen = std::make_shared<core::FrozenGraph<W>>(
        core::FrozenGraph<W>::freeze(graph, options_.frozen_alpha));
    report.frozen.published = true;
    report.frozen.vertices = frozen->num_vertices();
    report.frozen.partitions = frozen->num_partitions();
    report.frozen.memory_bytes = frozen->memory_bytes();
    report.frozen.build_seconds = freeze_timer.seconds();
    frozen_ = std::move(frozen);
    if (telemetry::enabled()) {
      telemetry::gauge("serve.snapshot_vertices")
          .set(static_cast<std::int64_t>(report.frozen.vertices));
      telemetry::gauge("serve.snapshot_bytes")
          .set(static_cast<std::int64_t>(report.frozen.memory_bytes));
    }
    PARAHASH_TRACE_INSTANT("serve", "frozen.publish");
  }

  if (own_partition_dir_ && !options_.keep_partitions) {
    cleanup_partition_files();
  }
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct(
    const std::string& input_path) {
  return construct(std::vector<std::string>{input_path});
}

template <int W>
void ParaHash<W>::apply_autotune(
    const std::vector<std::string>& input_paths) {
  const AutotuneOptions& at = options_.autotune;
  // The controller feeds on the probe-length histogram, which is gated.
  telemetry::set_enabled(true);

  const auto devs = devices();
  CalibrationReport cal = run_calibration<W>(
      input_paths, options_.msp, options_.hash, at,
      options_.input_bytes_per_sec, devs);

  const std::uint64_t memory_target =
      at.memory_target_bytes != 0 ? at.memory_target_bytes
                                  : Autotuner::default_memory_target();
  std::uint64_t min_gpu_memory = 0;
  for (const auto& g : gpus_) {
    const std::uint64_t m = g->config().device_memory_bytes;
    min_gpu_memory = min_gpu_memory == 0 ? m : std::min(min_gpu_memory, m);
  }
  const std::uint64_t bytes_per_slot =
      concurrent::ConcurrentKmerTable<W>::bytes_per_slot();

  auto table_bytes_at = [&](std::uint32_t n) {
    const auto kmers = static_cast<std::uint64_t>(
        cal.est_total_kmers / static_cast<double>(n < 1 ? 1 : n));
    return core::hash_table_slots(kmers, options_.hash.lambda,
                                  options_.hash.alpha,
                                  /*genome_kmers_share=*/0,
                                  options_.hash.min_slots) *
           bytes_per_slot;
  };

  std::vector<TunerDecision> setup;
  std::uint32_t partitions = options_.msp.num_partitions;
  if (cal.ran && !at.pin_partitions) {
    const std::uint32_t chosen = Autotuner::pick_partition_count(
        cal.est_total_kmers, options_.hash, bytes_per_slot, memory_target,
        min_gpu_memory, devs.size());
    if (chosen != partitions) {
      TunerDecision d;
      d.knob = "partitions";
      d.old_value = partitions;
      d.new_value = chosen;
      d.model_value = cal.est_total_kmers;
      d.measured_value = cal.kmers_per_base;
      d.reason = "calibration: smallest partition count whose table "
                 "fits device memory and the host target";
      setup.push_back(std::move(d));
      partitions = chosen;
      options_.msp.num_partitions = chosen;
    }
  }
  cal.chosen_partitions = partitions;

  const std::uint64_t table_estimate =
      cal.ran ? table_bytes_at(partitions) : 0;
  if (cal.ran && !at.pin_inflight_budget) {
    const std::uint64_t budget =
        Autotuner::pick_inflight_budget(table_estimate, memory_target);
    if (budget != options_.inflight_table_budget_bytes) {
      TunerDecision d;
      d.knob = "inflight_budget";
      d.old_value =
          static_cast<double>(options_.inflight_table_budget_bytes);
      d.new_value = static_cast<double>(budget);
      d.model_value = static_cast<double>(table_estimate);
      d.measured_value = static_cast<double>(memory_target);
      d.reason = "calibration: >= 2 tables for pipelining, capped by "
                 "the memory target";
      setup.push_back(std::move(d));
      options_.inflight_table_budget_bytes = budget;
    }
  }
  cal.chosen_inflight_budget = options_.inflight_table_budget_bytes;

  if (!at.pin_upsert_window &&
      !options_.hash.upsert_window.is_tuned()) {
    TunerDecision d;
    d.knob = "upsert_window";
    d.old_value = options_.hash.upsert_window.initial();
    d.new_value = concurrent::current_tuned_window();
    d.model_value = concurrent::UpsertWindow::kDefault;
    d.measured_value = 0;
    d.reason = "calibration: window handed to the control loop "
               "(mode=tuned)";
    setup.push_back(std::move(d));
    options_.hash.upsert_window = concurrent::UpsertWindow::tuned_window();
  }
  cal.chosen_upsert_window = options_.hash.upsert_window.initial();

  if (!at.pin_fuse && !options_.fuse_steps) {
    TunerDecision d;
    d.knob = "fuse_steps";
    d.old_value = 0;
    d.new_value = 1;
    d.reason = "calibration: fusing overlaps Step 2 with Step 1's tail";
    setup.push_back(std::move(d));
    options_.fuse_steps = true;
  }

  // Eq. (1)/(2) predictions from the fitted throughputs.
  if (cal.ran) {
    double cpu_bps = 0, gpu_bps = 0;
    int gpu_count = 0;
    for (const auto& dc : cal.devices) {
      if (dc.is_gpu) {
        gpu_bps = std::max(gpu_bps, dc.bases_per_second);
        ++gpu_count;
      } else {
        cpu_bps = dc.bases_per_second;
      }
    }
    const double cpu_only =
        cpu_bps > 0 ? cal.est_total_bases / cpu_bps : 0;
    if (cpu_bps > 0 && gpu_bps > 0) {
      cal.predicted_step1_seconds = core::estimate_coprocessing(
          cpu_only, cal.est_total_bases / gpu_bps, gpu_count);
    } else {
      cal.predicted_step1_seconds = cpu_only;
    }
    // Step-2 proxy: hashing consumes the same kmer stream the MSP scan
    // produced, so each device's span per partition is its calibrated
    // kmer rate over a partition share — the baseline the controller
    // compares live spans against.
    const double kmers_per_part =
        cal.est_total_kmers / static_cast<double>(partitions);
    double total_kmer_rate = 0;
    for (auto& dc : cal.devices) {
      const double kmer_rate = dc.bases_per_second * cal.kmers_per_base;
      if (kmer_rate > 0) {
        dc.seconds_per_partition = kmers_per_part / kmer_rate;
        total_kmer_rate += kmer_rate;
      }
    }
    if (total_kmer_rate > 0) {
      cal.predicted_step2_seconds =
          cal.est_total_kmers / total_kmer_rate;
      if (options_.step3) {
        // Step-3 proxy: the compact scan touches each DISTINCT vertex
        // once, so its span is Step 2's shrunk by the mean coverage
        // (est kmer instances per distinct kmer, the model's lambda).
        const double est_vertices =
            cal.est_total_kmers /
            std::max(1.0, options_.hash.lambda);
        cal.predicted_step3_seconds = est_vertices / total_kmer_rate;
      }
    }
  }

  tuner_ = std::make_unique<Autotuner>(at, table_estimate);
  tuner_->set_calibration(std::move(cal));
  for (auto& d : setup) tuner_->record_decision(std::move(d));

  // Adjustable leases for every device; the Step-2 executor spawns a
  // second (initially parked) lane per device under these.
  lane_leases_.clear();
  lease_ptrs_.clear();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    lane_leases_.push_back(std::make_unique<LaneLease>(1));
    lease_ptrs_.push_back(lane_leases_.back().get());
  }
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct(
    const std::vector<std::string>& input_paths) {
  if (options_.autotune.enabled && tuner_ == nullptr) {
    apply_autotune(input_paths);
  }
  if (options_.fuse_steps) return construct_fused(input_paths);

  RunReport report;
  WallTimer total;

  const std::vector<std::string> paths = run_partitioning_impl(
      input_paths, report.step1, /*ledger=*/nullptr,
      /*device_reports=*/true, /*exclusive_devices=*/false);

  VectorPartitionStream stream(paths);
  core::DeBruijnGraph<W> graph(options_.msp.k, options_.msp.p,
                               options_.msp.num_partitions);
  run_hashing_impl(stream, report.step2, /*device_reports=*/true,
                   /*exclusive_devices=*/false, /*downstream=*/nullptr,
                   graph);

  if (options_.step3) {
    // Unfused Step 3: serve every built partition through a one-shot
    // boundary ledger, same protocol as the fused chain, steps
    // back-to-back.
    PartitionLedger boundary;
    for (std::uint32_t id = 0; id < options_.msp.num_partitions; ++id) {
      const auto& entries = graph.partition(id);
      io::SealedPartition built;
      built.id = id;
      built.bytes =
          entries.size() * sizeof(concurrent::VertexEntry<W>);
      built.kmers = entries.size();
      boundary.publish(std::move(built));
    }
    boundary.close();
    LedgerPartitionStream built_stream(boundary);
    run_compaction_impl(built_stream, graph, report.step3,
                        report.step3_stats, /*device_reports=*/true,
                        /*exclusive_devices=*/false);
  }
  report.total_elapsed_seconds = total.seconds();

  finalize_report(graph, report);
  return {std::move(graph), std::move(report)};
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct_fused(
    const std::vector<std::string>& input_paths) {
  RunReport report;
  WallTimer total;

  // Both steps run concurrently on a shared device set, so per-step
  // device deltas are taken around the whole fused run and split by
  // counter family afterwards.
  const auto devs = devices();
  std::vector<device::DeviceStats> before;
  before.reserve(devs.size());
  for (auto* dev : devs) before.push_back(dev->stats());

  // The stage-boundary chain: boundary 0 hands sealed partition files
  // from Step 1 to Step 2 (budget-gated by estimated table bytes);
  // boundary 1, present when Step 3 runs, hands built subgraphs from
  // Step 2 to the compact scanners (ungated: the graph owns the entries
  // either way).
  LedgerChain chain;
  PartitionLedger& ledger = chain.add_boundary(
      "step1-step2", options_.inflight_table_budget_bytes,
      [this](const io::SealedPartition& part) {
        const std::uint64_t slots =
            options_.hash.slots_override != 0
                ? options_.hash.slots_override
                : core::hash_table_slots(part.kmers, options_.hash.lambda,
                                         options_.hash.alpha,
                                         /*genome_kmers_share=*/0,
                                         options_.hash.min_slots);
        return slots *
               concurrent::ConcurrentKmerTable<W>::bytes_per_slot();
      });
  PartitionLedger* compact_boundary =
      options_.step3 ? &chain.add_boundary("step2-step3") : nullptr;

  std::unique_ptr<LedgerSampler> sampler;
  if (options_.ledger_sample_period > 0) {
    sampler = std::make_unique<LedgerSampler>(
        chain, options_.ledger_sample_period);
  }

  // Live control loop: sample the ledger / RSS / probe histogram /
  // device spans, let the tuner retune the budget, window and leases.
  if (tuner_) {
    WallTimer* run_timer = &total;
    // Histogram deltas: the probe.length instrument is process-global
    // and may carry samples from earlier runs in this process.
    const auto probe_base =
        telemetry::histogram("probe.length").snapshot();
    auto sampler_fn = [this, run_timer, &ledger, compact_boundary, devs,
                       probe_base] {
      ControlSample s;
      s.t_seconds = run_timer->seconds();
      s.ledger = ledger.counters();
      if (compact_boundary != nullptr) {
        s.step3_active = true;
        s.compact_ledger = compact_boundary->counters();
      }
      s.inflight_bytes = ledger.inflight_bytes();
      s.budget_bytes = ledger.budget();
      s.rss_bytes = current_rss_bytes();
      const auto probe = telemetry::histogram("probe.length").snapshot();
      const std::uint64_t n =
          probe.count > probe_base.count ? probe.count - probe_base.count
                                         : 0;
      s.probe_samples = n;
      if (n > 0) {
        s.mean_probe_length =
            static_cast<double>(probe.sum - probe_base.sum) /
            static_cast<double>(n);
      }
      for (std::size_t i = 0; i < devs.size(); ++i) {
        DeviceControlSample d;
        d.name = devs[i]->name();
        d.is_gpu = devs[i]->kind() != device::DeviceKind::kCpu;
        const auto st = devs[i]->stats();
        d.hash_partitions = st.hash_partitions;
        d.hash_compute_seconds = st.hash_compute_seconds;
        d.transfer_seconds = st.transfer_seconds;
        d.lanes = i < lease_ptrs_.size() ? lease_ptrs_[i]->lanes() : 1;
        s.devices.push_back(std::move(d));
      }
      return s;
    };
    Actuators actuators;
    actuators.set_inflight_budget = [&ledger](std::uint64_t b) {
      ledger.set_budget(b);
    };
    actuators.set_upsert_window = [](int w) {
      concurrent::set_tuned_window(w);
    };
    actuators.set_lease_lanes = [this](std::size_t i, int lanes) {
      if (i < lease_ptrs_.size()) lease_ptrs_[i]->set_lanes(lanes);
    };
    tuner_->start(std::move(sampler_fn), std::move(actuators));
  }

  std::exception_ptr step1_error;
  double step1_end_seconds = 0;
  std::thread step1_thread([&] {
    try {
      run_partitioning_impl(input_paths, report.step1, &ledger,
                            /*device_reports=*/false,
                            /*exclusive_devices=*/true);
    } catch (...) {
      step1_error = std::current_exception();
      chain.abort_all();  // unblock downstream claims; run ends fast
    }
    step1_end_seconds = total.seconds();
    ledger.close();
  });

  LedgerPartitionStream stream(ledger);
  core::DeBruijnGraph<W> graph(options_.msp.k, options_.msp.p,
                               options_.msp.num_partitions);
  std::exception_ptr step2_error;
  double step2_end_seconds = 0;
  // Step 2 builds into the shared `graph`: partitions_[id] slots are
  // pre-sized, each write is published to Step 3 through the compact
  // boundary's mutex, so the chained reader only ever sees adopted
  // partitions.
  auto step2_body = [&] {
    try {
      run_hashing_impl(stream, report.step2,
                       /*device_reports=*/false,
                       /*exclusive_devices=*/true, compact_boundary,
                       graph);
    } catch (...) {
      step2_error = std::current_exception();
      chain.abort_all();  // drop unclaimed partitions everywhere
    }
    step2_end_seconds = total.seconds();
  };

  std::exception_ptr step3_error;
  double step3_end_seconds = 0;
  if (compact_boundary != nullptr) {
    // Three-band timeline: Step 2 moves to its own thread and the
    // caller thread drives Step 3, claiming built subgraphs while
    // Step 2 is still hashing (and Step 1 possibly still sealing).
    std::thread step2_thread(step2_body);
    LedgerPartitionStream built_stream(*compact_boundary);
    try {
      run_compaction_impl(built_stream, graph, report.step3,
                          report.step3_stats, /*device_reports=*/false,
                          /*exclusive_devices=*/true);
    } catch (...) {
      step3_error = std::current_exception();
      chain.abort_all();
    }
    step3_end_seconds = total.seconds();
    step2_thread.join();
  } else {
    step2_body();
  }
  step1_thread.join();
  if (tuner_) tuner_->stop();  // before the chain/devs leave scope
  if (sampler) {
    sampler->stop();
    report.ledger_samples = sampler->samples();
  }

  if (step1_error) std::rethrow_exception(step1_error);
  if (step2_error) std::rethrow_exception(step2_error);
  if (step3_error) std::rethrow_exception(step3_error);

  report.total_elapsed_seconds = total.seconds();
  // All fused steps went active at ~t=0 (thread launch); each
  // concurrently-active window therefore ends when the first of its
  // pair finishes.
  report.step_overlap_seconds =
      std::min(step1_end_seconds, step2_end_seconds);
  if (compact_boundary != nullptr) {
    report.step23_overlap_seconds =
        std::min(step2_end_seconds, step3_end_seconds);
  }

  for (std::size_t i = 0; i < devs.size(); ++i) {
    const device::DeviceStats delta = devs[i]->stats() - before[i];
    report.step1.devices.push_back(DeviceReport{
        devs[i]->name(), devs[i]->kind(), msp_share(delta)});
    report.step2.devices.push_back(DeviceReport{
        devs[i]->name(), devs[i]->kind(), hash_share(delta)});
    if (compact_boundary != nullptr) {
      report.step3.devices.push_back(DeviceReport{
          devs[i]->name(), devs[i]->kind(), compact_share(delta)});
    }
  }

  finalize_report(graph, report);
  return {std::move(graph), std::move(report)};
}

template class ParaHash<1>;
template class ParaHash<2>;

RunReport construct_graph(const Options& options,
                          const std::string& input_path,
                          const std::string& graph_path) {
  return with_kmer_words(options.msp.k, [&]<int W>() {
    ParaHash<W> system(options);
    auto [graph, report] = system.construct(input_path);
    if (!graph_path.empty()) graph.write(graph_path);
    return report;
  });
}

}  // namespace parahash::pipeline
