#include "pipeline/parahash.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "io/fastx.h"
#include "io/partition_file.h"
#include "util/rng.h"
#include "util/log.h"
#include "util/mem.h"

namespace parahash::pipeline {

namespace {

std::string make_partition_dir(const std::string& requested, bool* owned) {
  namespace fs = std::filesystem;
  if (!requested.empty()) {
    fs::create_directories(requested);
    *owned = false;
    return requested;
  }
  // A uniquely named directory we own and remove in the destructor.
  Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate =
        fs::temp_directory_path() /
        ("parahash_parts." + std::to_string(rng.next() & 0xFFFFFFFFull));
    std::error_code ec;
    if (fs::create_directory(candidate, ec)) {
      *owned = true;
      return candidate.string();
    }
  }
  throw IoError("parahash: could not create a partition directory");
}

}  // namespace

template <int W>
ParaHash<W>::ParaHash(Options options)
    : options_(std::move(options)),
      input_throttle_(options_.input_bytes_per_sec),
      output_throttle_(options_.output_bytes_per_sec) {
  options_.msp.validate();
  PARAHASH_CHECK_MSG(options_.msp.k <= Kmer<W>::kMaxK,
                     "k too large for this kmer word count");
  PARAHASH_CHECK_MSG(options_.use_cpu || options_.num_gpus > 0,
                     "at least one device required");

  partition_dir_ = make_partition_dir(options_.work_dir,
                                      &own_partition_dir_);

  if (options_.use_cpu) {
    int threads = options_.cpu_threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    cpu_ = std::make_unique<device::CpuDevice<W>>(threads);
  }
  for (int g = 0; g < options_.num_gpus; ++g) {
    device::SimGpuConfig config = options_.gpu;
    config.name = config.name + "-" + std::to_string(g);
    gpus_.push_back(std::make_unique<device::SimGpuDevice<W>>(config));
  }
}

template <int W>
ParaHash<W>::~ParaHash() {
  if (own_partition_dir_ && !options_.keep_partitions) {
    std::error_code ec;
    std::filesystem::remove_all(partition_dir_, ec);  // best effort
  }
}

template <int W>
std::vector<device::Device<W>*> ParaHash<W>::devices() {
  std::vector<device::Device<W>*> devs;
  if (cpu_) devs.push_back(cpu_.get());
  for (auto& g : gpus_) devs.push_back(g.get());
  return devs;
}

template <int W>
std::vector<std::string> ParaHash<W>::run_partitioning(
    const std::string& input_path, StepReport& report) {
  return run_partitioning(std::vector<std::string>{input_path}, report);
}

template <int W>
std::vector<std::string> ParaHash<W>::run_partitioning(
    const std::vector<std::string>& input_paths, StepReport& report) {
  const std::uint32_t total_partitions = options_.msp.num_partitions;
  const std::uint32_t per_pass =
      options_.max_open_partitions == 0
          ? total_partitions
          : std::min(options_.max_open_partitions, total_partitions);

  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::vector<std::string> all_paths;
  all_paths.reserve(total_partitions);

  const auto devs = devices();
  std::vector<device::DeviceStats> before;
  for (auto* dev : devs) before.push_back(dev->stats());
  report.times = StageTimes{};

  // One pass per id range; multiple passes re-read the input (bounded
  // open file handles, the multi-pass MSP trade).
  for (std::uint32_t first = 0; first < total_partitions;
       first += per_pass) {
    const std::uint32_t count =
        std::min(per_pass, total_partitions - first);
    io::FastxChunker chunker(input_paths, options_.batch_bases,
                             options_.quality_trim_phred);
    io::PartitionSet partitions(
        partition_dir_, static_cast<std::uint32_t>(options_.msp.k),
        static_cast<std::uint32_t>(options_.msp.p), count,
        options_.msp.encoding, first);

    StepCallbacks<io::ReadBatch, core::MspBatchOutput, W> callbacks;
    callbacks.produce = [&](io::ReadBatch& batch) {
      if (!chunker.next(batch)) return false;
      // Charge the input channel with the batch's share of the file.
      const std::uint64_t bytes = batch.total_bases();
      input_throttle_.consume(bytes);
      bytes_in += bytes;
      return true;
    };
    callbacks.compute = [&](device::Device<W>& dev,
                            const io::ReadBatch& batch) {
      return dev.run_msp(batch, options_.msp);
    };
    callbacks.consume = [&](core::MspBatchOutput out) {
      for (std::uint32_t part = first; part < first + count; ++part) {
        const auto& p = out.parts[part];
        if (p.bytes.empty()) continue;
        partitions.writer(part).append_raw(p.bytes.data(), p.bytes.size(),
                                           p.superkmers, p.kmers, p.bases);
        output_throttle_.consume(p.bytes.size());
        bytes_out += p.bytes.size();
      }
    };

    const StageTimes pass_times =
        options_.pipelined
            ? run_pipelined(devs, callbacks, options_.queue_depth)
            : run_sequential(devs, callbacks);
    report.times.elapsed_seconds += pass_times.elapsed_seconds;
    report.times.input_seconds += pass_times.input_seconds;
    report.times.compute_seconds += pass_times.compute_seconds;
    report.times.output_seconds += pass_times.output_seconds;
    report.times.items += pass_times.items;

    for (auto& path : partitions.close_all()) {
      all_paths.push_back(std::move(path));
    }
  }

  report.bytes_in = bytes_in;
  report.bytes_out = bytes_out;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    report.devices.push_back(DeviceReport{
        devs[i]->name(), devs[i]->kind(), devs[i]->stats() - before[i]});
  }
  return all_paths;
}

template <int W>
core::DeBruijnGraph<W> ParaHash<W>::run_hashing(
    const std::vector<std::string>& partition_paths, StepReport& report) {
  core::DeBruijnGraph<W> graph(options_.msp.k, options_.msp.p,
                               options_.msp.num_partitions);
  PARAHASH_CHECK(partition_paths.size() == options_.msp.num_partitions);

  std::size_t next_path = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  resizes_ = 0;
  table_stats_ = concurrent::TableStats{};
  streamed_filtered_ = 0;
  streamed_stats_ = core::GraphStats{};

  StepCallbacks<io::PartitionBlob, core::SubgraphBuildResult<W>, W>
      callbacks;
  callbacks.produce = [&](io::PartitionBlob& blob) {
    if (next_path >= partition_paths.size()) return false;
    blob = io::PartitionBlob::read_file(partition_paths[next_path++]);
    input_throttle_.consume(blob.byte_size());
    bytes_in += blob.byte_size();
    return true;
  };
  callbacks.compute = [&](device::Device<W>& dev,
                          const io::PartitionBlob& blob) {
    return dev.run_hash(blob, options_.hash);
  };
  callbacks.consume = [&](core::SubgraphBuildResult<W> result) {
    resizes_ += result.resizes;
    table_stats_.merge(result.stats);
    if (options_.accumulate_graph) {
      graph.adopt_table(result.partition_id, *result.table,
                        /*min_coverage=*/0);
    } else {
      // Streamed mode: fold this subgraph into the aggregate statistics
      // and let the table go (the paper's big-genome protocol).
      result.table->for_each([&](const concurrent::VertexEntry<W>& e) {
        if (options_.min_coverage > 1 &&
            e.coverage < options_.min_coverage) {
          ++streamed_filtered_;
          return;
        }
        ++streamed_stats_.vertices;
        streamed_stats_.total_coverage += e.coverage;
        for (int i = 0; i < 8; ++i) {
          streamed_stats_.edge_counter_total += e.edges[i];
        }
        for (int b = 0; b < 4; ++b) {
          streamed_stats_.distinct_edges +=
              e.edges[concurrent::kEdgeOut + b] > 0;
        }
        if (e.out_degree() > 1 || e.in_degree() > 1) {
          ++streamed_stats_.branching_vertices;
        }
      });
    }
    if (options_.write_subgraphs) {
      // The Step-2 output stage: serialise this subgraph to disk
      // (~32 bytes per vertex, the paper's <vertex, list of edges>
      // sizing) and charge the output channel.
      const std::string path = partition_dir_ + "/subgraph_" +
                               std::to_string(result.partition_id) +
                               ".bin";
      std::ofstream file(path, std::ios::binary);
      if (!file) throw IoError("parahash: cannot open " + path);
      const std::uint32_t k32 = static_cast<std::uint32_t>(options_.msp.k);
      const std::uint64_t count = result.table->size();
      file.write(reinterpret_cast<const char*>(&k32), sizeof(k32));
      file.write(reinterpret_cast<const char*>(&result.partition_id),
                 sizeof(result.partition_id));
      file.write(reinterpret_cast<const char*>(&count), sizeof(count));
      std::uint64_t bytes = sizeof(k32) + sizeof(result.partition_id) +
                            sizeof(count);
      result.table->for_each([&](const concurrent::VertexEntry<W>& e) {
        const auto words = e.kmer.words();
        file.write(reinterpret_cast<const char*>(words.data()),
                   W * sizeof(std::uint64_t));
        file.write(reinterpret_cast<const char*>(&e.coverage),
                   sizeof(e.coverage));
        file.write(reinterpret_cast<const char*>(e.edges.data()),
                   8 * sizeof(std::uint32_t));
        bytes += W * sizeof(std::uint64_t) + 9 * sizeof(std::uint32_t);
      });
      file.close();
      if (file.fail()) throw IoError("parahash: write failure on " + path);
      output_throttle_.consume(bytes);
      bytes_out += bytes;
    }
  };

  const auto devs = devices();
  std::vector<device::DeviceStats> before;
  for (auto* dev : devs) before.push_back(dev->stats());
  report.times = options_.pipelined
                     ? run_pipelined(devs, callbacks, options_.queue_depth)
                     : run_sequential(devs, callbacks);
  report.bytes_in = bytes_in;
  report.bytes_out = bytes_out;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    report.devices.push_back(DeviceReport{
        devs[i]->name(), devs[i]->kind(), devs[i]->stats() - before[i]});
  }
  return graph;
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct(
    const std::string& input_path) {
  return construct(std::vector<std::string>{input_path});
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct(
    const std::vector<std::string>& input_paths) {
  RunReport report;
  WallTimer total;

  const std::vector<std::string> paths =
      run_partitioning(input_paths, report.step1);
  report.partition_bytes = report.step1.bytes_out;

  core::DeBruijnGraph<W> graph = run_hashing(paths, report.step2);
  report.total_elapsed_seconds = total.seconds();

  report.resizes = resizes_;
  report.step2_table = table_stats_;
  if (options_.accumulate_graph) {
    if (options_.min_coverage > 1) {
      report.filtered_vertices =
          graph.filter_min_coverage(options_.min_coverage);
    }
    report.graph = graph.stats();
  } else {
    report.filtered_vertices = streamed_filtered_;
    report.graph = streamed_stats_;
  }
  report.peak_rss_bytes = peak_rss_bytes();

  if (own_partition_dir_ && !options_.keep_partitions) {
    std::error_code ec;
    std::filesystem::remove_all(partition_dir_, ec);
    std::filesystem::create_directories(partition_dir_, ec);
  }
  return {std::move(graph), std::move(report)};
}

template class ParaHash<1>;
template class ParaHash<2>;

RunReport construct_graph(const Options& options,
                          const std::string& input_path,
                          const std::string& graph_path) {
  return with_kmer_words(options.msp.k, [&]<int W>() {
    ParaHash<W> system(options);
    auto [graph, report] = system.construct(input_path);
    if (!graph_path.empty()) graph.write(graph_path);
    return report;
  });
}

}  // namespace parahash::pipeline
