// ParaHash driver: construction of the device set, the unfused
// (Step 1 then Step 2) and fused (Step 1 ∥ Step 2 through the partition
// ledger) orchestration, and report finalisation. The step bodies live
// in step1_partition.cpp and step2_hash.cpp.
#include "pipeline/parahash.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "core/properties.h"
#include "pipeline/partition_ledger.h"
#include "util/log.h"
#include "util/mem.h"
#include "util/rng.h"

namespace parahash::pipeline {

namespace {

std::string make_partition_dir(const std::string& requested, bool* owned) {
  namespace fs = std::filesystem;
  if (!requested.empty()) {
    fs::create_directories(requested);
    *owned = false;
    return requested;
  }
  // A uniquely named directory we own and remove in the destructor.
  Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate =
        fs::temp_directory_path() /
        ("parahash_parts." + std::to_string(rng.next() & 0xFFFFFFFFull));
    std::error_code ec;
    if (fs::create_directory(candidate, ec)) {
      *owned = true;
      return candidate.string();
    }
  }
  throw IoError("parahash: could not create a partition directory");
}

/// Splits a fused run's whole-run device-stat delta into per-step
/// shares: the MSP counters can only have moved in Step 1, the hashing
/// counters only in Step 2. Transfer time and bytes are charged to the
/// Step-2 share (hash staging dominates them; with both steps live on
/// the device concurrently a finer split would be fiction).
device::DeviceStats msp_share(device::DeviceStats d) {
  d.hash_partitions = 0;
  d.hash_kmers = 0;
  d.hash_vertices = 0;
  d.hash_compute_seconds = 0;
  d.transfer_seconds = 0;
  d.bytes_h2d = 0;
  d.bytes_d2h = 0;
  return d;
}

device::DeviceStats hash_share(device::DeviceStats d) {
  d.msp_batches = 0;
  d.msp_reads = 0;
  d.msp_compute_seconds = 0;
  return d;
}

}  // namespace

template <int W>
ParaHash<W>::ParaHash(Options options)
    : options_(std::move(options)),
      input_throttle_(options_.input_bytes_per_sec),
      output_throttle_(options_.output_bytes_per_sec) {
  options_.msp.validate();
  PARAHASH_CHECK_MSG(options_.msp.k <= Kmer<W>::kMaxK,
                     "k too large for this kmer word count");
  PARAHASH_CHECK_MSG(options_.use_cpu || options_.num_gpus > 0,
                     "at least one device required");

  partition_dir_ = make_partition_dir(options_.work_dir,
                                      &own_partition_dir_);
  if (!options_.subgraph_dir.empty()) {
    std::filesystem::create_directories(options_.subgraph_dir);
  }

  if (options_.use_cpu) {
    int threads = options_.cpu_threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    cpu_ = std::make_unique<device::CpuDevice<W>>(threads);
  }
  for (int g = 0; g < options_.num_gpus; ++g) {
    device::SimGpuConfig config = options_.gpu;
    config.name = config.name + "-" + std::to_string(g);
    gpus_.push_back(std::make_unique<device::SimGpuDevice<W>>(config));
  }
}

template <int W>
ParaHash<W>::~ParaHash() {
  if (own_partition_dir_ && !options_.keep_partitions) {
    if (subgraphs_in_partition_dir()) {
      // The directory now holds the run's subgraph outputs; remove only
      // our partition files and leave the outputs for the caller
      // (regression: remove_all here used to delete the subgraphs the
      // run had just written).
      cleanup_partition_files();
    } else {
      std::error_code ec;
      std::filesystem::remove_all(partition_dir_, ec);  // best effort
    }
  }
}

template <int W>
void ParaHash<W>::cleanup_partition_files() noexcept {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::directory_iterator it(partition_dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".phsk") {
      std::error_code remove_ec;
      fs::remove(it->path(), remove_ec);
    }
  }
}

template <int W>
std::string ParaHash<W>::subgraph_path(std::uint32_t partition_id) const {
  const std::string& dir = options_.subgraph_dir.empty()
                               ? partition_dir_
                               : options_.subgraph_dir;
  return dir + "/subgraph_" + std::to_string(partition_id) + ".bin";
}

template <int W>
std::vector<device::Device<W>*> ParaHash<W>::devices() {
  std::vector<device::Device<W>*> devs;
  if (cpu_) devs.push_back(cpu_.get());
  for (auto& g : gpus_) devs.push_back(g.get());
  return devs;
}

template <int W>
void ParaHash<W>::finalize_report(core::DeBruijnGraph<W>& graph,
                                  RunReport& report) {
  report.partition_bytes = report.step1.bytes_out;
  report.resizes = resizes_;
  report.step2_table = table_stats_;
  if (options_.accumulate_graph) {
    if (options_.min_coverage > 1) {
      report.filtered_vertices =
          graph.filter_min_coverage(options_.min_coverage);
    }
    report.graph = graph.stats();
  } else {
    report.filtered_vertices = streamed_filtered_;
    report.graph = streamed_stats_;
  }
  report.peak_rss_bytes = peak_rss_bytes();

  if (own_partition_dir_ && !options_.keep_partitions) {
    cleanup_partition_files();
  }
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct(
    const std::string& input_path) {
  return construct(std::vector<std::string>{input_path});
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct(
    const std::vector<std::string>& input_paths) {
  if (options_.fuse_steps) return construct_fused(input_paths);

  RunReport report;
  WallTimer total;

  const std::vector<std::string> paths = run_partitioning_impl(
      input_paths, report.step1, /*ledger=*/nullptr,
      /*device_reports=*/true, /*exclusive_devices=*/false);

  VectorPartitionStream stream(paths);
  core::DeBruijnGraph<W> graph = run_hashing_impl(
      stream, report.step2, /*device_reports=*/true,
      /*exclusive_devices=*/false);
  report.total_elapsed_seconds = total.seconds();

  finalize_report(graph, report);
  return {std::move(graph), std::move(report)};
}

template <int W>
std::pair<core::DeBruijnGraph<W>, RunReport> ParaHash<W>::construct_fused(
    const std::vector<std::string>& input_paths) {
  RunReport report;
  WallTimer total;

  // Both steps run concurrently on a shared device set, so per-step
  // device deltas are taken around the whole fused run and split by
  // counter family afterwards.
  const auto devs = devices();
  std::vector<device::DeviceStats> before;
  before.reserve(devs.size());
  for (auto* dev : devs) before.push_back(dev->stats());

  PartitionLedger ledger(
      options_.inflight_table_budget_bytes,
      [this](const io::SealedPartition& part) {
        const std::uint64_t slots =
            options_.hash.slots_override != 0
                ? options_.hash.slots_override
                : core::hash_table_slots(part.kmers, options_.hash.lambda,
                                         options_.hash.alpha,
                                         /*genome_kmers_share=*/0,
                                         options_.hash.min_slots);
        return slots *
               concurrent::ConcurrentKmerTable<W>::bytes_per_slot();
      });

  std::unique_ptr<LedgerSampler> sampler;
  if (options_.ledger_sample_period > 0) {
    sampler = std::make_unique<LedgerSampler>(
        ledger, options_.ledger_sample_period);
  }

  std::exception_ptr step1_error;
  double step1_end_seconds = 0;
  std::thread step1_thread([&] {
    try {
      run_partitioning_impl(input_paths, report.step1, &ledger,
                            /*device_reports=*/false,
                            /*exclusive_devices=*/true);
    } catch (...) {
      step1_error = std::current_exception();
      ledger.abort();  // unblock Step-2 claims; partial run ends fast
    }
    step1_end_seconds = total.seconds();
    ledger.close();
  });

  LedgerPartitionStream stream(ledger);
  core::DeBruijnGraph<W> graph(options_.msp.k, options_.msp.p,
                               options_.msp.num_partitions);
  std::exception_ptr step2_error;
  try {
    graph = run_hashing_impl(stream, report.step2,
                             /*device_reports=*/false,
                             /*exclusive_devices=*/true);
  } catch (...) {
    step2_error = std::current_exception();
    ledger.abort();  // drop unclaimed partitions; Step 1 publishes no-op
  }
  const double step2_end_seconds = total.seconds();
  step1_thread.join();
  if (sampler) {
    sampler->stop();
    report.ledger_samples = sampler->samples();
  }

  if (step1_error) std::rethrow_exception(step1_error);
  if (step2_error) std::rethrow_exception(step2_error);

  report.total_elapsed_seconds = total.seconds();
  // Both steps went active at ~t=0 (thread launch); the concurrently
  // active window therefore ends when the first of them finishes.
  report.step_overlap_seconds =
      std::min(step1_end_seconds, step2_end_seconds);

  for (std::size_t i = 0; i < devs.size(); ++i) {
    const device::DeviceStats delta = devs[i]->stats() - before[i];
    report.step1.devices.push_back(DeviceReport{
        devs[i]->name(), devs[i]->kind(), msp_share(delta)});
    report.step2.devices.push_back(DeviceReport{
        devs[i]->name(), devs[i]->kind(), hash_share(delta)});
  }

  finalize_report(graph, report);
  return {std::move(graph), std::move(report)};
}

template class ParaHash<1>;
template class ParaHash<2>;

RunReport construct_graph(const Options& options,
                          const std::string& input_path,
                          const std::string& graph_path) {
  return with_kmer_words(options.msp.k, [&]<int W>() {
    ParaHash<W> system(options);
    auto [graph, report] = system.construct(input_path);
    if (!graph_path.empty()) graph.write(graph_path);
    return report;
  });
}

}  // namespace parahash::pipeline
