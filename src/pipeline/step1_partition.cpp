// Step 1 — MSP graph partitioning: a three-stage pipeline (read
// batches → device MSP scan → partition writers), one pass per id
// range when the open-file-handle budget forces multi-pass. With a
// ledger attached, every partition is published to the Step-2
// scheduler the moment its file seals, so a fused run starts hashing
// it while this step is still writing later partitions.
#include "pipeline/parahash.h"

#include <algorithm>

#include "io/fastx.h"
#include "io/partition_file.h"
#include "pipeline/partition_ledger.h"
#include "util/trace.h"

namespace parahash::pipeline {

template <int W>
std::vector<std::string> ParaHash<W>::run_partitioning(
    const std::string& input_path, StepReport& report) {
  return run_partitioning(std::vector<std::string>{input_path}, report);
}

template <int W>
std::vector<std::string> ParaHash<W>::run_partitioning(
    const std::vector<std::string>& input_paths, StepReport& report) {
  return run_partitioning_impl(input_paths, report, /*ledger=*/nullptr,
                               /*device_reports=*/true,
                               /*exclusive_devices=*/false);
}

template <int W>
std::vector<std::string> ParaHash<W>::run_partitioning_impl(
    const std::vector<std::string>& input_paths, StepReport& report,
    PartitionLedger* ledger, bool device_reports,
    bool exclusive_devices) {
  const std::uint32_t total_partitions = options_.msp.num_partitions;
  const std::uint32_t per_pass =
      options_.max_open_partitions == 0
          ? total_partitions
          : std::min(options_.max_open_partitions, total_partitions);

  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::vector<std::string> all_paths;
  all_paths.reserve(total_partitions);

  const auto devs = devices();
  std::vector<device::DeviceStats> before;
  if (device_reports) {
    for (auto* dev : devs) before.push_back(dev->stats());
  }
  report.times = StageTimes{};

  ExecutorOptions exec;
  exec.queue_depth = options_.queue_depth;
  exec.exclusive_devices = exclusive_devices;

  // One pass per id range; multiple passes re-read the input (bounded
  // open file handles, the multi-pass MSP trade).
  for (std::uint32_t first = 0; first < total_partitions;
       first += per_pass) {
    const std::uint32_t count =
        std::min(per_pass, total_partitions - first);
    io::FastxChunker chunker(input_paths, options_.batch_bases,
                             options_.quality_trim_phred);
    io::PartitionSet partitions(
        partition_dir_, static_cast<std::uint32_t>(options_.msp.k),
        static_cast<std::uint32_t>(options_.msp.p), count,
        options_.msp.encoding, first);
    partitions.set_seal_hook([ledger](const io::SealedPartition& part) {
      PARAHASH_TRACE_INSTANT("pipeline", "partition.seal", "id", part.id);
      if (ledger != nullptr) ledger->publish(part);
    });

    StepCallbacks<io::ReadBatch, core::MspBatchOutput, W> callbacks;
    callbacks.produce = [&](io::ReadBatch& batch) {
      if (!chunker.next(batch)) return false;
      // Charge the input channel with the batch's share of the file.
      const std::uint64_t bytes = batch.total_bases();
      input_throttle_.consume(bytes);
      bytes_in += bytes;
      return true;
    };
    callbacks.compute = [&](device::Device<W>& dev,
                            const io::ReadBatch& batch) {
      return dev.run_msp(batch, options_.msp);
    };
    callbacks.consume = [&](core::MspBatchOutput out) {
      for (std::uint32_t part = first; part < first + count; ++part) {
        const auto& p = out.parts[part];
        if (p.bytes.empty()) continue;
        partitions.writer(part).append_raw(p.bytes.data(), p.bytes.size(),
                                           p.superkmers, p.kmers, p.bases);
        output_throttle_.consume(p.bytes.size());
        bytes_out += p.bytes.size();
      }
    };

    StepDescriptor<io::ReadBatch, core::MspBatchOutput, W> step;
    step.label = "step1";
    step.devices = devs;
    step.callbacks = std::move(callbacks);
    step.options = exec;
    step.pipelined = options_.pipelined;
    report.times += run_step(std::move(step));

    // Seals every partition of this pass in id order, firing the
    // ledger publish hook per partition — the fused hand-off.
    for (auto& path : partitions.close_all()) {
      all_paths.push_back(std::move(path));
    }
  }

  report.bytes_in = bytes_in;
  report.bytes_out = bytes_out;
  if (device_reports) {
    for (std::size_t i = 0; i < devs.size(); ++i) {
      report.devices.push_back(DeviceReport{
          devs[i]->name(), devs[i]->kind(), devs[i]->stats() - before[i]});
    }
  }
  return all_paths;
}

// Member-level explicit instantiations: the class-level instantiation
// lives in parahash.cpp and covers only the members defined there.
template std::vector<std::string> ParaHash<1>::run_partitioning(
    const std::string&, StepReport&);
template std::vector<std::string> ParaHash<2>::run_partitioning(
    const std::string&, StepReport&);
template std::vector<std::string> ParaHash<1>::run_partitioning(
    const std::vector<std::string>&, StepReport&);
template std::vector<std::string> ParaHash<2>::run_partitioning(
    const std::vector<std::string>&, StepReport&);
template std::vector<std::string> ParaHash<1>::run_partitioning_impl(
    const std::vector<std::string>&, StepReport&, PartitionLedger*, bool,
    bool);
template std::vector<std::string> ParaHash<2>::run_partitioning_impl(
    const std::vector<std::string>&, StepReport&, PartitionLedger*, bool,
    bool);

}  // namespace parahash::pipeline
