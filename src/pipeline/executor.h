// Three-stage work-stealing pipeline executor (paper Sec. III-E, Fig. 5).
//
// Stage 1 (input) runs on its own thread and fills the ticket queue;
// stage 2 (consume-and-produce) runs one worker thread per device, each
// pulling the next queuing id as soon as it is idle — faster processors
// naturally take more partitions, which is the work-stealing workload
// balance of Fig. 11; stage 3 (output) drains the output queue on the
// caller's thread.
//
// run_sequential() is the non-pipelined baseline of Fig. 12: the same
// stages executed back-to-back, one item at a time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "device/device.h"
#include "pipeline/queue.h"
#include "util/error.h"
#include "util/timer.h"
#include "util/trace.h"

namespace parahash::pipeline {

/// Per-step timing and accounting returned by the executors.
struct StageTimes {
  double elapsed_seconds = 0;
  double input_seconds = 0;    ///< producing (read + parse) time
  double compute_seconds = 0;  ///< sum of device compute call time
  double output_seconds = 0;   ///< consuming (serialise + write) time
  std::uint64_t items = 0;

  /// Field-wise accumulation (multi-pass Step 1, fused-run merging).
  StageTimes& operator+=(const StageTimes& other) {
    elapsed_seconds += other.elapsed_seconds;
    input_seconds += other.input_seconds;
    compute_seconds += other.compute_seconds;
    output_seconds += other.output_seconds;
    items += other.items;
    return *this;
  }
};

/// Callbacks defining one step of the system. `produce` fills an In and
/// returns false when the input is exhausted; `compute` maps an In to an
/// Out on a given device; `consume` writes an Out.
///
/// Steps compose into a fused pipeline through their callbacks: one
/// step's consume stage can publish finished units into a
/// PartitionLedger, and the next step's produce stage claims from that
/// same ledger — no executor-level coupling required.
template <typename In, typename Out, int W>
struct StepCallbacks {
  std::function<bool(In&)> produce;
  std::function<Out(device::Device<W>&, const In&)> compute;
  std::function<void(Out)> consume;
};

/// Atomically adjustable worker-lane count for one device — the
/// autotuner's actuation point on the executor. A device with `lanes`
/// of 0 is PARKED: its workers stop claiming queue items (they poll for
/// re-admission until the queue drains), which takes a mis-modelled
/// device off the critical path without tearing the pipeline down.
/// Values above 1 admit that many concurrent workers when the executor
/// was started with max_lanes > 1.
class LaneLease {
 public:
  explicit LaneLease(int lanes = 1) : lanes_(lanes) {}
  int lanes() const noexcept {
    return lanes_.load(std::memory_order_relaxed);
  }
  void set_lanes(int n) noexcept {
    lanes_.store(n < 0 ? 0 : n, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> lanes_;
};

/// Knobs common to both executors.
struct ExecutorOptions {
  std::size_t queue_depth = 3;

  /// Fused runs drive TWO executors (one per step) over the SAME device
  /// set. Setting this makes each worker hold its device's lease for
  /// the duration of a compute call, so a device serves the other step
  /// exactly while it is idle in this one — the idle-handoff that lets
  /// Step 2 start hashing sealed partitions during Step 1's tail.
  bool exclusive_devices = false;

  /// Step label for trace tracks and span names ("step1", "step2").
  /// The input thread's track is "<label>:input" and each worker's is
  /// "<label>:<device name>", so a fused run shows one track per
  /// device per step and the overlap is visible directly.
  const char* trace_label = "step";

  /// Worker threads spawned per device. Lanes above a device's current
  /// lease (see `lane_leases`) park instead of claiming work, so the
  /// autotuner can widen a device mid-run without the executor having
  /// to spawn threads on the fly. 1 reproduces the classic
  /// one-worker-per-device executor exactly.
  int max_lanes = 1;

  /// Optional per-device lease table, parallel to the `devices` vector
  /// passed to run_pipelined. Null (or a null entry) means the device
  /// always runs all `max_lanes` lanes.
  const std::vector<LaneLease*>* lane_leases = nullptr;
};

template <typename In, typename Out, int W>
StageTimes run_pipelined(const std::vector<device::Device<W>*>& devices,
                         const StepCallbacks<In, Out, W>& callbacks,
                         const ExecutorOptions& options) {
  PARAHASH_CHECK_MSG(!devices.empty(), "need at least one device");
  WallTimer total_timer;
  StageTimes times;

  const int max_lanes = options.max_lanes < 1 ? 1 : options.max_lanes;

  TicketQueue<In> input_queue(options.queue_depth);
  OutputQueue<Out> output_queue(options.queue_depth);
  output_queue.set_expected_producers(static_cast<int>(devices.size()) *
                                      max_lanes);

  // Items a device rejected for capacity; drained by CPU devices after
  // the main queue closes.
  std::vector<In> overflow;
  std::mutex overflow_mutex;

  AtomicSeconds input_seconds;
  AtomicSeconds compute_seconds;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto record_error = [&] {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  };

  std::thread input_thread([&] {
    trace::set_thread_name(std::string(options.trace_label) + ":input");
    try {
      for (;;) {
        In item;
        bool more;
        {
          PARAHASH_TRACE_SCOPE(options.trace_label, "produce");
          ScopedAtomicTimer timer(input_seconds);
          more = callbacks.produce(item);
        }
        if (!more) break;
        if (!input_queue.push(std::move(item))) break;  // aborted
      }
    } catch (...) {
      record_error();
    }
    input_queue.close();
  });

  std::vector<std::thread> workers;
  workers.reserve(devices.size() * static_cast<std::size_t>(max_lanes));
  for (std::size_t di = 0; di < devices.size(); ++di) {
    device::Device<W>* dev = devices[di];
    LaneLease* lease_ctl =
        options.lane_leases != nullptr && di < options.lane_leases->size()
            ? (*options.lane_leases)[di]
            : nullptr;
    for (int lane = 0; lane < max_lanes; ++lane) {
    workers.emplace_back([&, dev, lease_ctl, lane] {
      // Lane 0 keeps the classic one-track-per-device name; extra lanes
      // get a "#n" suffix so trace consumers keyed on "<label>:<device>"
      // keep working with tuned runs.
      trace::set_thread_name(
          std::string(options.trace_label) + ":" + dev->name() +
          (lane == 0 ? "" : "#" + std::to_string(lane)));
      try {
        for (;;) {
          // A lane above its device's current lease parks: it must not
          // claim work (the tuner benched this device), but it polls so
          // a later lease raise re-admits it, and exits once the queue
          // can never yield an item again.
          if (lease_ctl != nullptr && lane >= lease_ctl->lanes()) {
            if (input_queue.drained()) break;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          auto ticket = input_queue.pop();
          if (!ticket) break;
          try {
            std::unique_lock<std::mutex> lease;
            if (options.exclusive_devices) {
              lease = std::unique_lock<std::mutex>(dev->lease());
            }
            const std::uint64_t trace_t0 =
                trace::enabled() ? trace::now_ns() : 0;
            WallTimer timer;
            Out out = callbacks.compute(*dev, ticket->second);
            compute_seconds.add(timer.seconds());
            if (trace_t0 != 0) {
              trace::emit_complete(options.trace_label, "compute",
                                   trace_t0, trace::now_ns() - trace_t0);
            }
            // Release the device before a potentially blocking push so
            // the other step can take it while our output queue is full.
            if (lease.owns_lock()) lease.unlock();
            output_queue.push(std::move(out));
          } catch (const DeviceCapacityError&) {
            std::lock_guard<std::mutex> lock(overflow_mutex);
            overflow.push_back(std::move(ticket->second));
          }
        }
        // Drain capacity-overflow items on CPU devices.
        if (dev->kind() == device::DeviceKind::kCpu) {
          for (;;) {
            In item;
            {
              std::lock_guard<std::mutex> lock(overflow_mutex);
              if (overflow.empty()) break;
              item = std::move(overflow.back());
              overflow.pop_back();
            }
            std::unique_lock<std::mutex> lease;
            if (options.exclusive_devices) {
              lease = std::unique_lock<std::mutex>(dev->lease());
            }
            const std::uint64_t trace_t0 =
                trace::enabled() ? trace::now_ns() : 0;
            WallTimer timer;
            Out out = callbacks.compute(*dev, item);
            compute_seconds.add(timer.seconds());
            if (trace_t0 != 0) {
              trace::emit_complete(options.trace_label, "compute",
                                   trace_t0, trace::now_ns() - trace_t0);
            }
            if (lease.owns_lock()) lease.unlock();
            output_queue.push(std::move(out));
          }
        }
      } catch (...) {
        record_error();
        // Unblock the producer: with this worker gone the ring could
        // stay full forever.
        input_queue.abort();
      }
      output_queue.producer_done();
    });
    }
  }

  // Stage 3 on the caller's thread.
  WallTimer output_wall;
  double output_busy = 0;
  std::uint64_t items = 0;
  try {
    while (auto out = output_queue.pop()) {
      PARAHASH_TRACE_SCOPE(options.trace_label, "consume");
      ScopedTimer timer(output_busy);
      callbacks.consume(std::move(*out));
      ++items;
    }
  } catch (...) {
    record_error();
    input_queue.abort();  // fail fast: stop feeding the workers
    // Keep draining so workers do not block on a full output queue.
    while (output_queue.pop()) {
    }
  }

  input_thread.join();
  for (auto& w : workers) w.join();

  {
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (!overflow.empty() && !first_error) {
      first_error = std::make_exception_ptr(DeviceCapacityError(
          "no CPU device available to absorb items rejected for device "
          "capacity"));
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  times.elapsed_seconds = total_timer.seconds();
  times.input_seconds = input_seconds.seconds();
  times.compute_seconds = compute_seconds.seconds();
  times.output_seconds = output_busy;
  times.items = items;
  return times;
}

template <typename In, typename Out, int W>
StageTimes run_pipelined(const std::vector<device::Device<W>*>& devices,
                         const StepCallbacks<In, Out, W>& callbacks,
                         std::size_t queue_depth) {
  ExecutorOptions options;
  options.queue_depth = queue_depth;
  return run_pipelined(devices, callbacks, options);
}

/// One pipeline step as data: what the executor runs is N instances of
/// this, not N hand-written drivers. The label names the trace tracks
/// ("<label>:input", "<label>:<device>"); the device set is the step's
/// scheduling pool; the callbacks carry the produce/compute/consume
/// hooks (a step's consume publishing into a ledger the next step's
/// produce claims from is what chains steps into a fused pipeline).
template <typename In, typename Out, int W>
struct StepDescriptor {
  const char* label = "step";
  std::vector<device::Device<W>*> devices;
  StepCallbacks<In, Out, W> callbacks;
  ExecutorOptions options;
  bool pipelined = true;  ///< false = Fig.-12 sequential baseline
};

/// Runs one described step. This is the only entry point the drivers
/// use — step1/step2/step3 differ solely in the descriptor they build.
template <typename In, typename Out, int W>
StageTimes run_step(StepDescriptor<In, Out, W> step) {
  step.options.trace_label = step.label;
  return step.pipelined
             ? run_pipelined(step.devices, step.callbacks, step.options)
             : run_sequential(step.devices, step.callbacks,
                              step.options);
}

template <typename In, typename Out, int W>
StageTimes run_sequential(const std::vector<device::Device<W>*>& devices,
                          const StepCallbacks<In, Out, W>& callbacks,
                          const ExecutorOptions& options = {}) {
  PARAHASH_CHECK_MSG(!devices.empty(), "need at least one device");
  WallTimer total_timer;
  StageTimes times;

  std::size_t next_device = 0;
  for (;;) {
    In item;
    bool more;
    {
      PARAHASH_TRACE_SCOPE(options.trace_label, "produce");
      ScopedTimer timer(times.input_seconds);
      more = callbacks.produce(item);
    }
    if (!more) break;

    Out out;
    bool computed = false;
    // Round-robin, skipping devices that reject the item for capacity.
    for (std::size_t tried = 0; tried < devices.size(); ++tried) {
      device::Device<W>* dev = devices[(next_device + tried) %
                                       devices.size()];
      try {
        std::unique_lock<std::mutex> lease;
        if (options.exclusive_devices) {
          lease = std::unique_lock<std::mutex>(dev->lease());
        }
        PARAHASH_TRACE_SCOPE(options.trace_label, "compute");
        ScopedTimer timer(times.compute_seconds);
        out = callbacks.compute(*dev, item);
        computed = true;
        next_device = (next_device + tried + 1) % devices.size();
        break;
      } catch (const DeviceCapacityError&) {
        continue;  // item not consumed on capacity rejection
      }
    }
    if (!computed) {
      throw DeviceCapacityError("no device can hold this work item");
    }

    {
      PARAHASH_TRACE_SCOPE(options.trace_label, "consume");
      ScopedTimer timer(times.output_seconds);
      callbacks.consume(std::move(out));
    }
    ++times.items;
  }

  times.elapsed_seconds = total_timer.seconds();
  return times;
}

}  // namespace parahash::pipeline
