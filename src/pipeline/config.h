// The unified, versioned public configuration for the whole system.
//
// parahash::Config aggregates every knob the subsystems expose —
// pipeline::Options (which embeds core::MspConfig, core::HashConfig and
// the device/IO/step-3 settings), serve::ServeOptions, and the artefact
// paths a run reads and writes — behind one JSON round-trip:
//
//   Config config;
//   config.build.msp.k = 27;
//   config.save_file("run.json");
//   ...
//   Config again = Config::load_file("run.json");   // == config
//
// The schema is versioned (kConfigVersion); from_json rejects files
// from a NEWER schema and fills absent members with defaults, so a
// partial hand-written config stays valid. `parahash build --config
// run.json` reproduces a run from this file alone, and the same JSON
// object is embedded under the "config" key of --report-json output so
// every report carries its own reproduction recipe.
#pragma once

#include <string>
#include <vector>

#include "pipeline/parahash.h"
#include "serve/serve_options.h"

namespace parahash {

/// Current config schema version. Bump when a field changes meaning;
/// adding fields with defaults does not require a bump.
/// v2: the serve section grew the scale-out knobs (listen,
/// max_connections, idle_timeout_seconds, cache_entries,
/// cache_shards); v1 files still load, absent members keep defaults.
inline constexpr int kConfigVersion = 2;

/// Input/output artefacts of a run — the part of a reproduction recipe
/// that is not an algorithm knob.
struct ArtifactPaths {
  std::vector<std::string> inputs;  ///< FASTA/FASTQ(.gz) read files
  std::string graph;                ///< .phdg output ("" = graph.phdg)
  std::string trace_out;            ///< Chrome trace ("" = off)
  std::string metrics_out;          ///< telemetry snapshot ("" = off)
  std::string report_json;          ///< machine-readable report ("" = off)

  friend bool operator==(const ArtifactPaths&,
                         const ArtifactPaths&) = default;
};

struct Config {
  int version = kConfigVersion;
  pipeline::Options build;  ///< construction pipeline (steps 1-3)
  serve::ServeOptions serve;
  ArtifactPaths paths;

  /// One JSON object in fixed schema order (round-trip stable).
  std::string to_json() const;

  /// Inverse of to_json. Absent members keep their defaults; a
  /// `version` newer than kConfigVersion (or malformed JSON) throws
  /// InvalidArgumentError / JsonParseError.
  static Config from_json(const std::string& text);

  static Config load_file(const std::string& path);
  void save_file(const std::string& path) const;
};

/// Equality over the serialised form: the writer emits a fixed schema,
/// so two configs are equal iff every knob matches.
bool operator==(const Config& a, const Config& b);
inline bool operator!=(const Config& a, const Config& b) {
  return !(a == b);
}

}  // namespace parahash
