// The Step-2 input abstraction: a (possibly still growing) stream of
// sealed superkmer partitions.
//
// run_hashing() consumes one of these instead of a completed
// vector<string>, which is what lets the fused scheduler start hashing a
// partition the moment Step 1 seals it. Two sources exist: a plain
// vector of already-written paths (the Step-2-only API) and the
// PartitionLedger (the fused Step-1 → Step-2 hand-off).
//
// The built()/retire() hooks let the source track the downstream
// lifecycle of each claimed partition — the ledger uses them to advance
// its prd/wrt counters and release the in-flight table memory budget.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/partition_file.h"

namespace parahash::pipeline {

class PartitionStream {
 public:
  virtual ~PartitionStream() = default;

  /// Blocks until the next sealed partition is available. Returns false
  /// once the stream is exhausted (or aborted).
  virtual bool next(io::SealedPartition& out) = 0;

  /// The partition's subgraph has been built (hash table populated).
  virtual void built(std::uint32_t partition_id) { (void)partition_id; }

  /// The partition's subgraph has been consumed and its hash table
  /// released; any memory budget held for it can be freed.
  virtual void retire(std::uint32_t partition_id) { (void)partition_id; }

  /// The consumer failed: unblock any pending next() calls.
  virtual void abort() {}
};

/// Adapts a completed list of partition file paths (the classic Step-2
/// API) to the stream interface. Only `path` is filled in — callers
/// read the authoritative header from the file itself.
class VectorPartitionStream final : public PartitionStream {
 public:
  explicit VectorPartitionStream(std::vector<std::string> paths)
      : paths_(std::move(paths)) {}

  bool next(io::SealedPartition& out) override {
    if (next_ >= paths_.size()) return false;
    out = io::SealedPartition{};
    out.path = paths_[next_++];
    return true;
  }

 private:
  std::vector<std::string> paths_;
  std::size_t next_ = 0;
};

}  // namespace parahash::pipeline
