#include "pipeline/autotune.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "concurrent/batched_upsert.h"
#include "concurrent/kmer_table.h"
#include "core/properties.h"
#include "io/fastx.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace parahash::pipeline {

namespace {

std::uint32_t next_pow2_u32(std::uint32_t v) {
  std::uint32_t n = 1;
  while (n < v) n <<= 1;
  return n;
}

/// Property-1 table bytes for one of `n` equal partition shares.
std::uint64_t table_bytes_at(double est_total_kmers, std::uint32_t n,
                             const core::HashConfig& hash,
                             std::uint64_t bytes_per_slot) {
  const auto kmers = static_cast<std::uint64_t>(
      est_total_kmers / static_cast<double>(n));
  const std::uint64_t slots = core::hash_table_slots(
      kmers, hash.lambda, hash.alpha, /*genome_kmers_share=*/0,
      hash.min_slots);
  return slots * bytes_per_slot;
}

/// Rough bases-per-byte of a sequence file, by extension. Only feeds
/// the total-work extrapolation, so being 2x off costs nothing worse
/// than a partition count one doubling away from ideal.
double bases_per_byte(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return path.size() >= n &&
           path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".gz")) return 1.0;  // ~2x compression on ~0.5 density
  if (ends_with(".fq") || ends_with(".fastq")) return 0.45;
  return 0.9;  // FASTA: headers + newlines only
}

}  // namespace

Autotuner::Autotuner(AutotuneOptions options,
                     std::uint64_t table_bytes_estimate)
    : options_(std::move(options)),
      table_bytes_estimate_(table_bytes_estimate),
      memory_target_(options_.memory_target_bytes != 0
                         ? options_.memory_target_bytes
                         : default_memory_target()) {}

Autotuner::~Autotuner() { stop(); }

std::uint64_t Autotuner::default_memory_target() {
  constexpr std::uint64_t kFallback = std::uint64_t{1} << 30;
  std::FILE* f = std::fopen("/proc/meminfo", "r");
  if (f == nullptr) return kFallback;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "MemAvailable: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kib == 0 ? kFallback : (kib * 1024) / 2;
}

std::uint32_t Autotuner::pick_partition_count(
    double est_total_kmers, const core::HashConfig& hash,
    std::uint64_t bytes_per_slot, std::uint64_t memory_target_bytes,
    std::uint64_t min_gpu_memory_bytes, std::size_t num_devices) {
  constexpr std::uint32_t kMaxPartitions = 1u << 14;
  const std::uint32_t floor_n = next_pow2_u32(
      static_cast<std::uint32_t>(4 * std::max<std::size_t>(num_devices, 1)));
  for (std::uint32_t n = std::max(4u, floor_n); n <= kMaxPartitions;
       n <<= 1) {
    const std::uint64_t table =
        table_bytes_at(est_total_kmers, n, hash, bytes_per_slot);
    // The partition blob rides along with the table on a device, hence
    // the 2x margin against device memory; three tables in flight is
    // the minimum for a pipelined host.
    if (min_gpu_memory_bytes != 0 && table * 2 > min_gpu_memory_bytes) {
      continue;
    }
    if (memory_target_bytes != 0 && table * 3 > memory_target_bytes) {
      continue;
    }
    return n;
  }
  return kMaxPartitions;
}

std::uint64_t Autotuner::pick_inflight_budget(
    std::uint64_t table_bytes, std::uint64_t memory_target_bytes) {
  if (table_bytes == 0) return 0;
  const std::uint64_t floor_b = 2 * table_bytes;
  std::uint64_t cap = 6 * table_bytes;
  if (memory_target_bytes != 0) {
    cap = std::min(cap, memory_target_bytes / 2);
  }
  return std::max(floor_b, cap);
}

void Autotuner::record_decision(TunerDecision decision) {
  static telemetry::Counter& n_decisions =
      telemetry::counter("tuner.decisions");
  n_decisions.add(1);
  if (decision.knob == "upsert_window") {
    telemetry::gauge("tuner.upsert_window")
        .set(static_cast<std::int64_t>(decision.new_value));
  } else if (decision.knob == "inflight_budget") {
    telemetry::gauge("tuner.inflight_budget_bytes")
        .set(static_cast<std::int64_t>(decision.new_value));
  }
  PARAHASH_TRACE_INSTANT("tuner", "decision:" + decision.knob, "new",
                         static_cast<std::uint64_t>(decision.new_value));
  std::lock_guard<std::mutex> lock(mutex_);
  decisions_.push_back(std::move(decision));
}

std::vector<TunerDecision> Autotuner::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

void Autotuner::set_calibration(CalibrationReport calibration) {
  std::lock_guard<std::mutex> lock(mutex_);
  calibration_ = std::move(calibration);
}

CalibrationReport Autotuner::calibration() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calibration_;
}

bool Autotuner::cooled(const std::string& knob) const {
  auto it = cooldown_.find(knob);
  return it == cooldown_.end() || it->second <= 0;
}

void Autotuner::touch(const std::string& knob) {
  cooldown_[knob] = options_.cooldown_ticks;
}

void Autotuner::tick(const ControlSample& sample,
                     const Actuators& actuators) {
  ++tick_count_;
  for (auto& [knob, left] : cooldown_) {
    if (left > 0) --left;
  }
  if (parked_.size() < sample.devices.size()) {
    parked_.resize(sample.devices.size(), false);
  }
  const CalibrationReport cal = calibration();

  // --- Upsert window: follow the measured probe length ---------------
  if (!options_.pin_upsert_window &&
      sample.probe_samples >=
          concurrent::UpsertWindow::kAutoWarmup &&
      cooled("upsert_window")) {
    const int current = concurrent::current_tuned_window();
    const int target =
        concurrent::UpsertWindow::tuned_for(sample.mean_probe_length);
    if (target != current) {
      TunerDecision d;
      d.t_seconds = sample.t_seconds;
      d.knob = "upsert_window";
      d.old_value = current;
      d.new_value = target;
      // The sizing rule assumes probe length ~2 (alpha-sized tables).
      d.model_value = concurrent::UpsertWindow::kDefault;
      d.measured_value = sample.mean_probe_length;
      d.reason = "measured probe length drifted from the sizing "
                 "assumption; window follows tuned_for(mean)";
      if (actuators.set_upsert_window) {
        actuators.set_upsert_window(target);
      }
      record_decision(std::move(d));
      touch("upsert_window");
    }
  }

  // --- In-flight budget: backlog vs. memory headroom -----------------
  const std::uint64_t table = table_bytes_estimate_;
  // Backlog on EITHER chain boundary (sealed partitions Step 2 has not
  // claimed, or built subgraphs Step 3 has not scanned) means a
  // consumer is starved of lanes.
  const bool backlog =
      sample.ledger.srv > sample.ledger.cns ||
      (sample.step3_active &&
       sample.compact_ledger.srv > sample.compact_ledger.cns);
  if (!options_.pin_inflight_budget && table != 0 &&
      sample.budget_bytes != 0 && cooled("inflight_budget")) {
    const bool claims_blocked =
        backlog && sample.inflight_bytes + table > sample.budget_bytes;
    if (sample.rss_bytes > memory_target_ &&
        sample.budget_bytes > 2 * table) {
      const std::uint64_t target =
          std::max(2 * table, sample.budget_bytes - table);
      TunerDecision d;
      d.t_seconds = sample.t_seconds;
      d.knob = "inflight_budget";
      d.old_value = static_cast<double>(sample.budget_bytes);
      d.new_value = static_cast<double>(target);
      d.model_value = static_cast<double>(memory_target_);
      d.measured_value = static_cast<double>(sample.rss_bytes);
      d.reason = "RSS above the memory target; shed one table";
      if (actuators.set_inflight_budget) {
        actuators.set_inflight_budget(target);
      }
      record_decision(std::move(d));
      touch("inflight_budget");
    } else if (claims_blocked &&
               sample.rss_bytes + table < memory_target_) {
      const std::uint64_t target = sample.budget_bytes + table;
      TunerDecision d;
      d.t_seconds = sample.t_seconds;
      d.knob = "inflight_budget";
      d.old_value = static_cast<double>(sample.budget_bytes);
      d.new_value = static_cast<double>(target);
      d.model_value = static_cast<double>(memory_target_);
      d.measured_value = static_cast<double>(sample.rss_bytes);
      d.reason = "claims blocked on the budget with memory headroom; "
                 "admit one more table";
      if (actuators.set_inflight_budget) {
        actuators.set_inflight_budget(target);
      }
      record_decision(std::move(d));
      touch("inflight_budget");
    }
  }

  // --- Device leases -------------------------------------------------
  // Park a GPU whose measured seconds-per-partition is far beyond the
  // model's prediction relative to the CPU (a mis-modelled device slows
  // the run: the work-stealing loop keeps feeding it partitions it
  // finishes late). One-way: un-parking mid-run would re-pay the
  // staging cost the parking just saved. The CPU is never parked.
  double cpu_spp = 0;
  std::uint64_t cpu_parts = 0;
  for (const auto& dev : sample.devices) {
    if (!dev.is_gpu && dev.hash_partitions > 0) {
      cpu_spp = dev.hash_compute_seconds /
                static_cast<double>(dev.hash_partitions);
      cpu_parts = dev.hash_partitions;
    }
  }
  // Model ratio: predicted GPU span over predicted CPU span (1 when
  // calibration did not run — then only the absolute guard applies).
  double model_ratio = 1.0;
  {
    double cal_cpu = 0, cal_gpu = 0;
    for (const auto& dc : cal.devices) {
      if (dc.is_gpu) {
        cal_gpu = std::max(cal_gpu, dc.seconds_per_partition);
      } else {
        cal_cpu = dc.seconds_per_partition;
      }
    }
    if (cal_cpu > 0 && cal_gpu > 0) model_ratio = cal_gpu / cal_cpu;
  }
  if (cpu_spp > 0 && cpu_parts >= 2) {
    for (std::size_t i = 0; i < sample.devices.size(); ++i) {
      const auto& dev = sample.devices[i];
      if (!dev.is_gpu || parked_[i] || dev.lanes == 0) continue;
      if (dev.hash_partitions < 2) continue;
      const double spp =
          (dev.hash_compute_seconds + dev.transfer_seconds) /
          static_cast<double>(dev.hash_partitions);
      const double ratio = spp / cpu_spp;
      const double threshold = std::max(
          3.0, model_ratio * (1.0 + options_.divergence_threshold));
      if (ratio > threshold && cooled("lease." + dev.name)) {
        TunerDecision d;
        d.t_seconds = sample.t_seconds;
        d.knob = "lease." + dev.name;
        d.old_value = dev.lanes;
        d.new_value = 0;
        d.model_value = model_ratio;
        d.measured_value = ratio;
        d.reason = "measured span per partition diverged from the "
                   "model; parking the device";
        if (actuators.set_lease_lanes) actuators.set_lease_lanes(i, 0);
        parked_[i] = true;
        record_decision(std::move(d));
        touch("lease." + dev.name);
      }
    }
  }

  // Widen the CPU lease under persistent backlog (spare queue work the
  // single orchestration lane is not keeping up with), decay when the
  // backlog clears — the executor spawned max_lanes workers up front,
  // the lease just admits them.
  backlog_ticks_ = backlog ? backlog_ticks_ + 1 : 0;
  idle_ticks_ = backlog ? 0 : idle_ticks_ + 1;
  for (std::size_t i = 0; i < sample.devices.size(); ++i) {
    const auto& dev = sample.devices[i];
    if (dev.is_gpu) continue;
    const std::string knob = "lease." + dev.name;
    if (!cooled(knob)) continue;
    int target = dev.lanes;
    const char* reason = nullptr;
    if (backlog_ticks_ >= 3) {
      target = dev.lanes + 1;
      reason = "persistent sealed-partition backlog; widening the CPU "
               "lease";
    } else if (idle_ticks_ >= 6 && dev.lanes > 1) {
      target = dev.lanes - 1;
      reason = "backlog cleared; narrowing the CPU lease";
    }
    if (target != dev.lanes && reason != nullptr) {
      TunerDecision d;
      d.t_seconds = sample.t_seconds;
      d.knob = knob;
      d.old_value = dev.lanes;
      d.new_value = target;
      d.model_value = 1;
      d.measured_value =
          static_cast<double>(sample.ledger.srv - sample.ledger.cns);
      d.reason = reason;
      if (actuators.set_lease_lanes) {
        actuators.set_lease_lanes(i, target);
      }
      record_decision(std::move(d));
      touch(knob);
      backlog_ticks_ = 0;
    }
  }
}

void Autotuner::start(std::function<ControlSample()> sampler,
                      Actuators actuators) {
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  thread_ = std::thread([this, sampler = std::move(sampler),
                         actuators = std::move(actuators)] {
    trace::set_thread_name("autotuner");
    const auto period =
        std::chrono::duration<double>(options_.control_period_seconds);
    std::unique_lock<std::mutex> lock(cv_mutex_);
    while (!stopping_) {
      lock.unlock();
      tick(sampler(), actuators);
      lock.lock();
      cv_.wait_for(lock, period, [this] { return stopping_; });
    }
  });
}

void Autotuner::stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

template <int W>
CalibrationReport run_calibration(
    const std::vector<std::string>& input_paths, const core::MspConfig& msp,
    const core::HashConfig& /*hash*/, const AutotuneOptions& options,
    double configured_input_bytes_per_sec,
    const std::vector<device::Device<W>*>& devices) {
  CalibrationReport report;
  for (const auto& path : input_paths) {
    std::error_code ec;
    const auto sz = std::filesystem::file_size(path, ec);
    if (!ec) report.input_bytes += sz;
  }

  io::FastxChunker chunker(input_paths, options.calibration_batch_bases);
  double read_seconds = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t total_kmers = 0;
  std::uint64_t total_partition_bytes = 0;

  struct PerDevice {
    double seconds = 0;
    std::uint64_t bases = 0;
  };
  std::vector<PerDevice> per_device(devices.size());

  // Round-robin the sampled batches over the devices: every device
  // processes `calibration_batches` batches (or fewer on tiny inputs).
  const std::size_t want = options.calibration_batches * devices.size();
  for (std::size_t b = 0; b < want; ++b) {
    io::ReadBatch batch;
    WallTimer read_timer;
    if (!chunker.next(batch)) break;
    read_seconds += read_timer.seconds();
    read_bytes += batch.byte_size();

    device::Device<W>* dev = devices[b % devices.size()];
    WallTimer timer;
    core::MspBatchOutput out = dev->run_msp(batch, msp);
    const double seconds = timer.seconds();

    PerDevice& pd = per_device[b % devices.size()];
    pd.seconds += seconds;
    pd.bases += batch.total_bases();
    report.sampled_bases += batch.total_bases();
    for (const auto& part : out.parts) {
      total_kmers += part.kmers;
      total_partition_bytes += part.bytes.size();
    }
  }
  if (report.sampled_bases == 0) return report;  // ran stays false

  report.ran = true;
  report.kmers_per_base = static_cast<double>(total_kmers) /
                          static_cast<double>(report.sampled_bases);
  report.partition_bytes_per_base =
      static_cast<double>(total_partition_bytes) /
      static_cast<double>(report.sampled_bases);
  // Extrapolate total work from the on-disk size (density by format).
  double est_bases = 0;
  for (const auto& path : input_paths) {
    std::error_code ec;
    const auto sz = std::filesystem::file_size(path, ec);
    if (!ec) est_bases += static_cast<double>(sz) * bases_per_byte(path);
  }
  report.est_total_bases = std::max(
      est_bases, static_cast<double>(report.sampled_bases));
  report.est_total_kmers =
      report.est_total_bases * report.kmers_per_base;
  report.input_bytes_per_sec =
      configured_input_bytes_per_sec > 0
          ? configured_input_bytes_per_sec
          : (read_seconds > 0
                 ? static_cast<double>(read_bytes) / read_seconds
                 : 0);

  for (std::size_t i = 0; i < devices.size(); ++i) {
    DeviceCalibration dc;
    dc.name = devices[i]->name();
    dc.is_gpu = devices[i]->kind() != device::DeviceKind::kCpu;
    if (per_device[i].seconds > 0) {
      dc.bases_per_second = static_cast<double>(per_device[i].bases) /
                            per_device[i].seconds;
    }
    report.devices.push_back(std::move(dc));
  }
  return report;
}

template CalibrationReport run_calibration<1>(
    const std::vector<std::string>&, const core::MspConfig&,
    const core::HashConfig&, const AutotuneOptions&, double,
    const std::vector<device::Device<1>*>&);
template CalibrationReport run_calibration<2>(
    const std::vector<std::string>&, const core::MspConfig&,
    const core::HashConfig&, const AutotuneOptions&, double,
    const std::vector<device::Device<2>*>&);

}  // namespace parahash::pipeline
