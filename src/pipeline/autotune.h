// Model-driven autotuner for the fused pipeline (--autotune).
//
// The paper sizes its runs offline: Eq. (1)/(2) predict step times from
// per-device throughputs and IO bandwidth, and the evaluation sweeps
// partition counts and budgets to find the knee (Fig. 13/14). This
// module closes that loop at runtime, in two phases:
//
//  1. CALIBRATION (run_calibration, before Step 1 commits): a short
//     pre-pass feeds a few input batches through every device's MSP
//     kernel, fitting per-device throughput (bases/s), the k-mer and
//     partition-byte densities of THIS dataset, and the input
//     bandwidth into the paper's model. From the fitted model the
//     tuner picks the partition count (tables must fit device memory
//     and the host memory target) and the initial in-flight table
//     budget — the values the Fig. 13/14 sweeps find by hand.
//
//  2. CONTROL (Autotuner, while the fused run executes): a thread
//     samples the ledger counters, RSS, the probe-length histogram and
//     per-device spans at a fixed period and re-tunes whenever the
//     measured spans diverge from the model's prediction: the upsert
//     window follows the measured probe length, the in-flight budget
//     follows backlog vs. memory headroom, and a device whose measured
//     seconds-per-partition is far off its predicted share is parked
//     (its executor lease drops to zero lanes) so the work-stealing
//     loop stops feeding it.
//
// Every decision is recorded with the model state that motivated it
// (TunerDecision) and surfaces in the run report's `tuner` section, as
// `tuner.*` telemetry, and as "tuner"-category trace instants — a
// single --autotune run documents the sweep it replaced.
//
// The policy core (pick_* and tick()) is pure/deterministic given a
// sample, so the unit tests drive it with synthetic telemetry; only
// start()/stop() touch threads.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/msp.h"
#include "core/perf_model.h"
#include "core/subgraph.h"
#include "device/device.h"
#include "pipeline/partition_ledger.h"

namespace parahash::pipeline {

/// --autotune configuration. The pin_* flags mark knobs the user set
/// explicitly on the command line; the tuner never overrides those.
struct AutotuneOptions {
  bool enabled = false;

  /// Control-loop sampling period.
  double control_period_seconds = 0.02;

  /// Host-memory ceiling the tuner steers under. 0 = autodetect (half
  /// of MemAvailable, 1 GiB fallback).
  std::uint64_t memory_target_bytes = 0;

  /// Calibration pre-pass size: batches per device, bases per batch.
  std::size_t calibration_batches = 2;
  std::size_t calibration_batch_bases = std::size_t{1} << 20;

  /// Relative measured-vs-model divergence that triggers a retune.
  double divergence_threshold = 0.25;

  /// Ticks a knob stays untouched after a change (oscillation damping).
  int cooldown_ticks = 10;

  // Explicit CLI flags win over the tuner.
  bool pin_partitions = false;
  bool pin_inflight_budget = false;
  bool pin_upsert_window = false;
  bool pin_fuse = false;
};

/// One knob change, with the model state that motivated it.
struct TunerDecision {
  double t_seconds = 0;    ///< since the run (or tuner) started
  std::string knob;        ///< "partitions", "inflight_budget",
                           ///< "upsert_window", "lease.<device>", ...
  double old_value = 0;
  double new_value = 0;
  double model_value = 0;     ///< what the model predicted
  double measured_value = 0;  ///< what was measured
  std::string reason;
};

/// Per-device throughput fitted by the calibration pre-pass.
struct DeviceCalibration {
  std::string name;
  bool is_gpu = false;
  double bases_per_second = 0;
  /// Model-predicted Step-2 span per partition at the chosen partition
  /// count — the baseline the live controller compares spans against.
  double seconds_per_partition = 0;
};

/// Everything the pre-pass fitted and chose.
struct CalibrationReport {
  bool ran = false;
  std::uint64_t sampled_bases = 0;
  std::uint64_t input_bytes = 0;     ///< total input size on disk
  double est_total_bases = 0;
  double est_total_kmers = 0;
  double kmers_per_base = 0;
  double partition_bytes_per_base = 0;
  double input_bytes_per_sec = 0;
  std::vector<DeviceCalibration> devices;

  std::uint32_t chosen_partitions = 0;
  std::uint64_t chosen_inflight_budget = 0;
  int chosen_upsert_window = 0;
  /// Eq. (1)/(2) predictions at the chosen configuration.
  double predicted_step1_seconds = 0;
  double predicted_step2_seconds = 0;
  /// Step-3 compact-scan prediction (0 when --step3 is off): the scan
  /// touches every distinct vertex once, so the model prices it as
  /// est_total_kmers / mean-coverage vertices over the fitted device
  /// throughput.
  double predicted_step3_seconds = 0;
};

/// Autotuner state exported into RunReport (and report_json's `tuner`
/// section).
struct TunerReport {
  bool enabled = false;
  CalibrationReport calibration;
  std::vector<TunerDecision> decisions;
};

/// One device's cumulative Step-2 span, as seen at sample time.
struct DeviceControlSample {
  std::string name;
  bool is_gpu = false;
  std::uint64_t hash_partitions = 0;
  double hash_compute_seconds = 0;
  double transfer_seconds = 0;
  int lanes = 1;  ///< current lease
};

/// One control-loop observation (synthesised by tests, sampled from the
/// live pipeline by ParaHash).
struct ControlSample {
  double t_seconds = 0;
  PartitionLedger::Counters ledger;
  /// Second chain boundary (Step 2 → Step 3) when --step3 rides the
  /// fused run; all-zero (and step3_active false) otherwise. Backlog
  /// on EITHER boundary argues for more CPU lanes.
  PartitionLedger::Counters compact_ledger;
  bool step3_active = false;
  std::uint64_t inflight_bytes = 0;
  std::uint64_t budget_bytes = 0;
  std::uint64_t rss_bytes = 0;
  double mean_probe_length = 0;
  std::uint64_t probe_samples = 0;
  std::vector<DeviceControlSample> devices;
};

/// The controller's write paths into the running pipeline. Tests plug
/// in recorders; ParaHash wires ledger/window/lease setters.
struct Actuators {
  std::function<void(std::uint64_t)> set_inflight_budget;
  std::function<void(int)> set_upsert_window;
  std::function<void(std::size_t device_index, int lanes)> set_lease_lanes;
};

class Autotuner {
 public:
  /// `table_bytes_estimate` is the expected per-partition table size at
  /// the chosen partition count — the unit the budget knob moves in.
  Autotuner(AutotuneOptions options, std::uint64_t table_bytes_estimate);
  ~Autotuner();

  Autotuner(const Autotuner&) = delete;
  Autotuner& operator=(const Autotuner&) = delete;

  // --- Static policy rules (pure; unit-tested directly) -------------

  /// Smallest power-of-two partition count whose per-partition table
  /// (Property-1 sizing over `est_total_kmers / n`) satisfies: twice
  /// the table fits the smallest GPU memory (when `min_gpu_memory` >
  /// 0), three tables fit `memory_target`, and n >= 4 per device.
  static std::uint32_t pick_partition_count(
      double est_total_kmers, const core::HashConfig& hash,
      std::uint64_t bytes_per_slot, std::uint64_t memory_target_bytes,
      std::uint64_t min_gpu_memory_bytes, std::size_t num_devices);

  /// Initial in-flight budget: enough for pipelining (>= 2 tables),
  /// capped at half the memory target and at 6 tables.
  static std::uint64_t pick_inflight_budget(
      std::uint64_t table_bytes, std::uint64_t memory_target_bytes);

  /// Half of /proc/meminfo MemAvailable; 1 GiB when unreadable.
  static std::uint64_t default_memory_target();

  // --- Control loop --------------------------------------------------

  /// One controller step over an observation. Applies at most one
  /// change per knob, respects pins and per-knob cooldowns, and
  /// records every change as a TunerDecision.
  void tick(const ControlSample& sample, const Actuators& actuators);

  /// Spawns the control thread: `sampler()` then tick(), every
  /// control_period_seconds until stop().
  void start(std::function<ControlSample()> sampler, Actuators actuators);
  void stop();

  /// Records a decision made outside tick() (the calibration phase's
  /// partition/budget/window choices route through here too, so the
  /// report holds one unified decision log).
  void record_decision(TunerDecision decision);

  std::vector<TunerDecision> decisions() const;

  void set_calibration(CalibrationReport calibration);
  CalibrationReport calibration() const;

  const AutotuneOptions& options() const { return options_; }
  std::uint64_t table_bytes_estimate() const {
    return table_bytes_estimate_;
  }

 private:
  bool cooled(const std::string& knob) const;
  void touch(const std::string& knob);

  AutotuneOptions options_;
  std::uint64_t table_bytes_estimate_;
  std::uint64_t memory_target_;

  mutable std::mutex mutex_;
  std::vector<TunerDecision> decisions_;
  CalibrationReport calibration_;

  // Controller state (only touched from tick(), which callers
  // serialise — the control thread is the sole live caller).
  std::unordered_map<std::string, int> cooldown_;
  std::vector<bool> parked_;
  int backlog_ticks_ = 0;
  int idle_ticks_ = 0;
  int tick_count_ = 0;

  // Control thread.
  std::thread thread_;
  std::mutex cv_mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
};

/// The calibration pre-pass: feeds `calibration_batches` batches of
/// `calibration_batch_bases` bases through every device's MSP kernel
/// and fits the model (see file comment). Reads only the head of the
/// input; the run re-reads from the start afterwards. Never throws on
/// an empty/tiny input — it returns ran=false and the caller keeps the
/// configured defaults.
template <int W>
CalibrationReport run_calibration(
    const std::vector<std::string>& input_paths, const core::MspConfig& msp,
    const core::HashConfig& hash, const AutotuneOptions& options,
    double configured_input_bytes_per_sec,
    const std::vector<device::Device<W>*>& devices);

}  // namespace parahash::pipeline
