#include "pipeline/config.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace parahash {
namespace {

const char* growth_mode_name(core::GrowthMode mode) {
  return mode == core::GrowthMode::kRestart ? "restart" : "overflow";
}

core::GrowthMode growth_mode_from(const std::string& name) {
  if (name == "overflow") return core::GrowthMode::kOverflow;
  if (name == "restart") return core::GrowthMode::kRestart;
  throw InvalidArgumentError("config: unknown growth_mode '" + name + "'");
}

const char* encoding_name(io::Encoding encoding) {
  return encoding == io::Encoding::kByte ? "byte" : "2bit";
}

io::Encoding encoding_from(const std::string& name) {
  if (name == "2bit") return io::Encoding::kTwoBit;
  if (name == "byte") return io::Encoding::kByte;
  throw InvalidArgumentError("config: unknown encoding '" + name + "'");
}

// Per-type readers: absent members keep the default already in `out`.
void read(const JsonValue* v, bool& out) {
  if (v != nullptr) out = v->as_bool();
}
void read(const JsonValue* v, int& out) {
  if (v != nullptr) out = static_cast<int>(v->as_int());
}
void read(const JsonValue* v, std::uint32_t& out) {
  if (v != nullptr) out = static_cast<std::uint32_t>(v->as_uint());
}
void read(const JsonValue* v, std::uint64_t& out) {
  if (v != nullptr) out = v->as_uint();
}
void read(const JsonValue* v, double& out) {
  if (v != nullptr) out = v->as_double();
}
void read(const JsonValue* v, std::string& out) {
  if (v != nullptr) out = v->as_string();
}

void write_hash(JsonWriter& w, const core::HashConfig& h) {
  w.begin_object();
  w.key("lambda").value(h.lambda);
  w.key("alpha").value(h.alpha);
  w.key("min_slots").value(h.min_slots);
  w.key("slots_override").value(h.slots_override);
  w.key("growth_mode").value(growth_mode_name(h.growth_mode));
  w.key("max_resizes").value(h.max_resizes);
  w.key("max_displacement").value(h.max_displacement);
  w.key("overflow_fraction").value(h.overflow_fraction);
  w.key("migration_threshold").value(h.migration_threshold);
  w.key("singleton_prefilter").value(h.singleton_prefilter);
  w.key("bloom_cells_per_kmer").value(h.bloom_cells_per_kmer);
  w.key("bloom_hashes").value(h.bloom_hashes);
  w.key("upsert_window").value(h.upsert_window.to_string());
  w.end_object();
}

void read_hash(const JsonValue* v, core::HashConfig& h) {
  if (v == nullptr) return;
  read(v->get("lambda"), h.lambda);
  read(v->get("alpha"), h.alpha);
  read(v->get("min_slots"), h.min_slots);
  read(v->get("slots_override"), h.slots_override);
  if (const auto* m = v->get("growth_mode")) {
    h.growth_mode = growth_mode_from(m->as_string());
  }
  read(v->get("max_resizes"), h.max_resizes);
  read(v->get("max_displacement"), h.max_displacement);
  read(v->get("overflow_fraction"), h.overflow_fraction);
  read(v->get("migration_threshold"), h.migration_threshold);
  read(v->get("singleton_prefilter"), h.singleton_prefilter);
  read(v->get("bloom_cells_per_kmer"), h.bloom_cells_per_kmer);
  read(v->get("bloom_hashes"), h.bloom_hashes);
  if (const auto* window = v->get("upsert_window")) {
    h.upsert_window = concurrent::UpsertWindow::parse(window->as_string());
  }
}

void write_gpu(JsonWriter& w, const device::SimGpuConfig& g) {
  w.begin_object();
  w.key("threads").value(g.threads);
  w.key("warp").value(g.warp);
  w.key("h2d_bytes_per_sec").value(g.h2d_bytes_per_sec);
  w.key("d2h_bytes_per_sec").value(g.d2h_bytes_per_sec);
  w.key("launch_latency_seconds").value(g.launch_latency_seconds);
  w.key("device_memory_bytes").value(g.device_memory_bytes);
  w.key("name").value(g.name);
  w.end_object();
}

void read_gpu(const JsonValue* v, device::SimGpuConfig& g) {
  if (v == nullptr) return;
  read(v->get("threads"), g.threads);
  read(v->get("warp"), g.warp);
  read(v->get("h2d_bytes_per_sec"), g.h2d_bytes_per_sec);
  read(v->get("d2h_bytes_per_sec"), g.d2h_bytes_per_sec);
  read(v->get("launch_latency_seconds"), g.launch_latency_seconds);
  read(v->get("device_memory_bytes"), g.device_memory_bytes);
  read(v->get("name"), g.name);
}

void write_autotune(JsonWriter& w, const pipeline::AutotuneOptions& a) {
  w.begin_object();
  w.key("enabled").value(a.enabled);
  w.key("control_period_seconds").value(a.control_period_seconds);
  w.key("memory_target_bytes").value(a.memory_target_bytes);
  w.key("calibration_batches").value(
      static_cast<std::uint64_t>(a.calibration_batches));
  w.key("calibration_batch_bases").value(
      static_cast<std::uint64_t>(a.calibration_batch_bases));
  w.key("divergence_threshold").value(a.divergence_threshold);
  w.key("cooldown_ticks").value(a.cooldown_ticks);
  w.key("pin_partitions").value(a.pin_partitions);
  w.key("pin_inflight_budget").value(a.pin_inflight_budget);
  w.key("pin_upsert_window").value(a.pin_upsert_window);
  w.key("pin_fuse").value(a.pin_fuse);
  w.end_object();
}

void read_autotune(const JsonValue* v, pipeline::AutotuneOptions& a) {
  if (v == nullptr) return;
  read(v->get("enabled"), a.enabled);
  read(v->get("control_period_seconds"), a.control_period_seconds);
  read(v->get("memory_target_bytes"), a.memory_target_bytes);
  read(v->get("calibration_batches"), a.calibration_batches);
  read(v->get("calibration_batch_bases"), a.calibration_batch_bases);
  read(v->get("divergence_threshold"), a.divergence_threshold);
  read(v->get("cooldown_ticks"), a.cooldown_ticks);
  read(v->get("pin_partitions"), a.pin_partitions);
  read(v->get("pin_inflight_budget"), a.pin_inflight_budget);
  read(v->get("pin_upsert_window"), a.pin_upsert_window);
  read(v->get("pin_fuse"), a.pin_fuse);
}

void write_build(JsonWriter& w, const pipeline::Options& o) {
  w.begin_object();
  w.key("k").value(o.msp.k);
  w.key("p").value(o.msp.p);
  w.key("partitions").value(o.msp.num_partitions);
  w.key("encoding").value(encoding_name(o.msp.encoding));
  w.key("hash");
  write_hash(w, o.hash);
  w.key("work_dir").value(o.work_dir);
  w.key("keep_partitions").value(o.keep_partitions);
  w.key("use_cpu").value(o.use_cpu);
  w.key("cpu_threads").value(o.cpu_threads);
  w.key("num_gpus").value(o.num_gpus);
  w.key("gpu");
  write_gpu(w, o.gpu);
  w.key("pipelined").value(o.pipelined);
  w.key("queue_depth").value(static_cast<std::uint64_t>(o.queue_depth));
  w.key("batch_bases").value(static_cast<std::uint64_t>(o.batch_bases));
  w.key("quality_trim_phred").value(o.quality_trim_phred);
  w.key("max_open_partitions").value(o.max_open_partitions);
  w.key("fuse_steps").value(o.fuse_steps);
  w.key("inflight_table_budget_bytes").value(o.inflight_table_budget_bytes);
  w.key("ledger_sample_period").value(o.ledger_sample_period);
  w.key("autotune");
  write_autotune(w, o.autotune);
  w.key("input_bytes_per_sec").value(o.input_bytes_per_sec);
  w.key("output_bytes_per_sec").value(o.output_bytes_per_sec);
  w.key("write_subgraphs").value(o.write_subgraphs);
  w.key("subgraph_dir").value(o.subgraph_dir);
  w.key("step3").value(o.step3);
  w.key("min_tip_len").value(o.min_tip_len);
  w.key("bubble_max_len").value(o.bubble_max_len);
  w.key("min_edge_weight").value(o.min_edge_weight);
  w.key("contigs_out").value(o.contigs_out);
  w.key("gfa_out").value(o.gfa_out);
  w.key("publish_frozen").value(o.publish_frozen);
  w.key("frozen_alpha").value(o.frozen_alpha);
  w.key("min_coverage").value(o.min_coverage);
  w.key("accumulate_graph").value(o.accumulate_graph);
  w.end_object();
}

void read_build(const JsonValue* v, pipeline::Options& o) {
  if (v == nullptr) return;
  read(v->get("k"), o.msp.k);
  read(v->get("p"), o.msp.p);
  read(v->get("partitions"), o.msp.num_partitions);
  if (const auto* e = v->get("encoding")) {
    o.msp.encoding = encoding_from(e->as_string());
  }
  read_hash(v->get("hash"), o.hash);
  read(v->get("work_dir"), o.work_dir);
  read(v->get("keep_partitions"), o.keep_partitions);
  read(v->get("use_cpu"), o.use_cpu);
  read(v->get("cpu_threads"), o.cpu_threads);
  read(v->get("num_gpus"), o.num_gpus);
  read_gpu(v->get("gpu"), o.gpu);
  read(v->get("pipelined"), o.pipelined);
  read(v->get("queue_depth"), o.queue_depth);
  read(v->get("batch_bases"), o.batch_bases);
  read(v->get("quality_trim_phred"), o.quality_trim_phred);
  read(v->get("max_open_partitions"), o.max_open_partitions);
  read(v->get("fuse_steps"), o.fuse_steps);
  read(v->get("inflight_table_budget_bytes"), o.inflight_table_budget_bytes);
  read(v->get("ledger_sample_period"), o.ledger_sample_period);
  read_autotune(v->get("autotune"), o.autotune);
  read(v->get("input_bytes_per_sec"), o.input_bytes_per_sec);
  read(v->get("output_bytes_per_sec"), o.output_bytes_per_sec);
  read(v->get("write_subgraphs"), o.write_subgraphs);
  read(v->get("subgraph_dir"), o.subgraph_dir);
  read(v->get("step3"), o.step3);
  read(v->get("min_tip_len"), o.min_tip_len);
  read(v->get("bubble_max_len"), o.bubble_max_len);
  read(v->get("min_edge_weight"), o.min_edge_weight);
  read(v->get("contigs_out"), o.contigs_out);
  read(v->get("gfa_out"), o.gfa_out);
  read(v->get("publish_frozen"), o.publish_frozen);
  read(v->get("frozen_alpha"), o.frozen_alpha);
  read(v->get("min_coverage"), o.min_coverage);
  read(v->get("accumulate_graph"), o.accumulate_graph);
}

void write_serve(JsonWriter& w, const serve::ServeOptions& s) {
  w.begin_object();
  w.key("socket_path").value(s.socket_path);
  w.key("listen").value(s.listen);
  w.key("worker_threads").value(s.worker_threads);
  w.key("max_batch").value(s.max_batch);
  w.key("max_connections").value(s.max_connections);
  w.key("idle_timeout_seconds").value(s.idle_timeout_seconds);
  w.key("cache_entries").value(s.cache_entries);
  w.key("cache_shards").value(s.cache_shards);
  w.key("max_bfs_radius").value(s.max_bfs_radius);
  w.key("max_bfs_vertices").value(s.max_bfs_vertices);
  w.key("min_edge_weight").value(s.min_edge_weight);
  w.key("backlog").value(s.backlog);
  w.end_object();
}

void read_serve(const JsonValue* v, serve::ServeOptions& s) {
  if (v == nullptr) return;
  read(v->get("socket_path"), s.socket_path);
  read(v->get("listen"), s.listen);
  read(v->get("worker_threads"), s.worker_threads);
  read(v->get("max_batch"), s.max_batch);
  read(v->get("max_connections"), s.max_connections);
  read(v->get("idle_timeout_seconds"), s.idle_timeout_seconds);
  read(v->get("cache_entries"), s.cache_entries);
  read(v->get("cache_shards"), s.cache_shards);
  read(v->get("max_bfs_radius"), s.max_bfs_radius);
  read(v->get("max_bfs_vertices"), s.max_bfs_vertices);
  read(v->get("min_edge_weight"), s.min_edge_weight);
  read(v->get("backlog"), s.backlog);
}

void write_paths(JsonWriter& w, const ArtifactPaths& p) {
  w.begin_object();
  w.key("inputs").begin_array();
  for (const std::string& input : p.inputs) w.value(input);
  w.end_array();
  w.key("graph").value(p.graph);
  w.key("trace_out").value(p.trace_out);
  w.key("metrics_out").value(p.metrics_out);
  w.key("report_json").value(p.report_json);
  w.end_object();
}

void read_paths(const JsonValue* v, ArtifactPaths& p) {
  if (v == nullptr) return;
  if (const auto* inputs = v->get("inputs")) {
    p.inputs.clear();
    for (const JsonValue& input : inputs->as_array()) {
      p.inputs.push_back(input.as_string());
    }
  }
  read(v->get("graph"), p.graph);
  read(v->get("trace_out"), p.trace_out);
  read(v->get("metrics_out"), p.metrics_out);
  read(v->get("report_json"), p.report_json);
}

}  // namespace

std::string Config::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("version").value(version);
  w.key("build");
  write_build(w, build);
  w.key("serve");
  write_serve(w, serve);
  w.key("paths");
  write_paths(w, paths);
  w.end_object();
  return std::move(w).str();
}

Config Config::from_json(const std::string& text) {
  const JsonValue root = JsonValue::parse(text);
  if (!root.is_object()) {
    throw InvalidArgumentError("config: top-level JSON value must be "
                               "an object");
  }
  Config config;
  if (const auto* version = root.get("version")) {
    config.version = static_cast<int>(version->as_int());
    if (config.version < 1 || config.version > kConfigVersion) {
      throw InvalidArgumentError(
          "config: unsupported schema version " +
          std::to_string(config.version) + " (this build understands <= " +
          std::to_string(kConfigVersion) + ")");
    }
  }
  read_build(root.get("build"), config.build);
  read_serve(root.get("serve"), config.serve);
  read_paths(root.get("paths"), config.paths);
  return config;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(buffer.str());
  } catch (const JsonParseError& e) {
    throw InvalidArgumentError("config: " + path + ": " + e.what());
  }
}

void Config::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("config: cannot open " + path);
  out << to_json() << '\n';
  out.flush();
  if (out.fail()) throw IoError("config: failed writing " + path);
}

bool operator==(const Config& a, const Config& b) {
  return a.to_json() == b.to_json();
}

}  // namespace parahash
