// The paper's queue discipline (Sec. III-E), as two bounded queues.
//
// TicketQueue is the input queue: a single producer (the partition
// loader) advances `srv`; consumers (one worker per processor) claim
// strictly increasing queuing ids by advancing `cns` and block until
// srv > cns — exactly the shared-variable protocol the paper describes.
// OutputQueue is the output side: producers advance `prd`; the single
// writer drains while prd > wrt.
//
// Both queues are bounded so that only a few partitions are in flight,
// which is what keeps ParaHash's memory footprint at a few gigabytes
// regardless of genome size.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/telemetry.h"

namespace parahash::pipeline {

namespace internal {

/// Waits on `cv` until `ready()` holds, recording the blocked time in
/// the `queue.wait_ns` histogram when telemetry is on — the direct
/// measure of pipeline stalls (producer ahead of consumers or vice
/// versa). The happy path (already ready, telemetry off) costs one
/// relaxed load and a predicate call.
template <typename Pred>
void timed_wait(std::condition_variable& cv,
                std::unique_lock<std::mutex>& lock, Pred ready) {
  if (ready()) return;
  if (!telemetry::enabled()) {
    cv.wait(lock, ready);
    return;
  }
  static telemetry::Histogram& wait_ns =
      telemetry::histogram("queue.wait_ns");
  const auto t0 = std::chrono::steady_clock::now();
  cv.wait(lock, ready);
  wait_ns.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

}  // namespace internal

template <typename T>
class TicketQueue {
 public:
  explicit TicketQueue(std::size_t capacity) : ring_(capacity) {
    PARAHASH_CHECK_MSG(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Producer side: appends an item, blocking while the ring is full.
  /// Returns false (dropping the item) if the queue was aborted.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    PARAHASH_CHECK_MSG(!closed_, "push after close");
    internal::timed_wait(not_full_, lock, [this] {
      return aborted_ || srv_ - cns_ < ring_.size();
    });
    if (aborted_) return false;
    ring_[srv_ % ring_.size()] = std::move(item);
    ++srv_;
    not_empty_.notify_one();
    return true;
  }

  /// Producer side: no more items will arrive.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Emergency stop (a consumer failed): unblocks the producer and makes
  /// all further pushes no-ops and all pops return nullopt. Without this
  /// a dead consumer would leave the producer waiting on a full ring.
  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Consumer side: claims the next queuing id and takes its item.
  /// Blocks until an item is available; returns nullopt once the queue
  /// is closed and drained.
  std::optional<std::pair<std::uint64_t, T>> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    internal::timed_wait(not_empty_, lock, [this] {
      return srv_ > cns_ || closed_ || aborted_;
    });
    if (aborted_ || srv_ == cns_) return std::nullopt;
    const std::uint64_t id = cns_++;
    std::optional<T>& slot = ring_[id % ring_.size()];
    T item = std::move(*slot);
    slot.reset();
    not_full_.notify_one();
    return std::make_pair(id, std::move(item));
  }

  std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return srv_;
  }

  /// True once no pop() will ever return an item again (closed and every
  /// pushed item claimed, or aborted). Parked executor lanes poll this to
  /// know when to exit instead of blocking in pop() — a lane with zero
  /// lease must not claim work, but it must still terminate.
  bool drained() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_ || (closed_ && srv_ == cns_);
  }

 private:
  std::vector<std::optional<T>> ring_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::uint64_t srv_ = 0;  ///< items pushed (paper: srv)
  std::uint64_t cns_ = 0;  ///< queuing ids claimed (paper: cns)
  bool closed_ = false;
  bool aborted_ = false;
};

template <typename T>
class OutputQueue {
 public:
  explicit OutputQueue(std::size_t capacity) : capacity_(capacity) {
    PARAHASH_CHECK_MSG(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Any worker: enqueues a produced partition (advances prd).
  void push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    internal::timed_wait(not_full_, lock,
                         [this] { return prd_ - wrt_ < capacity_; });
    items_.push_back(std::move(item));
    ++prd_;
    not_empty_.notify_one();
  }

  /// Closes when `producers` workers have all finished.
  void producer_done() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_producers_;
    if (done_producers_ == expected_producers_) not_empty_.notify_all();
  }

  void set_expected_producers(int n) {
    std::lock_guard<std::mutex> lock(mutex_);
    expected_producers_ = n;
  }

  /// The single writer: dequeues in arrival order (advances wrt), or
  /// nullopt once all producers finished and the queue is empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    internal::timed_wait(not_empty_, lock, [this] {
      return !items_.empty() || done_producers_ == expected_producers_;
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.erase(items_.begin());
    ++wrt_;
    not_full_.notify_all();
    return item;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> items_;
  std::uint64_t prd_ = 0;  ///< outputs produced (paper: prd)
  std::uint64_t wrt_ = 0;  ///< outputs written (paper: wrt)
  int expected_producers_ = 1;
  int done_producers_ = 0;
};

}  // namespace parahash::pipeline
