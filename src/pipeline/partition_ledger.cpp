#include "pipeline/partition_ledger.h"

#include "util/error.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace parahash::pipeline {

const char* partition_state_name(PartitionState state) {
  switch (state) {
    case PartitionState::kWriting: return "writing";
    case PartitionState::kSealed: return "sealed";
    case PartitionState::kClaimed: return "claimed";
    case PartitionState::kBuilt: return "built";
    case PartitionState::kRetired: return "retired";
  }
  return "?";
}

PartitionLedger::PartitionLedger(std::uint64_t inflight_budget_bytes,
                                 CostFn cost)
    : budget_(inflight_budget_bytes), cost_(std::move(cost)) {}

void PartitionLedger::publish(io::SealedPartition part) {
  // The cost estimate can be arbitrarily expensive (table sizing);
  // compute it before taking the lock.
  const std::uint64_t cost = cost_ ? cost_(part) : 0;
  const std::uint32_t id = part.id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (aborted_) return;  // consumer died; drop quietly
    PARAHASH_CHECK_MSG(!closed_, "ledger: publish after close");
    PARAHASH_CHECK_MSG(tracked_.find(part.id) == tracked_.end(),
                       "ledger: partition sealed twice");
    tracked_[part.id] = Tracked{PartitionState::kSealed, cost};
    sealed_queue_.push_back(Entry{std::move(part), cost});
    ++counters_.srv;
  }
  PARAHASH_TRACE_INSTANT("ledger", "partition.publish", "id", id);
  cv_.notify_all();
}

void PartitionLedger::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

void PartitionLedger::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::optional<io::SealedPartition> PartitionLedger::claim() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Admit the head of the seal queue once it exists and its table fits
  // the in-flight budget. With nothing currently in flight the head is
  // admitted regardless of cost: one oversized partition must not
  // deadlock the pipeline, it just runs alone.
  cv_.wait(lock, [this] {
    if (aborted_) return true;
    if (sealed_queue_.empty()) return closed_;
    if (budget_ == 0 || inflight_bytes_ == 0) return true;
    return inflight_bytes_ + sealed_queue_.front().cost <= budget_;
  });
  if (aborted_ || sealed_queue_.empty()) return std::nullopt;

  Entry entry = std::move(sealed_queue_.front());
  sealed_queue_.pop_front();
  tracked_[entry.part.id].state = PartitionState::kClaimed;
  inflight_bytes_ += entry.cost;
  ++counters_.cns;
  return std::move(entry.part);
}

void PartitionLedger::mark_built(std::uint32_t partition_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tracked_.find(partition_id);
  PARAHASH_CHECK_MSG(it != tracked_.end() &&
                         it->second.state == PartitionState::kClaimed,
                     "ledger: mark_built on a partition not claimed");
  it->second.state = PartitionState::kBuilt;
  ++counters_.prd;
}

void PartitionLedger::retire(std::uint32_t partition_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tracked_.find(partition_id);
    PARAHASH_CHECK_MSG(it != tracked_.end() &&
                           (it->second.state == PartitionState::kBuilt ||
                            it->second.state == PartitionState::kClaimed),
                       "ledger: retire on a partition not in flight");
    it->second.state = PartitionState::kRetired;
    PARAHASH_DCHECK(inflight_bytes_ >= it->second.cost);
    inflight_bytes_ -= it->second.cost;
    ++counters_.wrt;
  }
  cv_.notify_all();  // budget freed: blocked claims may now proceed
}

void PartitionLedger::set_budget(std::uint64_t budget_bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = budget_bytes;
  }
  cv_.notify_all();  // a raised budget may admit blocked claims
}

std::uint64_t PartitionLedger::budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

PartitionLedger::Counters PartitionLedger::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

PartitionState PartitionLedger::state(std::uint32_t partition_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tracked_.find(partition_id);
  return it == tracked_.end() ? PartitionState::kWriting
                              : it->second.state;
}

std::uint64_t PartitionLedger::inflight_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_bytes_;
}

bool PartitionLedger::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

LedgerSampler::LedgerSampler(const PartitionLedger& ledger,
                             double period_seconds)
    : period_seconds_(period_seconds > 0 ? period_seconds : 1e-3) {
  bands_.push_back(Band{"ledger", &ledger});
  start();
}

LedgerSampler::LedgerSampler(const LedgerChain& chain,
                             double period_seconds)
    : period_seconds_(period_seconds > 0 ? period_seconds : 1e-3) {
  for (std::size_t i = 0; i < chain.size(); ++i) {
    // Band 0 keeps the unprefixed legacy track/gauge names so trace
    // consumers keyed on "ledger.*" keep working with chained runs.
    bands_.push_back(Band{
        i == 0 ? "ledger" : "ledger." + chain.label(i), &chain.at(i)});
  }
  start();
}

void LedgerSampler::start() {
  thread_ = std::thread([this] {
    trace::set_thread_name("ledger sampler");
    WallTimer timer;
    const auto period = std::chrono::duration<double>(period_seconds_);
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      sample_once(timer.seconds());
      if (stopping_) return;
      cv_.wait_for(lock, period, [this] { return stopping_; });
      if (stopping_) {
        sample_once(timer.seconds());  // final sample: the end state
        return;
      }
    }
  });
}

LedgerSampler::~LedgerSampler() { stop(); }

void LedgerSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void LedgerSampler::sample_once(double t_seconds) {
  LedgerSample sample;
  sample.t_seconds = t_seconds;
  sample.bands.reserve(bands_.size());
  for (const Band& band : bands_) {
    sample.bands.push_back(band.ledger->counters());
  }
  sample.counters = sample.bands.front();
  samples_.push_back(sample);

  for (std::size_t i = 0; i < bands_.size(); ++i) {
    const auto& label = bands_[i].label;
    const auto& c = sample.bands[i];
    telemetry::gauge(label + ".srv")
        .set(static_cast<std::int64_t>(c.srv));
    telemetry::gauge(label + ".cns")
        .set(static_cast<std::int64_t>(c.cns));
    telemetry::gauge(label + ".prd")
        .set(static_cast<std::int64_t>(c.prd));
    telemetry::gauge(label + ".wrt")
        .set(static_cast<std::int64_t>(c.wrt));

    if (trace::enabled()) {
      trace::CounterSeries series;
      series.push("srv", static_cast<double>(c.srv));
      series.push("cns", static_cast<double>(c.cns));
      series.push("prd", static_cast<double>(c.prd));
      series.push("wrt", static_cast<double>(c.wrt));
      // The category must be a static literal (the tracer keeps the
      // pointer); the per-band name is copied.
      trace::emit_counter("ledger", label.c_str(), series);
    }
  }
}

}  // namespace parahash::pipeline
