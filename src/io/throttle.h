// Metered byte channels.
//
// The paper evaluates two regimes: T_io << T_compute (memory-cached
// files, Fig. 13) and T_io >> T_compute (a 92 GB dataset on disk,
// Fig. 14). This environment has neither a slow disk nor 92 GB of data,
// so Throttle recreates the regimes deterministically: every consumer of
// the channel pays `bytes / bandwidth` of wall-clock time, serialised as
// on a real disk channel.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

namespace parahash::io {

class Throttle {
 public:
  /// bytes_per_sec <= 0 means unlimited (no throttling, no locking cost
  /// beyond one branch).
  explicit Throttle(double bytes_per_sec = 0)
      : bytes_per_sec_(bytes_per_sec) {}

  bool unlimited() const noexcept { return bytes_per_sec_ <= 0; }
  double bytes_per_sec() const noexcept { return bytes_per_sec_; }

  /// Charges `bytes` against the channel, sleeping so that the total
  /// consumption rate never exceeds the configured bandwidth. Holding the
  /// lock across the sleep is intentional: a disk channel serves one
  /// transfer at a time.
  void consume(std::uint64_t bytes) {
    if (unlimited() || bytes == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = Clock::now();
    if (next_free_ < now) next_free_ = now;
    const auto cost = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(static_cast<double>(bytes) /
                                      bytes_per_sec_));
    next_free_ += cost;
    if (next_free_ > now) std::this_thread::sleep_until(next_free_);
    total_bytes_ += bytes;
  }

  std::uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_bytes_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  double bytes_per_sec_;
  mutable std::mutex mutex_;
  Clock::time_point next_free_{};
  std::uint64_t total_bytes_ = 0;
};

}  // namespace parahash::io
