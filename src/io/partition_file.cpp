#include "io/partition_file.h"

#include <cstring>
#include <filesystem>

#include "util/dna.h"

namespace parahash::io {

namespace {
constexpr std::size_t kFlushThreshold = 1 << 20;  // 1 MiB

std::size_t payload_bytes(Encoding enc, std::size_t n_bases) {
  return enc == Encoding::kTwoBit ? PackedSeq::packed_bytes(n_bases)
                                  : n_bases;
}
}  // namespace

void encode_superkmer_record(std::vector<std::uint8_t>& out,
                             const std::uint8_t* codes, std::size_t n_bases,
                             bool has_left, bool has_right,
                             Encoding encoding) {
  PARAHASH_DCHECK(n_bases <= 0xFFFF);
  const std::uint16_t len = static_cast<std::uint16_t>(n_bases);
  out.push_back(static_cast<std::uint8_t>(len & 0xFF));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>((has_left ? 1u : 0u) |
                                          (has_right ? 2u : 0u)));
  const std::size_t nbytes = payload_bytes(encoding, n_bases);
  const std::size_t at = out.size();
  out.resize(at + nbytes, 0);
  if (encoding == Encoding::kTwoBit) {
    for (std::size_t i = 0; i < n_bases; ++i) {
      out[at + i / 4] |=
          static_cast<std::uint8_t>((codes[i] & 3u) << ((i % 4) * 2));
    }
  } else {
    std::memcpy(out.data() + at, codes, n_bases);
  }
}

void SuperkmerView::decode_bases(std::uint8_t* out) const noexcept {
  const int n = n_bases;
  if (encoding != Encoding::kTwoBit) {
    for (int i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(payload[i] & 3u);
    }
    return;
  }
  int i = 0;
  const int full_bytes = n / 4;
  for (int b = 0; b < full_bytes; ++b) {
    const std::uint8_t packed = payload[b];
    out[i++] = static_cast<std::uint8_t>(packed & 3u);
    out[i++] = static_cast<std::uint8_t>((packed >> 2) & 3u);
    out[i++] = static_cast<std::uint8_t>((packed >> 4) & 3u);
    out[i++] = static_cast<std::uint8_t>((packed >> 6) & 3u);
  }
  if (i < n) {
    std::uint8_t packed = payload[full_bytes];
    for (; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(packed & 3u);
      packed >>= 2;
    }
  }
}

std::string SuperkmerView::to_string() const {
  std::vector<std::uint8_t> codes;
  decode_bases(codes);
  std::string s(n_bases, 'A');
  for (int i = 0; i < n_bases; ++i) s[i] = decode_base(codes[i]);
  return s;
}

PartitionWriter::PartitionWriter(const std::string& path, std::uint32_t k,
                                 std::uint32_t p, std::uint32_t partition_id,
                                 Encoding encoding)
    : path_(path), file_(path, std::ios::binary) {
  if (!file_) throw IoError("partition: cannot open " + path + " for write");
  header_.k = k;
  header_.p = p;
  header_.partition_id = partition_id;
  header_.encoding = static_cast<std::uint8_t>(encoding);
  // Placeholder header; patched with real counts in close().
  file_.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  bytes_written_ = sizeof(header_);
  buffer_.reserve(kFlushThreshold + 4096);
}

PartitionWriter::~PartitionWriter() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructors must not throw (CppCoreGuidelines C.36).
    }
  }
}

void PartitionWriter::add(const std::uint8_t* codes, std::size_t n_bases,
                          bool has_left, bool has_right) {
  encode_superkmer_record(buffer_, codes, n_bases, has_left, has_right,
                          static_cast<Encoding>(header_.encoding));

  const int core =
      static_cast<int>(n_bases) - (has_left ? 1 : 0) - (has_right ? 1 : 0);
  ++header_.superkmer_count;
  header_.base_count += n_bases;
  header_.kmer_count +=
      static_cast<std::uint64_t>(core - static_cast<int>(header_.k) + 1);

  if (buffer_.size() >= kFlushThreshold) flush_buffer();
}

void PartitionWriter::append_raw(const std::uint8_t* bytes, std::size_t size,
                                 std::uint64_t superkmers,
                                 std::uint64_t kmers, std::uint64_t bases) {
  buffer_.insert(buffer_.end(), bytes, bytes + size);
  header_.superkmer_count += superkmers;
  header_.kmer_count += kmers;
  header_.base_count += bases;
  if (buffer_.size() >= kFlushThreshold) flush_buffer();
}

void PartitionWriter::flush_buffer() {
  if (buffer_.empty()) return;
  file_.write(reinterpret_cast<const char*>(buffer_.data()),
              static_cast<std::streamsize>(buffer_.size()));
  bytes_written_ += buffer_.size();
  buffer_.clear();
}

void PartitionWriter::close() {
  if (closed_) return;
  closed_ = true;
  flush_buffer();
  file_.seekp(0);
  file_.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  file_.close();
  if (file_.fail()) throw IoError("partition: write failure on " + path_);
}

PartitionBlob PartitionBlob::read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw IoError("partition: cannot open " + path);
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
  if (!file) throw IoError("partition: short read on " + path);
  return from_bytes(std::move(bytes));
}

PartitionBlob PartitionBlob::from_bytes(std::vector<std::uint8_t> bytes) {
  if (bytes.size() < sizeof(PartitionHeader)) {
    throw IoError("partition: file shorter than header");
  }
  PartitionBlob blob;
  std::memcpy(&blob.header_, bytes.data(), sizeof(PartitionHeader));
  if (blob.header_.magic != PartitionHeader::kMagic) {
    throw IoError("partition: bad magic");
  }
  if (blob.header_.version != PartitionHeader::kVersion) {
    throw IoError("partition: unsupported version");
  }
  blob.bytes_ = std::move(bytes);
  return blob;
}

SuperkmerView PartitionBlob::Iterator::operator*() const {
  const std::uint8_t* p = blob_->bytes_.data() + offset_;
  SuperkmerView view;
  view.n_bases = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  view.has_left = (p[2] & 1u) != 0;
  view.has_right = (p[2] & 2u) != 0;
  view.encoding = static_cast<Encoding>(blob_->header_.encoding);
  view.payload = p + 3;
  return view;
}

PartitionBlob::Iterator& PartitionBlob::Iterator::operator++() {
  const std::uint8_t* p = blob_->bytes_.data() + offset_;
  const std::uint16_t n = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  offset_ += 3 + payload_bytes(
                     static_cast<Encoding>(blob_->header_.encoding), n);
  return *this;
}

std::vector<std::size_t> record_offsets(const PartitionBlob& blob) {
  std::vector<std::size_t> offsets;
  offsets.reserve(blob.header().superkmer_count);
  const auto enc = static_cast<Encoding>(blob.header().encoding);
  const auto& bytes = blob.bytes();
  std::size_t at = sizeof(PartitionHeader);
  while (at < bytes.size()) {
    offsets.push_back(at);
    const std::uint16_t n =
        static_cast<std::uint16_t>(bytes[at] | (bytes[at + 1] << 8));
    at += 3 + payload_bytes(enc, n);
  }
  if (at != bytes.size()) throw IoError("partition: truncated record");
  return offsets;
}

SuperkmerView record_at(const PartitionBlob& blob, std::size_t offset) {
  const std::uint8_t* p = blob.bytes().data() + offset;
  SuperkmerView view;
  view.n_bases = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  view.has_left = (p[2] & 1u) != 0;
  view.has_right = (p[2] & 2u) != 0;
  view.encoding = static_cast<Encoding>(blob.header().encoding);
  view.payload = p + 3;
  return view;
}

PartitionSet::PartitionSet(const std::string& dir, std::uint32_t k,
                           std::uint32_t p, std::uint32_t num_partitions,
                           Encoding encoding, std::uint32_t first_id)
    : dir_(dir), first_id_(first_id), sealed_(num_partitions, false) {
  PARAHASH_CHECK_MSG(num_partitions >= 1, "need at least one partition");
  std::filesystem::create_directories(dir_);
  writers_.reserve(num_partitions);
  for (std::uint32_t i = 0; i < num_partitions; ++i) {
    const std::uint32_t id = first_id + i;
    writers_.push_back(std::make_unique<PartitionWriter>(
        partition_path(id), k, p, id, encoding));
  }
}

std::string PartitionSet::partition_path(std::uint32_t partition_id) const {
  return dir_ + "/part_" + std::to_string(partition_id) + ".phsk";
}

SealedPartition PartitionSet::seal(std::uint32_t partition_id) {
  PARAHASH_CHECK_MSG(covers(partition_id),
                     "seal: partition id not covered by this set");
  const std::uint32_t index = partition_id - first_id_;
  PartitionWriter& w = *writers_[index];
  w.close();
  SealedPartition part;
  part.id = partition_id;
  part.path = partition_path(partition_id);
  part.bytes = w.bytes_written();
  part.superkmers = w.header().superkmer_count;
  part.kmers = w.header().kmer_count;
  if (!sealed_[index]) {
    sealed_[index] = true;
    if (seal_hook_) seal_hook_(part);
  }
  return part;
}

std::vector<std::string> PartitionSet::close_all() {
  std::vector<std::string> paths;
  paths.reserve(writers_.size());
  for (std::uint32_t i = 0; i < writers_.size(); ++i) {
    paths.push_back(seal(first_id_ + i).path);
  }
  return paths;
}

std::uint64_t PartitionSet::total_bytes_written() const {
  std::uint64_t total = 0;
  for (const auto& w : writers_) total += w->bytes_written();
  return total;
}

std::uint64_t PartitionSet::total_kmers() const {
  std::uint64_t total = 0;
  for (const auto& w : writers_) total += w->header().kmer_count;
  return total;
}

}  // namespace parahash::io
