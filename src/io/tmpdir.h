// RAII scratch directories for partitions, simulated datasets and tests.
#pragma once

#include <chrono>
#include <filesystem>
#include <functional>
#include <string>

#include "util/error.h"
#include "util/rng.h"

namespace parahash::io {

/// Creates a unique directory on construction, removes it (recursively)
/// on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "parahash") {
    namespace fs = std::filesystem;
    const fs::path base = fs::temp_directory_path();
    Rng rng(std::hash<std::string>{}(prefix) ^
            static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count()));
    for (int attempt = 0; attempt < 64; ++attempt) {
      fs::path candidate =
          base / (prefix + "." + std::to_string(rng.next() & 0xFFFFFFFFull));
      std::error_code ec;
      if (fs::create_directory(candidate, ec)) {
        path_ = candidate.string();
        return;
      }
    }
    throw IoError("tmpdir: could not create a unique scratch directory");
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);  // best effort
    }
  }

  const std::string& path() const noexcept { return path_; }

  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace parahash::io
