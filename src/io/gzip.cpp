#include "io/gzip.h"

#include <cstdio>

namespace parahash::io {

bool is_gzip_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  unsigned char magic[2] = {0, 0};
  const bool gz = std::fread(magic, 1, 2, f) == 2 && magic[0] == 0x1f &&
                  magic[1] == 0x8b;
  std::fclose(f);
  return gz;
}

}  // namespace parahash::io
