// Gzip-compressed text input/output via zlib.
//
// Sequencing reads ship as .fastq.gz; GzipStreambuf adapts a gzFile to
// std::istream so the FASTX parser reads compressed and plain files
// through one code path. Compression detection is by content (the
// 0x1f 0x8b magic), not file name.
#pragma once

#include <zlib.h>

#include <array>
#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>

#include "util/error.h"

namespace parahash::io {

/// True if the file starts with the gzip magic bytes.
bool is_gzip_file(const std::string& path);

/// Read-side streambuf over a gzFile.
class GzipStreambuf : public std::streambuf {
 public:
  explicit GzipStreambuf(const std::string& path)
      : file_(gzopen(path.c_str(), "rb")) {
    if (file_ == nullptr) {
      throw IoError("gzip: cannot open " + path);
    }
    gzbuffer(file_, 1 << 16);
  }

  ~GzipStreambuf() override {
    if (file_ != nullptr) gzclose(file_);
  }

  GzipStreambuf(const GzipStreambuf&) = delete;
  GzipStreambuf& operator=(const GzipStreambuf&) = delete;

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const int n = gzread(file_, buffer_.data(),
                         static_cast<unsigned>(buffer_.size()));
    if (n < 0) throw IoError("gzip: read error");
    if (n == 0) return traits_type::eof();
    setg(buffer_.data(), buffer_.data(), buffer_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

 private:
  gzFile file_;
  std::array<char, 1 << 16> buffer_;
};

/// std::istream over a gzip file.
class GzipInputStream : public std::istream {
 public:
  explicit GzipInputStream(const std::string& path)
      : std::istream(nullptr), streambuf_(path) {
    rdbuf(&streambuf_);
  }

 private:
  GzipStreambuf streambuf_;
};

/// Write-side: a minimal gzip text writer (line-oriented appends).
class GzipWriter {
 public:
  explicit GzipWriter(const std::string& path)
      : path_(path), file_(gzopen(path.c_str(), "wb")) {
    if (file_ == nullptr) {
      throw IoError("gzip: cannot open " + path + " for write");
    }
  }

  ~GzipWriter() {
    if (file_ != nullptr) gzclose(file_);
  }

  GzipWriter(const GzipWriter&) = delete;
  GzipWriter& operator=(const GzipWriter&) = delete;

  void write(const std::string& text) {
    if (gzwrite(file_, text.data(), static_cast<unsigned>(text.size())) !=
        static_cast<int>(text.size())) {
      throw IoError("gzip: write error on " + path_);
    }
  }

  void close() {
    if (file_ != nullptr) {
      if (gzclose(file_) != Z_OK) {
        file_ = nullptr;
        throw IoError("gzip: close failure on " + path_);
      }
      file_ = nullptr;
    }
  }

 private:
  std::string path_;
  gzFile file_;
};

}  // namespace parahash::io
