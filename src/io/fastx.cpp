#include "io/fastx.h"

#include "io/gzip.h"

namespace parahash::io {

FastxReader::FastxReader(std::istream& in) : in_(in) {}

bool FastxReader::getline(std::string& line) {
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool FastxReader::next(Read& out) {
  if (format_ == Format::kUnknown) {
    std::string line;
    // Skip blank leading lines, then sniff the record marker.
    do {
      if (!getline(line)) return false;
    } while (line.empty());
    if (line[0] == '>') {
      format_ = Format::kFasta;
      pending_header_ = line;
      have_pending_ = true;
    } else if (line[0] == '@') {
      format_ = Format::kFastq;
      pending_header_ = line;
      have_pending_ = true;
    } else {
      throw IoError("fastx: input does not start with '>' or '@'");
    }
  }
  return format_ == Format::kFasta ? next_fasta(out) : next_fastq(out);
}

bool FastxReader::next_fasta(Read& out) {
  std::string line;
  if (have_pending_) {
    line = pending_header_;
    have_pending_ = false;
  } else {
    do {
      if (!getline(line)) return false;
    } while (line.empty());
  }
  if (line.empty() || line[0] != '>') {
    throw IoError("fastx: expected FASTA header, got: " + line);
  }
  out.id = line.substr(1);
  out.bases.clear();
  out.quality.clear();
  while (getline(line)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      pending_header_ = line;
      have_pending_ = true;
      break;
    }
    out.bases += line;
  }
  ++record_index_;
  return true;
}

bool FastxReader::next_fastq(Read& out) {
  std::string line;
  if (have_pending_) {
    line = pending_header_;
    have_pending_ = false;
  } else {
    do {
      if (!getline(line)) return false;
    } while (line.empty());
  }
  if (line.empty() || line[0] != '@') {
    throw IoError("fastx: expected FASTQ header at record " +
                  std::to_string(record_index_) + ", got: " + line);
  }
  out.id = line.substr(1);
  if (!getline(out.bases)) {
    throw IoError("fastx: truncated FASTQ record (missing sequence)");
  }
  std::string plus;
  if (!getline(plus) || plus.empty() || plus[0] != '+') {
    throw IoError("fastx: truncated FASTQ record (missing '+')");
  }
  if (!getline(out.quality)) {
    throw IoError("fastx: truncated FASTQ record (missing quality)");
  }
  if (out.quality.size() != out.bases.size()) {
    throw IoError("fastx: quality length mismatch at record " +
                  std::to_string(record_index_));
  }
  ++record_index_;
  return true;
}

std::size_t quality_trim_3prime(Read& read, int min_phred) {
  if (min_phred <= 0 || read.quality.size() != read.bases.size()) return 0;
  std::size_t keep = read.bases.size();
  while (keep > 0 && read.quality[keep - 1] - 33 < min_phred) --keep;
  const std::size_t removed = read.bases.size() - keep;
  read.bases.resize(keep);
  read.quality.resize(keep);
  return removed;
}

FastxFileReader::FastxFileReader(const std::string& path) : path_(path) {
  if (is_gzip_file(path)) {
    stream_ = std::make_unique<GzipInputStream>(path);
  } else {
    auto file = std::make_unique<std::ifstream>(path);
    if (!*file) throw IoError("fastx: cannot open " + path);
    stream_ = std::move(file);
  }
  reader_ = std::make_unique<FastxReader>(*stream_);
}

FastxFileReader::~FastxFileReader() = default;

std::vector<Read> read_fastx_file(const std::string& path) {
  FastxFileReader reader(path);
  std::vector<Read> reads;
  Read r;
  while (reader.next(r)) reads.push_back(r);
  return reads;
}

FastxWriter::FastxWriter(const std::string& path, Format format)
    : format_(format) {
  if (path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0) {
    gzip_ = std::make_unique<GzipWriter>(path);
  } else {
    file_.open(path);
    if (!file_) throw IoError("fastx: cannot open " + path + " for write");
  }
}

FastxWriter::~FastxWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; call close() directly to observe
    // write failures.
  }
}

void FastxWriter::sink(const std::string& text) {
  if (gzip_ != nullptr) {
    gzip_->write(text);
  } else {
    file_ << text;
  }
}

void FastxWriter::write(const Read& read) {
  std::string record;
  if (format_ == Format::kFasta) {
    record.reserve(read.id.size() + read.bases.size() + 3);
    record += '>';
    record += read.id;
    record += '\n';
    record += read.bases;
    record += '\n';
  } else {
    record.reserve(read.id.size() + 2 * read.bases.size() + 6);
    record += '@';
    record += read.id;
    record += '\n';
    record += read.bases;
    record += "\n+\n";
    if (read.quality.size() == read.bases.size()) {
      record += read.quality;
    } else {
      record.append(read.bases.size(), 'I');
    }
    record += '\n';
  }
  sink(record);
  ++count_;
}

void FastxWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (gzip_ != nullptr) {
    gzip_->close();
  } else if (file_.is_open()) {
    file_.close();
    if (file_.fail()) throw IoError("fastx: write failure on close");
  }
}

FastxChunker::FastxChunker(const std::string& path,
                           std::size_t max_batch_bases,
                           int quality_trim_phred)
    : FastxChunker(std::vector<std::string>{path}, max_batch_bases,
                   quality_trim_phred) {}

FastxChunker::FastxChunker(std::vector<std::string> paths,
                           std::size_t max_batch_bases,
                           int quality_trim_phred)
    : paths_(std::move(paths)),
      max_batch_bases_(max_batch_bases),
      quality_trim_phred_(quality_trim_phred) {
  PARAHASH_CHECK_MSG(max_batch_bases > 0, "batch size must be positive");
  PARAHASH_CHECK_MSG(!paths_.empty(), "need at least one input file");
  reader_ = std::make_unique<FastxFileReader>(paths_[next_path_++]);
}

bool FastxChunker::next_read(Read& out) {
  for (;;) {
    if (reader_->next(out)) return true;
    if (next_path_ >= paths_.size()) return false;
    reader_ = std::make_unique<FastxFileReader>(paths_[next_path_++]);
  }
}

bool FastxChunker::next(ReadBatch& out) {
  out.clear();
  if (have_carry_) {
    out.add(carry_.bases);
    have_carry_ = false;
  }
  Read r;
  while (out.total_bases() < max_batch_bases_ && next_read(r)) {
    quality_trim_3prime(r, quality_trim_phred_);
    if (r.bases.empty()) continue;
    if (out.size() > 0 &&
        out.total_bases() + r.bases.size() > max_batch_bases_) {
      carry_ = std::move(r);
      have_carry_ = true;
      break;
    }
    out.add(r.bases);
  }
  return out.size() > 0;
}

}  // namespace parahash::io
