// Superkmer partition files — the intermediate data between Step 1 (MSP
// graph partitioning) and Step 2 (hash-based subgraph construction).
//
// Each record is one superkmer extended with up to two extra bases (the
// read bases immediately before and after it), ParaHash's fix that keeps
// cross-superkmer adjacencies recoverable (paper Sec. III-B):
//
//   [u16 n_bases][u8 flags][ceil(n_bases/4) bytes of 2-bit codes]
//
// flags bit0 = first stored base is a left extension, bit1 = last stored
// base is a right extension. The file header records k, P, the partition
// id and aggregate counts, so Step 2 can size its hash table before
// reading any record (Property 1 sizing).
//
// Encoding::kTwoBit is the production format; Encoding::kByte stores one
// byte per base and exists to measure what the paper's 2-bit encoding
// saves (ablation bench) and to model fat intermediates of the sort-merge
// baseline.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/packed_seq.h"

namespace parahash::io {

enum class Encoding : std::uint8_t { kTwoBit = 0, kByte = 1 };

/// Fixed-size partition file header.
struct PartitionHeader {
  static constexpr std::uint32_t kMagic = 0x5048534Bu;  // "PHSK"
  static constexpr std::uint32_t kVersion = 1;

  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t k = 0;
  std::uint32_t p = 0;
  std::uint32_t partition_id = 0;
  std::uint8_t encoding = 0;
  std::uint8_t pad[3] = {0, 0, 0};
  std::uint64_t superkmer_count = 0;
  std::uint64_t kmer_count = 0;    // total core kmers in the file
  std::uint64_t base_count = 0;    // total stored bases (incl. extensions)
};
static_assert(sizeof(PartitionHeader) == 48);

/// One decoded superkmer. `seq` holds left-ext + core + right-ext bases.
struct SuperkmerView {
  const std::uint8_t* payload = nullptr;  // raw record payload
  std::uint16_t n_bases = 0;
  bool has_left = false;
  bool has_right = false;
  Encoding encoding = Encoding::kTwoBit;

  /// Base i of the stored (extended) sequence.
  std::uint8_t base(int i) const noexcept {
    if (encoding == Encoding::kTwoBit) {
      return static_cast<std::uint8_t>((payload[i / 4] >> ((i % 4) * 2)) & 3u);
    }
    return static_cast<std::uint8_t>(payload[i] & 3u);
  }

  /// Bulk-decodes all n_bases stored bases into `out[0, n_bases)`, one
  /// 2-bit code per byte. Equivalent to base(i) for every i, but unpacks
  /// four bases per payload byte instead of re-reading and re-shifting
  /// the byte per base — the hot Step-2 kernels and the SIMT kernel use
  /// this instead of a per-base copy loop. `out` must hold n_bases.
  void decode_bases(std::uint8_t* out) const noexcept;

  /// decode_bases into a reusable buffer (resized to n_bases).
  void decode_bases(std::vector<std::uint8_t>& out) const {
    out.resize(n_bases);
    if (n_bases > 0) decode_bases(out.data());
  }

  /// Number of core bases (the superkmer itself, without extensions).
  int core_len() const noexcept {
    return n_bases - (has_left ? 1 : 0) - (has_right ? 1 : 0);
  }
  /// Index of the first core base within the stored sequence.
  int core_begin() const noexcept { return has_left ? 1 : 0; }
  /// Number of kmers the core expands to.
  int kmer_count(int k) const noexcept { return core_len() - k + 1; }

  std::string to_string() const;
};

/// Serialises one superkmer record (length, flags, payload) onto `out`.
/// `codes` are 2-bit codes, one per byte, already including the extension
/// bases. This is the wire format PartitionWriter and PartitionBlob agree
/// on; devices use it to produce record bytes off the writer thread.
void encode_superkmer_record(std::vector<std::uint8_t>& out,
                             const std::uint8_t* codes, std::size_t n_bases,
                             bool has_left, bool has_right,
                             Encoding encoding);

/// Appends superkmer records to one partition file. Counts are patched
/// into the header on close(). Writes are buffered; `bytes_written()`
/// reports the final file size for IO accounting.
class PartitionWriter {
 public:
  PartitionWriter(const std::string& path, std::uint32_t k, std::uint32_t p,
                  std::uint32_t partition_id,
                  Encoding encoding = Encoding::kTwoBit);
  ~PartitionWriter();

  PartitionWriter(const PartitionWriter&) = delete;
  PartitionWriter& operator=(const PartitionWriter&) = delete;

  /// Adds the superkmer covering `codes[begin, end)` (2-bit codes, one
  /// per byte). The stored sequence must already include the extension
  /// bases; flags say whether the first/last stored base is an extension.
  void add(const std::uint8_t* codes, std::size_t n_bases, bool has_left,
           bool has_right);

  /// Bulk-appends pre-encoded record bytes (encode_superkmer_record
  /// output, same encoding) together with their aggregate counts.
  void append_raw(const std::uint8_t* bytes, std::size_t size,
                  std::uint64_t superkmers, std::uint64_t kmers,
                  std::uint64_t bases);

  void close();

  const PartitionHeader& header() const { return header_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void flush_buffer();

  std::string path_;
  std::ofstream file_;
  PartitionHeader header_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t bytes_written_ = 0;
  bool closed_ = false;
};

/// A whole partition file loaded into one contiguous blob, iterable as
/// SuperkmerViews. Loading the blob (not a record-by-record stream) is
/// deliberate: it is the unit that gets staged onto a device.
class PartitionBlob {
 public:
  /// Reads `path` fully. If `throttle_bytes_per_sec > 0` the read is
  /// metered through that budget (see io::Throttle).
  static PartitionBlob read_file(const std::string& path);

  /// Builds a blob from raw bytes (header + records); used by tests and
  /// by in-memory pipelines.
  static PartitionBlob from_bytes(std::vector<std::uint8_t> bytes);

  const PartitionHeader& header() const { return header_; }
  std::size_t byte_size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  class Iterator {
   public:
    Iterator(const PartitionBlob* blob, std::size_t offset)
        : blob_(blob), offset_(offset) {}

    SuperkmerView operator*() const;
    Iterator& operator++();
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.offset_ == b.offset_;
    }

   private:
    const PartitionBlob* blob_;
    std::size_t offset_;
  };

  Iterator begin() const { return Iterator(this, sizeof(PartitionHeader)); }
  Iterator end() const { return Iterator(this, bytes_.size()); }

 private:
  PartitionHeader header_;
  std::vector<std::uint8_t> bytes_;
};

/// Byte offsets of every record in a blob (one scan). Builders index
/// records so that worker threads can process disjoint record ranges.
std::vector<std::size_t> record_offsets(const PartitionBlob& blob);

/// Decodes the record at `offset` (must come from record_offsets).
SuperkmerView record_at(const PartitionBlob& blob, std::size_t offset);

/// A partition file Step 1 has finished writing: everything a Step-2
/// scheduler needs to plan hashing it (table sizing included) without
/// reopening the file header.
struct SealedPartition {
  std::uint32_t id = 0;          ///< global partition id
  std::string path;              ///< final on-disk location
  std::uint64_t bytes = 0;       ///< file size, for IO accounting
  std::uint64_t superkmers = 0;  ///< record count
  std::uint64_t kmers = 0;       ///< Property-1 table sizing input
};

/// Writers for a contiguous range of partition ids [first_id,
/// first_id + count). Most runs cover all partitions in one set; when
/// the partition count exceeds the open-file-handle budget (the paper
/// caps at 1000 handles), Step 1 makes multiple passes over the input,
/// each with a PartitionSet covering one id range.
class PartitionSet {
 public:
  /// Fired once per partition the moment its file is sealed (counts
  /// patched, stream closed). A fused pipeline publishes the sealed
  /// partition to the Step-2 scheduler from here, so hashing can start
  /// while later partitions (or later passes) are still being written.
  using SealHook = std::function<void(const SealedPartition&)>;

  PartitionSet(const std::string& dir, std::uint32_t k, std::uint32_t p,
               std::uint32_t num_partitions,
               Encoding encoding = Encoding::kTwoBit,
               std::uint32_t first_id = 0);

  /// True if this set owns the given (global) partition id.
  bool covers(std::uint32_t partition_id) const {
    return partition_id >= first_id_ &&
           partition_id < first_id_ + size();
  }

  /// Writer for a GLOBAL partition id (must be covered).
  PartitionWriter& writer(std::uint32_t partition_id) {
    return *writers_[partition_id - first_id_];
  }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(writers_.size());
  }
  std::uint32_t first_id() const { return first_id_; }

  void set_seal_hook(SealHook hook) { seal_hook_ = std::move(hook); }

  /// Closes one partition's writer, fires the seal hook, and returns the
  /// sealed-file description. Idempotent per id (later calls re-return
  /// the description without re-firing the hook).
  SealedPartition seal(std::uint32_t partition_id);

  /// Seals all remaining writers in id order and returns the path of
  /// each partition file in this set (ordered by id).
  std::vector<std::string> close_all();

  std::string partition_path(std::uint32_t partition_id) const;
  std::uint64_t total_bytes_written() const;
  std::uint64_t total_kmers() const;

 private:
  std::string dir_;
  std::uint32_t first_id_ = 0;
  std::vector<std::unique_ptr<PartitionWriter>> writers_;
  std::vector<bool> sealed_;
  SealHook seal_hook_;
};

}  // namespace parahash::io
