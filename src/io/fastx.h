// FASTA / FASTQ input and output.
//
// Assembly inputs are plain-text read files (paper Sec. II-A). The reader
// auto-detects the format from the first record marker ('>' FASTA,
// '@' FASTQ), tolerates multi-line FASTA sequences and CRLF endings, and
// maps unknown bases (N etc.) to 'A' downstream via encode_base.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/packed_seq.h"

namespace parahash::io {

/// One sequencing read. Bases are kept as characters here; encoding to
/// 2-bit codes happens when reads are batched for processing. `quality`
/// holds the FASTQ quality string (empty for FASTA records).
struct Read {
  std::string id;
  std::string bases;
  std::string quality = {};
};

/// Trims low-quality 3' tails in place: drops trailing bases whose
/// Phred+33 quality is below `min_phred`. No-op for reads without
/// quality strings. Returns the number of bases removed.
std::size_t quality_trim_3prime(Read& read, int min_phred);

/// Streaming FASTA/FASTQ parser over any std::istream.
class FastxReader {
 public:
  explicit FastxReader(std::istream& in);

  /// Reads the next record into `out`. Returns false at end of input.
  /// Throws IoError on malformed records.
  bool next(Read& out);

 private:
  enum class Format { kUnknown, kFasta, kFastq };

  bool next_fasta(Read& out);
  bool next_fastq(Read& out);
  bool getline(std::string& line);

  std::istream& in_;
  Format format_ = Format::kUnknown;
  std::string pending_header_;  // FASTA header lookahead
  bool have_pending_ = false;
  std::uint64_t record_index_ = 0;
};

/// FastxReader over a file, owning the stream. Transparently reads
/// gzip-compressed files (detected by content, not extension).
class FastxFileReader {
 public:
  explicit FastxFileReader(const std::string& path);
  ~FastxFileReader();

  FastxFileReader(const FastxFileReader&) = delete;
  FastxFileReader& operator=(const FastxFileReader&) = delete;

  bool next(Read& out) { return reader_->next(out); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::unique_ptr<std::istream> stream_;
  std::unique_ptr<FastxReader> reader_;
};

/// Reads every record of a FASTA/FASTQ file (test/tool convenience).
std::vector<Read> read_fastx_file(const std::string& path);

/// Writes reads as FASTQ or FASTA; paths ending in ".gz" are gzip-
/// compressed. FASTQ quality comes from Read.quality when its length
/// matches, otherwise a constant high quality is emitted.
class FastxWriter {
 public:
  enum class Format { kFasta, kFastq };

  FastxWriter(const std::string& path, Format format);
  ~FastxWriter();

  FastxWriter(const FastxWriter&) = delete;
  FastxWriter& operator=(const FastxWriter&) = delete;

  void write(const Read& read);
  void close();
  std::uint64_t records_written() const { return count_; }

 private:
  void sink(const std::string& text);

  std::ofstream file_;
  std::unique_ptr<class GzipWriter> gzip_;  // set for .gz paths
  Format format_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// A batch of reads encoded into one contiguous 2-bit buffer, the unit of
/// work for Step 1. Offsets are in bases; byte_size() is the amount of
/// data a device must stage to process the batch.
struct ReadBatch {
  std::vector<std::uint64_t> offsets{0};  // size() + 1 entries
  PackedSeq bases;

  std::size_t size() const noexcept { return offsets.size() - 1; }
  std::size_t read_length(std::size_t i) const noexcept {
    return offsets[i + 1] - offsets[i];
  }
  std::size_t total_bases() const noexcept { return bases.size(); }
  std::size_t byte_size() const noexcept {
    return PackedSeq::packed_bytes(bases.size()) +
           offsets.size() * sizeof(std::uint64_t);
  }

  void add(std::string_view read_chars) {
    for (char c : read_chars) bases.push_back(encode_base(c));
    offsets.push_back(bases.size());
  }

  void clear() {
    offsets.assign(1, 0);
    bases.clear();
  }
};

/// Splits a FASTA/FASTQ file into ReadBatches of bounded size: the
/// "partition the input file to equal size" part of Step 1. When
/// `quality_trim_phred` > 0, low-quality 3' tails are trimmed before
/// batching (standard assembler preprocessing).
class FastxChunker {
 public:
  FastxChunker(const std::string& path, std::size_t max_batch_bases,
               int quality_trim_phred = 0);

  /// Reads several files back to back (sequencing runs ship as many
  /// FASTQ files; lanes/mates simply concatenate for construction).
  FastxChunker(std::vector<std::string> paths, std::size_t max_batch_bases,
               int quality_trim_phred = 0);

  /// Fills `out` with the next batch. Returns false when input is done.
  bool next(ReadBatch& out);

 private:
  bool next_read(Read& out);

  std::vector<std::string> paths_;
  std::size_t next_path_ = 0;
  std::unique_ptr<FastxFileReader> reader_;
  std::size_t max_batch_bases_;
  int quality_trim_phred_;
  Read carry_;
  bool have_carry_ = false;
};

}  // namespace parahash::io
