// The subcommand command-line front end:
//
//   parahash build  <reads...> [--config run.json] [flags]
//   parahash serve  --graph g.phdg | --subgraph-dir DIR --p N [flags]
//   parahash query  [--socket S | --graph g.phdg] <VERB> [args...]
//   parahash report <report.json> [--extract-config out.json]
//   parahash stats | unitigs | gfa | export   (graph-file tools)
//
// One flags layer serves every command: each cmd_* builds a
// parahash::Config (optionally seeded from --config FILE), applies the
// explicit flags on top, and runs. The retired flat binary
// (examples/parahash_cli.cpp) forwards here unchanged, so old
// invocations keep working.
#pragma once

#include "util/flags.h"

namespace parahash::cli {

int cmd_build(const Flags& flags);
int cmd_serve(const Flags& flags);
int cmd_query(const Flags& flags);
int cmd_report(const Flags& flags);
int cmd_stats(const Flags& flags);
int cmd_unitigs(const Flags& flags);
int cmd_gfa(const Flags& flags);
int cmd_export(const Flags& flags);

/// Dispatches argv[1] to the matching cmd_*; prints usage and returns
/// 2 on an unknown command, 1 on any error escaping a command.
int run_cli(int argc, const char* const* argv);

}  // namespace parahash::cli
